#!/usr/bin/env python3
"""Constrained-random verification (CRV): generating stimulus for a DUT.

The paper motivates SAT sampling with hardware verification: a testbench needs
many *diverse* input vectors that all satisfy the DUT's input constraints.
This example builds a small arithmetic DUT (an 8-bit array multiplier), states
a verification constraint ("the product's two middle bits must both be 1"),
Tseitin-encodes the constraint circuit to CNF, and uses the gradient sampler
to generate a large batch of legal stimulus vectors, comparing its throughput
against a CNF-level baseline sampler.

Run with:  python examples/crv_stimulus_generation.py
"""

import numpy as np

from repro import SamplerConfig, sample_cnf
from repro.baselines import CMSGenStyleSampler
from repro.circuit import CircuitBuilder, circuit_to_cnf
from repro.metrics import hamming_diversity


def build_dut_constraint_cnf(width: int = 8):
    """Build the multiplier DUT and the CNF of its stimulus constraint."""
    builder = CircuitBuilder("multiplier-dut")
    a_bits = builder.inputs(width, prefix="a")
    b_bits = builder.inputs(width, prefix="b")
    product_bits = builder.multiplier(a_bits, b_bits)

    # Verification constraint: both middle product bits are 1 (exercises the
    # carry chains), i.e. product[width-1] & product[width].
    constrained = {product_bits[width - 1]: True, product_bits[width]: True}
    for net in constrained:
        builder.output(net)

    formula, var_map = circuit_to_cnf(builder.circuit, output_constraints=constrained)
    formula.name = "crv-multiplier"
    input_columns = [var_map[name] - 1 for name in builder.circuit.inputs]
    return formula, builder.circuit, input_columns


def main() -> None:
    width = 6
    formula, circuit, input_columns = build_dut_constraint_cnf(width)
    print(f"DUT constraint CNF: {formula.num_variables} variables, {formula.num_clauses} clauses")

    config = SamplerConfig.paper_defaults(batch_size=2048, seed=7, max_rounds=16)
    result = sample_cnf(formula, num_solutions=500, config=config)
    sample = result.sample
    print("\n--- Gradient sampler (this work) ---")
    print(f"unique stimulus vectors: {sample.num_unique}")
    print(f"throughput             : {sample.throughput:,.0f} / second")
    print(f"ops reduction          : {result.transform.stats.operations_reduction:.1f}x")

    # Project solutions onto the DUT's primary inputs (the stimulus itself).
    solutions = sample.solution_matrix()
    stimulus = solutions[:, input_columns]
    print(f"stimulus diversity (mean normalised Hamming distance): "
          f"{hamming_diversity(stimulus):.2f}")

    # Check a few stimulus vectors against the DUT directly.
    names = list(circuit.inputs)
    for row in stimulus[:5]:
        assignment = dict(zip(names, row))
        a_value = sum(assignment[f"a{i}"] << i for i in range(width))
        b_value = sum(assignment[f"b{i}"] << i for i in range(width))
        product = a_value * b_value
        middle = (product >> (width - 1)) & 0b11
        print(f"   a={a_value:3d}  b={b_value:3d}  product={product:6d}  middle bits=0b{middle:02b}")

    print("\n--- CNF-level baseline (CMSGen-style) ---")
    baseline = CMSGenStyleSampler(seed=7).sample(formula, num_solutions=500, timeout_seconds=30)
    print(f"unique stimulus vectors: {baseline.num_unique}")
    print(f"throughput             : {baseline.throughput:,.0f} / second")
    if baseline.throughput > 0:
        print(f"\nSpeedup of the gradient sampler: "
              f"{sample.throughput / baseline.throughput:.1f}x")


if __name__ == "__main__":
    main()
