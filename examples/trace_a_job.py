#!/usr/bin/env python3
"""Observability tour: trace a sampling job end to end.

This walks through the telemetry layer (:mod:`repro.obs`) on a registry
instance:

1. run one pipeline job with a JSONL trace file open
   (``SamplerConfig(telemetry=...)`` — the library-level switch behind
   ``repro-sat sample --trace`` and ``$REPRO_TRACE``),
2. read the trace back and print the per-stage flame summary
   (what ``repro-sat obs TRACE`` prints),
3. tabulate the run's metric counters from the trace file's metrics line,
4. run the same jobs through a 2-worker :class:`SamplingService` with
   tracing on and show one job's timeline *spanning three processes* —
   worker task spans parent under the service's job span,
5. export the merged service metrics in Prometheus text format.

Run with:  python examples/trace_a_job.py [--workers N] [--keep]
"""

import argparse
import tempfile
from pathlib import Path

from repro import obs
from repro.core.config import SamplerConfig
from repro.core.pipeline import sample_cnf
from repro.instances.registry import get_instance
from repro.serve import SamplingService

INSTANCE = "or-50-10-7-UC-10"
CONFIG = SamplerConfig(batch_size=256, seed=0, max_rounds=8)


def trace_one_pipeline_job(trace_path: Path) -> None:
    formula = get_instance(INSTANCE).build_cnf()
    config = CONFIG.with_(telemetry=str(trace_path))  # <- the only change
    result = sample_cnf(formula, num_solutions=50, config=config)
    print(f"[pipeline] {len(result.sample.solutions)} unique solutions on "
          f"{INSTANCE}; trace written to {trace_path}")

    # -- 2: the flame summary (repro-sat obs TRACE does exactly this) ------------
    spans, metric_records = obs.load_trace(trace_path)
    print(f"[pipeline] {len(spans)} spans recorded:")
    print(obs.render_trace(spans))

    # -- 3: the counters the run accumulated, from the file alone ----------------
    merged = obs.merge_metric_records(metric_records)
    kernel = merged.get("repro_cnf_evaluations_total", {}).get("series", {})
    rounds = merged.get("repro_sampler_rounds_total", {}).get("series", {})
    print(f"[pipeline] sampler rounds: {rounds} | cnf-eval batches: {kernel}")


def trace_a_worker_pool(trace_path: Path, workers: int) -> None:
    with SamplingService(num_workers=workers, trace=str(trace_path)) as service:
        jobs = [
            service.submit({"instance": INSTANCE}, num_solutions=50,
                           config=CONFIG.with_(seed=seed), coalesce=False)
            for seed in (0, 1, 2)
        ]
        for job_id in jobs:
            result = service.result(job_id)
            print(f"[serve] {job_id}: {result.status}, "
                  f"{result.num_unique} unique "
                  f"(artifact {result.members[0]['artifact_source']})")
        merged = service.merged_metrics()
        headline = jobs[0]

    # -- 4: one job's cross-process timeline, reconstructed from the file --------
    spans, _ = obs.load_trace(trace_path)
    job_spans = [span for span in spans if span.get("trace_id") == headline]
    pids = {span["pid"] for span in job_spans}
    print(f"[serve] job {headline}: {len(job_spans)} spans across "
          f"{len(pids)} processes")
    print(obs.render_trace(spans, trace_id=headline))

    # -- 5: the merged metrics in Prometheus exposition format -------------------
    registry = obs.MetricsRegistry()
    registry.merge(merged)
    exposition = registry.to_prometheus()
    wanted = ("repro_serve_artifacts_total", "repro_serve_jobs_total")
    print("[serve] Prometheus export (artifact/job lines):")
    for line in exposition.splitlines():
        if line.startswith(wanted):
            print(f"  {line}")
    print(f"[serve] shared artifact-counter view: {obs.artifact_counters(merged)}")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int, default=2,
                        help="worker processes for the serve half (default 2)")
    parser.add_argument("--keep", action="store_true",
                        help="keep the trace files and print their paths")
    arguments = parser.parse_args()

    directory = Path(tempfile.mkdtemp(prefix="repro-obs-"))
    trace_one_pipeline_job(directory / "pipeline-trace.jsonl")
    trace_a_worker_pool(directory / "serve-trace.jsonl", arguments.workers)
    if arguments.keep:
        print(f"traces kept in {directory} — inspect with: "
              f"python -m repro.cli obs {directory}/serve-trace.jsonl")
    else:
        for path in directory.iterdir():
            path.unlink()
        directory.rmdir()


if __name__ == "__main__":
    main()
