#!/usr/bin/env python3
"""Workload tour: projected, weighted and incremental sampling tasks.

This walks through the tasked-sampling layer (:class:`repro.SamplingTask`)
on a registry instance:

1. a **default** task — bitwise-identical to plain sampling,
2. a **projected** task — uniqueness counted over a variable subset, each
   solution a full-width witness of a distinct projected pattern,
3. a **weighted** task — per-variable Bernoulli biases on the sampler's
   initialization (solutions stay exact, marginals shift),
4. an **incremental** task through the serving layer — a clause delta
   (here: one unit assumption) whose artifact is *derived* from the warm
   parent via ``retransform`` instead of a cold Algorithm-1 pass,
5. the same four workloads expressed as a jobs manifest.

Run with:  python examples/incremental_jobs.py
"""

import json
import time

from repro import SamplingTask, sample_cnf
from repro.core.config import SamplerConfig
from repro.instances.registry import get_instance
from repro.serve import SamplingService, parse_manifest

CONFIG = SamplerConfig(batch_size=256, seed=0, max_rounds=6)
TARGET = 100


def main() -> None:
    formula = get_instance("75-10-1-q").build_cnf()
    print(f"instance: {formula.name} ({formula.num_variables} variables, "
          f"{formula.num_clauses} clauses)")

    # -- 1: the default task is the identity --------------------------------------
    plain = sample_cnf(formula, num_solutions=TARGET, config=CONFIG)
    tasked = sample_cnf(formula, num_solutions=TARGET, config=CONFIG,
                        task=SamplingTask())
    identical = (plain.sample.solution_matrix() == tasked.sample.solution_matrix()).all()
    print(f"[default]     {plain.sample.num_unique} unique solutions; "
          f"default task bitwise-identical: {bool(identical)}")

    # -- 2: projection — count uniqueness over a variable subset -------------------
    project = SamplingTask.build(project=[1, 2, 3, 4, 5])
    projected = sample_cnf(formula, num_solutions=TARGET, config=CONFIG, task=project)
    summary = projected.sample.summary()
    print(f"[projected]   {summary['projected_unique']} distinct patterns over "
          f"variables 1-5 (task={summary['task']}); each row is a full-width "
          f"witness")

    # -- 3: weights — bias the initialization, keep exactness ----------------------
    weighted = sample_cnf(formula, num_solutions=TARGET, config=CONFIG,
                          task=SamplingTask.build(weights={1: 0.95, 2: 0.05}))
    matrix = weighted.sample.solution_matrix()
    print(f"[weighted]    x1 marginal {matrix[:, 0].mean():.2f} (weight 0.95), "
          f"x2 marginal {matrix[:, 1].mean():.2f} (weight 0.05); all "
          f"{matrix.shape[0]} solutions exact")

    # -- 4: incremental — derive the mutated artifact from the warm parent ---------
    with SamplingService(num_workers=0) as service:
        start = time.perf_counter()
        parent = service.result(
            service.submit(formula, num_solutions=TARGET, config=CONFIG))
        cold_seconds = time.perf_counter() - start
        start = time.perf_counter()
        narrowed = service.result(service.submit(
            formula, num_solutions=TARGET, config=CONFIG,
            task=SamplingTask.build(assume=[7])))
        warm_seconds = time.perf_counter() - start
        print(f"[incremental] parent job {cold_seconds:.2f} s (cold transform), "
              f"assume(7) job {warm_seconds:.2f} s — derived artifacts: "
              f"{narrowed.summary['incremental_artifacts']} "
              f"(task={narrowed.summary['task']})")
        assert parent.status == narrowed.status == "done"

    # -- 5: the same workloads as a jobs manifest ----------------------------------
    manifest = {"jobs": [
        {"id": "plain", "instance": "75-10-1-q", "num_solutions": TARGET},
        {"id": "proj", "instance": "75-10-1-q", "type": "project",
         "project": [1, 2, 3, 4, 5], "num_solutions": TARGET},
        {"id": "wted", "instance": "75-10-1-q", "type": "weighted",
         "weights": {"1": 0.95}, "num_solutions": TARGET},
        {"id": "incr", "instance": "75-10-1-q", "type": "incremental",
         "assume": [7], "num_solutions": TARGET},
    ]}
    jobs = parse_manifest(json.dumps(manifest))
    print("[manifest]    parsed job types: "
          + ", ".join(f"{job.job_id}={job.task.kind()}" for job in jobs))
    print("run the same manifest from the shell with:\n"
          "  python -m repro.cli serve jobs.json --workers 4 -o results/")


if __name__ == "__main__":
    main()
