#!/usr/bin/env python3
"""Recovering circuit structure from a CNF (Algorithm 1 as a standalone tool).

The transformation at the heart of the paper is useful beyond sampling: it
restores the multi-level logic structure that the Tseitin transformation
flattened into clauses (related work: Roy et al., Fu et al.).  This example

1. builds a reference circuit (a small ALU slice),
2. Tseitin-encodes it to CNF — throwing the structure away,
3. runs the transformation to recover a multi-level, multi-output function,
4. compares the recovered gate count against the CNF's operation count, and
5. exports the recovered circuit as structural Verilog.

Run with:  python examples/circuit_recovery.py
"""

from repro import transform_cnf
from repro.circuit import CircuitBuilder, circuit_stats, circuit_to_cnf, to_verilog
from repro.circuit.aig import circuit_to_aig


def build_alu_slice():
    """A 4-bit ALU slice: add, bitwise AND/OR/XOR selected by two control bits."""
    builder = CircuitBuilder("alu-slice")
    a_bits = builder.inputs(4, prefix="a")
    b_bits = builder.inputs(4, prefix="b")
    op0 = builder.input("op0")
    op1 = builder.input("op1")

    sums, _ = builder.ripple_adder(a_bits, b_bits)
    for position in range(4):
        and_bit = builder.and_(a_bits[position], b_bits[position])
        or_bit = builder.or_(a_bits[position], b_bits[position])
        xor_bit = builder.xor_(a_bits[position], b_bits[position])
        # op1 op0: 00 -> add, 01 -> and, 10 -> or, 11 -> xor
        logic = builder.mux(op0, and_bit, or_bit)
        logic_or_xor = builder.mux(op0, xor_bit, logic)
        result = builder.mux(op1, logic_or_xor, builder.mux(op0, and_bit, sums[position]))
        builder.output(builder.buf(result, name=f"y{position}"))
    return builder.circuit


def main() -> None:
    circuit = build_alu_slice()
    original = circuit_stats(circuit)
    print("--- Reference circuit ---")
    print(f"inputs={original.num_inputs}  outputs={original.num_outputs}  "
          f"gates={original.num_gates}  2-input equivalents={original.two_input_equivalents}")

    # Flatten to CNF, constraining every output to 1 (a verification-style query:
    # "find input vectors that drive all result bits high").
    formula, _ = circuit_to_cnf(circuit, output_constraints={net: True for net in circuit.outputs})
    formula.name = "alu-slice"
    print(f"\n--- Tseitin CNF ---")
    print(f"variables={formula.num_variables}  clauses={formula.num_clauses}  "
          f"2-input operations={formula.two_input_operation_count()}")

    result = transform_cnf(formula)
    recovered = circuit_stats(result.circuit)
    print(f"\n--- Recovered multi-level function (Algorithm 1) ---")
    print(f"primary inputs        : {len(result.primary_inputs)}")
    print(f"intermediate variables: {len(result.intermediate_variables)}")
    print(f"constraint outputs    : {len(result.constraints)}")
    print(f"2-input equivalents   : {recovered.two_input_equivalents}")
    print(f"operation reduction   : {result.stats.operations_reduction:.1f}x over the CNF")
    print(f"signature matches     : {result.stats.signature_matches}  "
          f"(generic extractions: {result.stats.generic_matches}, "
          f"fallback groups: {result.stats.fallback_groups})")

    aig = circuit_to_aig(result.circuit)
    print(f"recovered AIG         : {aig.num_ands} AND nodes over {aig.num_inputs} inputs")

    verilog = to_verilog(result.circuit, module_name="recovered_alu_slice")
    print("\n--- Structural Verilog of the recovered circuit (first 25 lines) ---")
    print("\n".join(verilog.splitlines()[:25]))
    print("    ...")


if __name__ == "__main__":
    main()
