#!/usr/bin/env python3
"""Fault-tolerance tour: killed workers, retries, poisoning and resume.

This walks the resilience layer (:mod:`repro.faults` + the supervised
:class:`repro.serve.SamplingService`) end to end, with every fault injected
deterministically from a seeded plan:

1. run a small job pool with a fault plan that SIGKILLs a worker the
   moment it picks up its second task — the supervisor respawns the slot,
   requeues the dead worker's in-flight work, and every job still finishes
   with results bitwise-identical to a fault-free run,
2. poison a job: a fault rule that kills *every* incarnation on its first
   task exhausts the retry budget and the task is quarantined as
   ``poisoned`` with its full attempt history, while the pool survives,
3. journal + drain: run with a job journal, inspect the crash-safe record
   of submits / attempts / worker deaths / retries, and show what
   ``repro-sat serve MANIFEST --resume DIR`` would re-run.

Everything here spawns real worker processes; the script finishes in a few
seconds.  Run with:  python examples/chaos_serve.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.core.config import SamplerConfig
from repro.serve import SamplingService, plan_resume, read_journal
from repro.serve.jobs import SamplingJob
from repro.serve.journal import JOURNAL_NAME, job_fingerprint

INSTANCE = {"instance": "s15850a_3_2"}  # 1680 variables, 4474 clauses
CONFIG = SamplerConfig(batch_size=256, seed=0)


def baseline(num_solutions: int) -> np.ndarray:
    with SamplingService(num_workers=1, store_dir=False) as service:
        job = service.submit(INSTANCE, num_solutions=num_solutions, config=CONFIG)
        return service.result(job).solutions.to_matrix()


def main() -> None:
    # -- 1: a worker is SIGKILLed mid-run; the pool self-heals ----------------
    # `kill:at=2,worker=0,incarnation=0` kills worker 0's original process as
    # it dequeues its 2nd task; the respawned incarnation no longer matches.
    expected = baseline(200)
    with SamplingService(
        num_workers=2,
        store_dir=False,
        faults="seed=7;kill:at=2,worker=0,incarnation=0",
    ) as service:
        jobs = [
            service.submit(INSTANCE, num_solutions=200,
                           config=CONFIG.with_(seed=index), coalesce=False)
            for index in range(4)
        ]
        results = [service.result(job) for job in jobs]
    retried = sum(result.summary["retries"] for result in results)
    print(f"[supervision] statuses : {[result.status for result in results]} "
          f"({retried} task(s) requeued after the worker kill)")
    survivor = next(r for r in results if r.summary["retries"])
    print(f"[supervision] history  : {survivor.members[0]['attempts']}")
    # results[0] is the seed-0 job — retried or not, seed-deterministic
    # sampling + exact dedup make its pool match the fault-free run exactly
    print(f"[supervision] seed-0 job bitwise-identical to fault-free run: "
          f"{np.array_equal(results[0].solutions.to_matrix(), expected)}")

    # -- 2: a poison task is quarantined, the service survives ----------------
    # no incarnation filter: every respawn dies on its first task, so the
    # retry budget (2 attempts) is spent entirely on worker deaths.
    with SamplingService(
        num_workers=1,
        store_dir=False,
        retry={"attempts": 2, "backoff": 0.1},
        faults="seed=7;kill:at=1",
    ) as service:
        doomed = service.submit(INSTANCE, num_solutions=50, config=CONFIG)
        result = service.result(doomed)
    print(f"[poisoning]  status    : {result.status!r} after "
          f"{len(result.members[0]['attempts'])} attempts "
          f"(error: {result.error})")

    # -- 3: the crash-safe journal, and what --resume would do ----------------
    with tempfile.TemporaryDirectory() as scratch:
        out_dir = Path(scratch)
        with SamplingService(
            num_workers=1,
            store_dir=False,
            journal=out_dir / JOURNAL_NAME,
            faults="seed=7;kill:at=1,incarnation=0",
        ) as service:
            job = service.submit(INSTANCE, num_solutions=100, config=CONFIG,
                                 job_id="journaled")
            result = service.result(job)
        events = [record.get("event") or record["type"]
                  for record in read_journal(out_dir / JOURNAL_NAME)]
        print(f"[journal]    events    : {events}")
        # the CLI writes <job-id>.solutions next to the journal; emulate it,
        # then ask plan_resume what a second invocation would actually run
        (out_dir / "journaled.solutions").write_text("stub\n")
        manifest_jobs = [
            SamplingJob.build(INSTANCE, num_solutions=100, config=CONFIG),
            SamplingJob.build(INSTANCE, num_solutions=400, config=CONFIG),
        ]
        pending, rows = plan_resume(manifest_jobs, out_dir / JOURNAL_NAME, out_dir)
        print(f"[resume]     fingerprints match journaled completions; "
              f"{len(rows) - len(pending)}/{len(manifest_jobs)} jobs skipped, "
              f"{len(pending)} would run "
              f"(pending indices: {[index for index, _job in pending]})")
        assert job_fingerprint(manifest_jobs[0]) != job_fingerprint(manifest_jobs[1])


if __name__ == "__main__":
    main()
