#!/usr/bin/env python3
"""Serving tour: coalescing, artifact caching and a seed portfolio.

This walks through the serving layer (:mod:`repro.serve`) on a registry
instance:

1. start a :class:`SamplingService` (inline here, so the script is
   deterministic and spawns no subprocesses — pass ``--workers N`` for a
   real process pool),
2. submit two *identical* jobs and watch the second coalesce onto the first
   (one sampling run, one shared solution pool),
3. submit a warm-cache job (same formula, new seed) that skips the
   transform entirely,
4. race a 4-member portfolio — different seeds and learning rates over the
   same formula; the first time the merged pool reaches the target the rest
   are cancelled cooperatively — and stream its rounds as they land,
5. print the per-member records and the exactly-deduplicated merged result.

Run with:  python examples/serve_portfolio.py [--workers N]
"""

import argparse
import time

from repro.core.config import SamplerConfig
from repro.serve import SamplingService

INSTANCE = {"instance": "s15850a_3_2"}  # 1680 variables, 4474 clauses
CONFIG = SamplerConfig(batch_size=256, seed=0)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int, default=0,
                        help="worker processes (0 = inline, the default)")
    arguments = parser.parse_args()

    with SamplingService(num_workers=arguments.workers) as service:
        # -- 1+2: two identical requests coalesce into one run -------------------
        start = time.perf_counter()
        first = service.submit(INSTANCE, num_solutions=200, config=CONFIG)
        twin = service.submit(INSTANCE, num_solutions=200, config=CONFIG)
        result_first = service.result(first)
        result_twin = service.result(twin)
        print(f"[coalescing] first job : {result_first.num_unique} unique solutions "
              f"in {result_first.elapsed_seconds:.2f} s (includes the one-time transform)")
        print(f"[coalescing] twin job  : coalesced with {result_twin.coalesced_with!r}, "
              f"shares the identical pool "
              f"({result_twin.solutions is result_first.solutions})")

        # -- 3: warm cache — same formula, different seed -------------------------
        warm = service.submit(INSTANCE, num_solutions=200, config=CONFIG.with_(seed=9))
        result_warm = service.result(warm)
        member = result_warm.members[0]
        print(f"[warm cache] new seed  : {result_warm.num_unique} unique in "
              f"{result_warm.elapsed_seconds:.2f} s "
              f"(cache_hit={member['cache_hit']}, no recompilation)")

        # -- 4: a portfolio race, streamed ----------------------------------------
        portfolio = [
            {"learning_rate": 10.0},          # the paper's setting
            {"learning_rate": 5.0},
            {"batch_size": 512},
            {},                                # base config, seed auto-offset
        ]
        race = service.submit(
            INSTANCE, num_solutions=400, config=CONFIG, portfolio=portfolio
        )
        streamed = 0
        for rows in service.stream(race):
            streamed += rows.shape[0]
            print(f"[portfolio] round landed: +{rows.shape[0]:>4} solutions "
                  f"(streamed total {streamed})")
        result_race = service.result(race)

        # -- 5: member records and the merged set ---------------------------------
        for record in result_race.members:
            print(f"[portfolio] member {record['member_index']}: "
                  f"seed={record['seed']} lr={record['learning_rate']} "
                  f"batch={record['batch_size']} -> {record['status']:>9}, "
                  f"{record['unique_solutions']} unique")
        print(f"[portfolio] merged: {result_race.num_unique} unique solutions "
              f"(exactly deduplicated, member-index order), "
              f"{result_race.summary['cancelled_members']} members cancelled early")
        print(f"[total] wall clock: {time.perf_counter() - start:.2f} s, "
              f"cache stats: {service.cache_stats()}")


if __name__ == "__main__":
    main()
