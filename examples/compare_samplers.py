#!/usr/bin/env python3
"""Compare all samplers on one benchmark family (a miniature Table II).

Runs the paper's sampler and the three CNF-level baselines (UniGen-style,
CMSGen-style, DiffSampler-style) on one instance from each benchmark family,
printing unique-solution throughput and solution-quality metrics.  On small
instances with a known model count it also reports a chi-square uniformity
statistic per sampler, computed against exhaustive DPLL enumeration.

Run with:  python examples/compare_samplers.py
"""

from repro import SamplerConfig
from repro.baselines import DPLLSolver
from repro.eval import default_samplers, render_rows, run_sampler_on_instance
from repro.instances import get_instance
from repro.metrics import chi_square_uniformity, empirical_distribution, hamming_diversity

INSTANCES = ["or-50-10-7-UC-10", "75-10-1-q", "s9234a_3_2", "Prod-8"]


def main() -> None:
    config = SamplerConfig.paper_defaults(batch_size=1024, seed=0, max_rounds=8)
    samplers = default_samplers(config=config)

    rows = []
    for name in INSTANCES:
        formula, _ = get_instance(name).build()
        for sampler in samplers:
            record = run_sampler_on_instance(
                sampler, formula, num_solutions=100, timeout_seconds=15
            )
            rows.append(
                {
                    "instance": name,
                    "sampler": record.sampler_name,
                    "unique": record.num_unique,
                    "seconds": round(record.elapsed_seconds, 3),
                    "throughput": record.throughput,
                }
            )
    print(render_rows(rows, title="Miniature Table II (100 solutions, 15 s timeout)"))

    # Uniformity check on a tiny instance whose full model set is enumerable.
    formula, _ = get_instance("or-50-10-7-UC-10").build()
    print("Solution-quality details on or-50-10-7-UC-10:")
    quality_rows = []
    for sampler in samplers:
        output = sampler.sample(formula, num_solutions=200, timeout_seconds=15)
        matrix = output.solution_matrix()
        quality_rows.append(
            {
                "sampler": output.sampler_name,
                "unique": output.num_unique,
                "diversity": round(hamming_diversity(matrix), 3) if len(matrix) else 0.0,
            }
        )
    print(render_rows(quality_rows))

    print("Uniformity on a tiny formula (chi-square vs exhaustive enumeration):")
    from repro.cnf import CNF

    tiny = CNF([[1, 2], [-1, 3], [2, 3, 4]], num_variables=4, name="tiny")
    num_models = DPLLSolver(tiny).count_models()
    uniformity_rows = []
    for sampler in samplers:
        output = sampler.sample(tiny, num_solutions=num_models, timeout_seconds=10)
        counts = empirical_distribution(list(output.solutions))
        statistic, p_value = chi_square_uniformity(counts, num_models)
        uniformity_rows.append(
            {
                "sampler": output.sampler_name,
                "models_found": output.num_unique,
                "total_models": num_models,
                "chi2": round(statistic, 2),
                "p_value": round(p_value, 3),
            }
        )
    print(render_rows(uniformity_rows))


if __name__ == "__main__":
    main()
