#!/usr/bin/env python3
"""Quickstart: sample diverse solutions of a CNF with the gradient-descent sampler.

This walks through the full pipeline of the paper on its own Fig. 1 example:

1. parse a DIMACS CNF,
2. transform it into a multi-level, multi-output Boolean function (Algorithm 1),
3. inspect the recovered structure (primary inputs, constrained paths, ops reduction),
4. run batched gradient-descent sampling, and
5. validate and print the unique solutions.

Run with:  python examples/quickstart.py
"""

from repro import SamplerConfig, sample_cnf
from repro.cnf import parse_dimacs

# The annotated CNF of the paper's Fig. 1(a): two buffer/inverter chains feeding
# two multiplexers; the second mux output (x10) is constrained to 1.
FIG1_DIMACS = """\
p cnf 14 21
c x2 = not x1
-1 -2 0
1 2 0
c x3 = x2
-2 3 0
2 -3 0
c x4 = x3
-3 4 0
3 -4 0
c x5 = (x4 and x11) or (not x4 and x12)
-4 -11 5 0
-4 11 -5 0
4 -12 5 0
4 12 -5 0
c x7 = x6
-6 7 0
6 -7 0
c x8 = x7
-7 8 0
7 -8 0
c x9 = not x8
-8 -9 0
8 9 0
c x10 = (x9 and x13) or (not x9 and x14)
-9 -13 10 0
-9 13 -10 0
9 -14 10 0
9 14 -10 0
c constraint: x10 = 1
10 0
"""


def main() -> None:
    formula = parse_dimacs(FIG1_DIMACS, name="fig1")
    print(f"Loaded {formula!r}")

    config = SamplerConfig.paper_defaults(batch_size=256, seed=0)
    result = sample_cnf(formula, num_solutions=32, config=config)

    transform = result.transform
    print("\n--- Recovered multi-level, multi-output function (Algorithm 1) ---")
    print(f"primary inputs      : {transform.primary_inputs}")
    print(f"constrained inputs  : {transform.constrained_inputs()}  (learned by GD)")
    print(f"unconstrained inputs: {transform.unconstrained_inputs()}  (sampled at random)")
    print(f"definitions         : {len(transform.definitions)} intermediate variables")
    for name, expr in transform.definitions:
        print(f"    {name} = {expr}")
    print(f"constraint outputs  : {[name for name, _ in transform.constraints]}")
    print(f"operation reduction : {transform.stats.operations_reduction:.1f}x "
          f"({transform.stats.cnf_operations} CNF ops -> {transform.stats.circuit_operations} circuit ops)")

    sample = result.sample
    print("\n--- Sampling ---")
    print(f"unique valid solutions : {sample.num_unique}")
    print(f"validity rate          : {sample.validity_rate:.1%}")
    print(f"throughput             : {sample.throughput:,.0f} unique solutions / second")
    print(f"transform time         : {result.transform_seconds * 1e3:.1f} ms")
    print(f"sampling time          : {result.sample_seconds * 1e3:.1f} ms")

    print("\nFirst 8 solutions (variables x1..x14):")
    for row in sample.solution_matrix(limit=8):
        print("   ", "".join("1" if bit else "0" for bit in row))

    # Every solution is checked against the original CNF.
    assert formula.evaluate_batch(sample.solution_matrix()).all()
    print("\nAll reported solutions satisfy the original CNF.")


if __name__ == "__main__":
    main()
