#!/usr/bin/env python3
"""Scaling study: batch size, execution style and memory (Fig. 3 / Fig. 4 in miniature).

Reproduces the paper's learning-dynamics analysis on one instance:

* unique solutions vs GD iterations (Fig. 3 left),
* modelled memory vs batch size (Fig. 3 right),
* batch-parallel ("gpu-sim") vs per-sample ("cpu") execution time (Fig. 4 left),
* the operation reduction achieved by the transformation (Fig. 4 middle).

Run with:  python examples/scaling_study.py
"""

import time

from repro import GradientSATSampler, SamplerConfig, transform_cnf
from repro.eval.report import render_rows, render_series
from repro.gpu import Device, DeviceKind, estimate_training_memory
from repro.instances import get_instance

INSTANCE = "90-10-10-q"


def main() -> None:
    formula, _ = get_instance(INSTANCE).build()
    transform = transform_cnf(formula)
    print(f"Instance {INSTANCE}: {formula.num_variables} variables, "
          f"{formula.num_clauses} clauses, ops reduction "
          f"{transform.stats.operations_reduction:.1f}x\n")

    # Fig. 3 (left): learning curve.
    config = SamplerConfig.paper_defaults(batch_size=2048, seed=0)
    sampler = GradientSATSampler(formula, transform=transform, config=config)
    curve = sampler.learning_curve(max_iterations=10, batch_size=2048)
    print(render_series(
        {INSTANCE: list(enumerate(curve))},
        x_label="iteration", y_label="unique solutions",
        title="Learning curve (Fig. 3 left)",
    ))

    # Fig. 3 (right): memory model across batch sizes.
    memory_rows = [
        {"batch_size": batch, "memory_mb": estimate_training_memory(transform.circuit, batch).total_mb}
        for batch in (100, 1_000, 10_000, 100_000, 1_000_000)
    ]
    print(render_rows(memory_rows, title="GPU-memory model vs batch size (Fig. 3 right)"))

    # Fig. 4 (left): vectorised vs per-sample execution of the same batch.
    timing_rows = []
    for label, device in (("gpu-sim (vectorised)", Device(DeviceKind.GPU_SIM)),
                          ("cpu (per-sample loop)", Device(DeviceKind.CPU))):
        run_config = config.with_(batch_size=64, device=device, max_rounds=1)
        run_sampler = GradientSATSampler(formula, transform=transform, config=run_config)
        start = time.perf_counter()
        result = run_sampler.sample(num_solutions=64)
        timing_rows.append(
            {
                "execution": label,
                "seconds": round(time.perf_counter() - start, 4),
                "unique": result.num_unique,
            }
        )
    speedup = timing_rows[1]["seconds"] / timing_rows[0]["seconds"]
    print(render_rows(timing_rows, title="Execution style comparison (Fig. 4 left)"))
    print(f"Batch-parallel speedup over per-sample execution: {speedup:.1f}x")


if __name__ == "__main__":
    main()
