"""Tests for the DIMACS reader/writer (repro.cnf.dimacs)."""

import pytest

from repro.cnf.dimacs import DimacsError, parse_dimacs, parse_dimacs_file, write_dimacs, write_dimacs_file
from repro.cnf.formula import CNF


class TestParsing:
    def test_basic_document(self):
        formula = parse_dimacs("p cnf 3 2\n1 -2 0\n2 3 0\n")
        assert formula.num_variables == 3
        assert [clause.literals for clause in formula] == [(1, -2), (2, 3)]

    def test_comments_preserved(self):
        formula = parse_dimacs("c hello\np cnf 1 1\nc mid comment\n1 0\n")
        assert "hello" in formula.comments
        assert "mid comment" in formula.comments

    def test_clause_spanning_lines(self):
        formula = parse_dimacs("p cnf 3 1\n1 2\n3 0\n")
        assert formula.clauses[0].literals == (1, 2, 3)

    def test_missing_header_tolerated(self):
        formula = parse_dimacs("1 -2 0\n")
        assert formula.num_clauses == 1
        assert formula.num_variables == 2

    def test_percent_trailer_ignored(self):
        formula = parse_dimacs("p cnf 2 1\n1 2 0\n%\n0\n")
        assert formula.num_clauses == 1

    def test_stray_zero_ignored(self):
        formula = parse_dimacs("p cnf 2 1\n0\n1 2 0\n")
        assert formula.num_clauses == 1

    def test_header_mismatch_recorded(self):
        formula = parse_dimacs("p cnf 2 5\n1 2 0\n")
        assert any("declared 5" in comment for comment in formula.comments)

    def test_malformed_header_raises(self):
        with pytest.raises(DimacsError):
            parse_dimacs("p cnf x y\n1 0\n")

    def test_non_integer_literal_raises(self):
        with pytest.raises(DimacsError):
            parse_dimacs("p cnf 1 1\none 0\n")

    def test_over_declared_variables_kept(self):
        formula = parse_dimacs("p cnf 14 1\n1 2 0\n")
        assert formula.num_variables == 14

    def test_fig1_example(self, fig1_formula):
        assert fig1_formula.num_variables == 14
        assert fig1_formula.num_clauses == 21


class TestWriting:
    def test_roundtrip(self, fig1_formula):
        text = write_dimacs(fig1_formula)
        reparsed = parse_dimacs(text)
        assert reparsed.num_variables == fig1_formula.num_variables
        assert [c.literals for c in reparsed] == [c.literals for c in fig1_formula]

    def test_header_line(self):
        text = write_dimacs(CNF([[1, -2]], num_variables=4))
        assert "p cnf 4 1" in text.splitlines()[0]

    def test_comments_optional(self):
        formula = CNF([[1]], comments=["note"])
        assert "c note" in write_dimacs(formula)
        assert "c note" not in write_dimacs(formula, include_comments=False)

    def test_file_roundtrip(self, tmp_path, fig1_formula):
        path = write_dimacs_file(fig1_formula, tmp_path / "fig1.cnf")
        loaded = parse_dimacs_file(path)
        assert loaded.num_clauses == fig1_formula.num_clauses
        assert loaded.name == "fig1"
