"""Tests for the compiled CNF evaluation kernel (repro.cnf.kernel).

The compiled and packed backends must be bitwise-identical to the clause-loop
reference on arbitrary formulas — including unit clauses, empty clauses,
tautologies, duplicate literals, over-declared variables and zero-variable
formulas — which the hypothesis suite checks exhaustively over the full
assignment space of small random CNFs.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import native
from repro.cnf.formula import CNF
from repro.cnf.kernel import (
    BACKENDS,
    compile_evaluation_plan,
    default_backend,
    set_default_backend,
)
from tests.conftest import all_assignments

#: Backends runnable on this host/configuration: "native" drops out when no
#: tier can be brought up or kernels are disabled (REPRO_NATIVE=off), the
#: same auto-skip the missing CuPy/Torch array backends get.
RUNNABLE_BACKENDS = tuple(
    backend
    for backend in BACKENDS
    if backend != "native" or native.kernels_for(None) is not None
)


@st.composite
def random_cnfs(draw):
    """A small random CNF: mixed clause widths, possible empty clauses."""
    num_variables = draw(st.integers(0, 5))
    extra_declared = draw(st.integers(0, 2))
    num_clauses = draw(st.integers(0, 8))
    clauses = []
    for _ in range(num_clauses):
        if num_variables == 0:
            clauses.append([])
            continue
        clause = draw(
            st.lists(
                st.tuples(st.integers(1, num_variables), st.booleans()).map(
                    lambda pair: pair[0] if pair[1] else -pair[0]
                ),
                min_size=0,
                max_size=4,
            )
        )
        clauses.append(clause)
    return CNF(clauses, num_variables=num_variables + extra_declared, name="hyp")


class TestBackendEquivalence:
    @given(random_cnfs())
    @settings(max_examples=60, deadline=None)
    def test_all_backends_bitwise_identical(self, formula):
        matrix = all_assignments(formula.num_variables)
        reference = formula.evaluate_batch(matrix, backend="reference")
        for backend in ("compiled", "packed"):
            np.testing.assert_array_equal(
                formula.evaluate_batch(matrix, backend=backend),
                reference,
                err_msg=f"backend {backend} diverged on {formula!r}",
            )
        np.testing.assert_array_equal(
            formula.unsatisfied_clause_counts(matrix, backend="compiled"),
            formula.unsatisfied_clause_counts(matrix, backend="reference"),
        )

    @given(random_cnfs())
    @settings(max_examples=40, deadline=None)
    def test_counts_consistent_with_evaluation(self, formula):
        matrix = all_assignments(formula.num_variables)
        counts = formula.unsatisfied_clause_counts(matrix)
        satisfied = formula.evaluate_batch(matrix)
        np.testing.assert_array_equal(counts == 0, satisfied)

    @given(random_cnfs())
    @settings(max_examples=40, deadline=None)
    def test_clause_satisfaction_matches_per_clause_reference(self, formula):
        matrix = all_assignments(formula.num_variables)
        plan = formula.evaluation_plan()
        table = plan.clause_satisfaction(matrix)
        assert table.shape == (matrix.shape[0], formula.num_clauses)
        for row_index in range(matrix.shape[0]):
            assignment = {
                index + 1: bool(matrix[row_index, index])
                for index in range(formula.num_variables)
            }
            for clause_index, clause in enumerate(formula.clauses):
                expected = len(clause) > 0 and clause.evaluate(assignment)
                assert table[row_index, clause_index] == expected


class TestEdgeCases:
    def test_empty_clause_falsifies_everything(self):
        formula = CNF([[1, 2], []], num_variables=2)
        matrix = all_assignments(2)
        assert not formula.evaluate_batch(matrix).any()
        assert not formula.evaluate_batch(matrix, backend="packed").any()
        assert (formula.unsatisfied_clause_counts(matrix) >= 1).all()

    def test_no_clauses_satisfies_everything(self):
        formula = CNF(num_variables=3)
        matrix = all_assignments(3)
        for backend in RUNNABLE_BACKENDS:
            assert formula.evaluate_batch(matrix, backend=backend).all()
        assert (formula.unsatisfied_clause_counts(matrix) == 0).all()

    def test_zero_variable_formula(self):
        formula = CNF(num_variables=0)
        matrix = np.zeros((4, 0), dtype=bool)
        for backend in RUNNABLE_BACKENDS:
            assert formula.evaluate_batch(matrix, backend=backend).all()

    def test_tautological_clause_always_satisfied(self):
        formula = CNF([[1, -1]], num_variables=1)
        matrix = all_assignments(1)
        for backend in RUNNABLE_BACKENDS:
            assert formula.evaluate_batch(matrix, backend=backend).all()

    def test_empty_batch(self):
        formula = CNF([[1]], num_variables=1)
        matrix = np.zeros((0, 1), dtype=bool)
        for backend in RUNNABLE_BACKENDS:
            assert formula.evaluate_batch(matrix, backend=backend).shape == (0,)

    def test_batch_not_multiple_of_eight_packed(self):
        """The packed kernel must mask the packbits padding correctly."""
        formula = CNF([[1, -2], [2, 3]], num_variables=3)
        matrix = all_assignments(3)[:5]
        np.testing.assert_array_equal(
            formula.evaluate_batch(matrix, backend="packed"),
            formula.evaluate_batch(matrix, backend="reference"),
        )


class TestPlanLifecycle:
    def test_plan_is_memoised(self):
        formula = CNF([[1, 2]], num_variables=2)
        assert formula.evaluation_plan() is formula.evaluation_plan()

    def test_add_clause_invalidates_plan(self):
        formula = CNF([[1, 2]], num_variables=2)
        stale = formula.evaluation_plan()
        formula.add_clause([-1, -2])
        fresh = formula.evaluation_plan()
        assert fresh is not stale
        matrix = all_assignments(2)
        np.testing.assert_array_equal(
            formula.evaluate_batch(matrix),
            formula.evaluate_batch(matrix, backend="reference"),
        )

    def test_num_variables_change_invalidates_plan(self):
        formula = CNF([[1]], num_variables=1)
        stale = formula.evaluation_plan()
        formula.num_variables = 3
        assert formula.evaluation_plan() is not stale
        assert formula.evaluate_batch(np.ones((2, 3), dtype=bool)).all()

    def test_copy_shares_plan_until_mutation(self):
        formula = CNF([[1, 2]], num_variables=2)
        plan = formula.evaluation_plan()
        duplicate = formula.copy()
        assert duplicate.evaluation_plan() is plan
        duplicate.add_clause([-1])
        assert duplicate.evaluation_plan() is not plan
        assert formula.evaluation_plan() is plan  # original untouched

    def test_plan_statistics(self):
        formula = CNF([[1, -2], [3], []], num_variables=3)
        plan = compile_evaluation_plan(formula)
        assert plan.num_literals == 3
        assert plan.num_empty == 1
        assert plan.num_clauses == 3
        # Non-empty clauses are stored sorted by width (stable).
        assert plan.nonempty_index.tolist() == [1, 0]
        assert plan.width_groups == ((0, 1, 1), (1, 2, 2))
        assert plan.reduce_offsets.tolist() == [0, 1]


class TestBackendKnob:
    def test_default_backend_is_compiled(self):
        assert default_backend() == "compiled"

    def test_set_default_backend(self):
        set_default_backend("reference")
        try:
            assert default_backend() == "reference"
        finally:
            set_default_backend(None)
        assert default_backend() == "compiled"

    def test_invalid_backend_rejected(self):
        formula = CNF([[1]], num_variables=1)
        with pytest.raises(ValueError):
            formula.evaluate_batch(np.ones((1, 1), dtype=bool), backend="gpu")
        with pytest.raises(ValueError):
            set_default_backend("gpu")

    def test_environment_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_CNF_BACKEND", "packed")
        assert default_backend() == "packed"


class TestSharedShapeValidation:
    """Regression: both entry points must reject malformed matrices up front."""

    @pytest.fixture
    def formula(self):
        return CNF([[1, 2], [-1, 3]], num_variables=3)

    @pytest.mark.parametrize("method", ["evaluate_batch", "unsatisfied_clause_counts"])
    def test_one_dimensional_rejected(self, formula, method):
        with pytest.raises(ValueError, match="2-D"):
            getattr(formula, method)(np.zeros(3, dtype=bool))

    @pytest.mark.parametrize("method", ["evaluate_batch", "unsatisfied_clause_counts"])
    def test_narrow_matrix_rejected(self, formula, method):
        with pytest.raises(ValueError, match="columns"):
            getattr(formula, method)(np.zeros((2, 2), dtype=bool))

    @pytest.mark.parametrize("method", ["evaluate_batch", "unsatisfied_clause_counts"])
    def test_wide_matrix_rejected(self, formula, method):
        """A wider matrix used to be silently accepted by evaluate_batch."""
        with pytest.raises(ValueError, match="columns"):
            getattr(formula, method)(np.zeros((2, 5), dtype=bool))
