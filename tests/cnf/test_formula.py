"""Tests for repro.cnf.formula."""

import numpy as np
import pytest

from repro.cnf.clause import Clause
from repro.cnf.formula import CNF
from tests.conftest import all_assignments


class TestConstruction:
    def test_from_literal_lists(self):
        formula = CNF([[1, -2], [2, 3]])
        assert formula.num_clauses == 2
        assert formula.num_variables == 3

    def test_add_clause_updates_variable_count(self):
        formula = CNF()
        formula.add_clause([5, -9])
        assert formula.num_variables == 9

    def test_declared_variables_can_exceed_used(self):
        formula = CNF([[1]], num_variables=10)
        assert formula.num_variables == 10

    def test_num_variables_cannot_undercount(self):
        formula = CNF([[1, -4]])
        with pytest.raises(ValueError):
            formula.num_variables = 2

    def test_copy_is_independent(self):
        formula = CNF([[1, 2]], name="orig")
        duplicate = formula.copy()
        duplicate.add_clause([3])
        assert formula.num_clauses == 1
        assert duplicate.num_clauses == 2
        assert duplicate.name == "orig"

    def test_accepts_clause_objects(self):
        clause = Clause([1, -2])
        formula = CNF()
        assert formula.add_clause(clause) is clause


class TestAccessors:
    def test_variables_lists_referenced_only(self):
        formula = CNF([[1, -5]], num_variables=9)
        assert formula.variables() == [1, 5]

    def test_literal_count(self):
        assert CNF([[1, 2], [3]]).literal_count() == 3

    def test_two_input_operation_count(self):
        # (a | ~b) & (c): one OR (1 op) + one inverter + conjunction of 2 clauses (1 op).
        formula = CNF([[1, -2], [3]])
        assert formula.two_input_operation_count() == 1 + 1 + 1

    def test_iteration_and_len(self):
        formula = CNF([[1], [2]])
        assert len(formula) == 2
        assert [clause.literals for clause in formula] == [(1,), (2,)]


class TestEvaluation:
    def test_evaluate_single(self, tiny_sat_formula):
        assert tiny_sat_formula.evaluate({1: False, 2: True, 3: False})
        assert not tiny_sat_formula.evaluate({1: True, 2: False, 3: False})

    def test_evaluate_batch_matches_single(self, tiny_sat_formula):
        matrix = all_assignments(3)
        batch = tiny_sat_formula.evaluate_batch(matrix)
        for row in range(matrix.shape[0]):
            assignment = {i + 1: bool(matrix[row, i]) for i in range(3)}
            assert batch[row] == tiny_sat_formula.evaluate(assignment)

    def test_known_model_count(self, tiny_sat_formula):
        matrix = all_assignments(3)
        assert int(tiny_sat_formula.evaluate_batch(matrix).sum()) == 4

    def test_evaluate_batch_rejects_narrow_matrix(self, tiny_sat_formula):
        with pytest.raises(ValueError):
            tiny_sat_formula.evaluate_batch(np.zeros((2, 2), dtype=bool))

    def test_unsatisfied_clause_counts(self, tiny_sat_formula):
        matrix = all_assignments(3)
        counts = tiny_sat_formula.unsatisfied_clause_counts(matrix)
        satisfied = tiny_sat_formula.evaluate_batch(matrix)
        assert np.array_equal(counts == 0, satisfied)

    def test_unsat_formula_has_no_models(self, tiny_unsat_formula):
        matrix = all_assignments(1)
        assert not tiny_unsat_formula.evaluate_batch(matrix).any()


class TestEquality:
    def test_equal_formulas(self):
        assert CNF([[1, 2]]) == CNF([[1, 2]])

    def test_different_clauses(self):
        assert CNF([[1, 2]]) != CNF([[1, -2]])

    def test_repr_contains_counts(self):
        text = repr(CNF([[1, 2]], name="x"))
        assert "vars=2" in text and "clauses=1" in text
