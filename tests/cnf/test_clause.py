"""Tests for repro.cnf.clause."""

import pytest

from repro.cnf.clause import Clause, literal_is_positive, literal_variable, negate_literal


class TestLiteralHelpers:
    def test_literal_variable(self):
        assert literal_variable(5) == 5
        assert literal_variable(-7) == 7

    def test_literal_is_positive(self):
        assert literal_is_positive(3)
        assert not literal_is_positive(-3)

    def test_negate_literal(self):
        assert negate_literal(4) == -4
        assert negate_literal(-4) == 4

    def test_zero_rejected(self):
        for helper in (literal_variable, literal_is_positive, negate_literal):
            with pytest.raises(ValueError):
                helper(0)


class TestClauseConstruction:
    def test_duplicates_removed(self):
        assert Clause([1, 1, -2]).literals == (1, -2)

    def test_zero_literal_rejected(self):
        with pytest.raises(ValueError):
            Clause([1, 0, 2])

    def test_empty_clause(self):
        clause = Clause([])
        assert clause.is_empty
        assert len(clause) == 0

    def test_immutability(self):
        clause = Clause([1])
        with pytest.raises(AttributeError):
            clause._literals = (2,)

    def test_variables_sorted(self):
        assert Clause([-5, 2, -3]).variables == (2, 3, 5)


class TestClauseProperties:
    def test_is_unit(self):
        assert Clause([7]).is_unit
        assert not Clause([7, 8]).is_unit

    def test_is_tautology(self):
        assert Clause([1, -1, 2]).is_tautology
        assert not Clause([1, 2]).is_tautology

    def test_contains(self):
        clause = Clause([1, -2])
        assert clause.contains(1)
        assert clause.contains(-2)
        assert not clause.contains(2)


class TestClauseEvaluation:
    def test_evaluate_complete(self):
        clause = Clause([1, -2])
        assert clause.evaluate({1: True, 2: True})
        assert clause.evaluate({1: False, 2: False})
        assert not clause.evaluate({1: False, 2: True})

    def test_evaluate_partial(self):
        clause = Clause([1, -2])
        assert clause.evaluate_partial({1: True}) == "sat"
        assert clause.evaluate_partial({1: False}) == "undetermined"
        assert clause.evaluate_partial({1: False, 2: True}) == "unsat"


class TestClauseTransforms:
    def test_without_literal(self):
        assert Clause([1, -2, 3]).without_literal(-2) == Clause([1, 3])

    def test_remap(self):
        clause = Clause([1, -2])
        assert clause.remap({1: 10, 2: 20}) == Clause([10, -20])

    def test_equality_and_hash_ignore_order(self):
        assert Clause([1, 2]) == Clause([2, 1])
        assert hash(Clause([1, 2])) == hash(Clause([2, 1]))
        assert Clause([1, 2]) != Clause([1, -2])
