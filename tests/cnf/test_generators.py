"""Tests for the random CNF generators (repro.cnf.generators)."""

import numpy as np
import pytest

from repro.cnf.generators import planted_ksat, planted_solution, random_horn, random_ksat


class TestRandomKSat:
    def test_shape(self):
        formula = random_ksat(20, 50, k=3, seed=0)
        assert formula.num_variables == 20
        assert formula.num_clauses == 50
        assert all(len(clause) <= 3 for clause in formula)

    def test_determinism(self):
        a = random_ksat(10, 20, seed=5)
        b = random_ksat(10, 20, seed=5)
        assert [c.literals for c in a] == [c.literals for c in b]

    def test_distinct_variables_per_clause(self):
        formula = random_ksat(10, 40, k=3, seed=1)
        for clause in formula:
            assert len(clause.variables) == len(clause)

    def test_k_larger_than_variables_rejected(self):
        with pytest.raises(ValueError):
            random_ksat(2, 5, k=3)


class TestPlantedKSat:
    def test_planted_solution_satisfies(self):
        formula = planted_ksat(25, 100, seed=3)
        witness = planted_solution(formula)
        assert witness is not None
        assert formula.evaluate_batch(witness[None, :])[0]

    def test_planted_comment_present(self):
        formula = planted_ksat(10, 20, seed=0)
        assert any(comment.startswith("planted") for comment in formula.comments)

    def test_no_planted_comment_returns_none(self):
        formula = random_ksat(10, 20, seed=0)
        assert planted_solution(formula) is None

    def test_determinism(self):
        a = planted_ksat(12, 30, seed=9)
        b = planted_ksat(12, 30, seed=9)
        assert [c.literals for c in a] == [c.literals for c in b]
        assert np.array_equal(planted_solution(a), planted_solution(b))


class TestRandomHorn:
    def test_horn_property(self):
        formula = random_horn(15, 60, seed=2)
        for clause in formula:
            positives = [literal for literal in clause if literal > 0]
            assert len(positives) <= 1

    def test_clause_count(self):
        assert random_horn(10, 25, seed=1).num_clauses == 25
