"""Tests for repro.cnf.assignment."""

import numpy as np
import pytest

from repro.cnf.assignment import Assignment


class TestConstruction:
    def test_from_dict(self):
        assignment = Assignment({1: True, 2: False})
        assert assignment[1] is True
        assert assignment[2] is False

    def test_from_vector(self):
        assignment = Assignment.from_vector([True, False, True])
        assert assignment.to_literals() == (1, -2, 3)

    def test_from_literals(self):
        assignment = Assignment.from_literals([3, -1])
        assert assignment[3] is True
        assert assignment[1] is False

    def test_from_literals_zero_rejected(self):
        with pytest.raises(ValueError):
            Assignment.from_literals([0])

    def test_invalid_variable_index(self):
        with pytest.raises(ValueError):
            Assignment({0: True})


class TestMutation:
    def test_set_and_unset(self):
        assignment = Assignment()
        assignment.set(4, True)
        assert 4 in assignment
        assignment.unset(4)
        assert 4 not in assignment

    def test_len_and_iter(self):
        assignment = Assignment({1: True, 3: False})
        assert len(assignment) == 2
        assert sorted(assignment) == [1, 3]


class TestQueries:
    def test_get_with_default(self):
        assignment = Assignment({1: True})
        assert assignment.get(1) is True
        assert assignment.get(2) is None
        assert assignment.get(2, False) is False

    def test_satisfies_literal(self):
        assignment = Assignment({1: True, 2: False})
        assert assignment.satisfies_literal(1) is True
        assert assignment.satisfies_literal(-1) is False
        assert assignment.satisfies_literal(-2) is True
        assert assignment.satisfies_literal(3) is None

    def test_is_complete(self):
        assignment = Assignment({1: True, 2: False})
        assert assignment.is_complete(2)
        assert not assignment.is_complete(3)


class TestConversion:
    def test_to_vector(self):
        assignment = Assignment({1: True, 3: True})
        vector = assignment.to_vector(4)
        assert np.array_equal(vector, [True, False, True, False])

    def test_to_vector_ignores_out_of_range(self):
        assignment = Assignment({5: True})
        assert not assignment.to_vector(3).any()

    def test_to_dict_roundtrip(self):
        values = {1: True, 2: False, 7: True}
        assert Assignment(values).to_dict() == values

    def test_equality(self):
        assert Assignment({1: True}) == Assignment({1: True})
        assert Assignment({1: True}) != Assignment({1: False})
