"""Tests for CNF preprocessing (repro.cnf.simplify)."""

from repro.cnf.formula import CNF
from repro.cnf.simplify import (
    deduplicate_clauses,
    pure_literal_eliminate,
    remove_tautologies,
    restrict,
    simplify_formula,
    unit_propagate,
)


class TestUnitPropagation:
    def test_simple_chain(self):
        formula = CNF([[1], [-1, 2], [-2, 3]])
        result = unit_propagate(formula)
        assert not result.conflict
        assert result.forced == {1: True, 2: True, 3: True}
        assert result.formula.num_clauses == 0

    def test_conflict_detected(self):
        formula = CNF([[1], [-1]])
        assert unit_propagate(formula).conflict

    def test_clause_reduction(self):
        formula = CNF([[1], [-1, 2, 3]])
        result = unit_propagate(formula)
        assert result.forced == {1: True}
        # The second clause loses nothing (it is satisfied? no: -1 falsified, 2/3 stay).
        assert result.formula.num_clauses == 1
        assert result.formula.clauses[0].literals == (2, 3)

    def test_no_units_is_identity(self):
        formula = CNF([[1, 2], [-1, 3]])
        result = unit_propagate(formula)
        assert result.forced == {}
        assert result.formula.num_clauses == 2


class TestPureLiteralElimination:
    def test_pure_positive(self):
        formula = CNF([[1, 2], [1, -3], [3, -2]])
        result = pure_literal_eliminate(formula)
        assert result.forced[1] is True
        assert result.formula.num_clauses == 1

    def test_pure_negative(self):
        formula = CNF([[-4, 1], [-4, -1]])
        result = pure_literal_eliminate(formula)
        assert result.forced[4] is False
        assert result.formula.num_clauses == 0

    def test_mixed_variable_untouched(self):
        formula = CNF([[1, 2], [-1, 2]])
        result = pure_literal_eliminate(formula)
        assert 1 not in result.forced
        assert result.forced[2] is True


class TestSimplifyFormula:
    def test_fixed_point(self, fig1_formula):
        result = simplify_formula(fig1_formula)
        assert not result.conflict
        # The unit clause x10 and the pure literals make the residual small.
        assert result.formula.num_clauses < fig1_formula.num_clauses

    def test_conflict_propagates(self):
        formula = CNF([[1], [-1, 2], [-2], [1, 2]])
        assert simplify_formula(formula).conflict

    def test_forced_assignments_are_consistent(self, fig1_formula):
        result = simplify_formula(fig1_formula)
        assert result.forced.get(10) is True


class TestHelpers:
    def test_remove_tautologies(self):
        formula = CNF([[1, -1, 2], [2, 3]])
        assert remove_tautologies(formula).num_clauses == 1

    def test_deduplicate_clauses(self):
        formula = CNF([[1, 2], [2, 1], [3]])
        assert deduplicate_clauses(formula).num_clauses == 2

    def test_restrict_satisfied_clause_removed(self):
        formula = CNF([[1, 2], [-1, 3]])
        residual = restrict(formula, {1: True})
        assert residual is not None
        assert [c.literals for c in residual] == [(3,)]

    def test_restrict_conflict_returns_none(self):
        formula = CNF([[1], [2]])
        assert restrict(formula, {1: False}) is None
