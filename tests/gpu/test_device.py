"""Tests for the execution-device abstraction (repro.gpu.device)."""

import numpy as np
import pytest

from repro.gpu.device import Device, DeviceKind, get_device, split_batch


class TestDevice:
    def test_default_is_full_batch_gpu(self):
        device = Device()
        assert device.kind == DeviceKind.GPU_SIM
        assert device.is_parallel

    def test_cpu_chunks_one_sample_at_a_time(self):
        device = Device(DeviceKind.CPU)
        assert list(device.chunks(3)) == [(0, 1), (1, 2), (2, 3)]
        assert not device.is_parallel

    def test_gpu_single_chunk(self):
        assert list(Device().chunks(100)) == [(0, 100)]

    def test_explicit_chunk_size(self):
        device = Device(DeviceKind.GPU_SIM, chunk_size=40)
        assert list(device.chunks(100)) == [(0, 40), (40, 80), (80, 100)]
        assert not device.is_parallel

    def test_empty_batch(self):
        assert list(Device().chunks(0)) == []

    def test_describe(self):
        assert "vectorised" in Device().describe()
        assert "scalar" in Device(DeviceKind.CPU).describe()
        assert "chunked" in Device(DeviceKind.GPU_SIM, chunk_size=8).describe()


class TestGetDevice:
    @pytest.mark.parametrize("name", ["gpu", "gpu-sim", "cuda", "vectorized"])
    def test_gpu_aliases(self, name):
        assert get_device(name).kind == DeviceKind.GPU_SIM

    @pytest.mark.parametrize("name", ["cpu", "scalar", "loop"])
    def test_cpu_aliases(self, name):
        assert get_device(name).kind == DeviceKind.CPU

    def test_unknown_device(self):
        with pytest.raises(ValueError):
            get_device("tpu")


class TestSplitBatch:
    def test_covers_all_rows(self):
        matrix = np.arange(10).reshape(5, 2)
        chunks = list(split_batch(matrix, Device(DeviceKind.CPU)))
        assert len(chunks) == 5
        assert np.array_equal(np.vstack(chunks), matrix)

    def test_gpu_single_chunk(self):
        matrix = np.zeros((7, 3))
        chunks = list(split_batch(matrix, Device()))
        assert len(chunks) == 1
        assert chunks[0].shape == (7, 3)


class TestChunkEdgeCases:
    """Regression tests for the chunk-size edge cases fixed in the backend refactor."""

    def test_chunk_size_larger_than_batch_is_one_span(self):
        device = Device(DeviceKind.GPU_SIM, chunk_size=4096)
        assert list(device.chunks(100)) == [(0, 100)]
        assert device.num_launches(100) == 1

    def test_cpu_chunk_size_larger_than_batch(self):
        device = Device(DeviceKind.CPU, chunk_size=64)
        assert list(device.chunks(10)) == [(0, 10)]

    def test_zero_size_batch_yields_nothing(self):
        for device in (Device(), Device(DeviceKind.CPU), Device(chunk_size=7)):
            assert list(device.chunks(0)) == []
            assert device.num_launches(0) == 0

    def test_negative_batch_yields_nothing(self):
        assert list(Device().chunks(-5)) == []

    def test_negative_chunk_size_rejected(self):
        with pytest.raises(ValueError):
            Device(DeviceKind.GPU_SIM, chunk_size=-1)

    def test_split_batch_empty_matrix(self):
        matrix = np.zeros((0, 3), dtype=bool)
        assert list(split_batch(matrix, Device(DeviceKind.CPU))) == []

    def test_chunk_size_equal_to_batch(self):
        device = Device(DeviceKind.GPU_SIM, chunk_size=8)
        assert list(device.chunks(8)) == [(0, 8)]

    def test_num_launches_counts_spans(self):
        assert Device(DeviceKind.GPU_SIM, chunk_size=40).num_launches(100) == 3
        assert Device(DeviceKind.CPU).num_launches(5) == 5


class TestDeviceBackend:
    def test_default_inherits_active_backend(self):
        import repro.xp as xp

        assert Device().backend() is xp.active_backend()

    def test_explicit_backend_resolved_lazily(self):
        import repro.xp as xp

        device = Device(DeviceKind.GPU_SIM, array_backend="numpy:float32")
        assert device.backend().float_dtype == np.float32
        assert device.backend() is xp.get_backend("numpy:float32")

    def test_invalid_backend_spec_rejected_at_construction(self):
        with pytest.raises(ValueError):
            Device(DeviceKind.GPU_SIM, array_backend="no-such-backend")

    def test_get_device_accepts_array_backend(self):
        device = get_device("gpu-sim", array_backend="numpy")
        assert device.array_backend == "numpy"
        assert device.backend().is_numpy

    def test_describe_mentions_backend(self):
        device = Device(DeviceKind.GPU_SIM, array_backend="numpy")
        assert "backend=numpy" in device.describe()
