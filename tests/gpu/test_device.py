"""Tests for the execution-device abstraction (repro.gpu.device)."""

import numpy as np
import pytest

from repro.gpu.device import Device, DeviceKind, get_device, split_batch


class TestDevice:
    def test_default_is_full_batch_gpu(self):
        device = Device()
        assert device.kind == DeviceKind.GPU_SIM
        assert device.is_parallel

    def test_cpu_chunks_one_sample_at_a_time(self):
        device = Device(DeviceKind.CPU)
        assert list(device.chunks(3)) == [(0, 1), (1, 2), (2, 3)]
        assert not device.is_parallel

    def test_gpu_single_chunk(self):
        assert list(Device().chunks(100)) == [(0, 100)]

    def test_explicit_chunk_size(self):
        device = Device(DeviceKind.GPU_SIM, chunk_size=40)
        assert list(device.chunks(100)) == [(0, 40), (40, 80), (80, 100)]
        assert not device.is_parallel

    def test_empty_batch(self):
        assert list(Device().chunks(0)) == []

    def test_describe(self):
        assert "vectorised" in Device().describe()
        assert "scalar" in Device(DeviceKind.CPU).describe()
        assert "chunked" in Device(DeviceKind.GPU_SIM, chunk_size=8).describe()


class TestGetDevice:
    @pytest.mark.parametrize("name", ["gpu", "gpu-sim", "cuda", "vectorized"])
    def test_gpu_aliases(self, name):
        assert get_device(name).kind == DeviceKind.GPU_SIM

    @pytest.mark.parametrize("name", ["cpu", "scalar", "loop"])
    def test_cpu_aliases(self, name):
        assert get_device(name).kind == DeviceKind.CPU

    def test_unknown_device(self):
        with pytest.raises(ValueError):
            get_device("tpu")


class TestSplitBatch:
    def test_covers_all_rows(self):
        matrix = np.arange(10).reshape(5, 2)
        chunks = list(split_batch(matrix, Device(DeviceKind.CPU)))
        assert len(chunks) == 5
        assert np.array_equal(np.vstack(chunks), matrix)

    def test_gpu_single_chunk(self):
        matrix = np.zeros((7, 3))
        chunks = list(split_batch(matrix, Device()))
        assert len(chunks) == 1
        assert chunks[0].shape == (7, 3)
