"""Tests for the analytic GPU-memory model (repro.gpu.memory)."""

import pytest

from repro.circuit.builder import CircuitBuilder
from repro.gpu.memory import MemoryModel, estimate_training_memory


def _circuit(num_gates: int):
    builder = CircuitBuilder("mem")
    a, b = builder.inputs(2)
    net = builder.and_(a, b)
    for _ in range(num_gates - 1):
        net = builder.or_(net, a)
    builder.output(net)
    return builder.circuit


class TestMemoryModel:
    def test_components_add_up(self):
        model = MemoryModel(batch_size=10, num_inputs=4, num_gate_activations=6)
        assert model.total_bytes == model.activation_bytes + model.gradient_bytes + model.parameter_bytes

    def test_linear_in_batch_size(self):
        small = MemoryModel(batch_size=100, num_inputs=8, num_gate_activations=20)
        large = MemoryModel(batch_size=1000, num_inputs=8, num_gate_activations=20)
        assert large.total_bytes == 10 * small.total_bytes

    def test_grows_with_circuit_size(self):
        small = MemoryModel(batch_size=100, num_inputs=8, num_gate_activations=10)
        large = MemoryModel(batch_size=100, num_inputs=8, num_gate_activations=1000)
        assert large.total_mb > small.total_mb

    def test_total_mb_includes_overhead(self):
        model = MemoryModel(batch_size=1, num_inputs=1, num_gate_activations=1)
        assert model.total_mb > model.framework_overhead_mb


class TestEstimateTrainingMemory:
    def test_uses_circuit_statistics(self):
        small = estimate_training_memory(_circuit(5), batch_size=64)
        large = estimate_training_memory(_circuit(50), batch_size=64)
        assert large.num_gate_activations > small.num_gate_activations
        assert large.total_mb > small.total_mb

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            estimate_training_memory(_circuit(3), batch_size=0)

    def test_fig3_shape_monotone_in_batch(self):
        circuit = _circuit(20)
        estimates = [
            estimate_training_memory(circuit, batch).total_mb
            for batch in (100, 1000, 10_000, 100_000)
        ]
        assert all(later > earlier for earlier, later in zip(estimates, estimates[1:]))
