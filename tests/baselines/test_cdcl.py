"""Tests for the CDCL solver (repro.baselines.cdcl)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.cdcl import CDCLSolver, _luby
from repro.baselines.dpll import DPLLSolver
from repro.cnf.formula import CNF
from repro.cnf.generators import planted_ksat, random_ksat


class TestLuby:
    def test_prefix(self):
        assert [_luby(i) for i in range(9)] == [1, 1, 2, 1, 1, 2, 4, 1, 1]


class TestBasicSolving:
    def test_sat(self, tiny_sat_formula):
        result = CDCLSolver(tiny_sat_formula, seed=0).solve()
        assert result.status == "sat"
        assert tiny_sat_formula.evaluate_batch(result.assignment[None, :])[0]

    def test_unsat(self, tiny_unsat_formula):
        assert CDCLSolver(tiny_unsat_formula, seed=0).solve().status == "unsat"

    def test_empty_clause(self):
        formula = CNF([[]], num_variables=1)
        assert CDCLSolver(formula).solve().status == "unsat"

    def test_fig1(self, fig1_formula):
        result = CDCLSolver(fig1_formula, seed=0).solve()
        assert result.status == "sat"
        assert fig1_formula.evaluate_batch(result.assignment[None, :])[0]

    def test_unit_clauses_propagated(self):
        formula = CNF([[1], [-1, 2], [-2, 3]], num_variables=3)
        result = CDCLSolver(formula, seed=0).solve()
        assert result.status == "sat"
        assert result.assignment.tolist() == [True, True, True]

    def test_pigeonhole_unsat(self):
        """3 pigeons in 2 holes is unsatisfiable and needs real conflict analysis."""
        # Variables p_{i,j} = pigeon i in hole j, numbered 1..6.
        def var(i, j):
            return i * 2 + j + 1
        clauses = []
        for i in range(3):
            clauses.append([var(i, 0), var(i, 1)])
        for j in range(2):
            for i in range(3):
                for k in range(i + 1, 3):
                    clauses.append([-var(i, j), -var(k, j)])
        formula = CNF(clauses, num_variables=6)
        result = CDCLSolver(formula, seed=0).solve()
        assert result.status == "unsat"
        assert result.conflicts > 0

    def test_statistics_recorded(self):
        formula = planted_ksat(30, 120, seed=1)
        result = CDCLSolver(formula, seed=1).solve()
        assert result.status == "sat"
        assert result.propagations > 0


class TestAssumptionsAndBudget:
    def test_assumptions_respected(self, tiny_sat_formula):
        result = CDCLSolver(tiny_sat_formula, seed=0).solve(assumptions=[-1, 2])
        assert result.status == "sat"
        assert not result.assignment[0]
        assert result.assignment[1]

    def test_conflicting_assumptions(self, tiny_sat_formula):
        result = CDCLSolver(tiny_sat_formula, seed=0).solve(assumptions=[1, -1])
        assert result.status == "unsat"

    def test_conflict_budget_returns_unknown(self):
        # A formula hard enough to require at least one conflict.
        def var(i, j):
            return i * 3 + j + 1
        clauses = []
        for i in range(4):
            clauses.append([var(i, j) for j in range(3)])
        for j in range(3):
            for i in range(4):
                for k in range(i + 1, 4):
                    clauses.append([-var(i, j), -var(k, j)])
        formula = CNF(clauses, num_variables=12)
        result = CDCLSolver(formula, seed=0, max_conflicts=1).solve()
        assert result.status in ("unknown", "unsat")

    def test_repeated_solves_are_consistent(self, fig1_formula):
        solver = CDCLSolver(fig1_formula, seed=0, random_polarity=True)
        for _ in range(5):
            result = solver.solve()
            assert result.status == "sat"
            assert fig1_formula.evaluate_batch(result.assignment[None, :])[0]


class TestAgainstDPLL:
    @given(st.integers(0, 1000))
    @settings(max_examples=25, deadline=None)
    def test_agrees_with_dpll_on_random_3sat(self, seed):
        formula = random_ksat(12, 50, k=3, seed=seed)
        cdcl_result = CDCLSolver(formula, seed=seed).solve()
        dpll_model = DPLLSolver(formula).solve()
        assert (cdcl_result.status == "sat") == (dpll_model is not None)
        if cdcl_result.status == "sat":
            assert formula.evaluate_batch(cdcl_result.assignment[None, :])[0]

    def test_random_polarity_still_sound(self):
        for seed in range(5):
            formula = planted_ksat(25, 90, seed=seed)
            result = CDCLSolver(
                formula, seed=seed, random_polarity=True, random_decision_rate=0.5
            ).solve()
            assert result.status == "sat"
            assert formula.evaluate_batch(result.assignment[None, :])[0]
