"""Tests for WalkSAT (repro.baselines.walksat)."""

import numpy as np
import pytest

from repro.baselines.walksat import WalkSATSolver
from repro.cnf.formula import CNF
from repro.cnf.generators import planted_ksat, planted_solution


class TestWalkSAT:
    def test_solves_planted_instances(self):
        for seed in range(3):
            formula = planted_ksat(25, 80, seed=seed)
            model = WalkSATSolver(formula, seed=seed).solve()
            assert model is not None
            assert formula.evaluate_batch(model[None, :])[0]

    def test_solves_fig1(self, fig1_formula):
        model = WalkSATSolver(fig1_formula, seed=0).solve()
        assert model is not None
        assert fig1_formula.evaluate_batch(model[None, :])[0]

    def test_initial_assignment_used(self):
        formula = planted_ksat(20, 60, seed=4)
        witness = planted_solution(formula)
        model = WalkSATSolver(formula, seed=0, max_flips=1).solve(initial=witness)
        assert model is not None
        assert np.array_equal(model, witness)

    def test_failure_returns_none(self, tiny_unsat_formula):
        assert WalkSATSolver(tiny_unsat_formula, seed=0, max_flips=50, max_restarts=2).solve() is None

    def test_invalid_noise_rejected(self, tiny_sat_formula):
        with pytest.raises(ValueError):
            WalkSATSolver(tiny_sat_formula, noise=1.5)

    def test_zero_noise_greedy_walk(self):
        formula = planted_ksat(15, 40, seed=7)
        model = WalkSATSolver(formula, seed=7, noise=0.0).solve()
        assert model is not None
        assert formula.evaluate_batch(model[None, :])[0]

    def test_deterministic_given_seed(self):
        formula = planted_ksat(15, 45, seed=9)
        first = WalkSATSolver(formula, seed=1).solve()
        second = WalkSATSolver(formula, seed=1).solve()
        assert np.array_equal(first, second)
