"""Tests for the DPLL solver (repro.baselines.dpll)."""

import numpy as np

from repro.baselines.dpll import DPLLSolver
from repro.cnf.formula import CNF
from repro.cnf.generators import planted_ksat, planted_solution


class TestSolve:
    def test_sat_instance(self, tiny_sat_formula):
        model = DPLLSolver(tiny_sat_formula).solve()
        assert model is not None
        assert tiny_sat_formula.evaluate_batch(model[None, :])[0]

    def test_unsat_instance(self, tiny_unsat_formula):
        assert DPLLSolver(tiny_unsat_formula).solve() is None

    def test_fig1_instance(self, fig1_formula):
        model = DPLLSolver(fig1_formula).solve()
        assert model is not None
        assert fig1_formula.evaluate_batch(model[None, :])[0]

    def test_planted_instances(self):
        for seed in range(3):
            formula = planted_ksat(20, 70, seed=seed)
            model = DPLLSolver(formula).solve()
            assert model is not None
            assert formula.evaluate_batch(model[None, :])[0]

    def test_randomized_solve_still_valid(self, fig1_formula):
        model = DPLLSolver(fig1_formula, seed=3).solve(randomize=True)
        assert model is not None
        assert fig1_formula.evaluate_batch(model[None, :])[0]

    def test_empty_clause_unsat(self):
        formula = CNF([[]], num_variables=1)
        assert DPLLSolver(formula).solve() is None


class TestEnumeration:
    def test_tiny_model_count(self, tiny_sat_formula):
        assert DPLLSolver(tiny_sat_formula).count_models() == 4

    def test_fig1_model_count(self, fig1_formula):
        assert DPLLSolver(fig1_formula).count_models() == 32

    def test_all_enumerated_models_valid_and_distinct(self, tiny_sat_formula):
        models = list(DPLLSolver(tiny_sat_formula).enumerate_models())
        matrix = np.stack(models)
        assert tiny_sat_formula.evaluate_batch(matrix).all()
        assert len({tuple(m.tolist()) for m in models}) == len(models)

    def test_enumeration_limit(self, fig1_formula):
        models = list(DPLLSolver(fig1_formula).enumerate_models(limit=5))
        assert len(models) == 5

    def test_unsat_enumeration_empty(self, tiny_unsat_formula):
        assert DPLLSolver(tiny_unsat_formula).count_models() == 0

    def test_free_variables_expanded(self):
        formula = CNF([[1]], num_variables=3)
        assert DPLLSolver(formula).count_models() == 4
