"""Tests for the four CNF-level sampler baselines."""

import numpy as np
import pytest

from repro.baselines import (
    CMSGenStyleSampler,
    DiffSamplerStyleSampler,
    QuickSamplerStyleSampler,
    UniGenStyleSampler,
)
from repro.baselines.base import SamplerOutput
from repro.baselines.dpll import DPLLSolver
from repro.cnf.formula import CNF
from repro.cnf.generators import planted_ksat

ALL_SAMPLERS = [
    CMSGenStyleSampler,
    UniGenStyleSampler,
    QuickSamplerStyleSampler,
    DiffSamplerStyleSampler,
]


@pytest.fixture(scope="module")
def medium_formula():
    return planted_ksat(25, 80, seed=11)


class TestCommonBehaviour:
    @pytest.mark.parametrize("sampler_class", ALL_SAMPLERS)
    def test_solutions_are_valid_and_unique(self, sampler_class, medium_formula):
        sampler = sampler_class(seed=0)
        output = sampler.sample(medium_formula, num_solutions=20, timeout_seconds=30)
        assert isinstance(output, SamplerOutput)
        matrix = output.solution_matrix()
        assert output.num_unique == matrix.shape[0]
        if matrix.shape[0]:
            assert medium_formula.evaluate_batch(matrix).all()
            packed = {row.tobytes() for row in np.packbits(matrix, axis=1)}
            assert len(packed) == matrix.shape[0]

    @pytest.mark.parametrize("sampler_class", ALL_SAMPLERS)
    def test_reaches_target_on_easy_instance(self, sampler_class, medium_formula):
        output = sampler_class(seed=1).sample(
            medium_formula, num_solutions=10, timeout_seconds=30
        )
        assert output.num_unique >= 10

    @pytest.mark.parametrize("sampler_class", ALL_SAMPLERS)
    def test_throughput_positive(self, sampler_class, medium_formula):
        output = sampler_class(seed=2).sample(
            medium_formula, num_solutions=5, timeout_seconds=30
        )
        assert output.throughput > 0

    @pytest.mark.parametrize("sampler_class", ALL_SAMPLERS)
    def test_fig1_sampling(self, sampler_class, fig1_formula):
        output = sampler_class(seed=0).sample(
            fig1_formula, num_solutions=10, timeout_seconds=30
        )
        assert output.num_unique > 0
        assert fig1_formula.evaluate_batch(output.solution_matrix()).all()

    @pytest.mark.parametrize("sampler_class", ALL_SAMPLERS)
    def test_unsat_instance_returns_empty(self, sampler_class, tiny_unsat_formula):
        output = sampler_class(seed=0).sample(
            tiny_unsat_formula, num_solutions=5, timeout_seconds=10
        )
        assert output.num_unique == 0


class TestCMSGenStyle:
    def test_randomised_runs_produce_diverse_solutions(self, medium_formula):
        output = CMSGenStyleSampler(seed=3).sample(medium_formula, num_solutions=15, timeout_seconds=30)
        matrix = output.solution_matrix()
        assert matrix.shape[0] >= 10
        # Diversity: not all solutions agree on every variable.
        assert (matrix.std(axis=0) > 0).any()


class TestUniGenStyle:
    def test_hash_count_adapts(self, medium_formula):
        sampler = UniGenStyleSampler(seed=4, initial_hashes=6, pivot=8)
        output = sampler.sample(medium_formula, num_solutions=8, timeout_seconds=30)
        assert "final_hash_count" in output.extra
        assert output.num_unique > 0

    def test_xor_encoding_preserves_original_solutions(self, tiny_sat_formula):
        sampler = UniGenStyleSampler(seed=0)
        hashed = sampler._hashed_formula(tiny_sat_formula, np.random.default_rng(0), 1)
        # Every solution of the hashed formula must project to a solution of the original.
        for model in DPLLSolver(hashed).enumerate_models(limit=64):
            projected = model[: tiny_sat_formula.num_variables]
            assert tiny_sat_formula.evaluate_batch(projected[None, :])[0]


class TestQuickSamplerStyle:
    def test_mutation_count_recorded(self, medium_formula):
        output = QuickSamplerStyleSampler(seed=5, max_mutations=16).sample(
            medium_formula, num_solutions=10, timeout_seconds=30
        )
        assert output.extra["num_mutations"] >= 0
        assert output.num_unique >= 1


class TestDiffSamplerStyle:
    def test_loss_decreases_enough_to_find_solutions(self, medium_formula):
        output = DiffSamplerStyleSampler(seed=6, batch_size=64, iterations=30).sample(
            medium_formula, num_solutions=10, timeout_seconds=30
        )
        assert output.num_unique >= 10

    def test_invalid_hyperparameters(self):
        with pytest.raises(ValueError):
            DiffSamplerStyleSampler(batch_size=0)

    def test_gradient_matches_finite_difference(self, tiny_sat_formula):
        sampler = DiffSamplerStyleSampler(seed=0)
        variable_index, positive, mask = sampler._pad_clauses(tiny_sat_formula)
        rng = np.random.default_rng(0)
        probabilities = rng.uniform(0.2, 0.8, size=(1, tiny_sat_formula.num_variables))
        _, grad = sampler._loss_and_grad(probabilities, variable_index, positive, mask)
        epsilon = 1e-6
        for column in range(tiny_sat_formula.num_variables):
            plus = probabilities.copy()
            minus = probabilities.copy()
            plus[0, column] += epsilon
            minus[0, column] -= epsilon
            loss_plus, _ = sampler._loss_and_grad(plus, variable_index, positive, mask)
            loss_minus, _ = sampler._loss_and_grad(minus, variable_index, positive, mask)
            numeric = (loss_plus[0] - loss_minus[0]) / (2 * epsilon)
            assert np.isclose(grad[0, column], numeric, atol=1e-4)
