"""Tests for Quine-McCluskey minimization (repro.boolalg.quine_mccluskey)."""

import pytest

from repro.boolalg.expr import And, FALSE, Not, Or, TRUE, Var
from repro.boolalg.quine_mccluskey import (
    minimize_expr,
    minimize_minterms,
    prime_implicants,
)
from repro.boolalg.truth_table import equivalent, minterms as expr_minterms


class TestPrimeImplicants:
    def test_full_cover_single_implicant(self):
        primes = prime_implicants([0, 1, 2, 3], num_vars=2)
        assert primes == [()]  # the empty implicant covers everything

    def test_classic_example(self):
        # f(a,b,c) with on-set {0,1,2,5,6,7}: known to have prime implicants
        primes = prime_implicants([0, 1, 2, 5, 6, 7], num_vars=3)
        assert len(primes) >= 4

    def test_single_minterm(self):
        primes = prime_implicants([5], num_vars=3)
        assert primes == [((0, 1), (1, 0), (2, 1))]


class TestMinimizeMinterms:
    def test_empty_on_set(self):
        assert minimize_minterms([], ["a", "b"]) == FALSE

    def test_full_on_set(self):
        assert minimize_minterms([0, 1, 2, 3], ["a", "b"]) == TRUE

    def test_single_variable_projection(self):
        # On-set where the function equals variable b (bit 1).
        result = minimize_minterms([2, 3], ["a", "b"])
        assert result == Var("b")

    def test_equivalence_preserved(self):
        names = ["a", "b", "c"]
        on_set = [1, 3, 5, 6]
        result = minimize_minterms(on_set, names)
        recovered, _ = expr_minterms(result, over=names)
        assert recovered == sorted(on_set)


class TestMinimizeExpr:
    def test_absorbs_redundant_terms(self):
        a, b, c = Var("a"), Var("b"), Var("c")
        expr = Or(And(a, b), And(a, b, c))
        assert minimize_expr(expr) == And(a, b)

    def test_no_support_returned_unchanged(self):
        assert minimize_expr(TRUE) == TRUE

    def test_wide_support_rejected(self):
        wide = Or(*(Var(f"v{i}") for i in range(13)))
        with pytest.raises(ValueError):
            minimize_expr(wide, max_vars=12)

    def test_equivalence_on_random_style_functions(self):
        a, b, c, d = (Var(n) for n in "abcd")
        expressions = [
            Or(And(a, b), And(Not(a), c)),
            Or(And(a, b, c), And(a, b, d), And(a, b, Not(c), Not(d))),
            And(Or(a, b), Or(Not(a), c)),
        ]
        for expr in expressions:
            assert equivalent(minimize_expr(expr), expr)

    def test_result_is_two_level(self):
        a, b, c = Var("a"), Var("b"), Var("c")
        result = minimize_expr(Or(And(a, Or(b, c)), And(Not(a), b)))
        # A sum-of-products has depth at most 2 (Or of Ands of literals).
        assert result.depth() <= 2
