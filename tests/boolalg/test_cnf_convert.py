"""Tests for expression-to-CNF conversion (repro.boolalg.cnf_convert)."""

import itertools

import pytest

from repro.boolalg.cnf_convert import TseitinEncoder, expr_to_cnf_clauses, tseitin_encode
from repro.boolalg.expr import And, Not, Or, Var, Xor
from repro.cnf.formula import CNF


def _clauses_satisfied(clauses, assignment):
    return all(
        any(assignment[abs(lit)] == (lit > 0) for lit in clause) for clause in clauses
    )


class TestEquivalentConversion:
    def test_matches_expression_semantics(self):
        a, b, c = Var("a"), Var("b"), Var("c")
        index = {"a": 1, "b": 2, "c": 3}
        expressions = [
            And(a, b),
            Or(a, Not(b)),
            Or(And(a, b), c),
            Xor(a, b),
            And(Or(a, b), Or(Not(a), c)),
        ]
        for expr in expressions:
            clauses = expr_to_cnf_clauses(expr, index)
            for bits in itertools.product([False, True], repeat=3):
                assignment = {1: bits[0], 2: bits[1], 3: bits[2]}
                named = {"a": bits[0], "b": bits[1], "c": bits[2]}
                assert _clauses_satisfied(clauses, assignment) == expr.evaluate(named)

    def test_tautological_clauses_dropped(self):
        a = Var("a")
        clauses = expr_to_cnf_clauses(Or(a, Not(a)), {"a": 1})
        assert clauses == []


class TestTseitinEncoder:
    def test_fresh_variables_are_allocated_after_existing(self):
        encoder = TseitinEncoder({"a": 1, "b": 2})
        aux = encoder.fresh_var()
        assert aux == 3
        assert encoder.num_variables == 3

    def test_and_gate_signature(self):
        encoder = TseitinEncoder({"a": 1, "b": 2})
        output = encoder.encode(And(Var("a"), Var("b")))
        clause_sets = {frozenset(clause) for clause in encoder.clauses}
        assert frozenset({output, -1, -2}) in clause_sets
        assert frozenset({-output, 1}) in clause_sets
        assert frozenset({-output, 2}) in clause_sets

    def test_not_is_literal_negation(self):
        encoder = TseitinEncoder({"a": 1})
        assert encoder.encode(Not(Var("a"))) == -1
        assert encoder.clauses == []


class TestTseitinEquisatisfiability:
    @pytest.mark.parametrize(
        "expr, satisfiable",
        [
            (And(Var("a"), Not(Var("a"))), False),
            (Or(Var("a"), Var("b")), True),
            (Xor(Var("a"), Var("b"), Var("c")), True),
            (And(Or(Var("a"), Var("b")), Not(Var("a")), Not(Var("b"))), False),
        ],
    )
    def test_satisfiability_preserved(self, expr, satisfiable):
        names = sorted(expr.support())
        index = {name: i + 1 for i, name in enumerate(names)}
        clauses, _, full_index = tseitin_encode(expr, index)
        formula = CNF(clauses, num_variables=max(full_index.values()))
        from repro.baselines.dpll import DPLLSolver

        assert (DPLLSolver(formula).solve() is not None) == satisfiable

    def test_projected_models_match_expression(self):
        a, b, c = Var("a"), Var("b"), Var("c")
        expr = Or(And(a, b), c)
        index = {"a": 1, "b": 2, "c": 3}
        clauses, _, full_index = tseitin_encode(expr, index)
        formula = CNF(clauses, num_variables=max(full_index.values()))
        from repro.baselines.dpll import DPLLSolver

        projected = set()
        for model in DPLLSolver(formula).enumerate_models():
            projected.add(tuple(bool(model[i]) for i in range(3)))
        expected = {
            bits
            for bits in itertools.product([False, True], repeat=3)
            if expr.evaluate({"a": bits[0], "b": bits[1], "c": bits[2]})
        }
        assert projected == expected
