"""Tests for the Boolean expression parser (repro.boolalg.parsing)."""

import pytest

from repro.boolalg.expr import And, FALSE, Not, Or, TRUE, Var, Xor
from repro.boolalg.parsing import ParseError, parse_expr
from repro.boolalg.truth_table import equivalent


class TestAtoms:
    def test_variable(self):
        assert parse_expr("abc_1") == Var("abc_1")

    def test_constants(self):
        assert parse_expr("1") == TRUE
        assert parse_expr("0") == FALSE

    def test_parentheses(self):
        assert parse_expr("(a)") == Var("a")


class TestOperators:
    def test_and(self):
        assert parse_expr("a & b") == And(Var("a"), Var("b"))
        assert parse_expr("a * b") == And(Var("a"), Var("b"))

    def test_or(self):
        assert parse_expr("a | b") == Or(Var("a"), Var("b"))
        assert parse_expr("a + b") == Or(Var("a"), Var("b"))

    def test_xor(self):
        assert parse_expr("a ^ b") == Xor(Var("a"), Var("b"))

    def test_not(self):
        assert parse_expr("~a") == Not(Var("a"))
        assert parse_expr("!a") == Not(Var("a"))
        assert parse_expr("~~a") == Var("a")


class TestPrecedence:
    def test_and_binds_tighter_than_or(self):
        assert parse_expr("a | b & c") == Or(Var("a"), And(Var("b"), Var("c")))

    def test_or_binds_tighter_than_xor(self):
        assert parse_expr("a ^ b | c") == Xor(Var("a"), Or(Var("b"), Var("c")))

    def test_not_binds_tightest(self):
        assert parse_expr("~a & b") == And(Not(Var("a")), Var("b"))

    def test_parentheses_override(self):
        assert parse_expr("(a | b) & c") == And(Or(Var("a"), Var("b")), Var("c"))

    def test_paper_mux_expression(self):
        expr = parse_expr("(x107 & x4) | (x108 & ~x4)")
        reference = Or(
            And(Var("x107"), Var("x4")), And(Var("x108"), Not(Var("x4")))
        )
        assert equivalent(expr, reference)


class TestErrors:
    def test_empty_input(self):
        with pytest.raises(ParseError):
            parse_expr("")

    def test_unbalanced_parenthesis(self):
        with pytest.raises(ParseError):
            parse_expr("(a & b")

    def test_trailing_tokens(self):
        with pytest.raises(ParseError):
            parse_expr("a b")

    def test_invalid_character(self):
        with pytest.raises(ParseError):
            parse_expr("a @ b")
