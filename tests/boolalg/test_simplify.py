"""Tests for expression simplification (repro.boolalg.simplify)."""

from repro.boolalg.expr import And, Not, Or, TRUE, Var, Xor
from repro.boolalg.simplify import simplify, simplify_algebraic, simplify_exact
from repro.boolalg.truth_table import equivalent


class TestSimplifyExact:
    def test_absorption(self):
        a, b = Var("a"), Var("b")
        assert simplify_exact(Or(a, And(a, b))) == a

    def test_consensus_removed(self):
        """The redundant consensus term of the paper's Eq. 5 expression is dropped."""
        x4, x107, x108 = Var("x4"), Var("x107"), Var("x108")
        with_consensus = Or(And(x107, x4), And(x108, Not(x4)), And(x107, x108))
        simplified = simplify_exact(with_consensus)
        assert equivalent(simplified, with_consensus)
        assert simplified.two_input_gate_count() <= Or(
            And(x107, x4), And(x108, Not(x4))
        ).two_input_gate_count() + 1

    def test_xor_detection(self):
        a, b = Var("a"), Var("b")
        sum_of_products = Or(And(a, Not(b)), And(Not(a), b))
        simplified = simplify_exact(sum_of_products)
        assert equivalent(simplified, Xor(a, b))
        assert simplified.two_input_gate_count() <= sum_of_products.two_input_gate_count()

    def test_tautology_becomes_constant(self):
        a = Var("a")
        assert simplify_exact(Or(a, Not(a))) == TRUE

    def test_never_increases_cost(self):
        a, b, c = Var("a"), Var("b"), Var("c")
        expr = Or(And(a, b), And(a, b, c), And(a, Not(c), b))
        assert simplify_exact(expr).two_input_gate_count() <= expr.two_input_gate_count()


class TestSimplifyAlgebraic:
    def test_or_absorption(self):
        a, b = Var("a"), Var("b")
        assert simplify_algebraic(Or(a, And(a, b))) == a

    def test_and_absorption(self):
        a, b = Var("a"), Var("b")
        assert simplify_algebraic(And(a, Or(a, b))) == a

    def test_preserves_semantics_on_nested(self):
        a, b, c = Var("a"), Var("b"), Var("c")
        expr = Or(And(a, b), And(a, Or(b, c)), c)
        assert equivalent(simplify_algebraic(expr), expr)

    def test_leaves_vars_alone(self):
        assert simplify_algebraic(Var("a")) == Var("a")


class TestSimplifyDispatch:
    def test_small_support_uses_exact(self):
        a, b = Var("a"), Var("b")
        assert simplify(Or(And(a, b), And(a, Not(b)))) == a

    def test_wide_support_falls_back_to_algebraic(self):
        names = [Var(f"v{i}") for i in range(15)]
        expr = Or(names[0], And(names[0], *names[1:]))
        simplified = simplify(expr)
        assert simplified == names[0]

    def test_equivalence_always_preserved(self):
        a, b, c, d = (Var(n) for n in "abcd")
        expressions = [
            Or(And(a, b), And(Not(a), c), And(b, c)),
            Xor(a, b, c),
            And(Or(a, b), Or(c, d), Or(a, d)),
            Not(Or(And(a, b), c)),
        ]
        for expr in expressions:
            assert equivalent(simplify(expr), expr)
