"""Tests for the ROBDD manager (repro.boolalg.bdd)."""

import pytest

from repro.boolalg.bdd import BDD, FALSE_NODE, TRUE_NODE
from repro.boolalg.expr import And, Not, Or, Var, Xor
from repro.boolalg.truth_table import count_satisfying


class TestConstruction:
    def test_terminals(self):
        manager = BDD(["a"])
        assert manager.true == TRUE_NODE
        assert manager.false == FALSE_NODE

    def test_duplicate_order_rejected(self):
        with pytest.raises(ValueError):
            BDD(["a", "a"])

    def test_unknown_variable_rejected(self):
        with pytest.raises(KeyError):
            BDD(["a"]).var("z")

    def test_canonicity_of_same_function(self):
        manager = BDD(["a", "b"])
        left = manager.apply_and(manager.var("a"), manager.var("b"))
        right = manager.apply_and(manager.var("b"), manager.var("a"))
        assert left == right

    def test_reduction_collapses_redundant_tests(self):
        manager = BDD(["a", "b"])
        a = manager.var("a")
        # a OR (a AND b) == a: the BDD must literally be the node for a.
        assert manager.apply_or(a, manager.apply_and(a, manager.var("b"))) == a


class TestOperations:
    def test_and_or_terminal_cases(self):
        manager = BDD(["a"])
        a = manager.var("a")
        assert manager.apply_and(a, manager.false) == manager.false
        assert manager.apply_and(a, manager.true) == a
        assert manager.apply_or(a, manager.true) == manager.true
        assert manager.apply_or(a, manager.false) == a

    def test_negation_involution(self):
        manager = BDD(["a", "b"])
        node = manager.apply_or(manager.var("a"), manager.var("b"))
        assert manager.negate(manager.negate(node)) == node

    def test_complement_pair(self):
        manager = BDD(["a", "b"])
        node = manager.apply_and(manager.var("a"), manager.var("b"))
        complement = manager.apply_or(
            manager.negate(manager.var("a")), manager.negate(manager.var("b"))
        )
        assert manager.negate(node) == complement

    def test_xor(self):
        manager = BDD(["a", "b"])
        node = manager.apply_xor(manager.var("a"), manager.var("b"))
        assert manager.evaluate(node, {"a": True, "b": False})
        assert not manager.evaluate(node, {"a": True, "b": True})

    def test_ite(self):
        manager = BDD(["c", "t", "e"])
        node = manager.ite(manager.var("c"), manager.var("t"), manager.var("e"))
        assert manager.evaluate(node, {"c": True, "t": True, "e": False})
        assert not manager.evaluate(node, {"c": False, "t": True, "e": False})


class TestFromExpr:
    def test_matches_truth_table_semantics(self):
        a, b, c = Var("a"), Var("b"), Var("c")
        expressions = [
            And(a, b),
            Or(a, Not(b), c),
            Xor(a, b, c),
            Or(And(a, b), And(Not(a), c)),
        ]
        manager = BDD(["a", "b", "c"])
        for expr in expressions:
            node = manager.from_expr(expr)
            for value_a in (False, True):
                for value_b in (False, True):
                    for value_c in (False, True):
                        assignment = {"a": value_a, "b": value_b, "c": value_c}
                        assert manager.evaluate(node, assignment) == expr.evaluate(assignment)

    def test_equivalent_expressions_share_node(self):
        a, b = Var("a"), Var("b")
        manager = BDD(["a", "b"])
        assert manager.from_expr(Not(And(a, b))) == manager.from_expr(Or(Not(a), Not(b)))


class TestCountingAndSupport:
    def test_count_solutions_matches_truth_table(self):
        a, b, c = Var("a"), Var("b"), Var("c")
        manager = BDD(["a", "b", "c"])
        for expr in (And(a, b), Or(a, b, c), Xor(a, b)):
            node = manager.from_expr(expr)
            assert manager.count_solutions(node) == count_satisfying(expr, over=["a", "b", "c"])

    def test_count_terminal_nodes(self):
        manager = BDD(["a", "b"])
        assert manager.count_solutions(manager.true) == 4
        assert manager.count_solutions(manager.false) == 0

    def test_support_of(self):
        a, c = Var("a"), Var("c")
        manager = BDD(["a", "b", "c"])
        node = manager.from_expr(And(a, c))
        assert manager.support_of(node) == ["a", "c"]
