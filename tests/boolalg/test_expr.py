"""Tests for the Boolean expression AST (repro.boolalg.expr)."""

import pytest

from repro.boolalg.expr import (
    And,
    Const,
    FALSE,
    Not,
    Or,
    TRUE,
    Var,
    Xor,
    ite,
    nand_,
    nor_,
    variables,
    xnor_,
)


class TestConstAndVar:
    def test_constants_are_singleton_like(self):
        assert TRUE == Const(True)
        assert FALSE == Const(False)
        assert TRUE != FALSE

    def test_const_evaluate(self):
        assert TRUE.evaluate({}) is True
        assert FALSE.evaluate({}) is False

    def test_var_evaluate(self):
        assert Var("a").evaluate({"a": 1}) is True
        assert Var("a").evaluate({"a": 0}) is False

    def test_var_missing_assignment_raises(self):
        with pytest.raises(KeyError):
            Var("a").evaluate({"b": True})

    def test_var_requires_name(self):
        with pytest.raises(ValueError):
            Var("")

    def test_support(self):
        assert Var("a").support() == {"a"}
        assert TRUE.support() == frozenset()

    def test_immutability(self):
        with pytest.raises(AttributeError):
            Var("a").name = "b"
        with pytest.raises(AttributeError):
            TRUE.value = False

    def test_variables_helper(self):
        a, b = variables(["a", "b"])
        assert a == Var("a") and b == Var("b")


class TestNot:
    def test_double_negation_collapses(self):
        a = Var("a")
        assert Not(Not(a)) == a

    def test_constant_folding(self):
        assert Not(TRUE) == FALSE
        assert Not(FALSE) == TRUE

    def test_evaluate(self):
        assert Not(Var("a")).evaluate({"a": False}) is True

    def test_operator_overload(self):
        assert (~Var("a")) == Not(Var("a"))


class TestAnd:
    def test_flattening(self):
        a, b, c = variables("abc")
        assert And(And(a, b), c) == And(a, b, c)

    def test_identity_and_annihilator(self):
        a = Var("a")
        assert And(a, TRUE) == a
        assert And(a, FALSE) == FALSE
        assert And() == TRUE

    def test_duplicate_removal(self):
        a, b = Var("a"), Var("b")
        assert And(a, a, b) == And(a, b)

    def test_complement_folds_to_false(self):
        a = Var("a")
        assert And(a, Not(a)) == FALSE

    def test_evaluate(self, expr_abc):
        a, b, c = expr_abc
        expr = And(a, b, c)
        assert expr.evaluate({"a": 1, "b": 1, "c": 1}) is True
        assert expr.evaluate({"a": 1, "b": 0, "c": 1}) is False

    def test_operator_overload(self):
        a, b = Var("a"), Var("b")
        assert (a & b) == And(a, b)

    def test_substitute(self):
        a, b = Var("a"), Var("b")
        assert And(a, b).substitute({"a": TRUE}) == b


class TestOr:
    def test_identity_and_annihilator(self):
        a = Var("a")
        assert Or(a, FALSE) == a
        assert Or(a, TRUE) == TRUE
        assert Or() == FALSE

    def test_complement_folds_to_true(self):
        a = Var("a")
        assert Or(a, Not(a)) == TRUE

    def test_evaluate(self, expr_abc):
        a, b, c = expr_abc
        assert Or(a, b, c).evaluate({"a": 0, "b": 0, "c": 1}) is True
        assert Or(a, b, c).evaluate({"a": 0, "b": 0, "c": 0}) is False

    def test_operator_overload(self):
        a, b = Var("a"), Var("b")
        assert (a | b) == Or(a, b)


class TestXor:
    def test_constant_folding(self):
        a = Var("a")
        assert Xor(a, FALSE) == a
        assert Xor(a, TRUE) == Not(a)
        assert Xor(TRUE, TRUE) == FALSE

    def test_duplicate_cancellation(self):
        a, b = Var("a"), Var("b")
        assert Xor(a, a) == FALSE
        assert Xor(a, a, b) == b

    def test_negated_operand_becomes_parity(self):
        a, b = Var("a"), Var("b")
        assert Xor(Not(a), b) == Not(Xor(a, b))

    def test_evaluate_parity(self, expr_abc):
        a, b, c = expr_abc
        expr = Xor(a, b, c)
        assert expr.evaluate({"a": 1, "b": 1, "c": 1}) is True
        assert expr.evaluate({"a": 1, "b": 1, "c": 0}) is False

    def test_operator_overload(self):
        a, b = Var("a"), Var("b")
        assert (a ^ b) == Xor(a, b)


class TestDerivedOperators:
    def test_nand_nor_xnor(self):
        a, b = Var("a"), Var("b")
        assert nand_(a, b).evaluate({"a": 1, "b": 1}) is False
        assert nor_(a, b).evaluate({"a": 0, "b": 0}) is True
        assert xnor_(a, b).evaluate({"a": 1, "b": 1}) is True

    def test_ite(self):
        c, t, e = Var("c"), Var("t"), Var("e")
        expr = ite(c, t, e)
        assert expr.evaluate({"c": 1, "t": 1, "e": 0}) is True
        assert expr.evaluate({"c": 0, "t": 1, "e": 0}) is False


class TestStructuralMetrics:
    def test_node_count_and_depth(self):
        a, b = Var("a"), Var("b")
        expr = Or(And(a, b), Not(a))
        assert expr.node_count() == 6
        assert expr.depth() == 2
        assert a.depth() == 0

    def test_two_input_gate_count(self):
        a, b, c = variables("abc")
        assert Var("a").two_input_gate_count() == 0
        assert And(a, b, c).two_input_gate_count() == 2
        assert Not(And(a, b)).two_input_gate_count() == 2
        assert Or(And(a, b), c).two_input_gate_count() == 2

    def test_hash_consistency(self):
        assert hash(And(Var("a"), Var("b"))) == hash(And(Var("a"), Var("b")))
        assert And(Var("a"), Var("b")) in {And(Var("a"), Var("b"))}

    def test_str_rendering(self):
        expr = Or(And(Var("a"), Var("b")), Not(Var("c")))
        text = str(expr)
        assert "a" in text and "b" in text and "~" in text
