"""Tests for truth-table semantics (repro.boolalg.truth_table)."""

import numpy as np
import pytest

from repro.boolalg.expr import And, FALSE, Not, Or, TRUE, Var, Xor
from repro.boolalg.truth_table import (
    count_satisfying,
    equivalent,
    is_complement,
    is_contradiction,
    is_tautology,
    minterms,
    satisfying_assignments,
    truth_table,
)


class TestTruthTable:
    def test_and_table(self):
        table = truth_table(And(Var("a"), Var("b")), over=["a", "b"])
        # Row index bit 0 = a, bit 1 = b; only row 3 (a=1, b=1) is true.
        assert table.tolist() == [False, False, False, True]

    def test_or_table(self):
        table = truth_table(Or(Var("a"), Var("b")), over=["a", "b"])
        assert table.tolist() == [False, True, True, True]

    def test_constant_table(self):
        assert truth_table(TRUE).tolist() == [True]
        assert truth_table(FALSE).tolist() == [False]

    def test_refuses_wide_support(self):
        wide = Or(*(Var(f"v{i}") for i in range(25)))
        with pytest.raises(ValueError):
            truth_table(wide, max_vars=20)

    def test_explicit_variable_order(self):
        expr = Var("a")
        table = truth_table(expr, over=["b", "a"])
        # bit 0 = b, bit 1 = a -> rows 2 and 3 are true.
        assert table.tolist() == [False, False, True, True]


class TestEquivalence:
    def test_commutativity(self):
        a, b = Var("a"), Var("b")
        assert equivalent(And(a, b), And(b, a))

    def test_de_morgan(self):
        a, b = Var("a"), Var("b")
        assert equivalent(Not(And(a, b)), Or(Not(a), Not(b)))

    def test_not_equivalent(self):
        a, b = Var("a"), Var("b")
        assert not equivalent(And(a, b), Or(a, b))

    def test_mixed_support(self):
        a, b = Var("a"), Var("b")
        assert not equivalent(a, And(a, b))

    def test_wide_support_uses_bdd(self):
        names = [f"v{i}" for i in range(24)]
        big_or = Or(*(Var(n) for n in names))
        same = Or(*(Var(n) for n in reversed(names)))
        assert equivalent(big_or, same, max_vars=10)


class TestComplement:
    def test_simple_complement(self):
        a = Var("a")
        assert is_complement(a, Not(a))

    def test_de_morgan_complement(self):
        a, b = Var("a"), Var("b")
        assert is_complement(And(a, b), Or(Not(a), Not(b)))

    def test_paper_x5_example(self):
        """The x5 walk-through of Section III-A: the two derived expressions are complements."""
        x4, x107, x108 = Var("x4"), Var("x107"), Var("x108")
        positive = Or(And(x107, x4), And(x108, Not(x4)))
        negative = Or(And(Not(x107), x4), And(Not(x108), Not(x4)))
        assert is_complement(positive, negative)

    def test_non_complement(self):
        a, b = Var("a"), Var("b")
        assert not is_complement(And(a, b), Or(a, b))

    def test_wide_support_uses_bdd(self):
        names = [f"v{i}" for i in range(22)]
        expr = Or(*(Var(n) for n in names))
        complement = And(*(Not(Var(n)) for n in names))
        assert is_complement(expr, complement, max_vars=8)


class TestConstancy:
    def test_tautology(self):
        a = Var("a")
        assert is_tautology(Or(a, Not(a)))
        assert not is_tautology(a)

    def test_contradiction(self):
        a = Var("a")
        assert is_contradiction(And(a, Not(a)))
        assert not is_contradiction(a)

    def test_constants(self):
        assert is_tautology(TRUE)
        assert is_contradiction(FALSE)


class TestCounting:
    def test_count_satisfying(self):
        a, b = Var("a"), Var("b")
        assert count_satisfying(And(a, b)) == 1
        assert count_satisfying(Or(a, b)) == 3
        assert count_satisfying(Xor(a, b)) == 2

    def test_count_over_wider_domain(self):
        a = Var("a")
        assert count_satisfying(a, over=["a", "b"]) == 2

    def test_satisfying_assignments(self):
        a, b = Var("a"), Var("b")
        models = satisfying_assignments(And(a, Not(b)))
        assert models == [{"a": True, "b": False}]

    def test_minterms(self):
        a, b = Var("a"), Var("b")
        on_set, order = minterms(And(a, b))
        assert order == ["a", "b"]
        assert on_set == [3]
