"""Property-based tests over the Boolean-algebra substrate (hypothesis).

These cover the invariants the transformation algorithm relies on: the
simplifier and minimizer always preserve semantics, the BDD agrees with
truth-table evaluation, and complement checking is symmetric.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.boolalg.bdd import BDD
from repro.boolalg.expr import And, Expr, Not, Or, Var, Xor
from repro.boolalg.quine_mccluskey import minimize_expr
from repro.boolalg.simplify import simplify
from repro.boolalg.truth_table import equivalent, is_complement

_NAMES = ["a", "b", "c", "d"]


def _expressions(max_leaves: int = 4) -> st.SearchStrategy[Expr]:
    """Random expressions over four variables."""
    leaves = st.sampled_from([Var(name) for name in _NAMES])

    def extend(children):
        return st.one_of(
            st.builds(Not, children),
            st.builds(lambda a, b: And(a, b), children, children),
            st.builds(lambda a, b: Or(a, b), children, children),
            st.builds(lambda a, b: Xor(a, b), children, children),
        )

    return st.recursive(leaves, extend, max_leaves=max_leaves)


@given(_expressions())
@settings(max_examples=60, deadline=None)
def test_simplify_preserves_semantics(expr):
    assert equivalent(simplify(expr), expr)


@given(_expressions())
@settings(max_examples=60, deadline=None)
def test_simplify_never_increases_gate_count_much(expr):
    simplified = simplify(expr)
    # Exact minimization guarantees the result is not (meaningfully) larger.
    assert simplified.two_input_gate_count() <= expr.two_input_gate_count() + 1


@given(_expressions())
@settings(max_examples=60, deadline=None)
def test_quine_mccluskey_preserves_semantics(expr):
    assert equivalent(minimize_expr(expr), expr)


@given(_expressions())
@settings(max_examples=60, deadline=None)
def test_complement_with_own_negation(expr):
    assert is_complement(expr, Not(expr))


@given(_expressions(), _expressions())
@settings(max_examples=60, deadline=None)
def test_complement_symmetry(left, right):
    assert is_complement(left, right) == is_complement(right, left)


@given(_expressions())
@settings(max_examples=60, deadline=None)
def test_bdd_agrees_with_truth_table(expr):
    manager = BDD(_NAMES)
    node = manager.from_expr(expr)
    import itertools

    for bits in itertools.product([False, True], repeat=len(_NAMES)):
        assignment = dict(zip(_NAMES, bits))
        assert manager.evaluate(node, assignment) == expr.evaluate(assignment)


@given(_expressions(), _expressions())
@settings(max_examples=60, deadline=None)
def test_bdd_canonical_equality_matches_equivalence(left, right):
    manager = BDD(_NAMES)
    assert (manager.from_expr(left) == manager.from_expr(right)) == equivalent(left, right)


@given(_expressions())
@settings(max_examples=40, deadline=None)
def test_double_negation_is_identity(expr):
    assert Not(Not(expr)) == expr
