"""Tests for the Table II builder (repro.eval.tables)."""

import pytest

from repro.baselines.cmsgen_like import CMSGenStyleSampler
from repro.core.config import SamplerConfig
from repro.eval.runner import ThisWorkSampler
from repro.eval.tables import build_table2, render_table2


@pytest.fixture(scope="module")
def small_table_rows():
    """A two-instance, two-sampler Table II built with tiny budgets."""
    config = SamplerConfig(batch_size=128, seed=0, max_rounds=4)
    samplers = [ThisWorkSampler(config=config), CMSGenStyleSampler(seed=0)]
    return build_table2(
        instance_names=["or-50-10-7-UC-10", "75-10-1-q"],
        samplers=samplers,
        num_solutions=30,
        timeout_seconds=30,
    )


class TestBuildTable2:
    def test_row_per_instance(self, small_table_rows):
        assert [row.instance for row in small_table_rows] == [
            "or-50-10-7-UC-10", "75-10-1-q",
        ]

    def test_throughputs_recorded_for_each_sampler(self, small_table_rows):
        for row in small_table_rows:
            assert set(row.throughputs) == {"this-work", "cmsgen-style"}
            assert all(value >= 0 for value in row.throughputs.values())

    def test_this_work_wins_on_every_row(self, small_table_rows):
        """The qualitative claim of Table II: the transformed GD sampler has the
        highest unique-solution throughput on every representative instance."""
        for row in small_table_rows:
            best_baseline = max(
                value for name, value in row.throughputs.items() if name != "this-work"
            )
            assert row.throughputs["this-work"] > best_baseline
            assert row.speedup_vs_best_baseline > 1.0

    def test_paper_metadata_attached(self, small_table_rows):
        assert small_table_rows[0].paper_speedup == pytest.approx(79.6)
        assert small_table_rows[1].paper_throughput_this_work == pytest.approx(478_723.0)

    def test_structural_counts_populated(self, small_table_rows):
        for row in small_table_rows:
            assert row.num_variables > 0
            assert row.num_clauses > 0
            assert row.primary_inputs > 0


class TestRenderTable2:
    def test_text_rendering(self, small_table_rows):
        text = render_table2(small_table_rows)
        assert "Table II" in text
        assert "or-50-10-7-UC-10" in text
        assert "tput[this-work]" in text
