"""Tests for the figure builders (repro.eval.figures).

The figure builders default to the four large ablation instances; the tests
exercise them on small instances so the whole suite stays fast, and assert on
the qualitative *shapes* the paper reports.
"""

import pytest

from repro.baselines.cmsgen_like import CMSGenStyleSampler
from repro.core.config import SamplerConfig
from repro.eval.figures import (
    fig2_latency_vs_solutions,
    fig3_learning_curve,
    fig3_memory_vs_batch,
    fig4_gpu_speedup,
    fig4_ops_reduction,
    fig4_transform_time,
)
from repro.eval.runner import ThisWorkSampler

SMALL_INSTANCES = ["or-50-10-7-UC-10", "75-10-1-q"]


@pytest.fixture(scope="module")
def quick_config():
    return SamplerConfig(batch_size=128, seed=0, max_rounds=4)


class TestFig2:
    def test_series_shapes(self, quick_config):
        samplers = [ThisWorkSampler(config=quick_config), CMSGenStyleSampler(seed=0)]
        series = fig2_latency_vs_solutions(
            instance_names=SMALL_INSTANCES,
            samplers=samplers,
            solution_counts=(5, 20),
            timeout_seconds=20,
        )
        assert set(series) == {"this-work", "cmsgen-style"}
        for points in series.values():
            assert points, "every sampler should produce at least one point"
            for unique, latency_ms in points:
                assert unique > 0 and latency_ms > 0

    def test_latency_grows_mildly_for_this_work(self, quick_config):
        """Fig. 2's key shape: the GD sampler's latency grows only slightly with
        the number of requested solutions (one batch already yields many)."""
        series = fig2_latency_vs_solutions(
            instance_names=["or-50-10-7-UC-10"],
            samplers=[ThisWorkSampler(config=quick_config)],
            solution_counts=(5, 100),
            timeout_seconds=20,
        )
        points = series["this-work"]
        assert len(points) == 2
        (small_n, small_ms), (large_n, large_ms) = points
        assert large_n >= small_n
        assert large_ms < small_ms * 20


class TestFig3:
    def test_learning_curve_monotone(self):
        curves = fig3_learning_curve(
            instance_names=["75-10-1-q"], max_iterations=4, batch_size=128,
            config=SamplerConfig(batch_size=128, seed=0),
        )
        curve = curves["75-10-1-q"]
        assert len(curve) == 5
        counts = [count for _, count in curve]
        assert all(later >= earlier for earlier, later in zip(counts, counts[1:]))
        assert counts[-1] > 0

    def test_memory_curves_monotone_in_batch(self):
        curves = fig3_memory_vs_batch(
            instance_names=SMALL_INSTANCES, batch_sizes=(100, 1000, 10000)
        )
        for series in curves.values():
            values = [mb for _, mb in series]
            assert all(later > earlier for earlier, later in zip(values, values[1:]))

    def test_memory_grows_with_circuit_complexity(self):
        curves = fig3_memory_vs_batch(
            instance_names=["or-50-10-7-UC-10", "Prod-8"], batch_sizes=(1000,)
        )
        assert curves["Prod-8"][0][1] > curves["or-50-10-7-UC-10"][0][1]


class TestFig4:
    def test_gpu_speedup_greater_than_one(self):
        results = fig4_gpu_speedup(
            instance_names=["75-10-1-q"], batch_size=32, num_solutions=32,
            config=SamplerConfig(batch_size=32, seed=0),
        )
        record = results["75-10-1-q"]
        assert record["speedup"] > 1.0
        assert record["cpu_seconds"] > record["gpu_seconds"]

    def test_ops_reduction_greater_than_one(self):
        results = fig4_ops_reduction(SMALL_INSTANCES)
        assert set(results) == set(SMALL_INSTANCES)
        for value in results.values():
            assert value > 1.0

    def test_transform_time_positive_and_scales(self):
        results = fig4_transform_time(["or-50-10-7-UC-10", "Prod-8"])
        assert all(value > 0 for value in results.values())
        assert results["Prod-8"] > results["or-50-10-7-UC-10"]
