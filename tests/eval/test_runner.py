"""Tests for the unified sampler runner (repro.eval.runner)."""

import pytest

from repro.baselines.cmsgen_like import CMSGenStyleSampler
from repro.core.config import SamplerConfig
from repro.eval.runner import (
    RunRecord,
    ThisWorkSampler,
    default_samplers,
    run_matrix,
    run_sampler_on_instance,
)


@pytest.fixture(scope="module")
def quick_config():
    return SamplerConfig(batch_size=64, seed=0, max_rounds=4)


class TestThisWorkSampler:
    def test_sample_output(self, fig1_formula, quick_config):
        sampler = ThisWorkSampler(config=quick_config)
        output = sampler.sample(fig1_formula, num_solutions=16, timeout_seconds=20)
        assert output.sampler_name == "this-work"
        assert output.num_unique >= 16
        assert output.extra["primary_inputs"] == 6
        assert output.extra["ops_reduction"] > 1.0

    def test_transform_cached_between_calls(self, fig1_formula, quick_config):
        cache = {}
        sampler = ThisWorkSampler(config=quick_config, transform_cache=cache)
        sampler.sample(fig1_formula, num_solutions=4)
        assert "fig1" in cache
        first_transform = cache["fig1"]
        sampler.sample(fig1_formula, num_solutions=4)
        assert cache["fig1"] is first_transform

    def test_timeout_forwarded(self, fig1_formula, quick_config):
        sampler = ThisWorkSampler(config=quick_config)
        output = sampler.sample(fig1_formula, num_solutions=10_000, timeout_seconds=0.1)
        assert output.elapsed_seconds < 5.0


class TestRunRecord:
    def test_throughput(self):
        record = RunRecord("s", "i", num_unique=50, elapsed_seconds=2.0, num_requested=50)
        assert record.throughput == 25.0

    def test_zero_time(self):
        record = RunRecord("s", "i", num_unique=0, elapsed_seconds=0.0, num_requested=5)
        assert record.throughput == 0.0


class TestRunners:
    def test_run_sampler_on_instance(self, fig1_formula, quick_config):
        record = run_sampler_on_instance(
            ThisWorkSampler(config=quick_config), fig1_formula, num_solutions=8
        )
        assert record.instance_name == "fig1"
        assert record.num_unique >= 8
        assert record.transform_seconds >= 0.0

    def test_default_samplers_line_up(self, quick_config):
        line_up = default_samplers(config=quick_config)
        names = [sampler.name for sampler in line_up]
        assert names == ["this-work", "unigen-style", "cmsgen-style", "diffsampler-style"]

    def test_run_matrix(self, fig1_formula, tiny_sat_formula, quick_config):
        records = run_matrix(
            [ThisWorkSampler(config=quick_config), CMSGenStyleSampler(seed=0)],
            [fig1_formula, tiny_sat_formula],
            num_solutions=4,
            timeout_seconds=20,
        )
        assert len(records) == 4
        assert {record.sampler_name for record in records} == {"this-work", "cmsgen-style"}
