"""Tests for report rendering (repro.eval.report)."""

from repro.eval.report import format_number, render_rows, render_series


class TestFormatNumber:
    def test_none_is_timeout(self):
        assert format_number(None) == "TO"

    def test_large_numbers_have_separators(self):
        assert format_number(1234567.8) == "1,234,567.8"

    def test_small_float_precision(self):
        assert format_number(3.14159, precision=2) == "3.14"

    def test_integers(self):
        assert format_number(12345) == "12,345"

    def test_infinity(self):
        assert format_number(float("inf")) == "inf"

    def test_strings_pass_through(self):
        assert format_number("abc") == "abc"


class TestRenderRows:
    def test_alignment_and_title(self):
        rows = [{"name": "a", "value": 1.0}, {"name": "bb", "value": 22.5}]
        text = render_rows(rows, title="My Table")
        lines = text.splitlines()
        assert lines[0] == "My Table"
        assert "name" in lines[1] and "value" in lines[1]
        assert len(lines) == 5

    def test_empty_rows(self):
        assert "(no rows)" in render_rows([])

    def test_explicit_columns_subset(self):
        rows = [{"a": 1, "b": 2}]
        text = render_rows(rows, columns=["b"])
        assert "a" not in text.splitlines()[0]


class TestRenderSeries:
    def test_series_blocks(self):
        series = {"sampler-a": [(1, 0.5), (2, 0.25)], "sampler-b": [(1, 3.0)]}
        text = render_series(series, x_label="n", y_label="ms", title="Fig")
        assert "[sampler-a]" in text
        assert "[sampler-b]" in text
        assert text.startswith("Fig")
