"""Tests for the uniformity study (repro.eval.uniformity_study)."""

import pytest

from repro.baselines.cmsgen_like import CMSGenStyleSampler
from repro.cnf.formula import CNF
from repro.core.config import SamplerConfig
from repro.eval.runner import ThisWorkSampler
from repro.eval.uniformity_study import uniformity_study


@pytest.fixture(scope="module")
def tiny_formulas():
    return [
        CNF([[1, 2], [-1, 3]], num_variables=3, name="tiny-a"),
        CNF([[1, 2, 3], [-2, -3]], num_variables=3, name="tiny-b"),
    ]


@pytest.fixture(scope="module")
def study_rows(tiny_formulas):
    samplers = [
        ThisWorkSampler(config=SamplerConfig(batch_size=32, seed=0, max_rounds=4)),
        CMSGenStyleSampler(seed=0),
    ]
    return uniformity_study(
        tiny_formulas,
        samplers=samplers,
        draws_per_instance=120,
        per_call=20,
        timeout_seconds=10,
    )


class TestUniformityStudy:
    def test_one_row_per_sampler_and_instance(self, study_rows, tiny_formulas):
        assert len(study_rows) == 2 * len(tiny_formulas)
        assert {row.instance_name for row in study_rows} == {"tiny-a", "tiny-b"}

    def test_model_counts_are_exact(self, study_rows):
        for row in study_rows:
            if row.instance_name == "tiny-a":
                assert row.num_models == 4
            else:
                assert row.num_models == 5

    def test_coverage_and_draws_bounded(self, study_rows):
        for row in study_rows:
            assert 0 < row.models_covered <= row.num_models
            assert row.draws > 0
            assert 0.0 <= row.coverage <= 1.0

    def test_statistics_are_finite(self, study_rows):
        for row in study_rows:
            assert row.chi_square >= 0.0
            assert 0.0 <= row.p_value <= 1.0
            assert row.kl_divergence >= 0.0

    def test_as_dict_fields(self, study_rows):
        record = study_rows[0].as_dict()
        assert {"sampler", "instance", "models", "covered", "chi2", "kl"} <= set(record)

    def test_rejects_unsat_instance(self):
        unsat = CNF([[1], [-1]], num_variables=1, name="unsat")
        with pytest.raises(ValueError):
            uniformity_study([unsat], samplers=[CMSGenStyleSampler(seed=0)])

    def test_rejects_huge_model_spaces(self):
        wide_open = CNF([[1, 2]], num_variables=30, name="huge")
        with pytest.raises(ValueError):
            uniformity_study(
                [wide_open], samplers=[CMSGenStyleSampler(seed=0)], max_models=64
            )
