"""Fast-path vs reference-path equivalence of the CNF→circuit transform.

The tentpole rewrite of ``transform_cnf`` (literal-occurrence index, failure
caching, shape-dispatched signature matching, interned expressions with
memoised bitmask truth tables, vectorised bookkeeping) must be
decision-for-decision identical to the seed implementation, which is kept as
``use_fast_path=False``.  The reference path runs the original algorithms —
rescan-everything stream loop, per-row dictionary truth-table enumeration,
non-memoised Quine--McCluskey — so these properties cross-check the bitmask
kernel and every memo against an independent oracle.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.boolalg.expr import And, Not, Or, Var, Xor
from repro.boolalg.simplify import is_flat_literal_gate, simplify
from repro.boolalg.truth_table import equivalent, is_complement, truth_table
from repro.cnf.clause import Clause
from repro.cnf.formula import CNF
from repro.core.extraction import find_boolean_expression
from repro.core.signatures import gate_signature_clauses
from repro.core.transform import transform_cnf
from repro.circuit.gates import GateType
from tests.conftest import all_assignments


# -- strategies --------------------------------------------------------------------------

@st.composite
def random_cnfs(draw):
    """Small random CNFs: arbitrary clauses, possible duplicates/tautologies."""
    num_variables = draw(st.integers(1, 6))
    extra_declared = draw(st.integers(0, 2))
    num_clauses = draw(st.integers(1, 10))
    clauses = draw(
        st.lists(
            st.lists(
                st.tuples(st.integers(1, num_variables), st.booleans()).map(
                    lambda pair: pair[0] if pair[1] else -pair[0]
                ),
                min_size=1,
                max_size=4,
            ),
            min_size=num_clauses,
            max_size=num_clauses,
        )
    )
    return CNF(clauses, num_variables=num_variables + extra_declared, name="hyp")


@st.composite
def gate_stream_cnfs(draw):
    """Structured CNFs: a stream of gate signatures, Tseitin-style.

    This is the shape the signature fast path and the occurrence index are
    built for: each gate's clause group mentions the previous gates' outputs.
    """
    num_inputs = draw(st.integers(2, 4))
    num_gates = draw(st.integers(1, 6))
    clauses = []
    next_var = num_inputs + 1
    available = list(range(1, num_inputs + 1))
    for _ in range(num_gates):
        gate_type = draw(
            st.sampled_from(
                [GateType.NOT, GateType.BUF, GateType.AND, GateType.NAND,
                 GateType.OR, GateType.NOR, GateType.XOR, GateType.XNOR]
            )
        )
        arity = 1 if gate_type in (GateType.NOT, GateType.BUF) else 2
        fanins = draw(
            st.lists(
                st.sampled_from(available), min_size=arity, max_size=arity,
                unique=True,
            )
        )
        signs = draw(st.lists(st.booleans(), min_size=arity, max_size=arity))
        if gate_type in (GateType.XOR, GateType.XNOR):
            signs = [True] * arity  # XOR signatures use positive fanins
        literals = [f if sign else -f for f, sign in zip(fanins, signs)]
        output = next_var
        next_var += 1
        clauses.extend(gate_signature_clauses(gate_type, output, literals))
        available.append(output)
    # Optionally constrain the last output to 1 (the paper's Fig. 1 shape).
    if draw(st.booleans()):
        clauses.append([available[-1]])
    return CNF(clauses, num_variables=next_var - 1, name="gates")


@st.composite
def literal_exprs(draw):
    """Flat and shallow nested expressions over a tiny variable pool."""
    names = ["x1", "x2", "x3", "x4"]

    def literal():
        name = draw(st.sampled_from(names))
        return Var(name) if draw(st.booleans()) else Not(Var(name))

    kind = draw(st.sampled_from(["and", "or", "xor", "nested"]))
    arity = draw(st.integers(1, 4))
    operands = [literal() for _ in range(arity)]
    if kind == "and":
        expr = And(*operands)
    elif kind == "or":
        expr = Or(*operands)
    elif kind == "xor":
        expr = Xor(*operands)
    else:
        inner = Or(*operands)
        expr = And(inner, literal(), Or(literal(), literal()))
    if draw(st.booleans()):
        expr = Not(expr)
    return expr


# -- helpers -----------------------------------------------------------------------------

def assert_transforms_identical(fast, reference):
    assert fast.definitions == reference.definitions
    assert fast.primary_inputs == reference.primary_inputs
    assert fast.intermediate_variables == reference.intermediate_variables
    assert fast.primary_outputs == reference.primary_outputs
    assert fast.constraints == reference.constraints
    assert fast.free_variables == reference.free_variables
    assert fast.num_variables == reference.num_variables
    fast_gates = [(g.name, g.gate_type, g.fanins) for g in fast.circuit.gates]
    ref_gates = [(g.name, g.gate_type, g.fanins) for g in reference.circuit.gates]
    assert fast_gates == ref_gates
    assert fast.circuit.inputs == reference.circuit.inputs
    assert fast.circuit.outputs == reference.circuit.outputs
    fast_stats, ref_stats = fast.stats, reference.stats
    assert fast_stats.num_clauses == ref_stats.num_clauses
    assert fast_stats.num_definitions == ref_stats.num_definitions
    assert fast_stats.signature_matches == ref_stats.signature_matches
    assert fast_stats.generic_matches == ref_stats.generic_matches
    assert fast_stats.fallback_groups == ref_stats.fallback_groups
    assert fast_stats.constant_definitions == ref_stats.constant_definitions
    assert fast_stats.cnf_operations == ref_stats.cnf_operations
    assert fast_stats.circuit_operations == ref_stats.circuit_operations


def assert_completions_identical(fast, reference):
    num_inputs = len(fast.primary_inputs)
    matrix = all_assignments(min(num_inputs, 6))[:, :num_inputs]
    if matrix.shape[1] < num_inputs:  # wide input sets: random batch instead
        rng = np.random.default_rng(0)
        matrix = rng.random((32, num_inputs)) < 0.5
    free = None
    if fast.free_variables:
        rng = np.random.default_rng(1)
        free = rng.random((matrix.shape[0], len(fast.free_variables))) < 0.5
    completed_fast = fast.complete_assignments(matrix, free)
    completed_ref = reference.complete_assignments(matrix, free, use_fast_path=False)
    assert np.array_equal(completed_fast, completed_ref)


# -- transform equivalence ---------------------------------------------------------------

class TestTransformEquivalence:
    @given(random_cnfs())
    @settings(max_examples=80, deadline=None)
    def test_random_cnfs(self, formula):
        fast = transform_cnf(formula)
        reference = transform_cnf(formula, use_fast_path=False)
        assert_transforms_identical(fast, reference)
        assert_completions_identical(fast, reference)

    @given(gate_stream_cnfs())
    @settings(max_examples=60, deadline=None)
    def test_gate_stream_cnfs(self, formula):
        fast = transform_cnf(formula)
        reference = transform_cnf(formula, use_fast_path=False)
        assert_transforms_identical(fast, reference)
        assert_completions_identical(fast, reference)

    @given(random_cnfs(), st.booleans(), st.booleans())
    @settings(max_examples=40, deadline=None)
    def test_option_combinations(self, formula, use_signatures, simplify_exprs):
        fast = transform_cnf(
            formula,
            simplify_expressions=simplify_exprs,
            use_signature_fast_path=use_signatures,
        )
        reference = transform_cnf(
            formula,
            simplify_expressions=simplify_exprs,
            use_signature_fast_path=use_signatures,
            use_fast_path=False,
        )
        assert_transforms_identical(fast, reference)

    @given(random_cnfs(), st.integers(2, 4))
    @settings(max_examples=40, deadline=None)
    def test_narrow_candidate_budget(self, formula, max_candidate_vars):
        """The width gate (which also gates flush simplification) agrees."""
        fast = transform_cnf(formula, max_candidate_vars=max_candidate_vars)
        reference = transform_cnf(
            formula, max_candidate_vars=max_candidate_vars, use_fast_path=False
        )
        assert_transforms_identical(fast, reference)

    @given(random_cnfs(), st.integers(1, 3))
    @settings(max_examples=40, deadline=None)
    def test_small_group_flushes(self, formula, max_group_size):
        """Frequent forced flushes exercise the under-specified path."""
        fast = transform_cnf(formula, max_group_size=max_group_size)
        reference = transform_cnf(
            formula, max_group_size=max_group_size, use_fast_path=False
        )
        assert_transforms_identical(fast, reference)

    def test_registry_instance_equivalence(self):
        from repro.instances.registry import get_instance

        formula = get_instance("75-10-1-q").build_cnf()
        fast = transform_cnf(formula)
        reference = transform_cnf(formula, use_fast_path=False)
        assert_transforms_identical(fast, reference)
        assert_completions_identical(fast, reference)

    def test_sampler_stream_bitwise_identical(self):
        """Fixed-seed NumPy sampler streams agree through both transforms."""
        from repro.core.config import SamplerConfig
        from repro.core.pipeline import sample_cnf
        from repro.instances.registry import get_instance

        formula = get_instance("75-10-1-q").build_cnf()
        config = SamplerConfig(
            seed=7, batch_size=32, iterations=20, array_backend="numpy"
        )
        streams = []
        for use_fast_path in (True, False):
            transform = transform_cnf(formula, use_fast_path=use_fast_path)
            result = sample_cnf(
                formula, num_solutions=16, config=config, transform=transform
            )
            matrix = np.asarray(result.sample.solution_matrix(), dtype=bool)
            streams.append((matrix.shape, np.packbits(matrix).tobytes()))
        assert streams[0] == streams[1]


# -- sub-component equivalence (bitmask kernel vs dictionary enumeration) ----------------

class TestBoolalgFastPaths:
    @given(literal_exprs(), literal_exprs())
    @settings(max_examples=120, deadline=None)
    def test_equivalent_matches_reference(self, a, b):
        assert equivalent(a, b) == equivalent(a, b, use_fast_path=False)

    @given(literal_exprs(), literal_exprs())
    @settings(max_examples=120, deadline=None)
    def test_is_complement_matches_reference(self, a, b):
        assert is_complement(a, b) == is_complement(a, b, use_fast_path=False)

    @given(literal_exprs())
    @settings(max_examples=120, deadline=None)
    def test_truth_table_matches_row_enumeration(self, expr):
        from repro.boolalg.truth_table import assignments_iter

        names = sorted(expr.support())
        table = truth_table(expr, over=names)
        rows = [expr.evaluate(a) for a in assignments_iter(names)]
        assert table.tolist() == rows

    @given(literal_exprs())
    @settings(max_examples=150, deadline=None)
    def test_simplify_fast_path_is_fixed_point(self, expr):
        fast = simplify(expr)
        reference = simplify(expr, use_fast_path=False)
        assert fast == reference
        if is_flat_literal_gate(expr):
            assert fast is expr


class TestExtractionFastPath:
    @given(random_cnfs(), st.integers(1, 6))
    @settings(max_examples=100, deadline=None)
    def test_find_boolean_expression_matches_reference(self, formula, variable):
        clauses = [
            clause
            for clause in formula.clauses
            if clause.contains(variable) or clause.contains(-variable)
        ]
        fast = find_boolean_expression(variable, clauses)
        reference = find_boolean_expression(variable, clauses, use_fast_path=False)
        assert fast == reference

    @given(random_cnfs(), st.integers(1, 6), st.integers(1, 3))
    @settings(max_examples=60, deadline=None)
    def test_width_gate_matches_reference(self, formula, variable, max_vars):
        clauses = [
            clause
            for clause in formula.clauses
            if clause.contains(variable) or clause.contains(-variable)
        ]
        fast = find_boolean_expression(variable, clauses, max_vars=max_vars)
        reference = find_boolean_expression(
            variable, clauses, max_vars=max_vars, use_fast_path=False
        )
        assert fast == reference

    def test_unit_clause_pair_definitions(self):
        # (v) alone defines v := TRUE; (v) & (~v) defines nothing.
        assert find_boolean_expression(1, [Clause([1])]) == find_boolean_expression(
            1, [Clause([1])], use_fast_path=False
        )
        pair = [Clause([1]), Clause([-1])]
        assert find_boolean_expression(1, pair) is None
        assert find_boolean_expression(1, pair, use_fast_path=False) is None


# -- new surface behaviour ----------------------------------------------------------------

class TestStageTimings:
    def test_stage_seconds_recorded(self, fig1_formula):
        result = transform_cnf(fig1_formula)
        stages = result.stats.stage_seconds
        assert "stream" in stages and stages["stream"] >= 0.0
        assert "circuit_build" in stages
        assert all(seconds >= 0.0 for seconds in stages.values())

    def test_reference_records_stream_stage(self, fig1_formula):
        result = transform_cnf(fig1_formula, use_fast_path=False)
        assert "stream" in result.stats.stage_seconds


class TestCacheClearing:
    def test_clear_transform_caches_roundtrip(self, fig1_formula):
        from repro.core.transform import clear_transform_caches

        before = transform_cnf(fig1_formula)
        clear_transform_caches()
        after = transform_cnf(fig1_formula)
        assert before.definitions == after.definitions
        assert before.primary_inputs == after.primary_inputs

    def test_xp_clear_caches_covers_transform_memos(self):
        import repro.xp
        from repro.boolalg.truth_table import _bits_cached
        from repro.boolalg.expr import Var, Xor

        truth_table(Xor(Var("a"), Var("b")))
        assert _bits_cached.cache_info().currsize > 0
        repro.xp.clear_caches()
        assert _bits_cached.cache_info().currsize == 0
