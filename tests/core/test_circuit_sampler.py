"""Tests for direct circuit sampling (repro.core.circuit_sampler)."""

import numpy as np
import pytest

from repro.circuit.builder import CircuitBuilder
from repro.core.circuit_sampler import CircuitSampler, sample_circuit
from repro.core.config import SamplerConfig


def _config(**overrides):
    base = dict(batch_size=64, seed=0, max_rounds=6)
    base.update(overrides)
    return SamplerConfig(**base)


def _adder_circuit(width=3):
    builder = CircuitBuilder("adder")
    a_bits = builder.inputs(width, prefix="a")
    b_bits = builder.inputs(width, prefix="b")
    sums, carry = builder.ripple_adder(a_bits, b_bits)
    for net in sums:
        builder.output(net)
    builder.output(carry)
    return builder.circuit, sums, carry


class TestConstruction:
    def test_default_targets_are_all_outputs_true(self, small_circuit):
        sampler = CircuitSampler(small_circuit, config=_config())
        assert set(sampler.output_targets) == set(small_circuit.outputs)
        assert all(sampler.output_targets.values())

    def test_unknown_target_net_rejected(self, small_circuit):
        with pytest.raises(ValueError):
            CircuitSampler(small_circuit, output_targets={"nope": True})

    def test_circuit_without_outputs_rejected(self):
        builder = CircuitBuilder()
        builder.input("a")
        with pytest.raises(ValueError):
            CircuitSampler(builder.circuit)

    def test_constrained_vs_unconstrained_inputs(self, small_circuit):
        sampler = CircuitSampler(small_circuit, output_targets={"g": True}, config=_config())
        # g = a ^ c: b is unconstrained.
        assert set(sampler._constrained_inputs) == {"a", "c"}
        assert sampler._unconstrained_inputs == ["b"]


class TestSampling:
    def test_all_solutions_meet_targets(self, small_circuit):
        result = sample_circuit(
            small_circuit, output_targets={"f": True, "g": True},
            num_solutions=10, config=_config(),
        )
        assert result.num_unique > 0
        for assignment in result.as_assignments():
            values = small_circuit.evaluate(assignment)
            assert values["f"] is True and values["g"] is True

    def test_false_targets_supported(self, small_circuit):
        result = sample_circuit(
            small_circuit, output_targets={"f": False},
            num_solutions=4, config=_config(),
        )
        assert result.num_unique > 0
        for assignment in result.as_assignments():
            assert small_circuit.evaluate(assignment)["f"] is False

    def test_adder_sum_constraint(self):
        """Constrain a 3-bit adder to produce sum == 5 (carry 0) and verify arithmetic."""
        circuit, sums, carry = _adder_circuit(3)
        targets = {sums[0]: True, sums[1]: False, sums[2]: True, carry: False}
        result = sample_circuit(
            circuit, output_targets=targets, num_solutions=6,
            config=_config(batch_size=128),
        )
        assert result.num_unique >= 4  # exactly 6 operand pairs sum to 5
        for assignment in result.as_assignments():
            a_value = sum(assignment[f"a{i}"] << i for i in range(3))
            b_value = sum(assignment[f"b{i}"] << i for i in range(3))
            assert a_value + b_value == 5

    def test_unsatisfiable_targets_yield_nothing(self):
        builder = CircuitBuilder()
        a = builder.input("a")
        builder.output(builder.and_(a, builder.not_(a), name="f"))
        result = sample_circuit(
            builder.circuit, output_targets={"f": True},
            num_solutions=3, config=_config(max_rounds=2),
        )
        assert result.num_unique == 0
        assert result.validity_rate == 0.0

    def test_statistics_and_matrix(self, small_circuit):
        result = sample_circuit(small_circuit, num_solutions=8, config=_config())
        matrix = result.input_matrix()
        assert matrix.shape == (result.num_unique, len(result.input_order))
        assert result.throughput > 0
        assert 0.0 <= result.validity_rate <= 1.0
        assert result.rounds >= 1

    def test_deterministic_given_seed(self, small_circuit):
        first = sample_circuit(small_circuit, num_solutions=8, config=_config(seed=5))
        second = sample_circuit(small_circuit, num_solutions=8, config=_config(seed=5))
        assert np.array_equal(first.input_matrix(), second.input_matrix())

    def test_invalid_request(self, small_circuit):
        with pytest.raises(ValueError):
            CircuitSampler(small_circuit, config=_config()).sample(0)

    def test_loss_history_recorded(self, small_circuit):
        result = sample_circuit(small_circuit, num_solutions=4, config=_config(max_rounds=1))
        assert len(result.loss_history) == _config().iterations
