"""Tests for unique-solution bookkeeping (repro.core.solutions)."""

import numpy as np
import pytest

from repro.core.solutions import SolutionSet


class TestAdd:
    def test_add_and_deduplicate(self):
        solutions = SolutionSet(3)
        assert solutions.add(np.array([True, False, True]))
        assert not solutions.add(np.array([True, False, True]))
        assert len(solutions) == 1

    def test_wrong_shape_rejected(self):
        with pytest.raises(ValueError):
            SolutionSet(3).add(np.array([True, False]))

    def test_contains(self):
        solutions = SolutionSet(2)
        solutions.add(np.array([True, False]))
        assert solutions.contains(np.array([True, False]))
        assert not solutions.contains(np.array([False, False]))

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            SolutionSet(-1)


class TestAddBatch:
    def test_masked_addition(self):
        solutions = SolutionSet(2)
        matrix = np.array([[True, True], [False, False], [True, True]])
        added = solutions.add_batch(matrix, mask=np.array([True, False, True]))
        assert added == 1  # third row duplicates the first
        assert len(solutions) == 1

    def test_unmasked_addition(self):
        solutions = SolutionSet(2)
        added = solutions.add_batch(np.array([[True, False], [False, True]]))
        assert added == 2

    def test_incremental_dedup_across_batches(self):
        solutions = SolutionSet(2)
        solutions.add_batch(np.array([[True, False]]))
        added = solutions.add_batch(np.array([[True, False], [False, False]]))
        assert added == 1
        assert len(solutions) == 2

    def test_mask_length_checked(self):
        with pytest.raises(ValueError):
            SolutionSet(2).add_batch(np.zeros((2, 2), dtype=bool), mask=np.array([True]))

    def test_shape_checked(self):
        with pytest.raises(ValueError):
            SolutionSet(2).add_batch(np.zeros((2, 3), dtype=bool))

    def test_empty_batch(self):
        assert SolutionSet(2).add_batch(np.zeros((0, 2), dtype=bool)) == 0

    def test_in_batch_duplicates_keep_first_occurrence_order(self):
        solutions = SolutionSet(2)
        matrix = np.array(
            [[True, True], [False, True], [True, True], [False, False], [False, True]]
        )
        assert solutions.add_batch(matrix) == 3
        assert solutions.to_matrix().tolist() == [
            [True, True],
            [False, True],
            [False, False],
        ]

    def test_batch_rows_do_not_leak_duplicates_into_count(self):
        solutions = SolutionSet(1)
        matrix = np.array([[True]] * 10 + [[False]] * 10)
        assert solutions.add_batch(matrix) == 2
        assert len(solutions) == 2

    def test_masked_duplicates_preserve_order(self):
        solutions = SolutionSet(2)
        matrix = np.array([[True, False], [True, True], [True, False], [False, True]])
        mask = np.array([True, False, True, True])
        assert solutions.add_batch(matrix, mask) == 2
        assert solutions.to_matrix().tolist() == [[True, False], [False, True]]

    def test_zero_width_rows_collapse_to_one(self):
        solutions = SolutionSet(0)
        assert solutions.add_batch(np.zeros((5, 0), dtype=bool)) == 1
        assert solutions.add_batch(np.zeros((3, 0), dtype=bool)) == 0

    def test_large_batch_matches_row_by_row_reference(self):
        rng = np.random.default_rng(7)
        matrix = rng.random((500, 6)) < 0.5
        batch_set = SolutionSet(6)
        reference_set = SolutionSet(6)
        batch_added = batch_set.add_batch(matrix)
        reference_added = sum(reference_set.add(row) for row in matrix)
        assert batch_added == reference_added
        assert np.array_equal(batch_set.to_matrix(), reference_set.to_matrix())


class TestExport:
    def test_to_matrix_preserves_insertion_order(self):
        solutions = SolutionSet(2)
        solutions.add(np.array([True, False]))
        solutions.add(np.array([False, True]))
        matrix = solutions.to_matrix()
        assert matrix.shape == (2, 2)
        assert matrix[0].tolist() == [True, False]

    def test_to_matrix_limit(self):
        solutions = SolutionSet(1)
        for value in (True, False):
            solutions.add(np.array([value]))
        assert solutions.to_matrix(limit=1).shape == (1, 1)

    def test_empty_matrix(self):
        assert SolutionSet(4).to_matrix().shape == (0, 4)

    def test_to_literal_lists(self):
        solutions = SolutionSet(3)
        solutions.add(np.array([True, False, True]))
        assert solutions.to_literal_lists() == [[1, -2, 3]]

    def test_iteration(self):
        solutions = SolutionSet(1)
        solutions.add(np.array([True]))
        assert [row.tolist() for row in solutions] == [[True]]
