"""Tests for the probabilistic circuit model (repro.core.model)."""

import numpy as np
import pytest

from repro.circuit.builder import CircuitBuilder
from repro.core.model import ProbabilisticCircuitModel
from repro.core.transform import transform_cnf
from repro.tensor.tensor import Tensor
from tests.conftest import all_assignments


def _mux_circuit():
    builder = CircuitBuilder("mux")
    s, t, e = builder.input("s"), builder.input("t"), builder.input("e")
    out = builder.mux(s, t, e, name="out")
    builder.output(out)
    return builder.circuit


class TestConstruction:
    def test_requires_outputs(self, small_circuit):
        with pytest.raises(ValueError):
            ProbabilisticCircuitModel(small_circuit, output_nets=[])

    def test_cone_restriction(self, small_circuit):
        model = ProbabilisticCircuitModel(small_circuit, output_nets=["g"])
        # g = a ^ c does not depend on b.
        assert set(model.input_order) == {"a", "c"}

    def test_explicit_input_order_must_cover_cone(self, small_circuit):
        with pytest.raises(ValueError):
            ProbabilisticCircuitModel(small_circuit, output_nets=["f"], input_order=["a"])

    def test_describe(self, small_circuit):
        model = ProbabilisticCircuitModel(small_circuit, output_nets=["f", "g"])
        info = model.describe()
        assert info["inputs"] == 3
        assert info["outputs"] == 2
        assert info["operations"] >= 3


class TestForwardSemantics:
    def test_matches_boolean_circuit_on_corners(self):
        circuit = _mux_circuit()
        model = ProbabilisticCircuitModel(circuit, output_nets=["out"])
        matrix = all_assignments(3).astype(float)
        outputs = model.forward(Tensor(matrix)).numpy()
        for row, bits in enumerate(all_assignments(3)):
            assignment = dict(zip(model.input_order, bits))
            expected = circuit.evaluate(assignment)["out"]
            assert np.isclose(outputs[row, 0], float(expected))

    def test_probabilistic_interior_point(self):
        """For the mux with all inputs at probability 0.5 the output probability is 0.5."""
        circuit = _mux_circuit()
        model = ProbabilisticCircuitModel(circuit, output_nets=["out"])
        outputs = model.forward(Tensor(np.full((1, 3), 0.5)))
        assert 0.25 <= outputs.numpy()[0, 0] <= 0.75

    def test_constant_nets(self):
        builder = CircuitBuilder()
        a = builder.input("a")
        one = builder.constant(True)
        out = builder.and_(a, one, name="out")
        builder.output(out)
        model = ProbabilisticCircuitModel(builder.circuit, output_nets=["out"])
        outputs = model.forward(Tensor([[0.3]]))
        assert np.isclose(outputs.numpy()[0, 0], 0.3)

    def test_shape_validation(self, small_circuit):
        model = ProbabilisticCircuitModel(small_circuit, output_nets=["f"])
        with pytest.raises(ValueError):
            model.forward(Tensor(np.zeros((2, 99))))

    def test_gradients_flow_to_inputs(self):
        circuit = _mux_circuit()
        model = ProbabilisticCircuitModel(circuit, output_nets=["out"])
        probabilities = Tensor(np.full((4, 3), 0.4), requires_grad=True)
        model.forward(probabilities).sum().backward()
        assert probabilities.grad is not None
        assert probabilities.grad.shape == (4, 3)
        assert np.abs(probabilities.grad).sum() > 0


class TestFromTransform:
    def test_fig1_model(self, fig1_formula):
        transform = transform_cnf(fig1_formula)
        model = ProbabilisticCircuitModel.from_transform(transform)
        assert model.num_outputs == 1
        assert model.num_inputs == len(transform.constrained_inputs())
        outputs = model.forward(Tensor(np.ones((2, model.num_inputs))))
        assert outputs.shape == (2, 1)

    def test_unconstrained_instance_rejected(self):
        from repro.cnf.formula import CNF

        # A single gate-definition group with no output constraint at all.
        formula = CNF([[2, -1], [-2, 1]], num_variables=2, name="free")
        transform = transform_cnf(formula)
        if not transform.constraints:
            with pytest.raises(ValueError):
                ProbabilisticCircuitModel.from_transform(transform)
