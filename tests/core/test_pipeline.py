"""Tests for the end-to-end pipeline (repro.core.pipeline)."""

import pytest

from repro.cnf.dimacs import write_dimacs
from repro.cnf.formula import CNF
from repro.core.config import SamplerConfig
from repro.core.pipeline import load_formula, sample_cnf
from repro.core.transform import transform_cnf
from tests.conftest import FIG1_DIMACS


class TestLoadFormula:
    def test_accepts_cnf_object(self, tiny_sat_formula):
        assert load_formula(tiny_sat_formula) is tiny_sat_formula

    def test_accepts_dimacs_text(self):
        formula = load_formula("p cnf 2 1\n1 2 0\n")
        assert formula.num_clauses == 1

    def test_accepts_path(self, tmp_path, fig1_formula):
        path = tmp_path / "fig1.cnf"
        path.write_text(write_dimacs(fig1_formula))
        formula = load_formula(path)
        assert formula.num_clauses == fig1_formula.num_clauses

    def test_accepts_string_path(self, tmp_path, fig1_formula):
        path = tmp_path / "inst.cnf"
        path.write_text(write_dimacs(fig1_formula))
        formula = load_formula(str(path))
        assert formula.num_variables == 14

    def test_rejects_unknown_type(self):
        with pytest.raises(TypeError):
            load_formula(12345)


class TestSampleCnf:
    def test_end_to_end_on_fig1_text(self):
        result = sample_cnf(
            FIG1_DIMACS, num_solutions=16,
            config=SamplerConfig(batch_size=64, seed=0, max_rounds=4),
        )
        assert result.sample.num_unique >= 16
        assert result.transform_seconds > 0
        assert result.sample_seconds > 0
        assert result.total_seconds >= result.sample_seconds
        assert result.throughput > 0

    def test_summary_row(self, fig1_formula):
        result = sample_cnf(
            fig1_formula, num_solutions=8,
            config=SamplerConfig(batch_size=32, seed=0, max_rounds=2),
        )
        row = result.summary()
        assert row["instance"] == "fig1"
        assert row["clauses"] == 21
        assert row["unique_solutions"] >= 1

    def test_precomputed_transform_skips_rerun(self, fig1_formula):
        transform = transform_cnf(fig1_formula)
        result = sample_cnf(
            fig1_formula, num_solutions=4, transform=transform,
            config=SamplerConfig(batch_size=32, seed=0, max_rounds=2),
        )
        assert result.transform is transform

    def test_transform_options_forwarded(self, fig1_formula):
        result = sample_cnf(
            fig1_formula, num_solutions=4,
            config=SamplerConfig(batch_size=32, seed=0, max_rounds=2),
            use_signature_fast_path=False,
        )
        assert result.transform.stats.signature_matches == 0

    def test_all_solutions_valid(self, tiny_sat_formula):
        result = sample_cnf(
            tiny_sat_formula, num_solutions=4,
            config=SamplerConfig(batch_size=16, seed=1, max_rounds=4),
        )
        matrix = result.sample.solution_matrix()
        assert tiny_sat_formula.evaluate_batch(matrix).all()
