"""Tests for the gradient-descent sampler (repro.core.sampler)."""

import time

import numpy as np
import pytest

from repro.cnf.formula import CNF
from repro.core.config import SamplerConfig
from repro.core.sampler import GradientSATSampler
from repro.core.transform import transform_cnf
from repro.gpu.device import Device, DeviceKind


def _small_config(**overrides) -> SamplerConfig:
    base = dict(batch_size=64, seed=0, max_rounds=8)
    base.update(overrides)
    return SamplerConfig(**base)


class TestFig1Sampling:
    def test_all_solutions_found(self, fig1_formula):
        sampler = GradientSATSampler(fig1_formula, config=_small_config(batch_size=256))
        result = sampler.sample(num_solutions=32)
        assert result.num_unique == 32  # the instance has exactly 32 models
        matrix = result.solution_matrix()
        assert fig1_formula.evaluate_batch(matrix).all()

    def test_every_reported_solution_is_valid(self, fig1_formula):
        result = GradientSATSampler(fig1_formula, config=_small_config()).sample(20)
        matrix = result.solution_matrix()
        assert matrix.shape[0] == result.num_unique
        assert fig1_formula.evaluate_batch(matrix).all()

    def test_validity_rate_is_high(self, fig1_formula):
        result = GradientSATSampler(fig1_formula, config=_small_config()).sample(20)
        assert result.validity_rate > 0.8

    def test_deterministic_given_seed(self, fig1_formula):
        first = GradientSATSampler(fig1_formula, config=_small_config()).sample(16)
        second = GradientSATSampler(fig1_formula, config=_small_config()).sample(16)
        assert np.array_equal(first.solution_matrix(), second.solution_matrix())

    def test_different_seeds_differ(self, fig1_formula):
        first = GradientSATSampler(fig1_formula, config=_small_config(seed=1)).sample(16)
        second = GradientSATSampler(fig1_formula, config=_small_config(seed=2)).sample(16)
        assert not np.array_equal(first.solution_matrix(), second.solution_matrix())


class TestSampleResultBookkeeping:
    def test_round_records(self, fig1_formula):
        result = GradientSATSampler(fig1_formula, config=_small_config()).sample(8)
        assert len(result.rounds) >= 1
        record = result.rounds[0]
        assert record.num_candidates == 64
        assert record.num_valid <= record.num_candidates
        assert len(record.loss_history) == 5  # default iteration count

    def test_throughput_and_summary(self, fig1_formula):
        result = GradientSATSampler(fig1_formula, config=_small_config()).sample(8)
        assert result.throughput > 0
        summary = result.summary()
        assert summary["unique_solutions"] == result.num_unique
        assert 0.0 <= summary["validity_rate"] <= 1.0

    def test_invalid_request_rejected(self, fig1_formula):
        with pytest.raises(ValueError):
            GradientSATSampler(fig1_formula, config=_small_config()).sample(0)

    def test_stall_stops_early(self, fig1_formula):
        config = _small_config(batch_size=256, max_rounds=50, stall_rounds=2)
        result = GradientSATSampler(fig1_formula, config=config).sample(10_000)
        # Only 32 models exist, so the sampler must stop well before 50 rounds.
        assert len(result.rounds) < 50
        assert result.num_unique == 32

    def test_timeout_respected(self, fig1_formula):
        config = _small_config(max_rounds=10_000, timeout_seconds=0.2, stall_rounds=None)
        result = GradientSATSampler(fig1_formula, config=config).sample(10_000)
        assert result.elapsed_seconds < 5.0


class TestTimeoutDeadline:
    """Regression: the deadline must cut into a round's GD loop, not just
    be checked between rounds — one long round used to overshoot freely."""

    @staticmethod
    def _install_fake_clock(monkeypatch, tick=0.01):
        import repro.core.sampler as sampler_module

        state = {"now": 0.0}

        def fake_perf_counter():
            state["now"] += tick
            return state["now"]

        # time is the shared stdlib module, so this also covers the engine's
        # deadline checks in repro.engine.train; monkeypatch restores it.
        monkeypatch.setattr(sampler_module.time, "perf_counter", fake_perf_counter)
        return state

    @pytest.mark.parametrize("backend", ["engine", "interpreter"])
    def test_long_round_cut_at_deadline(self, fig1_formula, monkeypatch, backend):
        self._install_fake_clock(monkeypatch)
        config = _small_config(
            backend=backend,
            batch_size=16,
            max_rounds=10,
            stall_rounds=None,
            timeout_seconds=0.5,
        ).with_(iterations=1000)
        result = GradientSATSampler(fig1_formula, config=config).sample(10_000)
        assert result.timed_out
        assert len(result.rounds) == 1
        # The deadline struck mid-round: far fewer iterations than requested.
        assert 0 < len(result.rounds[0].loss_history) < 1000

    def test_partial_chunks_kept_on_timeout(self, fig1_formula, monkeypatch):
        self._install_fake_clock(monkeypatch)
        config = _small_config(
            batch_size=8,
            max_rounds=10,
            stall_rounds=None,
            timeout_seconds=0.3,
            device=Device(DeviceKind.CPU),  # per-sample chunks
        ).with_(iterations=5)
        result = GradientSATSampler(fig1_formula, config=config).sample(10_000)
        assert result.timed_out
        assert len(result.rounds) == 1
        # Only the chunks learned before the deadline produced candidates,
        # and every candidate that validated is still collected.
        assert 0 < result.rounds[0].num_candidates < 8
        assert result.num_generated == result.rounds[0].num_candidates
        matrix = result.solution_matrix()
        if matrix.shape[0]:
            assert fig1_formula.evaluate_batch(matrix).all()

    def test_timeout_overshoot_bounded_wall_clock(self, fig1_formula):
        # Without the in-round deadline, this round would run 100k GD
        # iterations (many seconds); with it, the overshoot is one iteration.
        config = _small_config(
            batch_size=256, max_rounds=3, stall_rounds=None, timeout_seconds=0.2
        ).with_(iterations=100_000)
        start = time.perf_counter()
        result = GradientSATSampler(fig1_formula, config=config).sample(10**6)
        elapsed = time.perf_counter() - start
        assert result.timed_out
        assert elapsed < 2.0


class TestUnsatisfiableAndEdgeCases:
    def test_unsat_instance_returns_empty(self, tiny_unsat_formula):
        config = _small_config(max_rounds=2)
        result = GradientSATSampler(tiny_unsat_formula, config=config).sample(5)
        assert result.num_unique == 0

    def test_unconstrained_instance_random_sampling(self):
        formula = CNF([[2, -1], [-2, 1]], num_variables=2, name="buf-only")
        result = GradientSATSampler(formula, config=_small_config()).sample(2)
        assert result.num_unique == 2
        assert formula.evaluate_batch(result.solution_matrix()).all()

    def test_free_variables_sampled(self):
        formula = CNF([[1, 2]], num_variables=4, name="free-vars")
        result = GradientSATSampler(formula, config=_small_config()).sample(6)
        assert result.num_unique >= 6
        assert formula.evaluate_batch(result.solution_matrix()).all()

    def test_precomputed_transform_reused(self, fig1_formula):
        transform = transform_cnf(fig1_formula)
        sampler = GradientSATSampler(fig1_formula, transform=transform, config=_small_config())
        assert sampler.transform is transform
        assert sampler.sample(8).num_unique >= 8


class TestDevicesAndOptimizers:
    def test_cpu_device_matches_gpu_results_quality(self, fig1_formula):
        gpu_config = _small_config(batch_size=32, max_rounds=2)
        cpu_config = _small_config(
            batch_size=32, max_rounds=2, device=Device(DeviceKind.CPU)
        )
        gpu_result = GradientSATSampler(fig1_formula, config=gpu_config).sample(16)
        cpu_result = GradientSATSampler(fig1_formula, config=cpu_config).sample(16)
        assert cpu_result.num_unique > 0
        assert fig1_formula.evaluate_batch(cpu_result.solution_matrix()).all()
        assert gpu_result.num_unique > 0

    def test_adam_optimizer(self, fig1_formula):
        config = _small_config(optimizer="adam", learning_rate=0.5)
        result = GradientSATSampler(fig1_formula, config=config).sample(8)
        assert result.num_unique >= 8

    def test_learning_curve_monotone(self, fig1_formula):
        sampler = GradientSATSampler(fig1_formula, config=_small_config(batch_size=128))
        curve = sampler.learning_curve(max_iterations=5, batch_size=128)
        assert len(curve) == 6
        assert all(later >= earlier for earlier, later in zip(curve, curve[1:]))
        assert curve[-1] > 0

    def test_learning_curve_unconstrained_instance(self):
        formula = CNF([[1, 2]], num_variables=2, name="tiny")
        sampler = GradientSATSampler(formula, config=_small_config(batch_size=16))
        curve = sampler.learning_curve(max_iterations=3, batch_size=16)
        assert len(curve) == 4
