"""Tests for CNF gate-signature generation and matching (repro.core.signatures)."""

import pytest

from repro.circuit.gates import GateType
from repro.cnf.clause import Clause
from repro.core.signatures import gate_signature_clauses, match_gate_signature


def _as_clauses(raw):
    return [Clause(clause) for clause in raw]


class TestSignatureGeneration:
    def test_not_signature_matches_eq1(self):
        assert sorted(map(sorted, gate_signature_clauses(GateType.NOT, 2, [1]))) == sorted(
            map(sorted, [[2, 1], [-2, -1]])
        )

    def test_or_signature_matches_eq2(self):
        clauses = gate_signature_clauses(GateType.OR, 4, [1, 2, 3])
        assert [-4, 1, 2, 3] in clauses
        assert [4, -1] in clauses and [4, -2] in clauses and [4, -3] in clauses

    def test_and_signature_matches_eq3(self):
        clauses = gate_signature_clauses(GateType.AND, 4, [1, 2])
        assert [4, -1, -2] in clauses
        assert [-4, 1] in clauses and [-4, 2] in clauses

    def test_xor_requires_two_fanins(self):
        with pytest.raises(ValueError):
            gate_signature_clauses(GateType.XOR, 4, [1, 2, 3])

    def test_inverted_inputs_supported(self):
        clauses = gate_signature_clauses(GateType.AND, 3, [1, -2])
        assert [3, -1, 2] in clauses
        assert [-3, -2] in clauses


class TestSignatureMatching:
    @pytest.mark.parametrize(
        "gate_type, fanins",
        [
            (GateType.NOT, (1,)),
            (GateType.BUF, (1,)),
            (GateType.AND, (1, 2)),
            (GateType.AND, (1, 2, 3)),
            (GateType.OR, (1, 2)),
            (GateType.OR, (1, 2, 3, 4)),
            (GateType.XOR, (1, 2)),
            (GateType.XNOR, (1, 2)),
        ],
    )
    def test_roundtrip(self, gate_type, fanins):
        output = 9
        clauses = _as_clauses(gate_signature_clauses(gate_type, output, fanins))
        match = match_gate_signature(output, clauses)
        assert match is not None
        assert match.gate_type == gate_type
        assert match.output == output
        assert tuple(sorted(match.fanin_literals, key=abs)) == fanins

    def test_wrong_candidate_not_matched(self):
        clauses = _as_clauses(gate_signature_clauses(GateType.AND, 9, (1, 2)))
        assert match_gate_signature(1, clauses) is None

    def test_partial_group_not_matched(self):
        clauses = _as_clauses(gate_signature_clauses(GateType.AND, 9, (1, 2)))[:2]
        assert match_gate_signature(9, clauses) is None

    def test_extra_clause_not_matched(self):
        clauses = _as_clauses(
            gate_signature_clauses(GateType.OR, 9, (1, 2)) + [[3, 4]]
        )
        assert match_gate_signature(9, clauses) is None

    def test_empty_group(self):
        assert match_gate_signature(1, []) is None

    def test_nand_nor_matched_as_inverted_forms(self):
        nand_clauses = _as_clauses(gate_signature_clauses(GateType.NAND, 9, (1, 2)))
        nor_clauses = _as_clauses(gate_signature_clauses(GateType.NOR, 9, (1, 2)))
        # NAND(x) == AND signature with the output inverted; the matcher reports
        # the gate through the generic AND/OR matcher with negated output, so it
        # may legitimately return None here (the generic extraction handles it).
        for clauses in (nand_clauses, nor_clauses):
            match = match_gate_signature(9, clauses)
            if match is not None:
                assert match.gate_type in (
                    GateType.AND, GateType.OR, GateType.NAND, GateType.NOR
                )
