"""Tests for cooperative cancellation (should_stop) and round callbacks.

The satellite contract: ``should_stop`` is polled at exactly the timeout
deadline's check points — between rounds, between device chunks and between
GD iterations — on both samplers and both evaluation backends, and a halt it
causes is reported as ``stopped_early`` (distinct from ``timed_out``).
"""

import numpy as np
import pytest

from repro.cnf.dimacs import parse_dimacs
from repro.core.circuit_sampler import CircuitSampler
from repro.core.config import SamplerConfig
from repro.core.sampler import GradientSATSampler
from tests.conftest import FIG1_DIMACS


@pytest.fixture
def fig1():
    return parse_dimacs(FIG1_DIMACS, name="fig1")


def make_counter_stop(after_calls):
    calls = {"count": 0}

    def should_stop():
        calls["count"] += 1
        return calls["count"] > after_calls

    return should_stop, calls


class TestSamplerCancellation:
    @pytest.mark.parametrize("backend", ["engine", "interpreter"])
    def test_immediate_stop(self, fig1, backend):
        sampler = GradientSATSampler(
            fig1, config=SamplerConfig(batch_size=16, seed=0, backend=backend)
        )
        result = sampler.sample(10_000, should_stop=lambda: True)
        assert result.stopped_early is True
        assert result.timed_out is False
        assert result.num_unique == 0
        assert result.summary()["stopped_early"] is True

    @pytest.mark.parametrize("backend", ["engine", "interpreter"])
    def test_mid_run_stop_keeps_partial_work(self, fig1, backend):
        should_stop, calls = make_counter_stop(after_calls=3)
        sampler = GradientSATSampler(
            fig1, config=SamplerConfig(batch_size=16, seed=0, backend=backend)
        )
        result = sampler.sample(10_000, should_stop=should_stop)
        assert result.stopped_early is True
        assert calls["count"] > 3  # polled repeatedly, inside the GD loop too

    def test_no_stop_means_flag_unset(self, fig1):
        sampler = GradientSATSampler(fig1, config=SamplerConfig(batch_size=16, seed=0))
        result = sampler.sample(8, should_stop=lambda: False)
        assert result.stopped_early is False
        assert result.summary()["stopped_early"] is False

    def test_stop_does_not_change_completed_prefix(self, fig1):
        # A run stopped after it naturally finished equals the unstopped run.
        config = SamplerConfig(batch_size=16, seed=0)
        full = GradientSATSampler(fig1, config=config).sample(8)
        stopped = GradientSATSampler(fig1, config=config).sample(
            8, should_stop=lambda: False
        )
        assert np.array_equal(
            full.solutions.to_matrix(), stopped.solutions.to_matrix()
        )

    def test_on_round_reports_new_unique_rows(self, fig1):
        sampler = GradientSATSampler(fig1, config=SamplerConfig(batch_size=16, seed=0))
        events = []
        result = sampler.sample(
            30, on_round=lambda record, rows: events.append((record.round_index, rows))
        )
        assert len(events) == len(result.rounds)
        assert [index for index, _ in events] == [r.round_index for r in result.rounds]
        stacked = np.concatenate([rows for _, rows in events], axis=0)
        assert np.array_equal(stacked, result.solutions.to_matrix())


class TestCircuitSamplerCancellation:
    @pytest.mark.parametrize("backend", ["engine", "interpreter"])
    def test_immediate_stop(self, small_circuit, backend):
        sampler = CircuitSampler(
            small_circuit,
            config=SamplerConfig(batch_size=16, seed=0, backend=backend),
        )
        result = sampler.sample(10_000, should_stop=lambda: True)
        assert result.stopped_early is True
        assert result.timed_out is False
        assert result.num_unique == 0

    def test_no_stop_means_flag_unset(self, small_circuit):
        sampler = CircuitSampler(small_circuit, config=SamplerConfig(batch_size=16, seed=0))
        result = sampler.sample(4, should_stop=lambda: False)
        assert result.stopped_early is False
