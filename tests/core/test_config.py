"""Tests for the sampler configuration (repro.core.config)."""

import pytest

from repro.core.config import SamplerConfig
from repro.gpu.device import DeviceKind


class TestDefaults:
    def test_paper_defaults(self):
        config = SamplerConfig.paper_defaults()
        assert config.learning_rate == 10.0
        assert config.iterations == 5
        assert config.optimizer == "sgd"

    def test_default_device_is_vectorised(self):
        assert SamplerConfig().device.kind == DeviceKind.GPU_SIM


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"batch_size": 0},
            {"iterations": 0},
            {"learning_rate": 0.0},
            {"max_rounds": 0},
            {"init_scale": 0.0},
            {"optimizer": "rmsprop"},
            {"timeout_seconds": 0.0},
            {"stall_rounds": 0},
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            SamplerConfig(**kwargs)

    def test_none_timeout_allowed(self):
        assert SamplerConfig(timeout_seconds=None).timeout_seconds is None

    def test_none_stall_rounds_allowed(self):
        assert SamplerConfig(stall_rounds=None).stall_rounds is None


class TestWith:
    def test_with_overrides_field(self):
        config = SamplerConfig()
        updated = config.with_(batch_size=16)
        assert updated.batch_size == 16
        assert config.batch_size != 16 or config.batch_size == 2048

    def test_with_validates(self):
        with pytest.raises(ValueError):
            SamplerConfig().with_(learning_rate=-1.0)

    def test_frozen(self):
        with pytest.raises(Exception):
            SamplerConfig().batch_size = 1
