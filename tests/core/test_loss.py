"""Tests for loss construction (repro.core.loss)."""

import numpy as np
import pytest

from repro.core.loss import per_sample_residual, regression_loss, target_matrix
from repro.tensor.tensor import Tensor


class TestTargetMatrix:
    def test_defaults_to_ones(self):
        targets = target_matrix(3, ["o1", "o2"])
        assert targets.shape == (3, 2)
        assert targets.all()

    def test_explicit_zero_targets(self):
        targets = target_matrix(2, ["o1", "o2"], targets={"o2": False})
        assert targets[:, 0].all()
        assert not targets[:, 1].any()

    def test_true_targets_stay_one(self):
        targets = target_matrix(2, ["o1"], targets={"o1": True})
        assert targets.all()


class TestRegressionLoss:
    def test_zero_when_outputs_match(self):
        outputs = Tensor(np.ones((4, 2)))
        assert regression_loss(outputs, np.ones((4, 2))).item() == 0.0

    def test_counts_every_mismatch(self):
        outputs = Tensor(np.zeros((2, 3)))
        assert regression_loss(outputs, np.ones((2, 3))).item() == 6.0

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            regression_loss(Tensor(np.zeros((2, 2))), np.ones((2, 3)))

    def test_gradient_is_two_times_residual(self):
        outputs = Tensor(np.full((1, 2), 0.25), requires_grad=True)
        regression_loss(outputs, np.ones((1, 2))).backward()
        assert np.allclose(outputs.grad, 2 * (0.25 - 1.0) * np.ones((1, 2)))


class TestPerSampleResidual:
    def test_2d(self):
        outputs = np.array([[1.0, 0.0], [0.5, 0.5]])
        targets = np.ones((2, 2))
        residuals = per_sample_residual(outputs, targets)
        assert np.allclose(residuals, [1.0, 0.5])

    def test_1d(self):
        assert np.allclose(per_sample_residual(np.array([0.5]), np.array([1.0])), [0.25])
