"""Tests for Algorithm 1 (repro.core.transform)."""

import numpy as np
import pytest

from repro.baselines.dpll import DPLLSolver
from repro.circuit.tseitin import circuit_to_cnf
from repro.cnf.formula import CNF
from repro.core.transform import transform_cnf
from repro.instances.or_chain import generate_or_instance
from tests.conftest import all_assignments


class TestFig1Example:
    """The paper's Fig. 1 walk-through."""

    def test_structure_recovered(self, fig1_formula):
        result = transform_cnf(fig1_formula)
        # 6 primary inputs (one per chain head / mux data input), as in the paper.
        assert len(result.primary_inputs) == 6
        # A single constrained output (x10 = 1).
        assert len(result.constraints) == 1
        # Three of the six inputs lie on the constrained path.
        assert len(result.constrained_inputs()) == 3
        assert len(result.unconstrained_inputs()) == 3

    def test_operation_reduction_positive(self, fig1_formula):
        result = transform_cnf(fig1_formula)
        assert result.stats.operations_reduction > 1.0

    def test_all_original_solutions_preserved(self, fig1_formula):
        """The completion of every PI assignment satisfying the constraints is a model,
        and the transformation finds exactly the original model count (32)."""
        result = transform_cnf(fig1_formula)
        matrix = all_assignments(len(result.primary_inputs))
        completed = result.complete_assignments(matrix)
        valid = fig1_formula.evaluate_batch(completed)
        # Count models of the original formula by brute force over its 14 variables
        # using DPLL enumeration (32 models), and compare against the number of
        # distinct valid completions.
        models = {tuple(model.tolist()) for model in DPLLSolver(fig1_formula).enumerate_models()}
        distinct_valid = {tuple(row.tolist()) for row in completed[valid]}
        assert distinct_valid <= models
        assert len(distinct_valid) == len(models) == 32

    def test_definitions_reference_only_earlier_names(self, fig1_formula):
        result = transform_cnf(fig1_formula)
        known = set(result.primary_inputs)
        for name, expr in result.definitions:
            assert expr.support() <= known
            known.add(name)


class TestEquivalencePreservation:
    """The transformation must be exactly equivalence-preserving: a completed
    assignment satisfies the original CNF iff the constraint outputs are 1."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_or_instances(self, seed):
        formula, _ = generate_or_instance(
            num_inputs=8, num_constrained_outputs=2, num_unconstrained_cones=2,
            cone_width=4, seed=seed,
        )
        result = transform_cnf(formula)
        matrix = all_assignments(len(result.primary_inputs))
        completed = result.complete_assignments(matrix)
        valid = formula.evaluate_batch(completed)
        if result.constraints:
            from repro.circuit.simulate import simulate

            outputs = simulate(
                result.circuit, matrix, input_order=result.primary_inputs,
                nets=result.constraint_nets(),
            )
            constraint_ok = np.ones(matrix.shape[0], dtype=bool)
            for net in result.constraint_nets():
                constraint_ok &= outputs[net]
            assert np.array_equal(valid, constraint_ok)
        else:
            assert valid.all()

    def test_unsatisfiable_instance_has_no_valid_completion(self):
        formula = CNF([[1], [-1, 2], [-2, -1]], num_variables=2, name="unsat-ish")
        # x1=1, x2=1 required by first two clauses; third forbids it -> UNSAT.
        result = transform_cnf(formula)
        matrix = all_assignments(max(len(result.primary_inputs), 1))[:, : len(result.primary_inputs)]
        completed = result.complete_assignments(matrix)
        assert not formula.evaluate_batch(completed).any()


class TestClassification:
    def test_unit_clause_first_defines_constant_output(self):
        formula = CNF([[3], [-3, 1, 2], [3, -1], [3, -2]], num_variables=3)
        result = transform_cnf(formula)
        # x3 is pinned to 1; the remaining clauses constrain (x1 | x2).
        assert result.primary_outputs.get("x3") is True or result.constraints

    def test_free_variables_detected(self):
        formula = CNF([[1, 2]], num_variables=5)
        result = transform_cnf(formula)
        assert set(result.free_variables) == {"x3", "x4", "x5"}

    def test_tautological_clauses_ignored(self):
        formula = CNF([[1, -1], [2, 3]], num_variables=3)
        result = transform_cnf(formula)
        completed = result.complete_assignments(
            all_assignments(len(result.primary_inputs))
        )
        assert formula.evaluate_batch(completed).any()

    def test_duplicate_clauses_do_not_block_recovery(self):
        """Regression test: duplicated gate clauses used to poison the group buffer."""
        formula = CNF(
            [[2, -1], [-2, 1], [-2, 1], [3, -2, -2], [-3, 2]], num_variables=3
        )
        result = transform_cnf(formula)
        assert len(result.definitions) >= 2

    def test_summary_fields(self, fig1_formula):
        summary = transform_cnf(fig1_formula).summary()
        assert summary["instance"] == "fig1"
        assert summary["primary_inputs"] == 6
        assert summary["constraints"] == 1


class TestOptions:
    def test_no_simplification_still_equivalent(self, fig1_formula):
        result = transform_cnf(fig1_formula, simplify_expressions=False)
        matrix = all_assignments(len(result.primary_inputs))
        completed = result.complete_assignments(matrix)
        assert fig1_formula.evaluate_batch(completed).sum() == 32

    def test_no_signature_fast_path(self, fig1_formula):
        result = transform_cnf(fig1_formula, use_signature_fast_path=False)
        assert result.stats.signature_matches == 0
        assert len(result.constraints) == 1

    def test_no_optimization(self, fig1_formula):
        result = transform_cnf(fig1_formula, optimize=False)
        matrix = all_assignments(len(result.primary_inputs))
        completed = result.complete_assignments(matrix)
        assert fig1_formula.evaluate_batch(completed).sum() == 32

    def test_small_group_size_forces_fallback(self, fig1_formula):
        result = transform_cnf(fig1_formula, max_group_size=2)
        # Even with aggressive flushing the transformation stays sound.
        matrix = all_assignments(len(result.primary_inputs))
        completed = result.complete_assignments(matrix)
        valid = fig1_formula.evaluate_batch(completed)
        assert valid.any()

    def test_stats_counters(self, fig1_formula):
        stats = transform_cnf(fig1_formula).stats
        assert stats.num_clauses == 21
        assert stats.num_definitions >= 8
        assert stats.seconds > 0.0
        assert stats.cnf_operations > stats.circuit_operations


class TestRoundTripFromCircuit:
    def test_tseitin_roundtrip_preserves_input_solutions(self, small_circuit):
        formula, var_map = circuit_to_cnf(small_circuit, output_constraints={"f": True})
        formula.name = "roundtrip"
        result = transform_cnf(formula)
        matrix = all_assignments(len(result.primary_inputs))
        completed = result.complete_assignments(matrix)
        valid = formula.evaluate_batch(completed)
        # Reference: which input assignments of the original circuit satisfy f=1?
        reference = 0
        for bits in all_assignments(3):
            assignment = dict(zip(small_circuit.inputs, bits))
            if small_circuit.evaluate(assignment)["f"]:
                reference += 1
        # The transformed instance must reach at least as many distinct full
        # assignments (PI space may be a superset of the circuit inputs).
        assert int(valid.sum()) >= reference
