"""Tests for Boolean-expression extraction from clause groups (repro.core.extraction)."""

import pytest

from repro.boolalg.expr import And, FALSE, Not, Or, TRUE, Var
from repro.boolalg.truth_table import equivalent
from repro.cnf.clause import Clause
from repro.core.extraction import (
    clause_to_expr,
    expression_for_literal,
    find_boolean_expression,
    group_to_constraint_expr,
    index_of_variable,
    literal_to_expr,
    support_indices,
    variable_name,
)


class TestNaming:
    def test_variable_name_roundtrip(self):
        assert variable_name(42) == "x42"
        assert index_of_variable("x42") == 42

    def test_invalid_index(self):
        with pytest.raises(ValueError):
            variable_name(0)

    def test_invalid_name(self):
        with pytest.raises(ValueError):
            index_of_variable("y3")

    def test_literal_to_expr(self):
        assert literal_to_expr(3) == Var("x3")
        assert literal_to_expr(-3) == Not(Var("x3"))

    def test_support_indices(self):
        expr = And(Var("x3"), Not(Var("x9")))
        assert support_indices(expr) == {"x3": 3, "x9": 9}


class TestClauseToExpr:
    def test_disjunction(self):
        expr = clause_to_expr(Clause([1, -2]))
        assert equivalent(expr, Or(Var("x1"), Not(Var("x2"))))

    def test_empty_clause_is_false(self):
        assert clause_to_expr(Clause([])) == FALSE


class TestExpressionForLiteral:
    def test_inverter_signature(self):
        """Eq. 1: (f | x) & (~f | ~x) -> f = ~x."""
        clauses = [Clause([2, 1]), Clause([-2, -1])]
        expr = expression_for_literal(2, clauses)
        assert equivalent(expr, Not(Var("x1")))

    def test_or_signature(self):
        """Eq. 2: the OR signature yields f = x1 | x2 from the ~f clause."""
        clauses = [Clause([-3, 1, 2]), Clause([3, -1]), Clause([3, -2])]
        expr = expression_for_literal(3, clauses)
        assert equivalent(expr, Or(Var("x1"), Var("x2")))

    def test_no_matching_clause_gives_true(self):
        assert expression_for_literal(5, [Clause([1, 2])]) == TRUE

    def test_unit_clause_gives_false_for_negation(self):
        # Expression for ~v from the unit clause (v): removing v leaves nothing.
        assert expression_for_literal(-1, [Clause([1])]) == FALSE


class TestFindBooleanExpression:
    def test_paper_eq5_mux(self):
        """The x5 example from Section III-A (clauses of Eq. 5)."""
        clauses = [
            Clause([-4, -107, 5]),
            Clause([-4, 107, -5]),
            Clause([4, -108, 5]),
            Clause([4, 108, -5]),
        ]
        expr = find_boolean_expression(5, clauses)
        assert expr is not None
        reference = Or(And(Var("x107"), Var("x4")), And(Var("x108"), Not(Var("x4"))))
        assert equivalent(expr, reference)

    def test_other_variables_are_rejected(self):
        clauses = [
            Clause([-4, -107, 5]),
            Clause([-4, 107, -5]),
            Clause([4, -108, 5]),
            Clause([4, 108, -5]),
        ]
        assert find_boolean_expression(4, clauses) is None
        assert find_boolean_expression(107, clauses) is None

    def test_unit_clause_defines_constant(self):
        expr = find_boolean_expression(10, [Clause([10])])
        assert expr == TRUE

    def test_negative_unit_clause_defines_constant_false(self):
        expr = find_boolean_expression(10, [Clause([-10])])
        assert expr == FALSE

    def test_clause_not_mentioning_variable_blocks(self):
        clauses = [Clause([2, 1]), Clause([-2, -1]), Clause([3, 4])]
        assert find_boolean_expression(2, clauses) is None

    def test_under_specified_group_rejected(self):
        """A bare (x1 | x2) clause defines no variable (the paper's under-specified case)."""
        clauses = [Clause([1, 2])]
        assert find_boolean_expression(1, clauses) is None
        assert find_boolean_expression(2, clauses) is None

    def test_wide_support_refused(self):
        wide = Clause(list(range(2, 20)) + [-1])
        assert find_boolean_expression(1, [wide], max_vars=10) is None

    def test_empty_group(self):
        assert find_boolean_expression(1, []) is None

    def test_and_signature(self):
        clauses = [Clause([3, -1, -2]), Clause([-3, 1]), Clause([-3, 2])]
        expr = find_boolean_expression(3, clauses)
        assert expr is not None
        assert equivalent(expr, And(Var("x1"), Var("x2")))


class TestGroupToConstraintExpr:
    def test_conjunction_of_clauses(self):
        clauses = [Clause([1, 2]), Clause([-1, 3])]
        expr = group_to_constraint_expr(clauses)
        reference = And(Or(Var("x1"), Var("x2")), Or(Not(Var("x1")), Var("x3")))
        assert equivalent(expr, reference)
