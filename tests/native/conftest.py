"""Fixtures for the native-kernel equivalence suite.

Every test parametrised over ``kernels``/``tier`` runs once per native tier
that can actually be brought up on this host (the C extension wherever a
system compiler exists, Numba where it is installed) and is skipped wholesale
when no tier is available — the suite must pass on hosts with neither.
"""

from __future__ import annotations

import pytest

from repro import native

AVAILABLE_TIERS = native.available_tiers()


@pytest.fixture(params=AVAILABLE_TIERS if AVAILABLE_TIERS else ["missing"])
def tier(request) -> str:
    """Each available native tier name, skipping when none can load."""
    if request.param == "missing":
        pytest.skip("no native kernel tier available on this host")
    return request.param


@pytest.fixture
def kernels(tier):
    """The :class:`~repro.native.kernels.NativeKernels` facade of ``tier``."""
    return native.kernels_for(tier)
