"""Lifecycle of the per-artifact native memos (flattened plans and programs)."""

from __future__ import annotations

import numpy as np

import repro.xp as xp
from repro import native
from repro.cnf.formula import CNF
from repro.engine.compiler import compile_circuit
from repro.native.kernels import cnf_native_arrays, engine_native_state
from repro.serve.cache import ArtifactCache
from tests.engine.conftest import random_circuit


def _formula():
    return CNF([[1, -2], [2, 3], [-1, 3]], num_variables=3, name="cache-test")


class TestMemoisation:
    def test_plan_arrays_are_memoised_on_the_plan(self, kernels):
        plan = _formula().evaluation_plan()
        first = cnf_native_arrays(plan)
        assert cnf_native_arrays(plan) is first
        assert plan._native_arrays["native"] is first

    def test_program_state_is_memoised_on_the_program(self, kernels):
        circuit = random_circuit(np.random.default_rng(0), num_gates=15)
        program = compile_circuit(circuit, list(circuit.outputs))
        first = engine_native_state(program)
        assert engine_native_state(program) is first
        assert program._native_state is first

    def test_flattened_state_matches_the_blocks(self, kernels):
        circuit = random_circuit(np.random.default_rng(1), num_gates=20)
        program = compile_circuit(circuit, list(circuit.outputs))
        state = engine_native_state(program)
        assert state.num_ops == program.num_ops
        assert state.opcodes.shape == state.a_slots.shape == state.out_slots.shape
        position = 0
        for block in program.blocks:
            stop = position + block.size
            assert (state.opcodes[position:stop] == block.opcode).all()
            np.testing.assert_array_equal(state.a_slots[position:stop], block.a_slots)
            np.testing.assert_array_equal(
                state.out_slots[position:stop],
                np.arange(block.out_start, block.out_stop),
            )
            position = stop


class TestClearCaches:
    def test_native_clear_caches_strips_both_memos(self, kernels):
        plan = _formula().evaluation_plan()
        circuit = random_circuit(np.random.default_rng(2), num_gates=10)
        program = compile_circuit(circuit, list(circuit.outputs))
        cnf_native_arrays(plan)
        engine_native_state(program)
        native.clear_caches()
        assert plan._native_arrays == {}
        assert "_native_state" not in program.__dict__

    def test_xp_clear_caches_folds_in_native(self, kernels):
        plan = _formula().evaluation_plan()
        cnf_native_arrays(plan)
        xp.clear_caches()
        assert plan._native_arrays == {}

    def test_memos_rebuild_after_clearing(self, tier, kernels):
        formula = _formula()
        matrix = np.random.default_rng(3).random((16, 3)) < 0.5
        with native.use_kernel(tier):
            before = formula.evaluate_batch(matrix, backend="native")
            xp.clear_caches()
            after = formula.evaluate_batch(matrix, backend="native")
        np.testing.assert_array_equal(before, after)
        assert "native" in formula.evaluation_plan()._native_arrays


class TestArtifactCacheEviction:
    """Byte-bounded eviction must release native memos with their artifacts."""

    def test_byte_bound_eviction_drops_the_native_arrays(self, tier, fig1_formula):
        # max_bytes=1 holds at most one (oversized) artifact: admitting the
        # second one must evict the first on byte-bound grounds.
        cache = ArtifactCache(max_entries=8, max_bytes=1)
        artifact, built = cache.get_or_build(formula=fig1_formula)
        assert built
        plan = artifact.formula.evaluation_plan()
        matrix = np.random.default_rng(4).random((8, plan.num_variables)) < 0.5
        with native.use_kernel(tier):
            artifact.formula.evaluate_batch(matrix, backend="native")
        assert "native" in plan._native_arrays
        cache.get_or_build(formula=_formula())
        # Eviction released the memoised plan — and with it the flattened
        # native arrays, which ride the plan object.
        assert artifact.formula._plan is None

    def test_lru_eviction_releases_the_memoised_plan(self, fig1_formula):
        cache = ArtifactCache(max_entries=1)
        first, built_first = cache.get_or_build(formula=_formula())
        assert built_first
        _, built_second = cache.get_or_build(formula=fig1_formula)
        assert built_second
        # max_entries=1: admitting the second artifact evicted the first and
        # cleared its memoised evaluation plan.
        assert len(cache.signatures()) == 1
        assert first.formula._plan is None
