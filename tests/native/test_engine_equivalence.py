"""Native engine kernels pinned to the pure-NumPy executor paths.

Contract (same as the cross-backend suite): forward outputs and the discrete
bool/packed modes are **bitwise** identical; input gradients match within the
engine's documented 1e-10 accumulation-order budget; and a fixed-seed
end-to-end sampling run produces the byte-identical solution stream.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import native
from repro.core.config import SamplerConfig
from repro.core.pipeline import sample_cnf
from repro.engine.compiler import compile_circuit
from repro.engine.executor import backward, execute_bool, execute_packed, forward
from tests.engine.conftest import random_circuit

GRAD_TOLERANCE = 1e-10


def _program(seed: int, num_gates: int = 60):
    rng = np.random.default_rng(seed)
    circuit = random_circuit(rng, num_inputs=7, num_gates=num_gates, num_outputs=3)
    return compile_circuit(circuit, list(circuit.outputs)), circuit


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
class TestExecutorEquivalence:
    def test_forward_is_bitwise(self, tier, seed):
        program, _ = _program(seed)
        probabilities = np.random.default_rng(seed).random((16, program.input_width))
        with native.use_kernel("python"):
            reference, _ = forward(program, probabilities)
        with native.use_kernel(tier):
            outputs, cache = forward(program, probabilities)
        assert cache.__class__.__name__ == "NativeForwardCache"
        np.testing.assert_array_equal(outputs, reference)

    def test_backward_within_gradient_budget(self, tier, seed):
        program, _ = _program(seed)
        rng = np.random.default_rng(seed + 100)
        probabilities = rng.random((8, program.input_width))
        seed_grad = rng.random((8, len(program.output_nets)))
        with native.use_kernel("python"):
            _, cache = forward(program, probabilities)
            reference = backward(program, cache, seed_grad)
        with native.use_kernel(tier):
            _, cache = forward(program, probabilities)
            grads = backward(program, cache, seed_grad)
        np.testing.assert_allclose(grads, reference, rtol=0.0, atol=GRAD_TOLERANCE)

    def test_bool_mode_is_bitwise(self, tier, seed):
        program, circuit = _program(seed)
        matrix = np.random.default_rng(seed).random((33, program.input_width)) < 0.5
        with native.use_kernel("python"):
            reference = execute_bool(program, matrix)
        with native.use_kernel(tier):
            values = execute_bool(program, matrix)
        for net in circuit.outputs:
            np.testing.assert_array_equal(values[net], reference[net])

    def test_packed_mode_is_bitwise(self, tier, seed):
        program, circuit = _program(seed)
        rng = np.random.default_rng(seed)
        packed_inputs = {
            name: rng.integers(0, 2**63, size=5, dtype=np.uint64)
            for name in program.cone_inputs
        }
        with native.use_kernel("python"):
            reference = execute_packed(program, dict(packed_inputs))
        with native.use_kernel(tier):
            values = execute_packed(program, dict(packed_inputs))
        for net in circuit.outputs:
            np.testing.assert_array_equal(values[net], reference[net])


class TestFloat32Policy:
    def test_forward_is_bitwise_in_float32(self, tier):
        import repro.xp as xp

        program, _ = _program(seed=5)
        probabilities = np.random.default_rng(5).random((16, program.input_width))
        backend = xp.get_backend("numpy:float32")
        probs32 = probabilities.astype(np.float32)
        with native.use_kernel("python"):
            reference, _ = forward(program, probs32, backend)
        with native.use_kernel(tier):
            outputs, _ = forward(program, probs32, backend)
        np.testing.assert_array_equal(outputs, reference)


class TestEndToEndSampling:
    """The acceptance contract: native vs python solution streams are identical."""

    def test_fixed_seed_sample_run_matches_python(self, tier, fig1_formula):
        config = SamplerConfig(batch_size=64, seed=11, max_rounds=3)

        def run(mode):
            with native.use_kernel(mode):
                return sample_cnf(fig1_formula, num_solutions=40, config=config)

        reference = run("python")
        candidate = run(tier)
        ref_matrix = reference.sample.solution_matrix()
        matrix = candidate.sample.solution_matrix()
        assert matrix.tobytes() == ref_matrix.tobytes()
        assert (
            candidate.sample.num_generated
            == reference.sample.num_generated
        )

    def test_config_kernel_field_reaches_the_sampler(self, tier, fig1_formula):
        config = SamplerConfig(batch_size=32, seed=3, max_rounds=1, kernel=tier)
        result = sample_cnf(fig1_formula, num_solutions=10, config=config)
        reference = sample_cnf(
            fig1_formula,
            num_solutions=10,
            config=SamplerConfig(batch_size=32, seed=3, max_rounds=1, kernel="python"),
        )
        assert (
            result.sample.solution_matrix().tobytes()
            == reference.sample.solution_matrix().tobytes()
        )
