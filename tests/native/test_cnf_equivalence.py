"""Native CNF kernels pinned bitwise to the pure-Python/NumPy references."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import native
from repro.cnf.formula import CNF
from repro.cnf.kernel import BACKENDS


def _random_matrix(seed: int, batch: int, num_variables: int) -> np.ndarray:
    return np.random.default_rng(seed).random((batch, num_variables)) < 0.5


def _assert_all_backends_agree(formula: CNF, matrix: np.ndarray) -> None:
    reference = formula.evaluate_batch(matrix, backend="reference")
    reference_counts = formula.unsatisfied_clause_counts(matrix, backend="reference")
    for backend in BACKENDS:
        np.testing.assert_array_equal(
            formula.evaluate_batch(matrix, backend=backend), reference
        )
        np.testing.assert_array_equal(
            formula.unsatisfied_clause_counts(matrix, backend=backend),
            reference_counts,
        )


@pytest.mark.parametrize("tier", sorted(native.available_tiers()) or ["missing"])
class TestHypothesisEquivalence:
    """Random CNFs over every width bucket, every tier, bitwise vs reference.

    Parametrised directly (not via the ``tier`` fixture) because Hypothesis
    flags function-scoped fixtures inside ``@given`` tests.
    """

    @settings(max_examples=60, deadline=None)
    @given(data=st.data())
    def test_random_cnfs_match_reference(self, tier, data):
        if tier == "missing":
            pytest.skip("no native kernel tier available on this host")
        num_variables = data.draw(st.integers(1, 14), label="num_variables")
        clauses = data.draw(
            st.lists(
                st.lists(
                    st.integers(1, num_variables).flatmap(
                        lambda v: st.sampled_from([v, -v])
                    ),
                    min_size=0,  # empty clauses falsify everything
                    max_size=7,
                ),
                min_size=0,
                max_size=16,
            ),
            label="clauses",
        )
        batch = data.draw(st.integers(0, 70), label="batch")
        seed = data.draw(st.integers(0, 2**20), label="seed")
        formula = CNF(clauses, num_variables=num_variables, name="hyp-native")
        matrix = _random_matrix(seed, batch, num_variables)
        plan = formula.evaluation_plan()
        kernels = native.kernels_for(tier)
        result = kernels.cnf_evaluate(plan, matrix)
        counts = kernels.cnf_unsatisfied_counts(plan, matrix)
        assert result.dtype == np.bool_
        np.testing.assert_array_equal(
            result, formula.evaluate_batch(matrix, backend="reference")
        )
        np.testing.assert_array_equal(
            counts,
            formula.unsatisfied_clause_counts(matrix, backend="reference"),
        )
        # Satisfaction and falsified-count must also agree with each other.
        np.testing.assert_array_equal(result, counts == 0)


class TestStructuredFormulas:
    """Hand-built shapes covering every special case in the dispatch."""

    def test_empty_clause_falsifies_every_row(self, tier):
        formula = CNF([[1, 2], []], num_variables=2)
        matrix = _random_matrix(0, 9, 2)
        with native.use_kernel(tier):
            np.testing.assert_array_equal(
                formula.evaluate_batch(matrix, backend="native"),
                np.zeros(9, dtype=bool),
            )
            counts = formula.unsatisfied_clause_counts(matrix, backend="native")
        np.testing.assert_array_equal(
            counts, formula.unsatisfied_clause_counts(matrix, backend="reference")
        )

    def test_formula_with_no_clauses_satisfies_every_row(self, tier):
        formula = CNF([], num_variables=3)
        matrix = _random_matrix(1, 5, 3)
        kernels = native.kernels_for(tier)
        plan = formula.evaluation_plan()
        np.testing.assert_array_equal(
            kernels.cnf_evaluate(plan, matrix), np.ones(5, dtype=bool)
        )
        np.testing.assert_array_equal(
            kernels.cnf_unsatisfied_counts(plan, matrix), np.zeros(5, dtype=np.int64)
        )

    def test_empty_batch(self, tier):
        formula = CNF([[1, -2], [2]], num_variables=2)
        kernels = native.kernels_for(tier)
        plan = formula.evaluation_plan()
        assert kernels.cnf_evaluate(plan, np.zeros((0, 2), dtype=bool)).shape == (0,)

    def test_every_width_bucket(self, tier):
        # One clause per width 1..6 over 8 variables, plus a unit negation.
        clauses = [list(range(1, 1 + w)) for w in range(1, 7)] + [[-8]]
        formula = CNF(clauses, num_variables=8)
        matrix = _random_matrix(2, 129, 8)  # crosses the 64-lane word boundary
        with native.use_kernel(tier):
            _assert_all_backends_agree(formula, matrix)

    def test_word_boundary_batches(self, tier):
        formula = CNF([[1, -2, 3], [-1, 2], [3]], num_variables=3)
        kernels = native.kernels_for(tier)
        plan = formula.evaluation_plan()
        for batch in (1, 63, 64, 65, 128):
            matrix = _random_matrix(batch, batch, 3)
            np.testing.assert_array_equal(
                kernels.cnf_evaluate(plan, matrix),
                formula.evaluate_batch(matrix, backend="reference"),
            )


class TestBackendDispatch:
    def test_native_is_a_registered_backend(self):
        assert "native" in BACKENDS

    def test_env_var_selects_native(self, tier, monkeypatch):
        from repro.cnf.kernel import BACKEND_ENV_VAR

        monkeypatch.setenv(BACKEND_ENV_VAR, "native")
        formula = CNF([[1, 2], [-1, 2]], num_variables=2)
        matrix = _random_matrix(3, 17, 2)
        with native.use_kernel(tier):
            np.testing.assert_array_equal(
                formula.evaluate_batch(matrix),  # default backend <- env
                formula.evaluate_batch(matrix, backend="reference"),
            )

    def test_native_backend_without_tiers_fails_loudly(self, monkeypatch):
        from repro.xp.backend import BackendUnavailableError

        for name in native.TIERS:
            monkeypatch.setitem(native._TIER_STATE, name, (None, f"{name} off"))
        formula = CNF([[1]], num_variables=1)
        with pytest.raises(BackendUnavailableError):
            formula.evaluate_batch(np.zeros((2, 1), dtype=bool), backend="native")

    def test_python_kernel_mode_blocks_the_native_backend(self):
        from repro.xp.backend import BackendUnavailableError

        formula = CNF([[1]], num_variables=1)
        with native.use_kernel("python"):
            with pytest.raises(BackendUnavailableError, match="disabled"):
                formula.evaluate_batch(np.zeros((2, 1), dtype=bool), backend="native")
