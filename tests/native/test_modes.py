"""Mode resolution, precedence and fallback semantics of :mod:`repro.native`."""

from __future__ import annotations

import pytest

from repro import native
from repro.xp.backend import BackendUnavailableError


class TestModeResolution:
    def test_python_mode_disables_kernels(self):
        assert native.kernels_for("python") is None
        assert native.active_tier("python") is None

    def test_off_is_an_alias_of_python(self):
        assert native.resolve_mode("off") == "python"
        assert native.kernels_for("off") is None

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown native kernel mode"):
            native.resolve_mode("vulkan")

    def test_env_var_sets_the_default(self, monkeypatch):
        monkeypatch.setenv(native.NATIVE_ENV_VAR, "off")
        monkeypatch.setattr(native, "_DEFAULT_MODE", None)
        assert native.default_mode() == "python"
        assert native.kernels_for(None) is None

    def test_explicit_mode_overrides_the_env(self, monkeypatch):
        monkeypatch.setenv(native.NATIVE_ENV_VAR, "off")
        monkeypatch.setattr(native, "_DEFAULT_MODE", None)
        assert native.resolve_mode("auto") == "auto"

    def test_use_kernel_scopes_and_restores(self, monkeypatch):
        monkeypatch.setattr(native, "_DEFAULT_MODE", None)
        before = native.default_mode()
        with native.use_kernel("python"):
            assert native.default_mode() == "python"
            with native.use_kernel("auto"):
                assert native.default_mode() == "auto"
            assert native.default_mode() == "python"
        assert native.default_mode() == before

    def test_use_kernel_none_leaves_the_default_alone(self, monkeypatch):
        monkeypatch.setattr(native, "_DEFAULT_MODE", "python")
        with native.use_kernel(None):
            assert native.default_mode() == "python"

    def test_set_default_mode_validates(self):
        with pytest.raises(ValueError):
            native.set_default_mode("nope")


class TestUnavailableTiers:
    @pytest.fixture
    def no_tiers(self, monkeypatch):
        """Force every tier probe to report unavailable."""
        for name in native.TIERS:
            monkeypatch.setitem(native._TIER_STATE, name, (None, f"{name} forced off"))

    def test_auto_degrades_silently(self, no_tiers):
        assert native.kernels_for("auto") is None
        assert native.active_tier("auto") is None
        assert not native.native_available()
        assert native.available_tiers() == ()

    def test_native_mode_raises_loudly(self, no_tiers):
        with pytest.raises(BackendUnavailableError, match="no native kernel tier"):
            native.kernels_for("native")

    def test_specific_tier_raises_its_own_error(self, no_tiers):
        with pytest.raises(BackendUnavailableError, match="cext forced off"):
            native.kernels_for("cext")


class TestAvailableTiers:
    def test_kernels_report_their_tier(self, tier, kernels):
        assert kernels.tier == tier
        assert tier in native.available_tiers()

    def test_auto_selects_an_available_tier(self, tier):
        assert native.active_tier("auto") in native.available_tiers()

    def test_compile_seconds_is_monotone_and_finite(self, kernels):
        first = native.compile_seconds()
        assert first >= 0.0
        assert native.compile_seconds() >= first
