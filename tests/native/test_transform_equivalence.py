"""The native complement scan pinned decision-for-decision to the Python path."""

from __future__ import annotations

import numpy as np
import pytest

from repro import native
from repro.cnf.clause import Clause
from repro.cnf.formula import CNF
from repro.core.extraction import find_boolean_expression
from repro.core.transform import transform_cnf


def _random_group(rng: np.random.Generator, num_vars: int, mention_rate: float = 0.9):
    """A random clause group biased towards mentioning the candidate variable."""
    variable = int(rng.integers(1, num_vars + 1))
    clauses = []
    for _ in range(int(rng.integers(1, 7))):
        width = int(rng.integers(1, 5))
        literals = [
            int(v) * (1 if rng.random() < 0.5 else -1)
            for v in rng.integers(1, num_vars + 1, size=width)
        ]
        if rng.random() < mention_rate:
            literals.append(variable if rng.random() < 0.5 else -variable)
        if rng.random() < 0.1:  # occasionally tautological w.r.t. the candidate
            literals.extend([variable, -variable])
        clauses.append(Clause(literals))
    return variable, clauses


def _decision(variable, clauses, mode, max_vars):
    with native.use_kernel(mode):
        expression = find_boolean_expression(variable, clauses, max_vars=max_vars)
    return None if expression is None else str(expression)


class TestScanDecisions:
    @pytest.mark.parametrize("max_vars", [3, 8, 16])
    def test_fuzzed_groups_agree_with_python(self, tier, max_vars):
        rng = np.random.default_rng(max_vars)
        for _ in range(400):
            variable, clauses = _random_group(rng, num_vars=max_vars + 2)
            assert _decision(variable, clauses, tier, max_vars) == _decision(
                variable, clauses, "python", max_vars
            ), (variable, [c.literals for c in clauses], max_vars)

    def test_simple_definition_is_extracted(self, tier):
        # x1 <-> x2, written as the two binary clauses of the equivalence.
        clauses = [Clause([-1, 2]), Clause([1, -2])]
        with native.use_kernel(tier):
            expression = find_boolean_expression(1, clauses)
        assert expression is not None and "x2" in str(expression)

    def test_non_definition_is_rejected(self, tier):
        clauses = [Clause([1, 2])]  # one clause never defines the variable
        with native.use_kernel(tier):
            assert find_boolean_expression(1, clauses) is None

    def test_wide_support_falls_back_to_the_exact_route(self, tier):
        # 4 support variables with max_vars=3: both paths must refuse the
        # width gate the same way (scan verdict -1 -> exact route).
        clauses = [Clause([-1, 2, 3, 4, 5]), Clause([1, -2, -3, -4, -5])]
        assert _decision(1, clauses, tier, 3) == _decision(1, clauses, "python", 3)

    def test_scan_respects_the_transform_width_ceiling(self, kernels):
        literalled = [Clause([-1, 2]), Clause([1, -2])]
        assert kernels.complement_scan(1, literalled, native.TRANSFORM_MAX_VARS) == 1


class TestFullTransform:
    def test_transform_is_identical_under_native(self, tier, fig1_formula):
        with native.use_kernel("python"):
            reference = transform_cnf(fig1_formula)
        with native.use_kernel(tier):
            candidate = transform_cnf(fig1_formula)
        assert [
            (name, str(expr)) for name, expr in candidate.definitions
        ] == [(name, str(expr)) for name, expr in reference.definitions]
        assert candidate.primary_inputs == reference.primary_inputs
        assert candidate.stats.num_definitions == reference.stats.num_definitions
        assert candidate.stats.signature_matches == reference.stats.signature_matches
        assert candidate.stats.generic_matches == reference.stats.generic_matches
        assert candidate.stats.fallback_groups == reference.stats.fallback_groups

    def test_transform_on_random_cnf_matches(self, tier):
        rng = np.random.default_rng(17)
        clauses = []
        for gate in range(3, 30):
            driver = int(rng.integers(1, gate))
            other = int(rng.integers(1, gate))
            # AND-gate Tseitin triple: gate <-> driver AND other.
            clauses.extend(
                [[-gate, driver], [-gate, other], [gate, -driver, -other]]
            )
        formula = CNF(clauses, num_variables=29, name="tseitin-rand")
        with native.use_kernel("python"):
            reference = transform_cnf(formula)
        with native.use_kernel(tier):
            candidate = transform_cnf(formula)
        assert [
            (name, str(expr)) for name, expr in candidate.definitions
        ] == [(name, str(expr)) for name, expr in reference.definitions]

    def test_native_compile_time_is_reported_as_a_stage(self, tier, fig1_formula):
        # The stage only appears when this transform actually paid a build/JIT
        # cost, so assert the accounting invariant rather than presence.
        with native.use_kernel(tier):
            result = transform_cnf(fig1_formula)
        compile_stage = result.stats.stage_seconds.get("native_compile", 0.0)
        assert compile_stage >= 0.0
        assert compile_stage <= native.compile_seconds() + 1e-9
