"""Incremental retransform + serve derivation test suite."""
