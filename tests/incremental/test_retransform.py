"""Incremental ``retransform`` pinned against cold transforms.

The contract (documented on :func:`repro.core.transform.retransform`): for
any clause delta, the incremental result's *records* — definitions, primary
inputs, intermediate variables, primary outputs, constraints, free
variables — are identical to a cold :func:`transform_cnf` of the mutated
formula, and :meth:`complete_assignments` is bitwise identical.  The
grafted circuit may differ structurally from a cold build, so circuits are
compared by simulation, never by gate list.

Hypothesis drives random formulas through random add/retract/assume deltas
(single and chained), with the reference path (``use_fast_path=False``) as
the ultimate oracle.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cnf import CNF, ClauseDelta, planted_ksat
from repro.circuit.simulate import simulate
from repro.core.transform import retransform, transform_cnf


def assert_records_match(fast, cold):
    """Record-level equality (expressions are hash-consed, so ``==`` is exact).

    ``constrained_inputs()`` is deliberately *not* compared: it is derived
    from the circuit's fanin cone, and a grafted circuit may keep an input
    in the cone that a cold build's optimizer eliminated.  The circuits are
    instead compared functionally below.
    """
    assert fast.num_variables == cold.num_variables
    assert fast.definitions == cold.definitions
    assert fast.primary_inputs == cold.primary_inputs
    assert fast.intermediate_variables == cold.intermediate_variables
    assert fast.primary_outputs == cold.primary_outputs
    assert fast.constraints == cold.constraints
    assert fast.free_variables == cold.free_variables


def assert_constraint_nets_equivalent(fast, cold, seed=7):
    nets = fast.constraint_nets()
    assert nets == cold.constraint_nets()
    if not nets or not fast.primary_inputs:
        return
    rng = np.random.default_rng(seed)
    batch = rng.random((64, len(fast.primary_inputs))) < 0.5
    fast_values = simulate(
        fast.circuit, batch, input_order=fast.primary_inputs, nets=nets
    )
    cold_values = simulate(
        cold.circuit, batch, input_order=cold.primary_inputs, nets=nets
    )
    for net in nets:
        np.testing.assert_array_equal(fast_values[net], cold_values[net])


def assert_completions_match(fast, cold, seed=0):
    rng = np.random.default_rng(seed)
    batch = rng.random((32, len(fast.primary_inputs))) < 0.5
    free = None
    if fast.free_variables:
        free = rng.random((32, len(fast.free_variables))) < 0.5
    np.testing.assert_array_equal(
        fast.complete_assignments(batch, free),
        cold.complete_assignments(batch, free),
    )


def literals_strategy(num_variables, width):
    return st.lists(
        st.integers(1, num_variables).flatmap(
            lambda v: st.sampled_from([v, -v])
        ),
        min_size=1, max_size=width,
    )


@st.composite
def formula_and_delta(draw):
    num_variables = draw(st.integers(4, 10))
    clauses = draw(
        st.lists(literals_strategy(num_variables, 3), min_size=4, max_size=24)
    )
    # dedup literal multiplicity inside a clause to keep retract matching simple
    clauses = [sorted(set(c), key=abs) for c in clauses]
    add = tuple(
        tuple(c)
        for c in draw(
            st.lists(literals_strategy(num_variables + 1, 3), max_size=3)
        )
    )
    retract_indices = draw(
        st.lists(st.integers(0, len(clauses) - 1), max_size=2, unique=True)
    )
    retract = tuple(tuple(clauses[i]) for i in retract_indices)
    assume = tuple(
        draw(
            st.lists(
                st.integers(1, num_variables).flatmap(
                    lambda v: st.sampled_from([v, -v])
                ),
                max_size=2, unique=True,
            )
        )
    )
    delta = ClauseDelta(add=add, retract=retract, assume=assume)
    return CNF(clauses, num_variables=num_variables, name="hyp"), delta


@settings(max_examples=40, deadline=None)
@given(case=formula_and_delta())
def test_retransform_matches_cold_transform(case):
    formula, delta = case
    prev = transform_cnf(formula)
    fast = retransform(prev, delta)
    if delta.is_empty:
        assert fast is prev
        return
    mutated = formula.with_delta(delta)
    cold = transform_cnf(mutated)
    assert_records_match(fast, cold)
    assert_completions_match(fast, cold)
    assert_constraint_nets_equivalent(fast, cold)


@settings(max_examples=15, deadline=None)
@given(case=formula_and_delta())
def test_retransform_matches_reference_path(case):
    formula, delta = case
    prev = transform_cnf(formula)
    fast = retransform(prev, delta)
    if delta.is_empty:
        return
    oracle = retransform(prev, delta, use_fast_path=False)
    assert_records_match(fast, oracle)
    assert_completions_match(fast, oracle)


def test_chained_deltas_compose():
    formula = planted_ksat(14, 36, 3, seed=5)
    first = ClauseDelta(assume=(3,))
    second = ClauseDelta(add=((1, -2, 14),), retract=(tuple(formula.clauses[0].literals),))
    prev = transform_cnf(formula)
    step_one = retransform(prev, first)
    step_two = retransform(step_one, second)
    mutated = formula.with_delta(first).with_delta(second)
    cold = transform_cnf(mutated)
    assert_records_match(step_two, cold)
    assert_completions_match(step_two, cold)
    assert_constraint_nets_equivalent(step_two, cold)
    # the chained result itself carries a replay and can keep going
    assert step_two.replay is not None
    step_three = retransform(step_two, ClauseDelta(assume=(-7,)))
    cold_three = transform_cnf(mutated.with_delta(ClauseDelta(assume=(-7,))))
    assert_records_match(step_three, cold_three)


def test_empty_delta_returns_prev():
    formula = planted_ksat(10, 24, 3, seed=1)
    prev = transform_cnf(formula)
    assert retransform(prev, ClauseDelta()) is prev


def test_retransform_requires_replay():
    formula = planted_ksat(10, 24, 3, seed=1)
    prev = transform_cnf(formula)
    stripped = prev.__class__(
        **{
            field: getattr(prev, field)
            for field in (
                "source_name", "num_variables", "definitions", "primary_inputs",
                "intermediate_variables", "primary_outputs", "constraints",
                "circuit", "free_variables", "stats",
            )
        }
    )
    with pytest.raises(ValueError, match="replay"):
        retransform(stripped, ClauseDelta(assume=(1,)))


def test_appended_clause_can_widen_the_variable_range():
    formula = planted_ksat(8, 20, 3, seed=2)
    delta = ClauseDelta(add=((9, -10),))
    prev = transform_cnf(formula)
    fast = retransform(prev, delta)
    cold = transform_cnf(formula.with_delta(delta))
    assert fast.num_variables == 10
    assert_records_match(fast, cold)
    assert_completions_match(fast, cold)
