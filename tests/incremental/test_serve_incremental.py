"""Serve-layer workload tasks: incremental artifacts, manifests, summaries.

Pins the service plumbing around :class:`SamplingTask`:

* :func:`build_incremental_artifact` produces an artifact record-equal to a
  cold :func:`build_artifact` of the effective formula, flagged as derived;
* :meth:`ArtifactCache.get_or_build_task` takes the warm-hit, cold-build
  and incremental-derivation paths exactly when documented;
* manifests accept the four job types, reject unknown types with an error
  naming the offending job, and enforce type/key consistency;
* job summaries and member records surface ``task``, ``projected_unique``,
  ``stopped_early`` and ``incremental_artifacts``.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.cnf import ClauseDelta, planted_ksat
from repro.core.config import SamplerConfig
from repro.core.signatures import formula_signature, task_signature
from repro.core.task import SamplingTask
from repro.serve import (
    ArtifactCache,
    ManifestError,
    SamplingService,
    SUPPORTED_JOB_TYPES,
    build_artifact,
    build_incremental_artifact,
    parse_manifest,
)


def formula():
    return planted_ksat(16, 40, 3, seed=11)


def config(**overrides):
    settings = dict(seed=3, batch_size=128, max_rounds=3)
    settings.update(overrides)
    return SamplerConfig(**settings)


# -- incremental artifacts ----------------------------------------------------------------

def test_build_incremental_artifact_matches_cold_build():
    base = formula()
    delta = ClauseDelta(assume=(2,), add=((1, -3, 5),))
    parent = build_artifact(base)
    derived = build_incremental_artifact(parent, delta)
    effective = base.with_delta(delta)
    cold = build_artifact(effective)

    assert derived.incremental and not cold.incremental
    assert derived.parent_signature == parent.signature
    assert derived.signature == cold.signature == formula_signature(effective)
    assert derived.formula.num_clauses == effective.num_clauses
    assert derived.transform.definitions == cold.transform.definitions
    assert derived.transform.constraints == cold.transform.constraints
    assert derived.transform.primary_inputs == cold.transform.primary_inputs
    np.testing.assert_array_equal(
        derived.plan.literal_columns, cold.plan.literal_columns
    )


def test_get_or_build_task_paths():
    base = formula()
    delta_task = SamplingTask.build(assume=[2])
    effective = delta_task.apply_to(base)
    base_sig = formula_signature(base)
    task_sig = formula_signature(effective)
    loads = []

    def loader():
        loads.append(1)
        return base

    # Cold, no warm parent: loader runs, build is a full cold transform.
    cache = ArtifactCache()
    artifact, built, derived = cache.get_or_build_task(
        delta_task, signature=task_sig, base_signature=base_sig, loader=loader
    )
    assert (built, derived) == (True, False)
    assert len(loads) == 1 and not artifact.incremental

    # Warm hit: nothing builds, nothing loads.
    again, built, derived = cache.get_or_build_task(
        delta_task, signature=task_sig, base_signature=base_sig, loader=loader
    )
    assert again is artifact and (built, derived) == (False, False)
    assert len(loads) == 1

    # Warm *parent*: the effective artifact is derived incrementally,
    # without ever invoking the loader.
    cache = ArtifactCache()
    cache.get_or_build(formula=base)
    artifact, built, derived = cache.get_or_build_task(
        delta_task, signature=task_sig, base_signature=base_sig,
        loader=lambda: pytest.fail("loader must not run on the derived path"),
    )
    assert (built, derived) == (True, True)
    assert artifact.incremental and artifact.parent_signature == base_sig

    # Non-incremental tasks (projection/weights) share the base artifact key.
    shared, built, derived = cache.get_or_build_task(
        SamplingTask.build(project=[1, 2]), signature=base_sig,
        base_signature=base_sig, loader=lambda: base,
    )
    assert (built, derived) == (False, False)
    assert shared.signature == base_sig


def test_task_signature_matches_service_keying():
    base = formula()
    task = SamplingTask.build(project=[1], weights={2: 0.8})
    assert task_signature(base, task) != formula_signature(base)
    assert task_signature(base, SamplingTask()) == formula_signature(base)


# -- manifests ----------------------------------------------------------------------------

MANIFEST = {
    "jobs": [
        {"id": "plain", "dimacs": "p cnf 3 2\n1 2 0\n-1 3 0\n", "type": "sample"},
        {"id": "proj", "dimacs": "p cnf 3 2\n1 2 0\n-1 3 0\n",
         "type": "project", "project": [1, 3]},
        {"id": "wted", "dimacs": "p cnf 3 2\n1 2 0\n-1 3 0\n",
         "type": "weighted", "weights": {"2": 0.9}},
        {"id": "incr", "dimacs": "p cnf 3 2\n1 2 0\n-1 3 0\n",
         "type": "incremental", "assume": [3], "add": [[1, -2]]},
    ]
}


def test_manifest_round_trips_all_job_types():
    jobs = parse_manifest(json.dumps(MANIFEST))
    kinds = {job.job_id: job.task.kind() for job in jobs}
    assert kinds == {
        "plain": "default",
        "proj": "projected",
        "wted": "weighted",
        "incr": "incremental",
    }
    assert jobs[3].task.delta.assume == (3,)


def test_manifest_rejects_unknown_job_type_naming_the_job():
    bad = {"jobs": [{"id": "bad-job", "dimacs": "p cnf 1 1\n1 0\n",
                     "type": "mystery"}]}
    with pytest.raises(ManifestError) as excinfo:
        parse_manifest(json.dumps(bad))
    message = str(excinfo.value)
    assert "'bad-job'" in message
    assert "'mystery'" in message
    for supported in SUPPORTED_JOB_TYPES:
        assert supported in message


def test_manifest_unknown_type_names_positional_job_without_id():
    bad = {"jobs": [{"dimacs": "p cnf 1 1\n1 0\n", "type": "nope"}]}
    with pytest.raises(ManifestError, match="job 'job-0'"):
        parse_manifest(json.dumps(bad))


def test_manifest_type_key_consistency():
    entry = {"id": "j", "dimacs": "p cnf 1 1\n1 0\n"}
    with pytest.raises(ManifestError, match="takes no workload keys"):
        parse_manifest(json.dumps({"jobs": [{**entry, "project": [1]}]}))
    with pytest.raises(ManifestError, match="requires 'project'"):
        parse_manifest(json.dumps({"jobs": [{**entry, "type": "project"}]}))
    with pytest.raises(ManifestError, match="requires 'weights'"):
        parse_manifest(json.dumps({"jobs": [{**entry, "type": "weighted"}]}))
    with pytest.raises(ManifestError, match="requires 'add'/'retract'/'assume'"):
        parse_manifest(json.dumps({"jobs": [{**entry, "type": "incremental"}]}))


# -- service summaries --------------------------------------------------------------------

def test_incremental_job_derives_artifact_from_warm_parent():
    base = formula()
    with SamplingService(num_workers=0) as service:
        warm = service.submit(base, num_solutions=10, config=config())
        warm_result = service.result(warm)
        assert warm_result.status == "done"
        assert warm_result.summary["incremental_artifacts"] == 0

        job = service.submit(
            base, num_solutions=10, config=config(),
            task=SamplingTask.build(assume=[2], project=[1, 2, 3]),
        )
        result = service.result(job)
    assert result.status == "done"
    assert result.summary["task"] == "projected+incremental"
    assert result.summary["incremental_artifacts"] == 1
    assert result.summary["projected_unique"] == result.num_unique
    assert isinstance(result.summary["stopped_early"], bool)
    member = result.members[0]
    assert member["task"] == "projected+incremental"
    assert member["incremental_artifact"] is True
    assert "stopped_early" in member and "projected_unique" in member
    # every merged solution satisfies the assumption: variable 2 is True
    matrix = result.solutions.to_matrix()
    assert matrix.shape[0] > 0
    assert matrix[:, 1].all()


def test_projected_jobs_coalesce_only_on_matching_tasks():
    base = formula()
    task_a = SamplingTask.build(project=[1, 2])
    task_b = SamplingTask.build(project=[1, 3])
    with SamplingService(num_workers=0) as service:
        first = service.submit(base, num_solutions=5, config=config(), task=task_a)
        same = service.submit(base, num_solutions=5, config=config(), task=task_a)
        other = service.submit(base, num_solutions=5, config=config(), task=task_b)
        results = {job: service.result(job) for job in (first, same, other)}
    assert results[same].coalesced_with == first
    assert results[other].coalesced_with is None
    assert results[other].summary["task"] == "projected"
