"""Shared fixtures: small formulas, circuits and the paper's Fig. 1 example."""

from __future__ import annotations

import numpy as np
import pytest

from repro.boolalg.expr import And, Not, Or, Var, Xor
from repro.circuit.builder import CircuitBuilder
from repro.cnf.dimacs import parse_dimacs
from repro.cnf.formula import CNF

#: The annotated CNF of the paper's Fig. 1(a): an inverter/buffer chain feeding a
#: mux (unconstrained path) and a second chain feeding a mux whose output is
#: constrained to 1 (constrained path).
FIG1_DIMACS = """\
p cnf 14 21
c x2(x1) = not x1
-1 -2 0
1 2 0
c x3(x2) = x2
-2 3 0
2 -3 0
c x4(x3) = x3
-3 4 0
3 -4 0
c x5 = (x4 and x11) or (not x4 and x12)
-4 -11 5 0
-4 11 -5 0
4 -12 5 0
4 12 -5 0
c x7(x6) = x6
-6 7 0
6 -7 0
c x8(x7) = x7
-7 8 0
7 -8 0
c x9(x8) = not x8
-8 -9 0
8 9 0
c x10 = (x9 and x13) or (not x9 and x14)
-9 -13 10 0
-9 13 -10 0
9 -14 10 0
9 14 -10 0
c x10 = 1
10 0
"""


@pytest.fixture
def fig1_formula() -> CNF:
    """The paper's Fig. 1 example CNF."""
    return parse_dimacs(FIG1_DIMACS, name="fig1")


@pytest.fixture
def tiny_sat_formula() -> CNF:
    """A tiny satisfiable formula with a known model count (exactly 4 models).

    (x1 | x2) & (~x1 | x3): models over {x1,x2,x3}:
    x1=0: x2=1, x3 free -> 2;  x1=1: x3=1, x2 free -> 2.
    """
    return CNF([[1, 2], [-1, 3]], num_variables=3, name="tiny-sat")


@pytest.fixture
def tiny_unsat_formula() -> CNF:
    """A minimal unsatisfiable formula."""
    return CNF([[1], [-1]], num_variables=1, name="tiny-unsat")


@pytest.fixture
def xor_chain_formula() -> CNF:
    """x1 xor x2 = 1, encoded with the XOR signature on an auxiliary output x3 = 1."""
    return CNF(
        [[-3, 1, 2], [-3, -1, -2], [3, 1, -2], [3, -1, 2], [3]],
        num_variables=3,
        name="xor-chain",
    )


@pytest.fixture
def small_circuit():
    """A small two-output circuit: f = (a & b) | c,  g = a ^ c."""
    builder = CircuitBuilder("small")
    a = builder.input("a")
    b = builder.input("b")
    c = builder.input("c")
    f = builder.or_(builder.and_(a, b), c, name="f")
    g = builder.xor_(a, c, name="g")
    builder.output(f)
    builder.output(g)
    return builder.circuit


@pytest.fixture
def expr_abc():
    """Three expression variables used across boolalg tests."""
    return Var("a"), Var("b"), Var("c")


@pytest.fixture
def rng():
    """A deterministic NumPy generator for tests."""
    return np.random.default_rng(12345)


def all_assignments(num_variables: int) -> np.ndarray:
    """All 2**n boolean assignments as a matrix (helper importable from tests)."""
    rows = 1 << num_variables
    matrix = np.zeros((rows, num_variables), dtype=bool)
    for row in range(rows):
        for column in range(num_variables):
            matrix[row, column] = bool((row >> column) & 1)
    return matrix
