"""Tests for the benchmark registry (repro.instances.registry)."""

import pytest

from repro.instances.registry import (
    FIGURE_INSTANCES,
    REGISTRY,
    TABLE2_INSTANCES,
    get_instance,
    list_instances,
)


class TestRegistryContents:
    def test_suite_has_sixty_instances(self):
        assert len(REGISTRY) == 60

    def test_names_unique(self):
        names = [entry.name for entry in REGISTRY]
        assert len(names) == len(set(names))

    def test_table2_has_fourteen_rows(self):
        assert len(TABLE2_INSTANCES) == 14
        for name in TABLE2_INSTANCES:
            assert get_instance(name).paper is not None

    def test_figure_instances_are_the_papers_four(self):
        assert set(FIGURE_INSTANCES) == {
            "or-100-20-8-UC-10", "90-10-10-q", "s15850a_15_7", "Prod-32",
        }

    def test_all_four_families_present(self):
        families = {entry.family for entry in REGISTRY}
        assert families == {"or", "q", "iscas", "prod"}

    def test_paper_rows_carry_throughputs(self):
        entry = get_instance("Prod-8")
        assert entry.paper.throughput_this_work == pytest.approx(994.9)
        assert entry.paper.speedup == pytest.approx(523.6)
        assert entry.paper.throughput_diffsampler is None  # TO in the paper


class TestLookup:
    def test_get_instance(self):
        entry = get_instance("75-10-1-q")
        assert entry.family == "q"

    def test_unknown_instance(self):
        with pytest.raises(KeyError):
            get_instance("not-an-instance")

    def test_list_by_family(self):
        assert all(get_instance(n).family == "prod" for n in list_instances(family="prod"))
        assert len(list_instances(family="or")) >= 20

    def test_list_by_tag(self):
        assert set(list_instances(tag="table2")) == set(TABLE2_INSTANCES)


class TestBuilding:
    @pytest.mark.parametrize("name", ["or-50-10-7-UC-10", "75-10-1-q"])
    def test_build_is_deterministic(self, name):
        entry = get_instance(name)
        first, _ = entry.build()
        second, _ = entry.build()
        assert [c.literals for c in first] == [c.literals for c in second]
        assert first.name == name

    def test_build_cnf_shortcut(self):
        formula = get_instance("or-50-10-7-UC-10").build_cnf()
        assert formula.num_clauses > 0

    def test_different_instances_differ(self):
        first = get_instance("75-10-1-q").build_cnf()
        second = get_instance("75-10-10-q").build_cnf()
        assert [c.literals for c in first] != [c.literals for c in second]
