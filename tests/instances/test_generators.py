"""Tests for the benchmark-instance generators (repro.instances)."""

import numpy as np
import pytest

from repro.baselines.cdcl import CDCLSolver
from repro.circuit.simulate import simulate
from repro.instances.blocked import generate_q_instance
from repro.instances.iscas import generate_iscas_like_instance
from repro.instances.or_chain import generate_or_instance
from repro.instances.product import generate_product_instance


class TestOrInstances:
    def test_shape(self):
        formula, circuit = generate_or_instance(num_inputs=30, num_constrained_outputs=3, seed=0)
        assert circuit.num_inputs == 30
        assert circuit.num_outputs == 3
        assert formula.num_clauses > formula.num_variables

    def test_satisfiable(self):
        formula, _ = generate_or_instance(num_inputs=20, num_constrained_outputs=2, seed=1)
        assert CDCLSolver(formula, seed=0).solve().status == "sat"

    def test_deterministic(self):
        a, _ = generate_or_instance(num_inputs=15, seed=3)
        b, _ = generate_or_instance(num_inputs=15, seed=3)
        assert [c.literals for c in a] == [c.literals for c in b]

    def test_too_few_inputs_rejected(self):
        with pytest.raises(ValueError):
            generate_or_instance(num_inputs=1)


class TestQInstances:
    def test_single_constrained_output(self):
        formula, circuit = generate_q_instance(num_inputs=30, seed=0)
        assert circuit.num_outputs == 1

    def test_satisfiable(self):
        formula, _ = generate_q_instance(num_inputs=25, seed=2)
        assert CDCLSolver(formula, seed=0).solve().status == "sat"

    def test_auxiliary_variable_ratio(self):
        """q instances have several times more CNF variables than primary inputs."""
        formula, circuit = generate_q_instance(num_inputs=30, chain_length=10, seed=1)
        assert formula.num_variables > circuit.num_inputs

    def test_input_budget_validated(self):
        with pytest.raises(ValueError):
            generate_q_instance(num_inputs=5, num_select_chains=6)


class TestIscasInstances:
    def test_gate_budget_respected(self):
        _, circuit = generate_iscas_like_instance(num_inputs=20, num_gates=150, seed=0)
        assert 100 <= circuit.num_gates <= 160

    def test_satisfiable_by_construction(self):
        formula, _ = generate_iscas_like_instance(
            num_inputs=16, num_gates=120, num_constrained_outputs=4, seed=5
        )
        assert CDCLSolver(formula, seed=0).solve().status == "sat"

    def test_constraints_match_reference_simulation(self):
        formula, circuit = generate_iscas_like_instance(
            num_inputs=10, num_gates=60, num_constrained_outputs=2, seed=7
        )
        # The unit clauses pin outputs to values the circuit actually attains.
        unit_values = {}
        for clause in formula.clauses:
            if clause.is_unit:
                literal = clause.literals[0]
                unit_values[abs(literal)] = literal > 0
        assert len(unit_values) >= 2

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            generate_iscas_like_instance(num_inputs=2)
        with pytest.raises(ValueError):
            generate_iscas_like_instance(num_constrained_outputs=0)


class TestProductInstances:
    def test_clause_count_grows_with_width(self):
        small, _ = generate_product_instance(width=4, seed=0)
        large, _ = generate_product_instance(width=8, seed=0)
        assert large.num_clauses > 2 * small.num_clauses

    def test_satisfiable_by_construction(self):
        formula, _ = generate_product_instance(width=5, seed=3)
        assert CDCLSolver(formula, seed=0).solve().status == "sat"

    def test_reference_operands_recorded(self):
        formula, _ = generate_product_instance(width=4, seed=1)
        assert any("reference operands" in comment for comment in formula.comments)

    def test_reference_product_satisfies_constraints(self):
        formula, circuit = generate_product_instance(width=4, seed=2)
        comment = next(c for c in formula.comments if "reference operands" in c)
        tokens = dict(part.split("=") for part in comment.split()[2:])
        a_value, b_value = int(tokens["a"]), int(tokens["b"])
        inputs = {}
        for i in range(4):
            inputs[f"a{i}"] = bool((a_value >> i) & 1)
            inputs[f"b{i}"] = bool((b_value >> i) & 1)
        values = circuit.evaluate(inputs)
        for net in circuit.outputs:
            assert values[net] in (True, False)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            generate_product_instance(width=1)
        with pytest.raises(ValueError):
            generate_product_instance(width=4, num_constrained_bits=0)
