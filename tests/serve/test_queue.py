"""Tests for request coalescing and signature-affinity dispatch."""

from repro.core.config import SamplerConfig
from repro.serve.jobs import SamplingJob
from repro.serve.queue import CoalesceTable, Dispatcher, coalesce_key
from tests.conftest import FIG1_DIMACS


def make_job(**kwargs):
    return SamplingJob.build({"dimacs": FIG1_DIMACS}, **kwargs)


class TestCoalesceKey:
    def test_identical_jobs_share_a_key(self):
        a = make_job(num_solutions=10, config=SamplerConfig(seed=1))
        b = make_job(num_solutions=10, config=SamplerConfig(seed=1))
        assert coalesce_key(a, "sig") == coalesce_key(b, "sig")

    def test_any_axis_differs_key_differs(self):
        base = make_job(num_solutions=10, config=SamplerConfig(seed=1))
        key = coalesce_key(base, "sig")
        assert coalesce_key(base, "other-sig") != key
        assert coalesce_key(make_job(num_solutions=11, config=SamplerConfig(seed=1)), "sig") != key
        assert coalesce_key(make_job(num_solutions=10, config=SamplerConfig(seed=2)), "sig") != key
        assert (
            coalesce_key(make_job(num_solutions=10, config=SamplerConfig(seed=1), portfolio=2), "sig")
            != key
        )


class TestCoalesceTable:
    def test_primary_then_followers(self):
        table = CoalesceTable()
        assert table.attach(("k",), "a") is None
        assert table.attach(("k",), "b") == "a"
        assert table.attach(("k",), "c") == "a"
        assert table.release(("k",), "a") == ["b", "c"]
        # identity gone: the next equal request becomes a fresh primary
        assert table.attach(("k",), "d") is None

    def test_distinct_keys_do_not_interact(self):
        table = CoalesceTable()
        assert table.attach(("k1",), "a") is None
        assert table.attach(("k2",), "b") is None
        assert table.release(("k1",), "a") == []
        assert table.attach(("k2",), "c") == "b"


class TestDispatcher:
    def test_cold_jobs_spread_by_load(self):
        dispatcher = Dispatcher(num_workers=3)
        picks = []
        for signature in ("s1", "s2", "s3"):
            worker = dispatcher.choose(signature)
            dispatcher.record_dispatch(worker, signature)
            picks.append(worker)
        assert picks == [0, 1, 2]

    def test_warm_affinity_wins(self):
        dispatcher = Dispatcher(num_workers=3)
        dispatcher.record_dispatch(1, "hot")
        dispatcher.record_done(1)
        # worker 1 is warm for "hot": chosen despite equal load elsewhere
        assert dispatcher.choose("hot") == 1

    def test_spill_when_warm_worker_backlogged(self):
        dispatcher = Dispatcher(num_workers=2, spill_threshold=2)
        for _ in range(4):
            dispatcher.record_dispatch(0, "hot")
        # backlog 4 vs 0: exceeds threshold, spill to the cold worker
        assert dispatcher.choose("hot") == 1

    def test_within_threshold_stays_warm(self):
        dispatcher = Dispatcher(num_workers=2, spill_threshold=2)
        dispatcher.record_dispatch(0, "hot")
        dispatcher.record_dispatch(0, "hot")
        assert dispatcher.choose("hot") == 0

    def test_record_done_reopens_worker(self):
        dispatcher = Dispatcher(num_workers=2)
        dispatcher.record_dispatch(0, "a")
        assert dispatcher.choose("b") == 1
        dispatcher.record_dispatch(1, "b")
        dispatcher.record_done(0)
        assert dispatcher.outstanding(0) == 0
        assert dispatcher.choose("c") == 0
