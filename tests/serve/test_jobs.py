"""Tests for job specs, config round-trips and manifest parsing."""

import json

import pytest

from repro.cnf.dimacs import parse_dimacs
from repro.core.config import SamplerConfig
from repro.gpu.device import Device, DeviceKind
from repro.serve.jobs import (
    ManifestError,
    SamplingJob,
    config_from_dict,
    config_to_dict,
    load_manifest,
    load_source,
    normalize_source,
    parse_manifest,
)
from tests.conftest import FIG1_DIMACS


class TestSources:
    def test_cnf_round_trips_through_dimacs(self, tiny_sat_formula):
        spec = normalize_source(tiny_sat_formula)
        assert "dimacs" in spec
        assert load_source(spec) == tiny_sat_formula

    def test_path_and_text_are_distinguished(self, tmp_path):
        path = tmp_path / "f.cnf"
        path.write_text(FIG1_DIMACS)
        assert normalize_source(str(path)) == {"path": str(path)}
        assert "dimacs" in normalize_source(FIG1_DIMACS)
        assert load_source({"path": str(path)}) == parse_dimacs(FIG1_DIMACS)

    def test_instance_source(self):
        formula = load_source({"instance": "or-50-10-7-UC-10"})
        assert formula.num_variables > 0

    def test_bad_spec_rejected(self):
        with pytest.raises(ManifestError):
            normalize_source({"path": "a", "instance": "b"})
        with pytest.raises(ManifestError):
            load_source({"nonsense": "x"})


class TestConfigRoundTrip:
    def test_round_trip_preserves_everything(self):
        config = SamplerConfig(
            batch_size=128,
            iterations=7,
            learning_rate=2.5,
            optimizer="adam",
            init_scale=0.5,
            seed=42,
            backend="interpreter",
            max_rounds=9,
            stall_rounds=2,
            timeout_seconds=3.5,
            device=Device(DeviceKind.CPU, chunk_size=4),
        )
        assert config_from_dict(config_to_dict(config)) == config

    def test_device_as_string(self):
        config = config_from_dict({"device": "cpu"})
        assert config.device.kind == DeviceKind.CPU

    def test_unknown_field_rejected(self):
        with pytest.raises(ManifestError):
            config_from_dict({"learning_rte": 1.0})
        with pytest.raises(ManifestError):
            config_from_dict({"device": {"kindd": "cpu"}})


class TestManifests:
    def test_json_array(self, tmp_path):
        manifest = [
            {"dimacs": FIG1_DIMACS, "num_solutions": 5},
            {"instance": "or-50-10-7-UC-10", "id": "named",
             "config": {"batch_size": 32, "seed": 3}, "portfolio": 2},
        ]
        jobs = parse_manifest(json.dumps(manifest))
        assert len(jobs) == 2
        assert jobs[0].job_id is None  # the service assigns a unique id
        assert jobs[0].num_solutions == 5
        assert jobs[1].job_id == "named"
        assert jobs[1].config.batch_size == 32
        assert len(jobs[1].portfolio) == 2

    def test_jobs_object(self):
        text = json.dumps({"jobs": [{"instance": "or-50-10-7-UC-10"}]})
        assert len(parse_manifest(text)) == 1

    def test_jsonl(self):
        lines = "\n".join(
            json.dumps({"instance": "or-50-10-7-UC-10", "num_solutions": n})
            for n in (1, 2, 3)
        )
        jobs = parse_manifest(lines)
        assert [job.num_solutions for job in jobs] == [1, 2, 3]

    def test_single_object_is_one_job(self):
        jobs = parse_manifest(json.dumps({"instance": "or-50-10-7-UC-10"}))
        assert len(jobs) == 1

    def test_load_manifest_file(self, tmp_path):
        path = tmp_path / "jobs.jsonl"
        path.write_text(json.dumps({"dimacs": FIG1_DIMACS}) + "\n")
        assert len(load_manifest(path)) == 1

    def test_errors_are_precise(self):
        with pytest.raises(ManifestError, match="empty"):
            parse_manifest("")
        with pytest.raises(ManifestError, match="exactly one of"):
            parse_manifest(json.dumps([{"num_solutions": 3}]))
        with pytest.raises(ManifestError, match="unknown keys"):
            parse_manifest(json.dumps([{"instance": "x", "portfolioo": 2}]))
        with pytest.raises(ManifestError, match="jobs"):
            parse_manifest(json.dumps({"work": []}))
        with pytest.raises(ManifestError, match="invalid JSON line"):
            parse_manifest("not json at all")
        with pytest.raises(ManifestError, match="num_solutions"):
            parse_manifest(json.dumps([{"instance": "x", "num_solutions": 0}]))

    def test_portfolio_validation(self):
        with pytest.raises(ManifestError, match="portfolio size"):
            SamplingJob.build({"dimacs": FIG1_DIMACS}, portfolio=0)
        with pytest.raises(ManifestError, match="unknown config fields"):
            SamplingJob.build({"dimacs": FIG1_DIMACS}, portfolio=[{"sed": 1}])
