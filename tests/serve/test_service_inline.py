"""End-to-end tests of SamplingService in inline mode (num_workers=0).

Inline mode executes tasks sequentially in this process, so every scheduling
behaviour — coalescing, portfolio cancellation, cache reuse, streaming — is
exactly reproducible and can be asserted bitwise.
"""

import numpy as np
import pytest

from repro.cnf.dimacs import parse_dimacs
from repro.core.config import SamplerConfig
from repro.core.sampler import GradientSATSampler
from repro.serve import SamplingJob, SamplingService, parse_manifest
from tests.conftest import FIG1_DIMACS

CONFIG = SamplerConfig(batch_size=32, seed=0)


@pytest.fixture
def service():
    with SamplingService(num_workers=0) as svc:
        yield svc


@pytest.fixture
def fig1():
    return parse_dimacs(FIG1_DIMACS, name="fig1")


class TestBasics:
    def test_matches_direct_sampler(self, service, fig1):
        job_id = service.submit(fig1, num_solutions=16, config=CONFIG)
        result = service.result(job_id)
        direct = GradientSATSampler(
            parse_dimacs(FIG1_DIMACS), config=CONFIG
        ).sample(16)
        assert result.status == "done"
        assert np.array_equal(
            result.solutions.to_matrix(), direct.solutions.to_matrix()
        )
        member = result.members[0]
        assert member["status"] == "done"
        assert member["cache_hit"] is False

    def test_solutions_satisfy_formula(self, service, fig1):
        result = service.result(service.submit(fig1, num_solutions=16, config=CONFIG))
        matrix = result.solutions.to_matrix()
        assert matrix.shape[0] >= 1
        assert bool(fig1.evaluate_batch(matrix).all())

    def test_result_is_idempotent(self, service, fig1):
        job_id = service.submit(fig1, num_solutions=8, config=CONFIG)
        assert service.result(job_id) is service.result(job_id)

    def test_unknown_job_id(self, service):
        with pytest.raises(KeyError):
            service.result("nope")

    def test_submit_after_close_rejected(self, fig1):
        service = SamplingService(num_workers=0)
        service.close()
        with pytest.raises(RuntimeError):
            service.submit(fig1, num_solutions=1, config=CONFIG)

    def test_fifo_across_jobs(self, service, fig1, tiny_sat_formula):
        first = service.submit(fig1, num_solutions=8, config=CONFIG)
        second = service.submit(tiny_sat_formula, num_solutions=4, config=CONFIG)
        # asking for the later job runs the earlier one too (FIFO)
        result = service.result(second)
        assert result.status == "done"
        assert service._state(first).done  # noqa: SLF001 - deliberate peek


class TestCaching:
    def test_same_formula_compiles_once(self, service, fig1):
        first = service.result(service.submit(fig1, num_solutions=8, config=CONFIG))
        second = service.result(
            service.submit(
                parse_dimacs(FIG1_DIMACS),
                num_solutions=8,
                config=CONFIG.with_(seed=1),  # different seed: not coalesced
            )
        )
        assert first.members[0]["cache_hit"] is False
        assert second.members[0]["cache_hit"] is True
        stats = service.cache_stats()
        assert stats["entries"] == 1
        assert stats["hits"] >= 1


class TestCoalescing:
    def test_identical_jobs_share_one_run(self, service, fig1):
        a = service.submit(fig1, num_solutions=12, config=CONFIG)
        b = service.submit(parse_dimacs(FIG1_DIMACS), num_solutions=12, config=CONFIG)
        ra, rb = service.result(a), service.result(b)
        assert rb.coalesced_with == a
        assert rb.solutions is ra.solutions
        assert rb.summary["job_id"] == b
        # only one task actually sampled
        assert service.cache_stats()["misses"] == 1
        assert service.cache_stats()["hits"] == 0

    def test_coalesce_false_runs_separately(self, service, fig1):
        a = service.submit(fig1, num_solutions=12, config=CONFIG)
        b = service.submit(fig1, num_solutions=12, config=CONFIG, coalesce=False)
        ra, rb = service.result(a), service.result(b)
        assert rb.coalesced_with is None
        # identical configs: identical (but separately computed) solutions
        assert rb.solutions is not ra.solutions
        assert np.array_equal(ra.solutions.to_matrix(), rb.solutions.to_matrix())

    def test_different_targets_not_coalesced(self, service, fig1):
        a = service.submit(fig1, num_solutions=12, config=CONFIG)
        b = service.submit(fig1, num_solutions=13, config=CONFIG)
        assert service.result(b).coalesced_with is None

    def test_finished_primary_does_not_adopt_late_jobs(self, service, fig1):
        a = service.submit(fig1, num_solutions=12, config=CONFIG)
        service.result(a)
        b = service.submit(fig1, num_solutions=12, config=CONFIG)
        assert service.result(b).coalesced_with is None


class TestPortfolio:
    def test_first_to_target_cancels_rest(self, service, fig1):
        job_id = service.submit(fig1, num_solutions=4, config=CONFIG, portfolio=3)
        result = service.result(job_id)
        statuses = [member["status"] for member in result.members]
        # member 0 reaches the tiny target alone; the rest are cancelled
        assert statuses[0] == "done"
        assert statuses[1:] == ["cancelled", "cancelled"]
        assert result.summary["cancelled_members"] == 2
        assert result.num_unique >= 4

    def test_members_get_distinct_seeds_and_merge_dedups(self, service, fig1):
        job_id = service.submit(
            fig1, num_solutions=10_000, config=CONFIG, portfolio=2
        )
        result = service.result(job_id)
        assert [member["seed"] for member in result.members] == [0, 1]
        matrix = result.solutions.to_matrix()
        # exact dedup: no repeated rows in the merged set
        assert len(np.unique(np.packbits(matrix, axis=1), axis=0)) == matrix.shape[0]

    def test_merged_set_is_reproducible(self, fig1):
        def run():
            with SamplingService(num_workers=0) as svc:
                job_id = svc.submit(
                    fig1,
                    num_solutions=40,
                    config=CONFIG,
                    portfolio=[{"learning_rate": 10.0}, {"learning_rate": 5.0}],
                )
                return svc.result(job_id).solutions.to_matrix()

        assert np.array_equal(run(), run())

    def test_merge_is_member_major(self, service, fig1):
        job_id = service.submit(
            fig1, num_solutions=10_000, config=CONFIG, portfolio=2
        )
        result = service.result(job_id)
        member0 = None
        for state in [service._state(job_id)]:  # noqa: SLF001 - deliberate peek
            member0 = state.tasks[0].solutions.to_matrix()
        assert np.array_equal(
            result.solutions.to_matrix()[: member0.shape[0]], member0
        )


class TestStreaming:
    def test_stream_rounds_rebuild_the_result(self, service, fig1):
        job_id = service.submit(fig1, num_solutions=60, config=CONFIG)
        chunks = list(service.stream(job_id))
        assert chunks, "expected at least one round"
        stacked = np.concatenate(chunks, axis=0)
        result = service.result(job_id)
        assert np.array_equal(stacked, result.solutions.to_matrix())

    def test_follower_streams_primary_rounds(self, service, fig1):
        a = service.submit(fig1, num_solutions=12, config=CONFIG)
        b = service.submit(fig1, num_solutions=12, config=CONFIG)
        assert sum(chunk.shape[0] for chunk in service.stream(b)) == service.result(
            a
        ).num_unique


class TestErrorsAndManifests:
    def test_bad_path_job_errors_gracefully(self, service, tmp_path):
        with pytest.raises(FileNotFoundError):
            # the formula is materialised at submit time (signature + width),
            # so a dead path fails fast, before any task is queued
            service.submit(str(tmp_path / "missing.cnf"), num_solutions=4)

    def test_unsat_instance_reports_zero_solutions(self, service, tiny_unsat_formula):
        result = service.result(
            service.submit(tiny_unsat_formula, num_solutions=4, config=CONFIG)
        )
        assert result.status == "done"
        assert result.num_unique == 0

    def test_run_manifest(self, service):
        import json

        entry = {"dimacs": FIG1_DIMACS, "num_solutions": 8, "config": {"batch_size": 32}}
        jobs = parse_manifest(json.dumps([entry, dict(entry)]))
        results = service.run_manifest(jobs)
        assert [result.status for result in results] == ["done", "done"]
        assert results[1].coalesced_with == results[0].job_id

    def test_manifest_replay_gets_fresh_ids(self, service):
        import json

        text = json.dumps([{"dimacs": FIG1_DIMACS, "num_solutions": 4,
                            "config": {"batch_size": 32}}])
        first = service.run_manifest(parse_manifest(text))
        second = service.run_manifest(parse_manifest(text))
        # defaulted manifest ids are assigned by the service, so replaying
        # the same manifest on one long-lived service never collides
        assert first[0].job_id != second[0].job_id

    def test_explicit_id_collides_with_auto_id_safely(self, service, fig1):
        service.result(service.submit(fig1, num_solutions=4, config=CONFIG,
                                      job_id="job-0"))
        auto = service.submit(fig1, num_solutions=4, config=CONFIG, coalesce=False)
        assert auto != "job-0"
        assert service.result(auto).status == "done"


class TestForget:
    def test_forget_releases_state(self, service, fig1):
        job_id = service.submit(fig1, num_solutions=8, config=CONFIG)
        result = service.result(job_id)
        assert service.forget(job_id) is result
        with pytest.raises(KeyError):
            service.result(job_id)

    def test_forget_running_job_refused(self, service, fig1):
        job_id = service.submit(fig1, num_solutions=8, config=CONFIG)
        with pytest.raises(RuntimeError):
            service.forget(job_id)
        service.result(job_id)

    def test_forgotten_primary_keeps_followers_working(self, service, fig1):
        a = service.submit(fig1, num_solutions=12, config=CONFIG)
        b = service.submit(fig1, num_solutions=12, config=CONFIG)
        service.result(a)
        service.forget(a)
        result = service.result(b)
        assert result.coalesced_with == a
        assert result.num_unique > 0
