"""Tests for portfolio expansion and deterministic merging."""

import numpy as np
import pytest

from repro.core.config import SamplerConfig
from repro.core.solutions import SolutionSet
from repro.serve.jobs import ManifestError
from repro.serve.portfolio import (
    MAX_MEMBERS,
    member_configs,
    merge_member_solutions,
    normalize_portfolio,
)


class TestNormalize:
    def test_none_is_empty(self):
        assert normalize_portfolio(None) == ()

    def test_integer_spec(self):
        assert normalize_portfolio(3) == ({}, {}, {})

    def test_list_spec_is_copied(self):
        spec = [{"seed": 1}, {"learning_rate": 5.0}]
        members = normalize_portfolio(spec)
        assert members == ({"seed": 1}, {"learning_rate": 5.0})
        spec[0]["seed"] = 99
        assert members[0]["seed"] == 1

    def test_bounds_and_types(self):
        with pytest.raises(ManifestError):
            normalize_portfolio(0)
        with pytest.raises(ManifestError):
            normalize_portfolio(MAX_MEMBERS + 1)
        with pytest.raises(ManifestError):
            normalize_portfolio(True)
        with pytest.raises(ManifestError):
            normalize_portfolio([["not", "a", "dict"]])


class TestMemberConfigs:
    def test_seeds_distinct_by_default(self):
        base = SamplerConfig(seed=10)
        configs = member_configs(base, normalize_portfolio(3))
        assert [config.seed for config in configs] == [10, 11, 12]

    def test_explicit_seed_respected(self):
        base = SamplerConfig(seed=10)
        configs = member_configs(base, ({"seed": 99}, {}))
        assert [config.seed for config in configs] == [99, 11]

    def test_overrides_apply_on_top_of_base(self):
        base = SamplerConfig(batch_size=64, learning_rate=10.0)
        configs = member_configs(base, ({"learning_rate": 5.0}, {"batch_size": 32}))
        assert configs[0].learning_rate == 5.0 and configs[0].batch_size == 64
        assert configs[1].learning_rate == 10.0 and configs[1].batch_size == 32

    def test_none_seed_base(self):
        configs = member_configs(SamplerConfig(seed=None), normalize_portfolio(2))
        assert [config.seed for config in configs] == [0, 1]


class TestMerge:
    def test_exact_dedup_member_major_order(self):
        member0 = np.array([[1, 0, 0], [0, 1, 0]], dtype=bool)
        member1 = np.array([[0, 1, 0], [1, 1, 1]], dtype=bool)  # first row repeats
        merged = merge_member_solutions(3, [member0, member1])
        assert len(merged) == 3
        expected = np.array([[1, 0, 0], [0, 1, 0], [1, 1, 1]], dtype=bool)
        assert np.array_equal(merged.to_matrix(), expected)

    def test_none_and_empty_members_skipped(self):
        member = np.array([[1, 0]], dtype=bool)
        merged = merge_member_solutions(
            2, [None, np.zeros((0, 2), dtype=bool), member]
        )
        assert np.array_equal(merged.to_matrix(), member)

    def test_completion_order_does_not_matter(self):
        # the caller passes matrices in member-index order regardless of who
        # finished first; merging is a pure function of that ordered list
        rng = np.random.default_rng(0)
        members = [rng.random((4, 5)) < 0.5 for _ in range(3)]
        a = merge_member_solutions(5, members)
        b = merge_member_solutions(5, [m.copy() for m in members])
        assert np.array_equal(a.to_matrix(), b.to_matrix())
        assert isinstance(a, SolutionSet)
