"""Tests for the formula-keyed artifact cache (repro.serve.cache)."""

import numpy as np
import pytest

from repro.cnf.dimacs import parse_dimacs
from repro.core.signatures import formula_signature
from repro.serve.cache import ArtifactCache, build_artifact
from tests.conftest import FIG1_DIMACS


@pytest.fixture
def fig1():
    return parse_dimacs(FIG1_DIMACS, name="fig1")


class TestFormulaSignature:
    def test_equal_formulas_share_a_signature(self, fig1):
        other = parse_dimacs(FIG1_DIMACS, name="renamed-copy")
        assert formula_signature(fig1) == formula_signature(other)

    def test_name_and_comments_do_not_matter(self, tiny_sat_formula):
        from repro.cnf.formula import CNF

        twin = CNF([[1, 2], [-1, 3]], num_variables=3, name="other-name",
                   comments=["c a comment"])
        assert formula_signature(tiny_sat_formula) == formula_signature(twin)

    def test_clause_order_matters(self):
        from repro.cnf.formula import CNF

        a = CNF([[1, 2], [-1, 3]], num_variables=3)
        b = CNF([[-1, 3], [1, 2]], num_variables=3)
        assert formula_signature(a) != formula_signature(b)

    def test_variable_count_matters(self):
        from repro.cnf.formula import CNF

        a = CNF([[1, 2]], num_variables=2)
        b = CNF([[1, 2]], num_variables=3)
        assert formula_signature(a) != formula_signature(b)


class TestArtifactCache:
    def test_build_then_hit_returns_same_artifact(self, fig1):
        cache = ArtifactCache(max_entries=4)
        first, built_first = cache.get_or_build(fig1)
        second, built_second = cache.get_or_build(parse_dimacs(FIG1_DIMACS))
        assert built_first and not built_second
        assert second is first
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1

    def test_artifact_is_complete(self, fig1):
        artifact = build_artifact(fig1)
        assert artifact.transform.constraints  # fig1 has a constrained path
        assert artifact.plan is artifact.formula.evaluation_plan()
        # the engine program was compiled eagerly into the circuit memo
        from repro.engine.compiler import cached_programs

        assert cached_programs(artifact.transform.circuit)
        assert artifact.nbytes > 0
        assert artifact.build_seconds > 0.0

    def test_sampling_from_artifact_matches_direct_run(self, fig1):
        from repro.core.config import SamplerConfig
        from repro.core.sampler import GradientSATSampler

        cache = ArtifactCache()
        artifact, _ = cache.get_or_build(fig1)
        config = SamplerConfig(batch_size=32, seed=5)
        warm = GradientSATSampler(
            artifact.formula, transform=artifact.transform, config=config
        ).sample(20)
        cold = GradientSATSampler(parse_dimacs(FIG1_DIMACS), config=config).sample(20)
        assert np.array_equal(warm.solutions.to_matrix(), cold.solutions.to_matrix())

    def test_lru_entry_bound(self, fig1, tiny_sat_formula):
        cache = ArtifactCache(max_entries=1)
        first, _ = cache.get_or_build(fig1)
        cache.get_or_build(tiny_sat_formula)
        assert len(cache) == 1
        assert first.signature not in cache
        # rebuilt on the next request (a fresh object, not the evicted one)
        rebuilt, built = cache.get_or_build(fig1)
        assert built and rebuilt is not first

    def test_byte_bound_evicts(self, fig1, tiny_sat_formula):
        probe = build_artifact(parse_dimacs(FIG1_DIMACS))
        cache = ArtifactCache(max_entries=8, max_bytes=probe.nbytes + 1)
        cache.get_or_build(fig1)
        cache.get_or_build(tiny_sat_formula)  # pushes total over the bound
        assert len(cache) == 1

    def test_eviction_releases_memoised_state(self, fig1, tiny_sat_formula):
        cache = ArtifactCache(max_entries=1)
        artifact, _ = cache.get_or_build(fig1)
        cache.get_or_build(tiny_sat_formula)  # evicts fig1's artifact
        from repro.engine.compiler import cached_programs

        assert not cached_programs(artifact.transform.circuit)

    def test_clear(self, fig1):
        cache = ArtifactCache()
        cache.get_or_build(fig1)
        cache.clear()
        assert len(cache) == 0
        assert cache.stats()["evictions"] == 1
