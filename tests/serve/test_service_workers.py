"""End-to-end tests of SamplingService with a spawn process pool.

These run real subprocess workers, so the suite keeps them few and small:
one shared 2-worker service exercises correctness, coalescing, portfolio
merging and streaming; reproducibility across runs is asserted on fresh
1-worker services (where execution order is deterministic).
"""

import numpy as np
import pytest

from repro.cnf.dimacs import parse_dimacs
from repro.core.config import SamplerConfig
from repro.core.sampler import GradientSATSampler
from repro.serve import SamplingService
from repro.serve.workers import MSG_DONE, MSG_ERROR, MSG_ROUND, execute_task, pack_rows, unpack_rows
from tests.conftest import FIG1_DIMACS

CONFIG = SamplerConfig(batch_size=32, seed=0)

#: Generous bound for pool operations on a loaded CI box.
TIMEOUT = 120.0


@pytest.fixture(scope="module")
def pool():
    with SamplingService(num_workers=2) as service:
        yield service


@pytest.fixture
def fig1():
    return parse_dimacs(FIG1_DIMACS, name="fig1")


class TestPool:
    def test_job_matches_direct_sampler(self, pool, fig1):
        job_id = pool.submit(fig1, num_solutions=16, config=CONFIG, coalesce=False)
        result = pool.result(job_id, timeout=TIMEOUT)
        direct = GradientSATSampler(parse_dimacs(FIG1_DIMACS), config=CONFIG).sample(16)
        assert result.status == "done"
        assert np.array_equal(result.solutions.to_matrix(), direct.solutions.to_matrix())

    def test_warm_worker_reuses_artifact(self, pool, fig1):
        a = pool.submit(fig1, num_solutions=8, config=CONFIG.with_(seed=11), coalesce=False)
        first = pool.result(a, timeout=TIMEOUT)
        b = pool.submit(fig1, num_solutions=8, config=CONFIG.with_(seed=12), coalesce=False)
        second = pool.result(b, timeout=TIMEOUT)
        # affinity routes the second job to the worker that compiled fig1
        assert second.members[0]["worker"] == first.members[0]["worker"]
        assert second.members[0]["cache_hit"] is True

    def test_coalesced_followers_share_the_pool(self, pool, fig1):
        a = pool.submit(fig1, num_solutions=12, config=CONFIG.with_(seed=21))
        b = pool.submit(fig1, num_solutions=12, config=CONFIG.with_(seed=21))
        ra = pool.result(a, timeout=TIMEOUT)
        rb = pool.result(b, timeout=TIMEOUT)
        assert rb.coalesced_with == a
        assert rb.solutions is ra.solutions

    def test_portfolio_spreads_and_merges_exactly(self, pool, fig1):
        job_id = pool.submit(
            fig1,
            num_solutions=10_000,
            config=CONFIG.with_(seed=31),
            portfolio=2,
            coalesce=False,
        )
        result = pool.result(job_id, timeout=TIMEOUT)
        assert len(result.members) == 2
        matrix = result.solutions.to_matrix()
        assert len(np.unique(np.packbits(matrix, axis=1), axis=0)) == matrix.shape[0]
        assert bool(fig1.evaluate_batch(matrix).all())

    def test_stream_rebuilds_single_member_job(self, pool, fig1):
        job_id = pool.submit(
            fig1, num_solutions=40, config=CONFIG.with_(seed=41), coalesce=False
        )
        chunks = list(pool.stream(job_id))
        result = pool.result(job_id, timeout=TIMEOUT)
        assert np.array_equal(np.concatenate(chunks, axis=0), result.solutions.to_matrix())

    def test_result_timeout_raises(self, pool, fig1):
        job_id = pool.submit(
            fig1, num_solutions=10_000, config=CONFIG.with_(seed=51), coalesce=False
        )
        with pytest.raises(TimeoutError):
            pool.result(job_id, timeout=0.0)
        # the job is unharmed and can still be collected
        assert pool.result(job_id, timeout=TIMEOUT).status == "done"


class TestPoolFailureModes:
    def test_dead_worker_surfaces_as_job_error_not_hang(self):
        import time

        from repro.instances.registry import get_instance

        # A genuinely long job: the ~1 s artifact build produces no worker
        # messages at all, then sampling runs for many more seconds (huge
        # target, no stall cutoff) — ample window for both assertions.
        formula = get_instance("s15850a_3_2").build_cnf()
        config = CONFIG.with_(
            batch_size=4096, iterations=10, max_rounds=64, stall_rounds=None
        )
        # supervise=False opts into the fail-fast semantics this test pins
        # down; the supervised recovery path is covered in tests/faults/.
        service = SamplingService(num_workers=1, supervise=False)
        try:
            job_id = service.submit(formula, num_solutions=10**9, config=config)
            # the timeout must fire on schedule even while the worker is
            # silent (old behaviour: blocked until the first message)
            start = time.perf_counter()
            with pytest.raises(TimeoutError):
                service.result(job_id, timeout=0.3)
            assert time.perf_counter() - start < 2.0
            # kill the worker outright: the job must finalize as an error
            # instead of blocking result() forever
            service._workers[0].process.terminate()  # noqa: SLF001
            result = service.result(job_id, timeout=TIMEOUT)
            assert result.status == "error"
            assert "died" in (result.error or "")
        finally:
            service.close()


class TestSingleWorkerDeterminism:
    def test_portfolio_merge_bitwise_reproducible(self, fig1):
        def run():
            with SamplingService(num_workers=1) as service:
                job_id = service.submit(
                    fig1,
                    num_solutions=40,
                    config=CONFIG,
                    portfolio=[{"learning_rate": 10.0}, {"learning_rate": 5.0}],
                )
                return service.result(job_id, timeout=TIMEOUT).solutions.to_matrix()

        first = run()
        assert first.shape[0] > 0
        assert np.array_equal(first, run())


class TestWorkerUnits:
    def test_pack_rows_round_trip(self):
        rng = np.random.default_rng(0)
        matrix = rng.random((5, 13)) < 0.5
        blob, rows, cols = pack_rows(matrix)
        assert np.array_equal(unpack_rows(blob, rows, cols), matrix)
        assert unpack_rows(b"", 0, 13).shape == (0, 13)

    def test_execute_task_reports_errors_not_raises(self):
        from repro.serve.cache import ArtifactCache

        messages = []
        execute_task(
            {
                "key": ("job", 0),
                "group": "job",
                "source": {"path": "/nonexistent/missing.cnf"},
                "signature": "sig",
                "config": {},
                "num_solutions": 4,
            },
            ArtifactCache(),
            should_stop=None,
            emit=lambda kind, key, payload: messages.append((kind, key, payload)),
        )
        assert len(messages) == 1
        kind, key, payload = messages[0]
        assert kind == MSG_ERROR
        assert key == ("job", 0)
        assert "FileNotFoundError" in payload["error"]

    def test_execute_task_skips_cancelled_group(self, fig1):
        from repro.serve.cache import ArtifactCache
        from repro.serve.jobs import config_to_dict, normalize_source

        messages = []
        execute_task(
            {
                "key": ("job", 1),
                "group": "job",
                "source": normalize_source(fig1),
                "signature": "sig",
                "config": config_to_dict(CONFIG),
                "num_solutions": 4,
            },
            ArtifactCache(),
            should_stop=lambda: True,
            emit=lambda kind, key, payload: messages.append((kind, key, payload)),
        )
        assert [message[0] for message in messages] == [MSG_DONE]
        assert messages[0][2]["cancelled"] is True
        assert messages[0][2]["summary"] is None
