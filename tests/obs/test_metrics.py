"""Metrics contract: counter/gauge/histogram semantics, label validation,
cross-process merge rules and the Prometheus exposition golden file."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.obs.metrics import (
    DEFAULT_TIME_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)

GOLDEN_PROM = Path(__file__).parent / "golden_metrics.prom"


@pytest.fixture
def reg():
    """A fresh, private registry — tests never touch the process one."""
    return MetricsRegistry()


class TestCounter:
    def test_inc_and_value(self, reg):
        ops = reg.counter("repro_test_ops_total", "ops", labels=("op",))
        ops.inc(1.0, "hit")
        ops.inc(2.0, "hit")
        ops.inc(1.0, "miss")
        assert ops.value("hit") == 3.0
        assert ops.value("miss") == 1.0
        assert ops.value("never") == 0.0
        assert ops.total() == 4.0

    def test_counters_cannot_decrease(self, reg):
        total = reg.counter("repro_test_total")
        with pytest.raises(ValueError, match="cannot decrease"):
            total.inc(-1.0)

    def test_keyword_labels(self, reg):
        ops = reg.counter("repro_test_kw_total", labels=("op", "tier"))
        ops.inc(1.0, op="hit", tier="disk")
        assert ops.value("hit", "disk") == 1.0
        with pytest.raises(ValueError, match="expects labels"):
            ops.inc(1.0, op="hit")  # missing a label
        with pytest.raises(ValueError, match="positionally or by name"):
            ops.inc(1.0, "hit", tier="disk")

    def test_label_arity_is_enforced(self, reg):
        ops = reg.counter("repro_test_arity_total", labels=("op",))
        with pytest.raises(ValueError, match="label"):
            ops.inc(1.0)
        with pytest.raises(ValueError, match="label"):
            ops.inc(1.0, "a", "b")


class TestGauge:
    def test_last_write_wins(self, reg):
        depth = reg.gauge("repro_test_depth")
        depth.set(5.0)
        depth.set(2.0)
        assert depth.value() == 2.0
        depth.inc(3.0)
        depth.dec(1.0)
        assert depth.value() == 4.0


class TestHistogramBucketEdges:
    def test_value_on_a_bound_falls_into_that_bucket(self, reg):
        hist = reg.histogram("repro_test_seconds", buckets=(0.1, 0.5, 1.0))
        hist.observe(0.1)  # le semantics: equal goes IN the 0.1 bucket
        snap = hist.snapshot()
        assert snap["counts"] == [1, 0, 0, 0]

    def test_values_between_bounds_go_up(self, reg):
        hist = reg.histogram("repro_test_mid_seconds", buckets=(0.1, 0.5, 1.0))
        hist.observe(0.10000001)
        assert hist.snapshot()["counts"] == [0, 1, 0, 0]

    def test_overflow_lands_in_inf(self, reg):
        hist = reg.histogram("repro_test_inf_seconds", buckets=(0.1, 0.5, 1.0))
        hist.observe(2.0)
        snap = hist.snapshot()
        assert snap["counts"] == [0, 0, 0, 1]
        assert snap["count"] == 1
        assert snap["sum"] == 2.0

    def test_every_default_bound_is_upper_inclusive(self, reg):
        hist = reg.histogram("repro_test_default_seconds")
        for bound in DEFAULT_TIME_BUCKETS:
            hist.observe(bound)
        counts = hist.snapshot()["counts"]
        assert counts == [1] * len(DEFAULT_TIME_BUCKETS) + [0]

    def test_buckets_are_sorted_and_deduplicated(self, reg):
        hist = reg.histogram("repro_test_sort_seconds", buckets=(1.0, 0.1, 0.5))
        assert hist.buckets == (0.1, 0.5, 1.0)
        with pytest.raises(ValueError, match="duplicate"):
            Histogram("x", "", (), buckets=(0.1, 0.1))
        with pytest.raises(ValueError, match="at least one"):
            Histogram("x", "", (), buckets=())


class TestRegistry:
    def test_registration_is_idempotent(self, reg):
        first = reg.counter("repro_test_idem_total", "help", labels=("op",))
        again = reg.counter("repro_test_idem_total", "other help", labels=("op",))
        assert again is first

    def test_kind_and_label_conflicts_raise(self, reg):
        reg.counter("repro_test_conflict", labels=("op",))
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("repro_test_conflict", labels=("op",))
        with pytest.raises(ValueError, match="already registered"):
            reg.counter("repro_test_conflict", labels=("other",))

    def test_bucket_conflicts_raise(self, reg):
        reg.histogram("repro_test_b_seconds", buckets=(0.1, 1.0))
        with pytest.raises(ValueError, match="buckets"):
            reg.histogram("repro_test_b_seconds", buckets=(0.2, 1.0))

    def test_reset_zeroes_but_keeps_handles(self, reg):
        ops = reg.counter("repro_test_reset_total", labels=("op",))
        ops.inc(5.0, "hit")
        reg.reset()
        assert ops.value("hit") == 0.0
        ops.inc(1.0, "hit")  # the held handle still works
        assert ops.value("hit") == 1.0


class TestMerge:
    """Cross-process semantics: counters/histograms sum, gauges replace."""

    def _dump(self, count: float):
        source = MetricsRegistry()
        source.counter("repro_m_total", "t", labels=("op",)).inc(count, "hit")
        source.gauge("repro_m_depth").set(count)
        source.histogram("repro_m_seconds", buckets=(0.1, 1.0)).observe(count / 10)
        return source.to_dict()

    def test_merging_distinct_dumps_sums_counters(self):
        merged = MetricsRegistry()
        merged.merge(self._dump(2.0))
        merged.merge(self._dump(3.0))
        assert merged.counter("repro_m_total", labels=("op",)).value("hit") == 5.0
        assert merged.gauge("repro_m_depth").value() == 3.0  # last write wins
        snap = merged.histogram("repro_m_seconds", buckets=(0.1, 1.0)).snapshot()
        assert snap["count"] == 2
        assert snap["counts"] == [0, 2, 0]  # 0.2 and 0.3 both in (0.1, 1.0]

    def test_dump_round_trips_through_merge(self):
        dump = self._dump(4.0)
        copy = MetricsRegistry()
        copy.merge(dump)
        assert copy.to_dict() == dump


class TestPrometheusExposition:
    def _populated(self):
        reg = MetricsRegistry()
        ops = reg.counter("repro_store_ops_total",
                          "Store operations by outcome.", labels=("op",))
        ops.inc(3.0, "hit")
        ops.inc(1.0, "miss")
        reg.gauge("repro_serve_queue_depth", "Jobs awaiting a worker.").set(2.0)
        hist = reg.histogram("repro_sampler_round_seconds",
                             "Sampling round wall-clock.", buckets=(0.1, 0.5, 1.0))
        for value in (0.05, 0.1, 0.3, 2.0):
            hist.observe(value)
        escapes = reg.counter("repro_test_escapes_total", "", labels=("path",))
        escapes.inc(1.0, 'quo"te\\back\nline')
        return reg

    def test_exposition_matches_the_golden_file(self):
        text = self._populated().to_prometheus()
        assert text == GOLDEN_PROM.read_text(), (
            f"Prometheus exposition drifted from {GOLDEN_PROM}; if the "
            "change is intentional, regenerate the golden file."
        )

    def test_histogram_buckets_are_cumulative(self):
        text = self._populated().to_prometheus()
        assert 'repro_sampler_round_seconds_bucket{le="0.1"} 2' in text
        assert 'repro_sampler_round_seconds_bucket{le="0.5"} 3' in text
        assert 'repro_sampler_round_seconds_bucket{le="1"} 3' in text
        assert 'repro_sampler_round_seconds_bucket{le="+Inf"} 4' in text
        assert "repro_sampler_round_seconds_count 4" in text

    def test_unlabelled_metrics_default_to_zero_lines(self):
        reg = MetricsRegistry()
        reg.counter("repro_never_hit_total", "never incremented")
        assert "repro_never_hit_total 0" in reg.to_prometheus()
