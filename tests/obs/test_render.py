"""Trace rendering and the shared benchmark timing helpers."""

from __future__ import annotations

import pytest

from repro import obs
from repro.obs.bench import median_seconds, time_passes, timed
from repro.obs.render import group_spans_by_trace, render_trace


def _span(name, span_id, parent_id=None, trace_id=None, duration=0.1,
          start=0.0, status="ok"):
    return {"name": name, "span_id": span_id, "parent_id": parent_id,
            "trace_id": trace_id, "start_unix": start, "duration": duration,
            "status": status, "pid": 1}


class TestRenderTrace:
    def test_siblings_aggregate_into_one_line(self):
        spans = [_span("job", "j", trace_id="job-1", duration=1.0)]
        spans += [_span("round", f"r{i}", parent_id="j", trace_id="job-1",
                        duration=0.2, start=float(i)) for i in range(3)]
        text = render_trace(spans)
        assert "== job-1 — 4 spans across 1 process ==" in text
        assert "round" in text and "x3" in text
        # the parent's self time excludes the aggregated children
        job_line = next(line for line in text.splitlines() if "job " in line)
        assert "total    1.0000s" in job_line
        assert "self    0.4000s" in job_line

    def test_orphan_spans_render_as_roots(self):
        spans = [_span("child", "c", parent_id="gone", trace_id="t")]
        text = render_trace(spans)
        assert "child" in text  # not dropped

    def test_errors_are_annotated(self):
        spans = [_span("failing", "f", status="error")]
        assert "(1 error)" in render_trace(spans)

    def test_trace_filter(self):
        spans = [_span("a", "1", trace_id="job-1"),
                 _span("b", "2", trace_id="job-2")]
        text = render_trace(spans, trace_id="job-1")
        assert "a" in text and "job-2" not in text
        assert "no spans" in render_trace(spans, trace_id="job-9")

    def test_grouping_by_trace(self):
        spans = [_span("a", "1", trace_id="job-1"), _span("b", "2")]
        groups = group_spans_by_trace(spans)
        assert set(groups) == {"job-1", ""}

    def test_empty_trace(self):
        assert render_trace([]) == "no spans recorded\n"


class TestRenderMetricsDump:
    def test_tabulates_counters_and_histograms(self):
        reg = obs.MetricsRegistry()
        reg.counter("repro_r_total", labels=("op",)).inc(3.0, "hit")
        reg.histogram("repro_r_seconds", buckets=(0.1, 1.0)).observe(0.05)
        text = obs.render_metrics_dump(reg.to_dict())
        assert "repro_r_total (counter)" in text
        assert "{op=hit}" in text and "3" in text
        assert "repro_r_seconds (histogram)" in text
        assert "count        1" in text

    def test_empty_dump(self):
        assert obs.render_metrics_dump({}) == "no metrics recorded\n"


class TestBenchHelpers:
    def test_time_passes_counts_calls(self):
        calls = []
        seconds = time_passes(lambda: calls.append(1), repeats=3, passes=2,
                              warmup=1)
        assert len(calls) == 1 + 3 * 2  # warmup + repeats x passes
        assert seconds >= 0.0

    def test_time_passes_validates_arguments(self):
        step = lambda: None
        with pytest.raises(ValueError, match="repeats"):
            time_passes(step, repeats=0)
        with pytest.raises(ValueError, match="passes"):
            time_passes(step, passes=0)
        with pytest.raises(ValueError, match="reduce"):
            time_passes(step, reduce="mean")

    def test_median_seconds(self):
        assert median_seconds([3.0, 1.0, 2.0]) == 2.0
        with pytest.raises(ValueError):
            median_seconds([])

    def test_timed_context_manager(self):
        with timed() as timer:
            sum(range(100))
        assert timer.seconds >= 0.0
