"""Snapshot/aggregator semantics (single process: pids are simulated)."""

from __future__ import annotations

import os

import pytest

from repro import obs
from repro.obs.metrics import MetricsRegistry


def _metrics_dump(hits: float):
    reg = MetricsRegistry()
    reg.counter("repro_w_total", labels=("op",)).inc(hits, "hit")
    return reg.to_dict()


def _payload(pid: int, worker_id: int, hits: float, spans=()):
    return obs.TelemetrySnapshot(
        pid=pid, worker_id=worker_id, spans=list(spans),
        metrics=_metrics_dump(hits),
    ).to_payload()


def _merged_hits(aggregator) -> float:
    dump = aggregator.merged_metrics()
    series = dump.get("repro_w_total", {}).get("series", {})
    return float(series.get("hit", 0.0))


class TestTelemetrySnapshot:
    def test_payload_round_trip(self):
        snapshot = obs.TelemetrySnapshot(
            pid=123, worker_id=1,
            spans=[{"name": "s", "span_id": "a-1"}],
            metrics=_metrics_dump(2.0),
        )
        back = obs.TelemetrySnapshot.from_payload(snapshot.to_payload())
        assert back == snapshot

    def test_capture_snapshot_drains_the_ring(self):
        obs.enable_tracing()
        with obs.span("captured"):
            pass
        snapshot = obs.capture_snapshot(worker_id=3)
        assert snapshot.pid == os.getpid()
        assert snapshot.worker_id == 3
        assert [record["name"] for record in snapshot.spans] == ["captured"]
        assert obs.tracer().spans() == []  # drained

    def test_capture_without_tracing_still_carries_metrics(self):
        snapshot = obs.capture_snapshot()
        assert snapshot.spans == []
        assert isinstance(snapshot.metrics, dict)


class TestTelemetryAggregator:
    def test_latest_dump_per_worker_wins(self):
        agg = obs.TelemetryAggregator()
        agg.absorb(_payload(pid=1001, worker_id=0, hits=2.0))
        agg.absorb(_payload(pid=1001, worker_id=0, hits=5.0))  # newer, cumulative
        assert _merged_hits(agg) == 5.0

    def test_distinct_workers_sum(self):
        agg = obs.TelemetryAggregator()
        agg.absorb(_payload(pid=1001, worker_id=0, hits=5.0))
        agg.absorb(_payload(pid=1002, worker_id=1, hits=3.0))
        assert _merged_hits(agg) == 8.0
        assert agg.worker_sources() == [(1001, 0), (1002, 1)]

    def test_own_pid_snapshots_are_skipped(self):
        agg = obs.TelemetryAggregator()
        agg.absorb(_payload(pid=os.getpid(), worker_id=0, hits=99.0,
                            spans=[{"name": "dup", "span_id": "x"}]))
        assert _merged_hits(agg) == 0.0
        assert agg.absorbed_spans == 0

    def test_foreign_spans_rerecord_into_the_local_tracer(self):
        obs.enable_tracing()
        agg = obs.TelemetryAggregator()
        record = {"name": "worker.task", "span_id": "w-1", "parent_id": "j-1",
                  "trace_id": "job-1", "start_unix": 0.0, "duration": 0.1,
                  "status": "ok", "pid": 1001}
        agg.absorb(obs.TelemetrySnapshot(pid=1001, worker_id=0,
                                         spans=[record]).to_payload())
        assert agg.absorbed_spans == 1
        assert record in obs.tracer().spans()

    def test_none_payload_is_ignored(self):
        agg = obs.TelemetryAggregator()
        agg.absorb(None)
        agg.absorb({})
        assert agg.worker_sources() == []


class TestMergeMetricRecords:
    """The trace-file analogue of the aggregator's latest-per-pid rule."""

    def test_latest_line_per_pid_then_sum_across_pids(self):
        records = [
            obs.metrics_dump_record(_metrics_dump(2.0)),
            obs.metrics_dump_record(_metrics_dump(7.0)),  # same pid: replaces
        ]
        records[0]["pid"] = records[1]["pid"] = 1001
        records.append({"type": "metrics", "pid": 1002,
                        "metrics": _metrics_dump(3.0)})
        merged = obs.merge_metric_records(records)
        assert merged["repro_w_total"]["series"]["hit"] == 10.0

    def test_empty_records(self):
        assert obs.merge_metric_records([]) == {}


class TestArtifactCounters:
    def test_flattens_the_three_artifact_metrics(self):
        reg = MetricsRegistry()
        reg.counter("repro_store_ops_total", labels=("op",)).inc(2.0, "hit")
        reg.counter("repro_cache_ops_total",
                    labels=("tier", "op")).inc(1.0, "memory", "miss")
        reg.counter("repro_serve_artifacts_total",
                    labels=("source",)).inc(4.0, "built")
        reg.counter("repro_unrelated_total").inc(9.0)
        flat = obs.artifact_counters(reg.to_dict())
        assert flat == {
            "store_hit": 2.0,
            "cache_memory_miss": 1.0,
            "artifacts_built": 4.0,
        }

    def test_defaults_to_the_process_registry(self):
        flat = obs.artifact_counters()
        assert isinstance(flat, dict)
        assert all(isinstance(value, float) for value in flat.values())
