"""Telemetry test isolation: every test leaves the process tracer disabled."""

from __future__ import annotations

import pytest

from repro import obs


@pytest.fixture(autouse=True)
def _tracing_off_after():
    """The process tracer is global state — force it off (and its sink
    closed) after each test so one test's tracing can't leak into another."""
    yield
    obs.disable_tracing()
    obs.tracer().clear()
