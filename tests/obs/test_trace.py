"""Tracing contract: nesting, exception safety, disabled-mode freeness,
scope reentrancy and the JSONL trace-file round trip."""

from __future__ import annotations

import json
import threading

import pytest

from repro import obs


def _spans_by_name():
    return {record["name"]: record for record in obs.tracer().spans()}


class TestDisabledMode:
    def test_span_returns_the_noop_singleton(self):
        assert not obs.tracing_enabled()
        assert obs.span("anything") is obs.NOOP_SPAN
        assert obs.span("anything", {"k": 1}) is obs.NOOP_SPAN

    def test_noop_span_surface_is_inert(self):
        with obs.span("x") as span:
            assert span is obs.NOOP_SPAN
            assert span.set("key", "value") is obs.NOOP_SPAN
        span.finish()  # idempotent, still a no-op
        assert obs.NOOP_SPAN.attributes == {}

    def test_disabled_span_allocates_nothing(self):
        """The disabled fast path must return the same object every call —
        the zero-allocation guarantee the hot loops are instrumented under."""
        spans = {id(obs.span("hot.loop")) for _ in range(1000)}
        assert spans == {id(obs.NOOP_SPAN)}

    def test_current_span_is_none_when_disabled(self):
        assert obs.current_span() is None

    def test_nothing_recorded_while_disabled(self):
        with obs.span("invisible"):
            pass
        assert obs.tracer().spans() == []


class TestNesting:
    def test_children_parent_under_the_enclosing_span(self):
        obs.enable_tracing()
        with obs.span("outer") as outer:
            with obs.span("inner") as inner:
                assert inner.parent_id == outer.span_id
                assert obs.current_span() is inner
            assert obs.current_span() is outer
        records = _spans_by_name()
        assert records["inner"]["parent_id"] == records["outer"]["span_id"]
        assert records["outer"]["parent_id"] is None

    def test_children_finish_before_parents(self):
        obs.enable_tracing()
        with obs.span("parent"):
            with obs.span("child"):
                pass
        names = [record["name"] for record in obs.tracer().spans()]
        assert names == ["child", "parent"]

    def test_trace_id_inherits_down_the_stack(self):
        obs.enable_tracing()
        job = obs.tracer().begin("job", trace_id="job-42")
        with obs.span("stage", {"n": 1}) as stage:
            # The detached span is not on the thread stack, so the nested
            # span roots itself; explicit parentage wires it to the job.
            assert stage.parent_id is None
        job.finish()
        nested = obs.tracer().start_span("task", parent_id=job.span_id,
                                         trace_id=job.trace_id)
        with nested, obs.span("round") as inner:
            assert inner.trace_id == "job-42"
            assert inner.parent_id == nested.span_id

    def test_attributes_and_set_chaining(self):
        obs.enable_tracing()
        with obs.span("work", {"batch": 8}) as span:
            span.set("rounds", 3).set("batch", 16)
        record = _spans_by_name()["work"]
        assert record["attributes"] == {"batch": 16, "rounds": 3}

    def test_threads_have_independent_stacks(self):
        obs.enable_tracing()
        seen = {}

        def worker():
            seen["inside"] = obs.current_span()
            with obs.span("threaded") as span:
                seen["parent_id"] = span.parent_id

        with obs.span("main-side"):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        assert seen["inside"] is None  # the main thread's span is invisible
        assert seen["parent_id"] is None


class TestExceptionSafety:
    def test_raising_block_still_closes_its_span(self):
        obs.enable_tracing()
        with pytest.raises(ValueError):
            with obs.span("doomed"):
                raise ValueError("boom")
        record = _spans_by_name()["doomed"]
        assert record["status"] == "error"
        assert record["attributes"]["error"] == "ValueError"
        assert record["attributes"]["error_message"] == "boom"
        assert record["duration"] >= 0.0

    def test_stack_is_not_corrupted_by_the_raise(self):
        obs.enable_tracing()
        with obs.span("outer"):
            with pytest.raises(RuntimeError):
                with obs.span("failing"):
                    raise RuntimeError("x")
            # the failing span popped itself; new spans nest under outer again
            with obs.span("after") as after:
                assert after.parent_id is not None
        records = _spans_by_name()
        assert records["after"]["parent_id"] == records["outer"]["span_id"]
        assert records["outer"]["status"] == "ok"

    def test_finish_is_idempotent(self):
        obs.enable_tracing()
        span = obs.tracer().begin("detached")
        span.finish()
        first = span.duration
        span.finish()
        assert span.duration == first
        assert len(obs.tracer().spans()) == 1


class TestRing:
    def test_ring_is_bounded(self):
        obs.enable_tracing(ring_size=4)
        for index in range(10):
            with obs.span(f"s{index}"):
                pass
        names = [record["name"] for record in obs.tracer().spans()]
        assert names == ["s6", "s7", "s8", "s9"]

    def test_drain_clears_the_ring(self):
        obs.enable_tracing()
        with obs.span("once"):
            pass
        assert [r["name"] for r in obs.tracer().drain()] == ["once"]
        assert obs.tracer().spans() == []


class TestTraceScope:
    def test_scope_enables_and_restores(self):
        assert not obs.tracing_enabled()
        with obs.trace_scope("mem"):
            assert obs.tracing_enabled()
        assert not obs.tracing_enabled()

    def test_inner_scope_is_a_noop(self, tmp_path):
        outer_path = tmp_path / "outer.jsonl"
        with obs.trace_scope(str(outer_path)):
            sink = obs.tracer().sink
            with obs.trace_scope(str(tmp_path / "inner.jsonl")):
                # the outermost scope owns the sink; the inner one must not
                # re-open, replace, or later close it
                assert obs.tracer().sink is sink
            assert obs.tracing_enabled()
            with obs.span("still-traced"):
                pass
        assert not obs.tracing_enabled()
        spans, _ = obs.read_trace(outer_path)
        assert [record["name"] for record in spans] == ["still-traced"]
        assert not (tmp_path / "inner.jsonl").exists()

    def test_off_and_none_specs_leave_tracing_alone(self, monkeypatch):
        monkeypatch.delenv(obs.TRACE_ENV_VAR, raising=False)
        with obs.trace_scope("off"):
            assert not obs.tracing_enabled()
        with obs.trace_scope(None):  # no env var: leave as-is
            assert not obs.tracing_enabled()

    def test_none_spec_defers_to_the_environment(self, monkeypatch, tmp_path):
        path = tmp_path / "env.jsonl"
        monkeypatch.setenv(obs.TRACE_ENV_VAR, str(path))
        with obs.trace_scope(None):
            with obs.span("from-env"):
                pass
        spans, _ = obs.read_trace(path)
        assert [record["name"] for record in spans] == ["from-env"]

    @pytest.mark.parametrize("spec,expected", [
        ("off", "off"), ("0", "off"), ("none", "off"), ("disabled", "off"),
        ("1", "mem"), ("on", "mem"), ("mem", "mem"), ("ring", "mem"),
        ("/tmp/t.jsonl", "/tmp/t.jsonl"),
    ])
    def test_resolve_trace_spec(self, monkeypatch, spec, expected):
        monkeypatch.delenv(obs.TRACE_ENV_VAR, raising=False)
        assert obs.resolve_trace_spec(spec) == expected


class TestTraceFileRoundTrip:
    def test_spans_and_metrics_round_trip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        obs.enable_tracing(sink=path)
        with obs.span("outer", {"note": "a"}):
            with obs.span("inner"):
                pass
        wrote = obs.write_metrics_to_trace({"repro_x_total": {
            "type": "counter", "help": "", "labels": [], "series": {"": 2.0},
        }})
        assert wrote
        obs.disable_tracing()  # closes (and flushes) the sink

        spans, metrics = obs.read_trace(path)
        by_name = {record["name"]: record for record in spans}
        assert set(by_name) == {"outer", "inner"}
        assert by_name["inner"]["parent_id"] == by_name["outer"]["span_id"]
        for record in spans:  # every span field survives JSON
            assert record["duration"] >= 0.0
            assert record["status"] == "ok"
            assert isinstance(record["pid"], int)
        assert len(metrics) == 1
        assert metrics[0]["metrics"]["repro_x_total"]["series"] == {"": 2.0}

    def test_corrupt_lines_are_skipped(self, tmp_path):
        path = tmp_path / "partial.jsonl"
        good = json.dumps({"name": "ok", "span_id": "1", "parent_id": None,
                           "trace_id": None, "start_unix": 0.0,
                           "duration": 0.5, "status": "ok", "pid": 1})
        path.write_text(good + "\n" + '{"name": "trunc', )
        spans, metrics = obs.read_trace(path)
        assert [record["name"] for record in spans] == ["ok"]
        assert metrics == []

    def test_write_metrics_without_a_sink_is_a_noop(self):
        assert obs.write_metrics_to_trace() is False
