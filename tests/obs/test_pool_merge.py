"""End-to-end cross-process telemetry: a real 2-worker spawn pool.

One shared service runs a few small jobs with a trace file open; the
assertions then cover the whole pipeline the ISSUE's acceptance scenario
describes — worker snapshots ride the result queue, the aggregator merges
their metrics, the trace file holds every process's spans with worker task
spans parented under the service's job spans, and ``repro-sat obs`` can
reconstruct a per-job timeline from the file alone.
"""

from __future__ import annotations

import os

import pytest

from repro import obs
from repro.cnf.dimacs import parse_dimacs
from repro.core.config import SamplerConfig
from repro.obs.render import group_spans_by_trace, merge_metric_records, render_trace
from repro.serve import SamplingService
from tests.conftest import FIG1_DIMACS

CONFIG = SamplerConfig(batch_size=32, seed=0)

#: Generous bound for pool operations on a loaded CI box.
TIMEOUT = 120.0


@pytest.fixture(scope="module")
def traced_pool(tmp_path_factory):
    """A 2-worker service that ran two jobs with a JSONL trace open."""
    trace_path = tmp_path_factory.mktemp("obs") / "trace.jsonl"
    # The process registry is global and other suites in a full session run
    # inline serve jobs, so service-process counters are asserted as deltas.
    baseline = obs.artifact_counters()
    service = SamplingService(num_workers=2, trace=str(trace_path))
    try:
        # Three distinct formulas (distinct signatures) queued at once keep
        # both workers busy, so each worker builds at least one artifact.
        formulas = []
        for index, extra in enumerate(((), (1, 6), (-1, 14))):
            formula = parse_dimacs(FIG1_DIMACS, name=f"fig1-{index}")
            if extra:
                formula.add_clause(extra)
            formulas.append(formula)
        job_ids = [
            service.submit(formula, num_solutions=8,
                           config=CONFIG.with_(seed=index), coalesce=False)
            for index, formula in enumerate(formulas)
        ]
        results = {
            job_id: service.result(job_id, timeout=TIMEOUT)
            for job_id in job_ids
        }
        merged = service.merged_metrics()
        sources = service.telemetry.worker_sources()
    finally:
        service.close()
    spans, metric_records = obs.read_trace(trace_path)
    return {
        "results": results,
        "merged": merged,
        "sources": sources,
        "spans": spans,
        "metric_records": metric_records,
        "baseline": baseline,
    }


class TestPoolTelemetryMerge:
    def test_jobs_completed(self, traced_pool):
        for result in traced_pool["results"].values():
            assert result.status == "done"
            assert result.num_unique >= 8

    def test_worker_snapshots_arrived_from_foreign_pids(self, traced_pool):
        sources = traced_pool["sources"]
        assert len(sources) == 2  # both workers reported
        assert all(pid != os.getpid() for pid, _worker in sources)
        assert sorted(worker for _pid, worker in sources) == [0, 1]

    def test_trace_spans_cover_all_processes(self, traced_pool):
        pids = {record["pid"] for record in traced_pool["spans"]}
        assert os.getpid() in pids  # the service's own spans
        assert len(pids) == 3  # service + 2 workers

    def test_worker_spans_parent_under_service_job_spans(self, traced_pool):
        spans = traced_pool["spans"]
        job_ids = {record["span_id"] for record in spans
                   if record["name"] == "serve.job"}
        tasks = [record for record in spans if record["name"] == "serve.task"]
        assert job_ids and tasks
        assert all(record["parent_id"] in job_ids for record in tasks)
        assert all(record["pid"] != os.getpid() for record in tasks)

    def test_each_job_has_its_own_trace_tree(self, traced_pool):
        groups = group_spans_by_trace(traced_pool["spans"])
        for job_id in traced_pool["results"]:
            group = groups.get(job_id)
            assert group, f"no spans tagged with {job_id}"
            names = {record["name"] for record in group}
            assert "serve.job" in names
            assert "sampler.sample" in names  # worker-side work in the tree
            rendered = render_trace(group, trace_id=job_id)
            assert f"== {job_id}" in rendered
            assert "serve.task" in rendered

    def test_worker_metrics_merge_into_the_service_view(self, traced_pool):
        counters = obs.artifact_counters(traced_pool["merged"])
        baseline = traced_pool["baseline"]
        # 3 distinct formulas on a cold pool: every artifact was built once.
        built = counters.get("artifacts_built", 0.0)
        assert built - baseline.get("artifacts_built", 0.0) == 3.0
        # Worker-side counters (only incremented in worker processes) made
        # it across the queue into the merged registry: the workers' memory
        # caches were cold, so their misses land in the merged view.
        misses = counters.get("cache_memory_miss", 0.0)
        assert misses - baseline.get("cache_memory_miss", 0.0) >= 3.0

    def test_trace_file_metrics_match_the_live_merge(self, traced_pool):
        from_file = merge_metric_records(traced_pool["metric_records"])
        live = traced_pool["merged"]
        file_counters = obs.artifact_counters(from_file)
        live_counters = obs.artifact_counters(live)
        assert file_counters == live_counters
        assert file_counters  # non-empty: the anti-drift pair is real
