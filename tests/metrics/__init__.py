"""Test package (gives test modules unique dotted names)."""
