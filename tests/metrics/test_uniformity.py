"""Tests for uniformity metrics (repro.metrics.uniformity)."""

import numpy as np
import pytest

from repro.metrics.uniformity import (
    chi_square_uniformity,
    empirical_distribution,
    kl_divergence_from_uniform,
)


def _draws_from_counts(counts):
    """Expand a {vector: count} spec into a list of draws."""
    draws = []
    for vector, count in counts:
        draws.extend([np.array(vector, dtype=bool)] * count)
    return draws


class TestEmpiricalDistribution:
    def test_counts(self):
        draws = _draws_from_counts([([True, False], 3), ([False, True], 1)])
        distribution = empirical_distribution(draws)
        assert sorted(distribution.values()) == [1, 3]

    def test_empty(self):
        assert empirical_distribution([]) == {}


class TestChiSquare:
    def test_perfectly_uniform_draws_have_small_statistic(self):
        draws = _draws_from_counts([([True], 50), ([False], 50)])
        statistic, p_value = chi_square_uniformity(empirical_distribution(draws), num_models=2)
        assert statistic == 0.0
        assert p_value > 0.9

    def test_biased_draws_have_large_statistic(self):
        draws = _draws_from_counts([([True], 99), ([False], 1)])
        statistic, p_value = chi_square_uniformity(empirical_distribution(draws), num_models=2)
        assert statistic > 50
        assert p_value < 0.01

    def test_missing_models_penalised(self):
        draws = _draws_from_counts([([True, True], 100)])
        statistic, _ = chi_square_uniformity(empirical_distribution(draws), num_models=4)
        assert statistic > 100

    def test_no_draws(self):
        assert chi_square_uniformity({}, num_models=4) == (0.0, 1.0)

    def test_invalid_model_count(self):
        with pytest.raises(ValueError):
            chi_square_uniformity({}, num_models=0)


class TestKLDivergence:
    def test_uniform_is_zero(self):
        draws = _draws_from_counts([([True], 10), ([False], 10)])
        assert kl_divergence_from_uniform(empirical_distribution(draws), 2) == pytest.approx(0.0)

    def test_concentrated_is_log_n(self):
        draws = _draws_from_counts([([True, True], 100)])
        divergence = kl_divergence_from_uniform(empirical_distribution(draws), 4)
        assert divergence == pytest.approx(np.log(4))

    def test_empty_draws(self):
        assert kl_divergence_from_uniform({}, 4) == 0.0
