"""Tests for solution-quality metrics (repro.metrics.quality)."""

import numpy as np

from repro.cnf.formula import CNF
from repro.metrics.quality import (
    hamming_diversity,
    pairwise_hamming_histogram,
    solution_statistics,
    uniqueness_rate,
    validity_rate,
)


class TestValidityRate:
    def test_known_fraction(self, tiny_sat_formula):
        assignments = np.array(
            [[False, True, False], [True, False, False], [True, True, True]]
        )
        # Rows 0 and 2 satisfy, row 1 does not.
        assert validity_rate(tiny_sat_formula, assignments) == 2 / 3

    def test_empty_batch(self, tiny_sat_formula):
        assert validity_rate(tiny_sat_formula, np.zeros((0, 3), dtype=bool)) == 0.0


class TestUniquenessRate:
    def test_all_unique(self):
        assert uniqueness_rate(np.eye(3, dtype=bool)) == 1.0

    def test_duplicates_lower_rate(self):
        matrix = np.array([[True, False], [True, False], [False, True], [False, True]])
        assert uniqueness_rate(matrix) == 0.5

    def test_empty(self):
        assert uniqueness_rate(np.zeros((0, 2), dtype=bool)) == 0.0


class TestHammingDiversity:
    def test_identical_rows_zero(self):
        matrix = np.tile(np.array([[True, False, True]]), (5, 1))
        assert hamming_diversity(matrix) == 0.0

    def test_complementary_rows_one(self):
        matrix = np.array([[True, True], [False, False]])
        assert hamming_diversity(matrix) == 1.0

    def test_random_matrix_near_half(self):
        rng = np.random.default_rng(0)
        matrix = rng.random((200, 64)) < 0.5
        assert 0.4 < hamming_diversity(matrix) < 0.6

    def test_single_row_zero(self):
        assert hamming_diversity(np.array([[True, False]])) == 0.0

    def test_subsampling_path(self):
        rng = np.random.default_rng(1)
        matrix = rng.random((300, 16)) < 0.5
        value = hamming_diversity(matrix, sample_pairs=100, seed=2)
        assert 0.3 < value < 0.7


class TestHistogramAndBundle:
    def test_histogram_sums_to_pair_count(self):
        matrix = np.array([[True, False], [False, True], [True, True]])
        counts, edges = pairwise_hamming_histogram(matrix, bins=4)
        assert counts.sum() == 3  # C(3, 2)
        assert len(edges) == 5

    def test_solution_statistics_bundle(self, tiny_sat_formula):
        matrix = np.array([[False, True, False], [True, False, True]])
        stats = solution_statistics(tiny_sat_formula, matrix)
        assert set(stats) == {"validity_rate", "uniqueness_rate", "hamming_diversity"}
        assert stats["uniqueness_rate"] == 1.0
