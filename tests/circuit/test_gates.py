"""Tests for repro.circuit.gates."""

import pytest

from repro.circuit.gates import Gate, GateType


class TestGateType:
    def test_source_types(self):
        assert GateType.INPUT.is_source
        assert GateType.CONST0.is_source
        assert GateType.CONST1.is_source
        assert not GateType.AND.is_source

    def test_unary_types(self):
        assert GateType.NOT.is_unary
        assert GateType.BUF.is_unary
        assert not GateType.OR.is_unary

    def test_min_arity(self):
        assert GateType.INPUT.min_arity == 0
        assert GateType.NOT.min_arity == 1
        assert GateType.XOR.min_arity == 2


class TestGateValidation:
    def test_source_with_fanins_rejected(self):
        with pytest.raises(ValueError):
            Gate("x", GateType.INPUT, ("a",))

    def test_unary_arity_enforced(self):
        with pytest.raises(ValueError):
            Gate("x", GateType.NOT, ())
        with pytest.raises(ValueError):
            Gate("x", GateType.NOT, ("a", "b"))

    def test_nary_needs_two_fanins(self):
        with pytest.raises(ValueError):
            Gate("x", GateType.AND, ("a",))
        assert Gate("x", GateType.AND, ("a", "b")).arity == 2

    def test_valid_gates(self):
        assert Gate("i", GateType.INPUT).arity == 0
        assert Gate("n", GateType.NOT, ("i",)).arity == 1


class TestTwoInputEquivalents:
    def test_sources_and_buffers_are_free(self):
        assert Gate("i", GateType.INPUT).two_input_equivalents() == 0
        assert Gate("b", GateType.BUF, ("i",)).two_input_equivalents() == 0

    def test_inverter_costs_one(self):
        assert Gate("n", GateType.NOT, ("i",)).two_input_equivalents() == 1

    def test_wide_gates_cost_arity_minus_one(self):
        gate = Gate("g", GateType.AND, ("a", "b", "c", "d"))
        assert gate.two_input_equivalents() == 3

    def test_inverted_gates_cost_one_extra(self):
        assert Gate("g", GateType.NAND, ("a", "b")).two_input_equivalents() == 2
        assert Gate("g", GateType.AND, ("a", "b")).two_input_equivalents() == 1
        assert Gate("g", GateType.XNOR, ("a", "b")).two_input_equivalents() == 2
