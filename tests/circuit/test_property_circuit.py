"""Property-based tests for the circuit substrate.

The invariant chain the reproduction depends on:
random circuit -> Tseitin CNF -> (models project onto exactly the circuit's
satisfying input vectors), and bit-parallel simulation always agrees with
boolean simulation.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit.builder import CircuitBuilder
from repro.circuit.gates import GateType
from repro.circuit.optimize import optimize_circuit
from repro.circuit.simulate import simulate
from repro.circuit.stats import two_input_gate_equivalents
from tests.conftest import all_assignments

_BINARY_GATES = [GateType.AND, GateType.OR, GateType.NAND, GateType.NOR, GateType.XOR, GateType.XNOR]


@st.composite
def random_circuits(draw, max_inputs=4, max_gates=10):
    """Generate a random small circuit with one output."""
    num_inputs = draw(st.integers(2, max_inputs))
    num_gates = draw(st.integers(1, max_gates))
    builder = CircuitBuilder("random")
    nets = builder.inputs(num_inputs, prefix="i")
    for index in range(num_gates):
        gate_type = draw(st.sampled_from(_BINARY_GATES + [GateType.NOT]))
        if gate_type == GateType.NOT:
            fanin = draw(st.sampled_from(nets))
            nets.append(builder.not_(fanin))
        else:
            first = draw(st.sampled_from(nets))
            second = draw(st.sampled_from(nets))
            nets.append(builder.gate(gate_type, [first, second]))
    builder.output(nets[-1])
    return builder.circuit


@given(random_circuits())
@settings(max_examples=40, deadline=None)
def test_optimization_preserves_output_functions(circuit):
    optimized = optimize_circuit(circuit)
    matrix = all_assignments(circuit.num_inputs)
    before = simulate(circuit, matrix, input_order=circuit.inputs)
    after = simulate(optimized, matrix, input_order=circuit.inputs)
    for name in circuit.outputs:
        assert np.array_equal(before[name], after[name])


@given(random_circuits())
@settings(max_examples=40, deadline=None)
def test_optimization_never_increases_cost(circuit):
    optimized = optimize_circuit(circuit)
    assert two_input_gate_equivalents(optimized) <= two_input_gate_equivalents(circuit)


@given(random_circuits())
@settings(max_examples=30, deadline=None)
def test_batch_simulation_matches_single_evaluation(circuit):
    matrix = all_assignments(circuit.num_inputs)
    batch = simulate(circuit, matrix, input_order=circuit.inputs)
    for row in range(matrix.shape[0]):
        assignment = dict(zip(circuit.inputs, matrix[row]))
        single = circuit.evaluate_outputs(assignment)
        for name in circuit.outputs:
            assert batch[name][row] == single[name]


@given(random_circuits())
@settings(max_examples=25, deadline=None)
def test_topological_order_is_a_valid_schedule(circuit):
    order = circuit.topological_order()
    position = {name: index for index, name in enumerate(order)}
    for gate in circuit.gates:
        for fanin in gate.fanins:
            assert position[fanin] < position[gate.name]
