"""Tests for the circuit netlist (repro.circuit.netlist)."""

import pytest

from repro.circuit.gates import GateType
from repro.circuit.netlist import Circuit, CircuitError


def _build_chain() -> Circuit:
    circuit = Circuit("chain")
    circuit.add_input("a")
    circuit.add_gate("n1", GateType.NOT, ["a"])
    circuit.add_gate("n2", GateType.BUF, ["n1"])
    circuit.set_output("n2")
    return circuit


class TestConstruction:
    def test_counts(self, small_circuit):
        assert small_circuit.num_inputs == 3
        assert small_circuit.num_outputs == 2
        assert small_circuit.num_gates >= 3

    def test_duplicate_net_rejected(self):
        circuit = Circuit()
        circuit.add_input("a")
        with pytest.raises(CircuitError):
            circuit.add_input("a")

    def test_unknown_fanin_rejected(self):
        circuit = Circuit()
        with pytest.raises(CircuitError):
            circuit.add_gate("g", GateType.NOT, ["missing"])

    def test_unknown_output_rejected(self):
        with pytest.raises(CircuitError):
            Circuit().set_output("missing")

    def test_input_via_add_gate_rejected(self):
        with pytest.raises(CircuitError):
            Circuit().add_gate("a", GateType.INPUT, [])

    def test_constants(self):
        circuit = Circuit()
        circuit.add_constant("one", True)
        circuit.add_constant("zero", False)
        assert circuit.gate("one").gate_type == GateType.CONST1
        assert circuit.gate("zero").gate_type == GateType.CONST0

    def test_output_marked_once(self):
        circuit = _build_chain()
        circuit.set_output("n2")
        assert circuit.outputs == ("n2",)


class TestStructure:
    def test_topological_order_respects_fanins(self, small_circuit):
        order = small_circuit.topological_order()
        position = {name: i for i, name in enumerate(order)}
        for gate in small_circuit.gates:
            for fanin in gate.fanins:
                assert position[fanin] < position[gate.name]

    def test_cycle_detection(self):
        circuit = Circuit()
        circuit.add_input("a")
        circuit.add_gate("g1", GateType.BUF, ["a"])
        # Force a cycle through the low-level replace API.
        circuit.replace_gate("g1", GateType.AND, ["a", "g2"]) if circuit.has_net("g2") else None
        circuit.add_gate("g2", GateType.BUF, ["g1"])
        circuit.replace_gate("g1", GateType.BUF, ["g2"])
        with pytest.raises(CircuitError):
            circuit.topological_order()

    def test_transitive_fanin(self, small_circuit):
        cone = small_circuit.transitive_fanin(["f"])
        assert "a" in cone and "b" in cone and "c" in cone and "f" in cone
        assert "g" not in cone

    def test_depth(self):
        circuit = _build_chain()
        assert circuit.depth() == 1  # buffer does not add depth

    def test_fanouts(self, small_circuit):
        fanouts = small_circuit.fanouts()
        assert any("f" in consumers or len(consumers) > 0 for consumers in fanouts.values())

    def test_replace_gate_invalidates_topo_cache(self):
        circuit = _build_chain()
        circuit.topological_order()
        circuit.replace_gate("n2", GateType.NOT, ["n1"])
        assert circuit.gate("n2").gate_type == GateType.NOT

    def test_replace_primary_input_rejected(self):
        circuit = _build_chain()
        with pytest.raises(CircuitError):
            circuit.replace_gate("a", GateType.NOT, ["n1"])


class TestEvaluation:
    def test_all_gate_types(self):
        circuit = Circuit()
        circuit.add_input("a")
        circuit.add_input("b")
        circuit.add_gate("and", GateType.AND, ["a", "b"])
        circuit.add_gate("or", GateType.OR, ["a", "b"])
        circuit.add_gate("nand", GateType.NAND, ["a", "b"])
        circuit.add_gate("nor", GateType.NOR, ["a", "b"])
        circuit.add_gate("xor", GateType.XOR, ["a", "b"])
        circuit.add_gate("xnor", GateType.XNOR, ["a", "b"])
        circuit.add_gate("not", GateType.NOT, ["a"])
        circuit.add_gate("buf", GateType.BUF, ["a"])
        values = circuit.evaluate({"a": True, "b": False})
        assert values["and"] is False
        assert values["or"] is True
        assert values["nand"] is True
        assert values["nor"] is False
        assert values["xor"] is True
        assert values["xnor"] is False
        assert values["not"] is False
        assert values["buf"] is True

    def test_small_circuit_truth(self, small_circuit):
        outputs = small_circuit.evaluate_outputs({"a": True, "b": True, "c": False})
        assert outputs["f"] is True   # (a & b) | c
        assert outputs["g"] is True   # a ^ c

    def test_missing_input_raises(self, small_circuit):
        with pytest.raises(CircuitError):
            small_circuit.evaluate({"a": True})

    def test_copy_is_independent(self, small_circuit):
        duplicate = small_circuit.copy()
        duplicate.add_input("z")
        assert not small_circuit.has_net("z")
