"""Tests for structural circuit optimization (repro.circuit.optimize)."""

import numpy as np
import pytest

from repro.circuit.builder import CircuitBuilder
from repro.circuit.gates import GateType
from repro.circuit.optimize import constant_propagate, optimize_circuit, strash, sweep_dangling
from repro.circuit.simulate import simulate
from repro.circuit.stats import two_input_gate_equivalents
from tests.conftest import all_assignments


def _outputs_equal(before, after, num_inputs):
    matrix = all_assignments(num_inputs)
    before_values = simulate(before, matrix, input_order=before.inputs)
    after_values = simulate(after, matrix, input_order=before.inputs)
    return all(
        np.array_equal(before_values[name], after_values[name]) for name in before.outputs
    )


class TestConstantPropagation:
    def test_and_with_zero_collapses(self):
        builder = CircuitBuilder()
        a = builder.input("a")
        zero = builder.constant(False)
        out = builder.and_(a, zero, name="out")
        builder.output(out)
        optimized = constant_propagate(builder.circuit)
        assert optimized.gate("out").gate_type == GateType.CONST0

    def test_or_with_one_collapses(self):
        builder = CircuitBuilder()
        a = builder.input("a")
        one = builder.constant(True)
        out = builder.or_(a, one, name="out")
        builder.output(out)
        optimized = constant_propagate(builder.circuit)
        assert optimized.gate("out").gate_type == GateType.CONST1

    def test_xor_with_one_becomes_inverter(self):
        builder = CircuitBuilder()
        a = builder.input("a")
        one = builder.constant(True)
        out = builder.xor_(a, one, name="out")
        builder.output(out)
        optimized = constant_propagate(builder.circuit)
        assert _outputs_equal(builder.circuit, optimized, 1)

    def test_semantics_preserved(self, small_circuit):
        assert _outputs_equal(small_circuit, constant_propagate(small_circuit), 3)


class TestStrash:
    def test_duplicate_gates_merged(self):
        builder = CircuitBuilder()
        a, b = builder.inputs(2)
        first = builder.and_(a, b)
        second = builder.and_(b, a)  # commutatively identical
        out = builder.or_(first, second, name="out")
        builder.output(out)
        hashed = strash(builder.circuit)
        assert _outputs_equal(builder.circuit, hashed, 2)
        assert hashed.num_gates < builder.circuit.num_gates

    def test_distinct_gates_kept(self, small_circuit):
        hashed = strash(small_circuit)
        assert _outputs_equal(small_circuit, hashed, 3)


class TestSweep:
    def test_dangling_gates_removed(self):
        builder = CircuitBuilder()
        a, b = builder.inputs(2)
        used = builder.and_(a, b, name="used")
        builder.or_(a, b)  # dangling cone
        builder.output(used)
        swept = sweep_dangling(builder.circuit)
        assert swept.num_gates == 1
        assert set(swept.inputs) == {a, b}

    def test_inputs_always_kept(self):
        builder = CircuitBuilder()
        a, b = builder.inputs(2)
        builder.output(builder.buf(a, name="out"))
        swept = sweep_dangling(builder.circuit)
        assert b in swept.inputs


class TestOptimizeCircuit:
    def test_semantics_preserved_on_random_netlists(self):
        from repro.instances.iscas import generate_iscas_like_instance

        _, circuit = generate_iscas_like_instance(
            num_inputs=6, num_gates=40, num_constrained_outputs=2, seed=7
        )
        optimized = optimize_circuit(circuit)
        matrix = all_assignments(6)
        before = simulate(circuit, matrix, input_order=circuit.inputs, nets=circuit.outputs)
        after = simulate(optimized, matrix, input_order=circuit.inputs, nets=circuit.outputs)
        for name in circuit.outputs:
            assert np.array_equal(before[name], after[name])

    def test_never_increases_cost(self, small_circuit):
        optimized = optimize_circuit(small_circuit)
        assert two_input_gate_equivalents(optimized) <= two_input_gate_equivalents(small_circuit)

    def test_constant_cone_fully_folds(self):
        builder = CircuitBuilder()
        a = builder.input("a")
        one = builder.constant(True)
        zero = builder.constant(False)
        t = builder.and_(one, zero)
        out = builder.or_(t, builder.and_(a, one), name="out")
        builder.output(out)
        optimized = optimize_circuit(builder.circuit)
        assert _outputs_equal(builder.circuit, optimized, 1)
        assert optimized.num_gates <= builder.circuit.num_gates
