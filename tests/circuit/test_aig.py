"""Tests for the And-Inverter Graph (repro.circuit.aig)."""

import itertools

from repro.circuit.aig import AIG, FALSE_LIT, TRUE_LIT, circuit_to_aig
from repro.circuit.builder import CircuitBuilder


class TestAIGPrimitives:
    def test_constant_simplifications(self):
        aig = AIG()
        a = aig.add_input("a")
        assert aig.add_and(a, FALSE_LIT) == FALSE_LIT
        assert aig.add_and(a, TRUE_LIT) == a
        assert aig.add_and(a, a) == a
        assert aig.add_and(a, a ^ 1) == FALSE_LIT

    def test_structural_hashing(self):
        aig = AIG()
        a = aig.add_input("a")
        b = aig.add_input("b")
        assert aig.add_and(a, b) == aig.add_and(b, a)
        assert aig.num_ands == 1

    def test_or_and_xor_semantics(self):
        aig = AIG()
        a = aig.add_input("a")
        b = aig.add_input("b")
        aig.add_output("or", aig.add_or(a, b))
        aig.add_output("xor", aig.add_xor(a, b))
        for value_a, value_b in itertools.product([False, True], repeat=2):
            outputs = aig.evaluate({"a": value_a, "b": value_b})
            assert outputs["or"] == (value_a or value_b)
            assert outputs["xor"] == (value_a ^ value_b)

    def test_counts(self):
        aig = AIG()
        a = aig.add_input("a")
        b = aig.add_input("b")
        aig.add_output("f", aig.add_and(a, b))
        assert aig.num_inputs == 2
        assert aig.num_outputs == 1
        assert aig.num_ands == 1


class TestCircuitConversion:
    def test_small_circuit_equivalence(self, small_circuit):
        aig = circuit_to_aig(small_circuit)
        for bits in itertools.product([False, True], repeat=3):
            assignment = dict(zip(small_circuit.inputs, bits))
            reference = small_circuit.evaluate_outputs(assignment)
            converted = aig.evaluate(assignment)
            for name in small_circuit.outputs:
                assert converted[name] == reference[name]

    def test_all_gate_types_convert(self):
        builder = CircuitBuilder()
        a, b = builder.inputs(2)
        nets = [
            builder.and_(a, b), builder.or_(a, b), builder.nand_(a, b),
            builder.nor_(a, b), builder.xor_(a, b), builder.xnor_(a, b),
            builder.not_(a), builder.buf(b),
        ]
        for net in nets:
            builder.output(net)
        circuit = builder.circuit
        aig = circuit_to_aig(circuit)
        for bits in itertools.product([False, True], repeat=2):
            assignment = dict(zip(circuit.inputs, bits))
            reference = circuit.evaluate_outputs(assignment)
            converted = aig.evaluate(assignment)
            for name in circuit.outputs:
                assert converted[name] == reference[name]

    def test_constants_convert(self):
        builder = CircuitBuilder()
        a = builder.input("a")
        one = builder.constant(True)
        builder.output(builder.and_(a, one, name="out"))
        aig = circuit_to_aig(builder.circuit)
        assert aig.evaluate({"a": True})["out"] is True
        assert aig.evaluate({"a": False})["out"] is False

    def test_aig_size_is_reasonable(self, small_circuit):
        aig = circuit_to_aig(small_circuit)
        # (a & b) | c needs 2 ANDs; a ^ c needs 3.
        assert aig.num_ands <= 6
