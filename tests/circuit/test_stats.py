"""Tests for circuit statistics (repro.circuit.stats)."""

from repro.circuit.builder import CircuitBuilder
from repro.circuit.stats import (
    circuit_stats,
    gate_type_histogram,
    operations_reduction,
    two_input_gate_equivalents,
)


def _reference_circuit():
    builder = CircuitBuilder("stats")
    a, b, c = builder.inputs(3)
    t = builder.and_(a, b)
    out = builder.or_(t, c, name="out")
    builder.output(out)
    return builder.circuit


class TestTwoInputEquivalents:
    def test_simple_count(self):
        assert two_input_gate_equivalents(_reference_circuit()) == 2

    def test_wide_gates(self):
        builder = CircuitBuilder()
        nets = builder.inputs(4)
        builder.output(builder.and_(*nets))
        assert two_input_gate_equivalents(builder.circuit) == 3

    def test_inverting_gates_cost_extra(self):
        builder = CircuitBuilder()
        a, b = builder.inputs(2)
        builder.output(builder.nand_(a, b))
        assert two_input_gate_equivalents(builder.circuit) == 2


class TestCircuitStats:
    def test_fields(self):
        stats = circuit_stats(_reference_circuit())
        assert stats.num_inputs == 3
        assert stats.num_outputs == 1
        assert stats.num_gates == 2
        assert stats.depth == 2
        assert stats.two_input_equivalents == 2
        assert stats.gate_type_counts == {"and": 1, "or": 1}

    def test_as_dict(self):
        record = circuit_stats(_reference_circuit()).as_dict()
        assert record["name"] == "stats"
        assert record["two_input_equivalents"] == 2

    def test_histogram_excludes_inputs(self):
        histogram = gate_type_histogram(_reference_circuit())
        assert "input" not in histogram


class TestOperationsReduction:
    def test_ratio(self):
        circuit = _reference_circuit()
        assert operations_reduction(20, circuit) == 10.0

    def test_empty_circuit_gives_infinity(self):
        builder = CircuitBuilder()
        builder.input("a")
        assert operations_reduction(5, builder.circuit) == float("inf")
