"""Tests for circuit simulation (repro.circuit.simulate)."""

import numpy as np
import pytest

from repro.circuit.builder import CircuitBuilder
from repro.circuit.simulate import simulate, simulate_packed
from tests.conftest import all_assignments


class TestSimulate:
    def test_matches_single_evaluation(self, small_circuit):
        matrix = all_assignments(3)
        results = simulate(small_circuit, matrix)
        for row in range(matrix.shape[0]):
            assignment = dict(zip(small_circuit.inputs, matrix[row]))
            single = small_circuit.evaluate_outputs(assignment)
            for name in small_circuit.outputs:
                assert results[name][row] == single[name]

    def test_requested_internal_nets(self, small_circuit):
        matrix = all_assignments(3)
        internal = [n for n in small_circuit.net_names() if n not in small_circuit.inputs]
        results = simulate(small_circuit, matrix, nets=internal[:1])
        assert set(results) == set(internal[:1])

    def test_custom_input_order(self, small_circuit):
        matrix = all_assignments(3)
        reordered = list(reversed(small_circuit.inputs))
        results = simulate(small_circuit, matrix[:, ::-1], input_order=reordered)
        baseline = simulate(small_circuit, matrix)
        for name in small_circuit.outputs:
            assert np.array_equal(results[name], baseline[name])

    def test_wrong_column_count_rejected(self, small_circuit):
        with pytest.raises(ValueError):
            simulate(small_circuit, np.zeros((4, 2), dtype=bool))

    def test_1d_matrix_rejected(self, small_circuit):
        with pytest.raises(ValueError):
            simulate(small_circuit, np.zeros(3, dtype=bool))

    def test_constants_in_circuit(self):
        builder = CircuitBuilder()
        a = builder.input("a")
        one = builder.constant(True)
        out = builder.and_(a, one, name="out")
        builder.output(out)
        results = simulate(builder.circuit, np.array([[True], [False]]))
        assert results["out"].tolist() == [True, False]


class TestSimulatePacked:
    def test_matches_boolean_simulation(self, small_circuit):
        rng = np.random.default_rng(0)
        matrix = rng.random((64, 3)) < 0.5
        packed_inputs = {}
        for column, name in enumerate(small_circuit.inputs):
            bits = np.uint64(0)
            for row in range(64):
                if matrix[row, column]:
                    bits |= np.uint64(1) << np.uint64(row)
            packed_inputs[name] = np.array([bits], dtype=np.uint64)
        packed_results = simulate_packed(small_circuit, packed_inputs)
        bool_results = simulate(small_circuit, matrix)
        for name in small_circuit.outputs:
            for row in range(64):
                packed_bit = bool((int(packed_results[name][0]) >> row) & 1)
                assert packed_bit == bool(bool_results[name][row])

    def test_shape_mismatch_rejected(self, small_circuit):
        packed_inputs = {
            "a": np.zeros(1, dtype=np.uint64),
            "b": np.zeros(2, dtype=np.uint64),
            "c": np.zeros(1, dtype=np.uint64),
        }
        with pytest.raises(ValueError):
            simulate_packed(small_circuit, packed_inputs)

    def test_constant_nets(self):
        builder = CircuitBuilder()
        a = builder.input("a")
        zero = builder.constant(False)
        out = builder.or_(a, zero, name="out")
        builder.output(out)
        packed = simulate_packed(builder.circuit, {"a": np.array([np.uint64(0b1010)])})
        assert int(packed["out"][0]) == 0b1010
