"""Tests for structural Verilog export (repro.circuit.verilog)."""

from repro.circuit.builder import CircuitBuilder
from repro.circuit.verilog import to_verilog


class TestVerilogExport:
    def test_module_structure(self, small_circuit):
        text = to_verilog(small_circuit, module_name="small")
        assert text.startswith("module small(")
        assert text.rstrip().endswith("endmodule")
        for name in small_circuit.inputs:
            assert f"input {name};" in text
        for name in small_circuit.outputs:
            assert f"output {name};" in text

    def test_assign_statements_present(self, small_circuit):
        text = to_verilog(small_circuit)
        assert text.count("assign") == small_circuit.num_gates

    def test_inverting_gates_wrapped(self):
        builder = CircuitBuilder()
        a, b = builder.inputs(2)
        builder.output(builder.nand_(a, b, name="f"))
        text = to_verilog(builder.circuit)
        assert "~(" in text

    def test_constants_rendered(self):
        builder = CircuitBuilder()
        builder.output(builder.constant(True, name="one"))
        builder.output(builder.constant(False, name="zero"))
        text = to_verilog(builder.circuit)
        assert "1'b1" in text and "1'b0" in text

    def test_names_sanitised(self):
        builder = CircuitBuilder()
        a = builder.input("in.0")
        builder.output(builder.not_(a, name="out-net"))
        text = to_verilog(builder.circuit, module_name="weird names")
        assert "in.0" not in text
        assert "out-net" not in text
        assert "module weird_names(" in text

    def test_numeric_leading_names_prefixed(self):
        builder = CircuitBuilder()
        a = builder.input("1a")
        builder.output(builder.buf(a, name="2b"))
        text = to_verilog(builder.circuit)
        assert " 1a;" not in text
