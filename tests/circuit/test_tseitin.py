"""Tests for circuit-to-CNF Tseitin encoding (repro.circuit.tseitin)."""

import numpy as np
import pytest

from repro.baselines.dpll import DPLLSolver
from repro.circuit.builder import CircuitBuilder
from repro.circuit.gates import GateType
from repro.circuit.tseitin import circuit_to_cnf
from tests.conftest import all_assignments


class TestEncoding:
    def test_variable_map_covers_non_buffer_nets(self, small_circuit):
        formula, var_map = circuit_to_cnf(small_circuit)
        for gate in small_circuit.gates:
            if gate.gate_type != GateType.BUF:
                assert gate.name in var_map

    def test_comments_annotate_gates(self, small_circuit):
        formula, _ = circuit_to_cnf(small_circuit, annotate=True)
        assert any("and(" in comment or "or(" in comment for comment in formula.comments)

    def test_no_comments_when_disabled(self, small_circuit):
        formula, _ = circuit_to_cnf(small_circuit, annotate=False)
        assert formula.comments == []

    def test_wide_xor_rejected(self):
        builder = CircuitBuilder()
        a, b, c = builder.inputs(3)
        wide = builder.xor_(a, b, c)
        builder.output(wide)
        with pytest.raises(ValueError):
            circuit_to_cnf(builder.circuit)


class TestSemantics:
    def test_models_project_to_circuit_solutions(self, small_circuit):
        """Every CNF model's inputs must make the constrained outputs true, and
        every input vector achieving the constraint must extend to a model."""
        formula, var_map = circuit_to_cnf(small_circuit, output_constraints={"f": True})
        matrix = all_assignments(3)
        outputs = {
            tuple(row): value
            for row, value in zip(
                matrix.tolist(),
                (small_circuit.evaluate({"a": r[0], "b": r[1], "c": r[2]})["f"] for r in matrix),
            )
        }
        solver = DPLLSolver(formula)
        input_columns = [var_map[name] - 1 for name in small_circuit.inputs]
        projected = set()
        for model in solver.enumerate_models():
            projected.add(tuple(bool(model[c]) for c in input_columns))
        expected = {row for row, value in outputs.items() if value}
        assert projected == expected

    def test_unsatisfiable_constraint(self):
        builder = CircuitBuilder()
        a = builder.input("a")
        out = builder.and_(a, builder.not_(a), name="out")
        builder.output(out)
        formula, _ = circuit_to_cnf(builder.circuit, output_constraints={"out": True})
        assert DPLLSolver(formula).solve() is None

    def test_constraint_to_zero(self):
        builder = CircuitBuilder()
        a, b = builder.inputs(2)
        out = builder.or_(a, b, name="out")
        builder.output(out)
        formula, var_map = circuit_to_cnf(builder.circuit, output_constraints={"out": False})
        model = DPLLSolver(formula).solve()
        assert model is not None
        assert not model[var_map[a] - 1] and not model[var_map[b] - 1]

    def test_every_gate_type_roundtrips(self):
        builder = CircuitBuilder()
        a, b = builder.inputs(2)
        nets = {
            "and": builder.and_(a, b),
            "or": builder.or_(a, b),
            "nand": builder.nand_(a, b),
            "nor": builder.nor_(a, b),
            "xor": builder.xor_(a, b),
            "xnor": builder.xnor_(a, b),
            "not": builder.not_(a),
        }
        for net in nets.values():
            builder.output(net)
        circuit = builder.circuit
        formula, var_map = circuit_to_cnf(circuit, output_constraints={})
        solver = DPLLSolver(formula)
        input_columns = {name: var_map[name] - 1 for name in circuit.inputs}
        gate_columns = {label: var_map[net] - 1 for label, net in nets.items()}
        seen_inputs = set()
        for model in solver.enumerate_models():
            inputs = {name: bool(model[col]) for name, col in input_columns.items()}
            seen_inputs.add((inputs[a], inputs[b]))
            reference = circuit.evaluate(inputs)
            for label, net in nets.items():
                assert bool(model[gate_columns[label]]) == reference[net]
        # With no output constraints every input combination must appear.
        assert len(seen_inputs) == 4

    def test_buffer_nets_share_variables(self):
        builder = CircuitBuilder()
        a = builder.input("a")
        buffered = builder.buf(a)
        out = builder.not_(buffered, name="out")
        builder.output(out)
        formula, var_map = circuit_to_cnf(builder.circuit)
        assert buffered not in var_map  # buffers are collapsed onto their driver
