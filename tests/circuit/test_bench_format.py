"""Tests for the ISCAS .bench reader/writer (repro.circuit.bench_format)."""

import itertools

import pytest

from repro.circuit.bench_format import (
    BenchFormatError,
    parse_bench,
    parse_bench_file,
    write_bench,
    write_bench_file,
)
from repro.circuit.gates import GateType

SMALL_BENCH = """\
# a tiny combinational benchmark
INPUT(a)
INPUT(b)
INPUT(c)
OUTPUT(f)
OUTPUT(g)
t1 = AND(a, b)
f = OR(t1, c)
g = XOR(a, c)
"""

SEQUENTIAL_BENCH = """\
INPUT(clk_in)
OUTPUT(out)
state = DFF(next_state)
next_state = NOT(state)
out = AND(state, clk_in)
"""


class TestParsing:
    def test_structure(self):
        circuit = parse_bench(SMALL_BENCH, name="tiny")
        assert set(circuit.inputs) == {"a", "b", "c"}
        assert set(circuit.outputs) == {"f", "g"}
        assert circuit.gate("t1").gate_type == GateType.AND

    def test_semantics(self):
        circuit = parse_bench(SMALL_BENCH)
        for bits in itertools.product([False, True], repeat=3):
            values = circuit.evaluate(dict(zip(["a", "b", "c"], bits)))
            assert values["f"] == ((bits[0] and bits[1]) or bits[2])
            assert values["g"] == (bits[0] ^ bits[2])

    def test_out_of_order_definitions_resolved(self):
        text = "INPUT(a)\nOUTPUT(f)\nf = NOT(t)\nt = BUFF(a)\n"
        circuit = parse_bench(text)
        assert circuit.evaluate({"a": True})["f"] is False

    def test_dff_outputs_become_inputs(self):
        circuit = parse_bench(SEQUENTIAL_BENCH)
        assert "state" in circuit.inputs
        assert circuit.evaluate({"state": True, "clk_in": True})["out"] is True

    def test_comments_and_blank_lines_ignored(self):
        circuit = parse_bench("# comment\n\nINPUT(x)\nOUTPUT(y)\ny = NOT(x)  # inline\n")
        assert circuit.num_inputs == 1

    def test_unknown_gate_rejected(self):
        with pytest.raises(BenchFormatError):
            parse_bench("INPUT(a)\nOUTPUT(f)\nf = MAJ(a, a, a)\n")

    def test_undriven_output_rejected(self):
        with pytest.raises(BenchFormatError):
            parse_bench("INPUT(a)\nOUTPUT(f)\n")

    def test_unresolvable_fanin_rejected(self):
        with pytest.raises(BenchFormatError):
            parse_bench("INPUT(a)\nOUTPUT(f)\nf = AND(a, ghost)\n")

    def test_malformed_line_rejected(self):
        with pytest.raises(BenchFormatError):
            parse_bench("INPUT(a)\nOUTPUT(f)\nf == AND(a, a)\n")


class TestWriting:
    def test_roundtrip_preserves_semantics(self, small_circuit):
        text = write_bench(small_circuit)
        reparsed = parse_bench(text)
        for bits in itertools.product([False, True], repeat=3):
            assignment = dict(zip(small_circuit.inputs, bits))
            original = small_circuit.evaluate_outputs(assignment)
            recovered = reparsed.evaluate_outputs(assignment)
            assert original == recovered

    def test_constants_rendered_soundly(self):
        from repro.circuit.builder import CircuitBuilder

        builder = CircuitBuilder()
        a = builder.input("a")
        one = builder.constant(True)
        zero = builder.constant(False)
        builder.output(builder.and_(a, one, name="f"))
        builder.output(builder.or_(a, zero, name="g"))
        reparsed = parse_bench(write_bench(builder.circuit))
        for value in (False, True):
            values = reparsed.evaluate({"a": value})
            assert values["f"] == value
            assert values["g"] == value

    def test_file_roundtrip(self, tmp_path, small_circuit):
        path = write_bench_file(small_circuit, tmp_path / "small.bench")
        reparsed = parse_bench_file(path)
        assert set(reparsed.outputs) == set(small_circuit.outputs)


class TestIntegrationWithSampler:
    def test_bench_to_sampler_pipeline(self):
        """A .bench netlist can be sampled directly (no DIMACS file anywhere)."""
        from repro.core.circuit_sampler import sample_circuit
        from repro.core.config import SamplerConfig

        circuit = parse_bench(SMALL_BENCH)
        result = sample_circuit(
            circuit, output_targets={"f": True, "g": False},
            num_solutions=3,
            config=SamplerConfig(batch_size=32, seed=0, max_rounds=4),
        )
        assert result.num_unique >= 1
        for assignment in result.as_assignments():
            values = circuit.evaluate(assignment)
            assert values["f"] is True and values["g"] is False
