"""Tests for the circuit builder (repro.circuit.builder)."""

import itertools

import pytest

from repro.boolalg.expr import And, Not, Or, Var, Xor
from repro.boolalg.parsing import parse_expr
from repro.circuit.builder import CircuitBuilder, circuit_from_expressions


class TestBuilderGates:
    def test_named_and_autonamed_nets(self):
        builder = CircuitBuilder()
        a = builder.input("a")
        b = builder.input()
        net = builder.and_(a, b, name="out")
        assert net == "out"
        assert builder.circuit.has_net(b)

    def test_mux_semantics(self):
        builder = CircuitBuilder()
        s, t, e = builder.input("s"), builder.input("t"), builder.input("e")
        out = builder.mux(s, t, e)
        builder.output(out)
        circuit = builder.circuit
        for select, when_true, when_false in itertools.product([False, True], repeat=3):
            value = circuit.evaluate({"s": select, "t": when_true, "e": when_false})[out]
            assert value == (when_true if select else when_false)

    def test_inputs_helper(self):
        builder = CircuitBuilder()
        nets = builder.inputs(3, prefix="x")
        assert nets == ["x0", "x1", "x2"]

    def test_constant(self):
        builder = CircuitBuilder()
        one = builder.constant(True)
        builder.output(one)
        assert builder.circuit.evaluate({})[one] is True


class TestWordLevelHelpers:
    def test_ripple_adder(self):
        builder = CircuitBuilder()
        a_bits = builder.inputs(3, prefix="a")
        b_bits = builder.inputs(3, prefix="b")
        sums, carry = builder.ripple_adder(a_bits, b_bits)
        circuit = builder.circuit
        for a_value in range(8):
            for b_value in range(8):
                inputs = {f"a{i}": bool((a_value >> i) & 1) for i in range(3)}
                inputs.update({f"b{i}": bool((b_value >> i) & 1) for i in range(3)})
                values = circuit.evaluate(inputs)
                total = sum(values[s] << i for i, s in enumerate(sums))
                total += values[carry] << 3
                assert total == a_value + b_value

    def test_equality_comparator(self):
        builder = CircuitBuilder()
        a_bits = builder.inputs(2, prefix="a")
        b_bits = builder.inputs(2, prefix="b")
        equal = builder.equality_comparator(a_bits, b_bits)
        circuit = builder.circuit
        for a_value in range(4):
            for b_value in range(4):
                inputs = {f"a{i}": bool((a_value >> i) & 1) for i in range(2)}
                inputs.update({f"b{i}": bool((b_value >> i) & 1) for i in range(2)})
                assert circuit.evaluate(inputs)[equal] == (a_value == b_value)

    def test_multiplier(self):
        builder = CircuitBuilder()
        a_bits = builder.inputs(3, prefix="a")
        b_bits = builder.inputs(3, prefix="b")
        product_bits = builder.multiplier(a_bits, b_bits)
        circuit = builder.circuit
        for a_value in range(8):
            for b_value in range(8):
                inputs = {f"a{i}": bool((a_value >> i) & 1) for i in range(3)}
                inputs.update({f"b{i}": bool((b_value >> i) & 1) for i in range(3)})
                values = circuit.evaluate(inputs)
                product = sum(values[bit] << i for i, bit in enumerate(product_bits))
                assert product == a_value * b_value

    def test_width_mismatch_rejected(self):
        builder = CircuitBuilder()
        with pytest.raises(ValueError):
            builder.ripple_adder(builder.inputs(2, "a"), builder.inputs(3, "b"))


class TestCircuitFromExpressions:
    def test_lowering_matches_expression_semantics(self):
        definitions = [
            ("t", parse_expr("a & b")),
            ("out", parse_expr("t | ~c")),
        ]
        circuit = circuit_from_expressions(definitions, outputs=["out"])
        for bits in itertools.product([False, True], repeat=3):
            assignment = dict(zip("abc", bits))
            expected = (bits[0] and bits[1]) or not bits[2]
            assert circuit.evaluate(assignment)["out"] == expected

    def test_inputs_discovered_in_order(self):
        circuit = circuit_from_expressions([("f", parse_expr("p & q"))])
        assert set(circuit.inputs) == {"p", "q"}

    def test_predeclared_inputs_fix_order(self):
        circuit = circuit_from_expressions(
            [("f", parse_expr("p & q"))], inputs=["q", "p"]
        )
        assert circuit.inputs == ("q", "p")

    def test_outputs_default_to_unconsumed_nets(self):
        definitions = [("t", parse_expr("a & b")), ("f", parse_expr("t | c"))]
        circuit = circuit_from_expressions(definitions)
        assert circuit.outputs == ("f",)

    def test_forward_reference_rejected(self):
        definitions = [("f", Var("t")), ("t", Var("a"))]
        with pytest.raises(ValueError):
            circuit_from_expressions(definitions)

    def test_duplicate_definition_rejected(self):
        definitions = [("f", Var("a")), ("f", Var("b"))]
        with pytest.raises(ValueError):
            circuit_from_expressions(definitions)

    def test_xor_and_constants_lowered(self):
        definitions = [("f", Xor(Var("a"), Var("b"))), ("g", And(Var("a"), Not(Var("b"))))]
        circuit = circuit_from_expressions(definitions, outputs=["f", "g"])
        values = circuit.evaluate({"a": True, "b": False})
        assert values["f"] is True and values["g"] is True
