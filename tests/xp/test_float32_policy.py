"""The float32 dtype policy: documented tolerance vs the float64 reference.

``"numpy:float32"`` (and the ``:float32`` suffix on any backend) is the
reduced-precision throughput mode for accelerator runs.  It is *not* part of
the bitwise contract — these tests pin down and document how far it may
drift:

* forward output probabilities agree with float64 to ``5e-5`` absolute
  (probabilities live in [0, 1]; float32 has ~7 decimal digits, and a
  ~40-gate cone loses a couple more to accumulation);
* input gradients agree to ``5e-4`` relative-ish absolute slack (gradient
  chains multiply more terms, so the error budget is wider);
* sampled *solutions* usually still agree exactly — thresholding ``V > 0``
  absorbs tiny drift — but this is not guaranteed near decision boundaries,
  so the suite asserts validity instead of bitwise equality end to end.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.xp as xp
from repro.core.config import SamplerConfig
from repro.core.sampler import GradientSATSampler
from repro.engine.compiler import compile_circuit
from repro.engine.executor import backward, forward
from tests.engine.conftest import random_circuit

#: Documented float32-vs-float64 agreement for forward probabilities.
FORWARD_TOLERANCE = 5e-5
#: Documented float32-vs-float64 agreement for input gradients.
GRADIENT_TOLERANCE = 5e-4


@pytest.fixture()
def program():
    circuit = random_circuit(
        np.random.default_rng(21), num_inputs=6, num_gates=40, num_outputs=3
    )
    return compile_circuit(circuit, list(circuit.outputs))


def test_float32_backend_uses_float32_arrays(program):
    backend = xp.get_backend("numpy:float32")
    probabilities = np.random.default_rng(0).random((8, program.input_width))
    outputs, cache = forward(program, probabilities, backend)
    assert outputs.dtype == np.float32
    assert cache.values.dtype == np.float32


def test_forward_within_documented_tolerance(program):
    probabilities = np.random.default_rng(1).random((32, program.input_width))
    reference, _ = forward(program, probabilities, xp.get_backend("numpy"))
    outputs, _ = forward(program, probabilities, xp.get_backend("numpy:float32"))
    np.testing.assert_allclose(
        outputs.astype(np.float64), reference, rtol=0.0, atol=FORWARD_TOLERANCE
    )


def test_backward_within_documented_tolerance(program):
    rng = np.random.default_rng(2)
    probabilities = rng.random((16, program.input_width))
    seed_grad = rng.random((16, len(program.output_nets)))
    _, cache64 = forward(program, probabilities, xp.get_backend("numpy"))
    reference = backward(program, cache64, seed_grad)
    _, cache32 = forward(program, probabilities, xp.get_backend("numpy:float32"))
    grads = backward(program, cache32, seed_grad)
    np.testing.assert_allclose(
        grads.astype(np.float64), reference, rtol=0.0, atol=GRADIENT_TOLERANCE
    )


def test_tensor_layer_follows_the_policy():
    with xp.use_backend("numpy:float32"):
        from repro.tensor.functional import sigmoid
        from repro.tensor.tensor import Tensor

        tensor = Tensor(np.linspace(-3, 3, 7), requires_grad=True)
        out = sigmoid(tensor)
        assert out.data.dtype == np.float32
        out.backward()
        assert tensor.grad.dtype == np.float32


def test_sampler_produces_valid_solutions_under_float32(fig1_formula):
    config = SamplerConfig(
        batch_size=64, seed=13, max_rounds=3, array_backend="numpy:float32"
    )
    result = GradientSATSampler(fig1_formula, config=config).sample(num_solutions=30)
    matrix = result.solution_matrix()
    assert result.num_unique > 0
    # Everything the float32 run reports as a solution must really satisfy
    # the formula (validated in float-free boolean arithmetic).
    assert fig1_formula.evaluate_batch(matrix).all()
