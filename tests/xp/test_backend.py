"""Unit tests for the array-backend layer: registry, selection, RNG, caches."""

from __future__ import annotations

import numpy as np
import pytest

import repro.xp as xp
from repro.core.config import SamplerConfig
from repro.gpu.device import Device, DeviceKind


@pytest.fixture(autouse=True)
def _restore_active_backend():
    """Every test leaves the process in the env-driven default state."""
    yield
    xp.set_active_backend(None)


class TestRegistry:
    def test_numpy_is_default_and_memoised(self):
        backend = xp.get_backend("numpy")
        assert backend.is_numpy
        assert backend is xp.get_backend("numpy")
        assert backend.float_dtype == np.float64

    def test_spec_selects_float_dtype(self):
        assert xp.get_backend("numpy:float32").float_dtype == np.float32
        assert xp.get_backend("numpy:float64").float_dtype == np.float64
        assert xp.get_backend("numpy:float32") is not xp.get_backend("numpy")

    def test_parse_spec(self):
        assert xp.parse_spec("numpy") == ("numpy", None)
        assert xp.parse_spec("numpy:float32") == ("numpy", "float32")

    @pytest.mark.parametrize("spec", ["", "nope", "numpy:float16", "numpy:"])
    def test_bad_specs_rejected(self, spec):
        with pytest.raises(ValueError):
            xp.get_backend(spec)

    def test_optional_backends_registered_but_may_be_unavailable(self):
        assert {"numpy", "cupy", "torch"} <= set(xp.registered_backends())
        assert "numpy" in xp.available_backends()
        for name in xp.registered_backends():
            if not xp.backend_available(name):
                with pytest.raises((xp.BackendUnavailableError, ValueError)):
                    xp.get_backend(name)

    def test_register_backend_rejects_bad_names(self):
        with pytest.raises(ValueError):
            xp.register_backend("with:colon", lambda dtype: xp.NumpyBackend(dtype))

    def test_cache_key_distinguishes_dtype_policy(self):
        assert (
            xp.get_backend("numpy").cache_key
            != xp.get_backend("numpy:float32").cache_key
        )


class TestActiveBackend:
    def test_default_is_numpy(self):
        assert xp.active_backend().is_numpy

    def test_env_var_sets_default(self, monkeypatch):
        monkeypatch.setenv(xp.BACKEND_ENV_VAR, "numpy:float32")
        assert xp.active_backend().float_dtype == np.float32

    def test_set_active_backend_overrides_env(self, monkeypatch):
        monkeypatch.setenv(xp.BACKEND_ENV_VAR, "numpy:float32")
        xp.set_active_backend("numpy")
        assert xp.active_backend().float_dtype == np.float64

    def test_use_backend_restores_previous(self):
        before = xp.active_backend()
        with xp.use_backend("numpy:float32") as backend:
            assert xp.active_backend() is backend
            assert backend.float_dtype == np.float32
        assert xp.active_backend() is before

    def test_use_backend_restores_on_error(self):
        before = xp.active_backend()
        with pytest.raises(RuntimeError):
            with xp.use_backend("numpy:float32"):
                raise RuntimeError("boom")
        assert xp.active_backend() is before


class TestSelectionPrecedence:
    """The documented resolution order: environment < config < CLI."""

    def test_env_is_weakest(self, monkeypatch):
        monkeypatch.setenv(xp.BACKEND_ENV_VAR, "numpy:float32")
        assert SamplerConfig().resolve_array_backend().float_dtype == np.float32

    def test_device_beats_env(self, monkeypatch):
        monkeypatch.setenv(xp.BACKEND_ENV_VAR, "numpy:float32")
        config = SamplerConfig(device=Device(DeviceKind.GPU_SIM, array_backend="numpy"))
        assert config.resolve_array_backend().float_dtype == np.float64

    def test_config_beats_device_and_env(self, monkeypatch):
        monkeypatch.setenv(xp.BACKEND_ENV_VAR, "numpy")
        config = SamplerConfig(
            device=Device(DeviceKind.GPU_SIM, array_backend="numpy"),
            array_backend="numpy:float32",
        )
        assert config.resolve_array_backend().float_dtype == np.float32

    def test_cli_writes_the_config_field(self, tmp_path):
        # The CLI flag lands in SamplerConfig.array_backend, so "CLI wins"
        # reduces to the config taking precedence (previous test).
        from repro.cli import _build_parser

        arguments = _build_parser().parse_args(
            ["sample", "x.cnf", "--array-backend", "numpy:float32"]
        )
        assert arguments.array_backend == "numpy:float32"

    def test_config_validates_spec_eagerly(self):
        with pytest.raises(ValueError):
            SamplerConfig(array_backend="not-a-backend")
        with pytest.raises(ValueError):
            Device(DeviceKind.GPU_SIM, array_backend="not-a-backend")


class TestHostBoundary:
    def test_to_numpy_passes_ndarray_through(self):
        array = np.arange(4)
        assert xp.to_numpy(array) is array

    def test_to_numpy_coerces_sequences(self):
        assert np.array_equal(xp.to_numpy([1, 2, 3]), np.array([1, 2, 3]))

    def test_numpy_backend_boundary_is_identity(self):
        backend = xp.get_backend("numpy")
        array = np.ones(3)
        assert backend.asnumpy(array) is array
        assert backend.from_numpy(array) is array


class TestBackendRNG:
    def test_matches_numpy_generator_stream(self):
        ours = xp.get_backend("numpy").rng(123)
        theirs = np.random.default_rng(123)
        np.testing.assert_array_equal(
            ours.normal(0.0, 1.0, size=(3, 2)), theirs.normal(0.0, 1.0, size=(3, 2))
        )
        np.testing.assert_array_equal(
            ours.random(size=(2, 5)), theirs.random(size=(2, 5))
        )

    def test_reseeding_reproduces_the_stream(self):
        backend = xp.get_backend("numpy")
        first = backend.rng(7).normal(size=(4, 4))
        second = backend.rng(7).normal(size=(4, 4))
        np.testing.assert_array_equal(first, second)

    def test_stream_is_shared_across_draw_kinds(self):
        # normal() then random() must consume one underlying stream, like the
        # seed code's single np.random.Generator did.
        ours = xp.get_backend("numpy").rng(9)
        theirs = np.random.default_rng(9)
        ours.normal(size=3)
        theirs.normal(size=3)
        np.testing.assert_array_equal(ours.random(size=4), theirs.random(size=4))


class TestGenericFallbacks:
    """The base-class implementations optional backends inherit."""

    def test_generic_add_reduceat_matches_numpy(self):
        backend = xp.NumpyBackend()
        data = np.random.default_rng(0).random((11, 3))
        offsets = np.array([0, 2, 3, 7])
        expected = np.add.reduceat(data, offsets, axis=0)
        actual = xp.ArrayBackend.add_reduceat(backend, data, offsets, axis=0)
        np.testing.assert_allclose(actual, expected, rtol=0.0, atol=1e-12)

    def test_generic_add_reduceat_nonzero_first_offset(self):
        backend = xp.NumpyBackend()
        data = np.random.default_rng(3).random((10, 2))
        offsets = np.array([2, 5, 9])  # rows 0-1 belong to no segment
        expected = np.add.reduceat(data, offsets, axis=0)
        actual = xp.ArrayBackend.add_reduceat(backend, data, offsets, axis=0)
        np.testing.assert_allclose(actual, expected, rtol=0.0, atol=1e-12)

    def test_generic_add_reduceat_empty_segment_quirk(self):
        # np.add.reduceat yields a[offsets[i]] for an empty segment; the
        # generic fallback must reproduce that quirk.
        backend = xp.NumpyBackend()
        data = np.arange(12.0).reshape(6, 2)
        offsets = np.array([0, 3, 3, 5])
        expected = np.add.reduceat(data, offsets, axis=0)
        actual = xp.ArrayBackend.add_reduceat(backend, data, offsets, axis=0)
        np.testing.assert_allclose(actual, expected, rtol=0.0, atol=1e-12)

    def test_generic_add_reduceat_preserves_integer_dtype(self):
        backend = xp.NumpyBackend()
        data = np.arange(12, dtype=np.int64).reshape(6, 2)
        offsets = np.array([0, 2, 5])
        actual = xp.ArrayBackend.add_reduceat(backend, data, offsets, axis=0)
        assert actual.dtype == np.int64
        np.testing.assert_array_equal(actual, np.add.reduceat(data, offsets, axis=0))

    def test_generic_bit_ops_match_numpy(self):
        backend = xp.NumpyBackend()
        words = np.random.default_rng(1).integers(0, 256, size=(9, 4)).astype(np.uint8)
        offsets = np.array([0, 3, 4])
        np.testing.assert_array_equal(
            xp.ArrayBackend.bitwise_or_reduceat(backend, words, offsets, axis=0),
            np.bitwise_or.reduceat(words, offsets, axis=0),
        )
        np.testing.assert_array_equal(
            xp.ArrayBackend.bitwise_and_reduce(backend, words, axis=0),
            np.bitwise_and.reduce(words, axis=0),
        )
        bits = np.random.default_rng(2).random((5, 17)) < 0.5
        np.testing.assert_array_equal(
            xp.ArrayBackend.packbits(backend, bits, axis=1), np.packbits(bits, axis=1)
        )


class FakeDeviceBackend(xp.NumpyBackend):
    """A 'device' backend for residency tests (NumPy semantics, non-numpy id)."""

    name = "fakedev"
    is_numpy = False


class TestHostInputResidency:
    """Evaluation follows the *input's* residency, not the active backend."""

    def test_host_inputs_get_host_results_under_any_active_backend(self):
        from repro.cnf.formula import CNF

        formula = CNF([[1, -2], [2]], num_variables=2)
        matrix = np.array([[True, True], [False, False]])

        with xp.use_backend(FakeDeviceBackend()):
            result = formula.evaluate_batch(matrix)
            counts = formula.unsatisfied_clause_counts(matrix)
        # Host callers (metrics, baselines) must keep receiving NumPy results
        # even when a device backend is the process default.
        assert type(result) is np.ndarray
        assert type(counts) is np.ndarray
        np.testing.assert_array_equal(result, [True, False])

    def test_direct_plan_calls_follow_input_residency(self):
        # WalkSAT and the metrics call the plan methods directly with host
        # matrices and no explicit backend; a device process default must
        # not change what they get back.
        from repro.cnf.formula import CNF

        formula = CNF([[1, -2], [2], [-1, 2]], num_variables=2)
        plan = formula.evaluation_plan()
        matrix = np.array([[True, True], [False, False], [False, True]])
        with xp.use_backend(FakeDeviceBackend()):
            satisfaction = plan.clause_satisfaction(matrix)
            counts = plan.unsatisfied_counts(matrix)
            result = plan.evaluate(matrix)
        assert type(satisfaction) is np.ndarray
        assert type(counts) is np.ndarray
        assert type(result) is np.ndarray
        np.testing.assert_array_equal(
            result, formula.evaluate_batch(matrix, backend="reference")
        )


    def test_simulate_follows_input_residency(self):
        from repro.circuit.gates import GateType
        from repro.circuit.netlist import Circuit
        from repro.circuit.simulate import simulate

        circuit = Circuit("res")
        circuit.add_input("a")
        circuit.add_input("b")
        circuit.add_gate("y", GateType.AND, ["a", "b"])
        circuit.set_output("y")
        matrix = np.array([[True, True], [True, False]])
        with xp.use_backend(FakeDeviceBackend()):
            values = simulate(circuit, matrix)
        assert type(values["y"]) is np.ndarray
        np.testing.assert_array_equal(values["y"], [True, False])

    def test_backend_for_rule(self):
        with xp.use_backend(FakeDeviceBackend()):
            assert xp.backend_for(np.ones(3)).is_numpy
            assert xp.backend_for([1, 2]).is_numpy
        assert xp.backend_for(np.ones(3)).is_numpy  # numpy active: always host


class TestThreadLocality:
    def test_use_backend_is_per_thread(self):
        import threading

        seen = {}

        def worker():
            seen["worker"] = xp.active_backend().float_dtype

        with xp.use_backend("numpy:float32"):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
            assert xp.active_backend().float_dtype == np.float32
        # The override never leaked into the other thread.
        assert seen["worker"] == np.float64

    def test_concurrent_samplers_with_different_backends(self, fig1_formula):
        import threading

        from repro.core.config import SamplerConfig
        from repro.core.sampler import GradientSATSampler

        results = {}

        def run(spec):
            config = SamplerConfig(
                batch_size=32, seed=4, max_rounds=2, array_backend=spec
            )
            sampler = GradientSATSampler(fig1_formula, config=config)
            results[spec] = sampler.sample(num_solutions=20)

        threads = [
            threading.Thread(target=run, args=(spec,))
            for spec in ("numpy", "numpy:float32")
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        # Both ran to completion with valid solutions and no cross-talk.
        for spec, result in results.items():
            matrix = result.solution_matrix()
            assert fig1_formula.evaluate_batch(matrix).all(), spec


class TestClearCaches:
    def test_drops_cnf_plans_and_engine_programs(self):
        from repro.cnf.formula import CNF
        from repro.core.transform import transform_cnf

        formula = CNF([[1, 2], [-1, 3], [2, -3]], num_variables=3)
        formula.evaluation_plan()
        transform = transform_cnf(formula)
        from repro.engine.compiler import compiled_program_for

        nets = transform.constraint_nets() or [transform.circuit.outputs[0]]
        compiled_program_for(transform.circuit, nets)
        assert formula._plan is not None
        assert transform.circuit.engine_cache()
        xp.clear_caches()
        assert formula._plan is None
        assert not transform.circuit.engine_cache()

    def test_cleared_artifacts_are_rebuilt_on_demand(self):
        from repro.cnf.formula import CNF

        formula = CNF([[1], [1, -2]], num_variables=2)
        before = formula.evaluation_plan()
        xp.clear_caches()
        after = formula.evaluation_plan()
        assert after is not before
        matrix = np.array([[True, False], [False, True]])
        np.testing.assert_array_equal(after.evaluate(matrix), before.evaluate(matrix))
