"""Backend-equivalence suite: every available backend vs the NumPy reference.

Parametrised over :func:`repro.xp.available_backends`, so CuPy/Torch are
exercised exactly on hosts that have them and skipped everywhere else.  The
contract: engine forward passes, input gradients, boolean/packed execution,
CNF kernel results and end-to-end sampled solutions must match the
``NumpyBackend`` bitwise or to 1e-10 (the float tolerance absorbs
reduction-order differences in accelerator runtimes; the NumPy backend
itself is bitwise by construction and asserted exactly).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.xp as xp
from repro.cnf.formula import CNF
from repro.core.circuit_sampler import CircuitSampler
from repro.core.config import SamplerConfig
from repro.core.sampler import GradientSATSampler
from repro.engine.compiler import compile_circuit
from repro.engine.executor import backward, execute_bool, execute_packed, forward
from tests.engine.conftest import random_circuit

FLOAT_TOLERANCE = 1e-10

BACKENDS = xp.available_backends()


def _numpy_reference():
    return xp.get_backend("numpy")


def _program(seed: int = 0, num_gates: int = 40):
    rng = np.random.default_rng(seed)
    circuit = random_circuit(rng, num_inputs=6, num_gates=num_gates, num_outputs=3)
    return compile_circuit(circuit, list(circuit.outputs)), circuit


def _assert_matches(candidate, reference, backend, exact: bool):
    candidate = xp.to_numpy(candidate)
    if exact or backend.is_numpy:
        np.testing.assert_array_equal(candidate, reference)
    else:
        np.testing.assert_allclose(candidate, reference, rtol=0.0, atol=FLOAT_TOLERANCE)


def _as_u64(array):
    """Packed words as uint64 bit patterns (Torch carries them as int64 views)."""
    array = xp.to_numpy(array)
    return array.view(np.uint64) if array.dtype == np.int64 else array


@pytest.mark.parametrize("backend_name", BACKENDS)
class TestEngineEquivalence:
    def test_forward_matches_reference(self, backend_name):
        program, _ = _program(seed=1)
        probabilities = np.random.default_rng(1).random((16, program.input_width))
        reference, _ = forward(program, probabilities, _numpy_reference())
        backend = xp.get_backend(backend_name)
        outputs, _ = forward(program, backend.from_numpy(probabilities), backend)
        _assert_matches(outputs, reference, backend, exact=False)

    def test_backward_matches_reference(self, backend_name):
        program, _ = _program(seed=2)
        rng = np.random.default_rng(2)
        probabilities = rng.random((8, program.input_width))
        seed_grad = rng.random((8, len(program.output_nets)))
        _, cache_ref = forward(program, probabilities, _numpy_reference())
        reference = backward(program, cache_ref, seed_grad)
        backend = xp.get_backend(backend_name)
        _, cache = forward(program, backend.from_numpy(probabilities), backend)
        grads = backward(program, cache, backend.from_numpy(seed_grad))
        _assert_matches(grads, reference, backend, exact=False)

    def test_bool_and_packed_modes_match_reference(self, backend_name):
        program, circuit = _program(seed=3)
        rng = np.random.default_rng(3)
        matrix = rng.random((32, program.input_width)) < 0.5
        reference = execute_bool(program, matrix, _numpy_reference())
        backend = xp.get_backend(backend_name)
        values = execute_bool(program, backend.from_numpy(matrix), backend)
        for net in circuit.outputs:
            _assert_matches(values[net], xp.to_numpy(reference[net]), backend, exact=True)
        packed_inputs = {
            name: rng.integers(0, 2**63, size=4, dtype=np.uint64)
            for name in program.cone_inputs
        }
        packed_ref = execute_packed(program, packed_inputs, _numpy_reference())
        packed = execute_packed(program, dict(packed_inputs), backend)
        for net in circuit.outputs:
            np.testing.assert_array_equal(
                _as_u64(packed[net]), _as_u64(packed_ref[net])
            )


@pytest.mark.parametrize("backend_name", BACKENDS)
class TestKernelEquivalence:
    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_cnf_kernels_match_reference(self, backend_name, data):
        num_variables = data.draw(st.integers(1, 12), label="num_variables")
        clauses = data.draw(
            st.lists(
                st.lists(
                    st.integers(1, num_variables).flatmap(
                        lambda v: st.sampled_from([v, -v])
                    ),
                    min_size=0,
                    max_size=5,
                ),
                min_size=0,
                max_size=12,
            ),
            label="clauses",
        )
        formula = CNF(clauses, num_variables=num_variables, name="hyp-xp")
        batch = data.draw(st.integers(1, 33), label="batch")
        seed = data.draw(st.integers(0, 2**20), label="seed")
        matrix = np.random.default_rng(seed).random((batch, num_variables)) < 0.5
        plan = formula.evaluation_plan()
        numpy_backend = _numpy_reference()
        reference = plan.evaluate(matrix, numpy_backend)
        reference_counts = plan.unsatisfied_counts(matrix, numpy_backend)
        backend = xp.get_backend(backend_name)
        device_matrix = backend.from_numpy(matrix)
        _assert_matches(plan.evaluate(device_matrix, backend), reference, backend, True)
        _assert_matches(
            plan.evaluate_packed(device_matrix, backend), reference, backend, True
        )
        _assert_matches(
            plan.unsatisfied_counts(device_matrix, backend),
            reference_counts,
            backend,
            True,
        )

    def test_plan_memoises_device_arrays_per_backend(self, backend_name):
        formula = CNF([[1, -2], [2, 3], [-1]], num_variables=3)
        plan = formula.evaluation_plan()
        backend = xp.get_backend(backend_name)
        matrix = backend.from_numpy(
            np.random.default_rng(0).random((8, 3)) < 0.5
        )
        plan.evaluate(matrix, backend)
        plan.evaluate(matrix, backend)
        if backend.is_numpy:
            assert plan._device_arrays == {}
        else:
            assert backend.cache_key in plan._device_arrays


@pytest.mark.parametrize("backend_name", BACKENDS)
class TestPackedPrimitives:
    """The uint8/uint64 word layer every packed kernel is built from."""

    def test_packbits_unpackbits_roundtrip(self, backend_name):
        backend = xp.get_backend(backend_name)
        matrix = np.random.default_rng(7).random((5, 27)) < 0.5
        packed = backend.packbits(
            backend.ascontiguousarray(backend.from_numpy(matrix)), axis=1
        )
        np.testing.assert_array_equal(
            xp.to_numpy(packed), np.packbits(matrix, axis=1)
        )
        words = np.packbits(matrix, axis=1).reshape(-1)
        unpacked = backend.unpackbits(backend.from_numpy(words), count=31)
        np.testing.assert_array_equal(
            xp.to_numpy(unpacked), np.unpackbits(words, count=31)
        )

    def test_bitwise_segment_reductions(self, backend_name):
        backend = xp.get_backend(backend_name)
        rng = np.random.default_rng(8)
        words = rng.integers(0, 256, size=(12, 3), dtype=np.uint8)
        offsets = np.array([0, 4, 4, 7], dtype=np.intp)
        reference = np.bitwise_or.reduceat(words, offsets, axis=0)
        result = backend.bitwise_or_reduceat(backend.from_numpy(words), offsets, axis=0)
        np.testing.assert_array_equal(xp.to_numpy(result), reference)
        reduced = backend.bitwise_and_reduce(backend.from_numpy(words), axis=0)
        np.testing.assert_array_equal(
            xp.to_numpy(reduced), np.bitwise_and.reduce(words, axis=0)
        )

    def test_uint64_words_roundtrip_as_bit_views(self, backend_name):
        backend = xp.get_backend(backend_name)
        if not backend.supports_packed:
            pytest.skip(f"{backend_name} has no native packed support")
        words = np.array([0, 1, 2**63, 2**64 - 1], dtype=np.uint64)
        device = backend.asarray(words, dtype=backend.uint64_dtype)
        inverted = backend.bitwise_xor(device, backend.packed_ones_u64)
        np.testing.assert_array_equal(_as_u64(inverted), ~words)


@pytest.mark.parametrize("backend_name", BACKENDS)
class TestSamplerEquivalence:
    """End-to-end: sampled solutions, their order, and timed_out must match."""

    @pytest.fixture()
    def formula(self, fig1_formula):
        return fig1_formula

    def _run(self, formula, spec):
        config = SamplerConfig(
            batch_size=64, seed=11, max_rounds=3, array_backend=spec
        )
        sampler = GradientSATSampler(formula, config=config)
        result = sampler.sample(num_solutions=40)
        return result

    def test_sampled_solutions_match_reference(self, backend_name, formula):
        reference = self._run(formula, "numpy")
        candidate = self._run(formula, backend_name)
        assert candidate.timed_out == reference.timed_out
        assert candidate.num_generated == reference.num_generated
        matrix_ref = reference.solution_matrix()
        matrix = candidate.solution_matrix()
        # Same stream (the RNG handle is threaded through the backend), so
        # the solutions AND their insertion order must line up.
        assert matrix.shape == matrix_ref.shape
        backend = xp.get_backend(backend_name)
        _assert_matches(matrix, matrix_ref, backend, exact=backend.is_numpy)

    def test_restarts_are_reproducible(self, backend_name, formula):
        config = SamplerConfig(batch_size=32, seed=5, max_rounds=2, array_backend=backend_name)
        sampler = GradientSATSampler(formula, config=config)
        first = sampler.sample(num_solutions=30)
        sampler.reset_rng()
        second = sampler.sample(num_solutions=30)
        np.testing.assert_array_equal(
            first.solution_matrix(), second.solution_matrix()
        )
        assert first.num_generated == second.num_generated

    def test_circuit_sampler_restarts_are_reproducible(self, backend_name):
        circuit = random_circuit(
            np.random.default_rng(4), num_inputs=6, num_gates=20, num_outputs=2
        )
        config = SamplerConfig(batch_size=32, seed=3, max_rounds=2, array_backend=backend_name)
        sampler = CircuitSampler(circuit, config=config)
        first = sampler.sample(num_solutions=20)
        sampler.reset_rng()
        second = sampler.sample(num_solutions=20)
        np.testing.assert_array_equal(first.input_matrix(), second.input_matrix())


class TestActiveBackendDoesNotLeak:
    def test_sampler_restores_active_backend(self, fig1_formula):
        before = xp.active_backend()
        config = SamplerConfig(batch_size=16, seed=0, max_rounds=1, array_backend="numpy:float32")
        GradientSATSampler(fig1_formula, config=config).sample(num_solutions=5)
        assert xp.active_backend() is before
