"""Integration tests: the full pipeline on every benchmark family.

These are the reproduction's "does the whole thing hang together" checks:
generate an instance, transform it, sample with the paper's method and with a
baseline, validate every solution against the original CNF, and compare the
qualitative behaviour the paper reports.
"""

import numpy as np
import pytest

from repro.baselines.cmsgen_like import CMSGenStyleSampler
from repro.core.config import SamplerConfig
from repro.core.pipeline import sample_cnf
from repro.core.transform import transform_cnf
from repro.instances.registry import get_instance

FAMILY_REPRESENTATIVES = {
    "or": "or-50-10-7-UC-10",
    "q": "75-10-1-q",
    "iscas": "s9234a_3_2",
    "prod": "Prod-w5",
}


@pytest.mark.parametrize("family,name", sorted(FAMILY_REPRESENTATIVES.items()))
def test_full_pipeline_per_family(family, name):
    formula, _ = get_instance(name).build()
    config = SamplerConfig(batch_size=256, seed=0, max_rounds=6)
    result = sample_cnf(formula, num_solutions=50, config=config)

    # Every reported solution must satisfy the *original* CNF.
    matrix = result.sample.solution_matrix()
    assert result.sample.num_unique > 0
    assert formula.evaluate_batch(matrix).all()

    # The transformation must reduce the operation count on every family.
    assert result.transform.stats.operations_reduction > 1.0

    # Solutions must be genuinely distinct.
    packed = {row.tobytes() for row in np.packbits(matrix, axis=1)}
    assert len(packed) == matrix.shape[0]


def test_gd_sampler_beats_cnf_baseline_on_q_family():
    """The core comparative claim, at test scale: higher unique-solution
    throughput than a CNF-level baseline on a q-family instance."""
    formula, _ = get_instance("75-10-1-q").build()
    config = SamplerConfig(batch_size=512, seed=0, max_rounds=4)
    ours = sample_cnf(formula, num_solutions=100, config=config)
    baseline = CMSGenStyleSampler(seed=0).sample(formula, num_solutions=100, timeout_seconds=30)
    assert ours.sample.num_unique >= 100
    assert ours.throughput > baseline.throughput


def test_transform_is_reusable_across_samplings():
    formula, _ = get_instance("or-50-10-7-UC-10").build()
    transform = transform_cnf(formula)
    config = SamplerConfig(batch_size=128, seed=1, max_rounds=2)
    first = sample_cnf(formula, num_solutions=20, config=config, transform=transform)
    second = sample_cnf(formula, num_solutions=20, config=config, transform=transform)
    assert first.transform is second.transform
    assert first.sample.num_unique >= 20
    assert second.sample.num_unique >= 20


def test_solution_diversity_on_or_family():
    """Unconstrained inputs are drawn at random, so solutions should be spread out."""
    from repro.metrics.quality import hamming_diversity

    formula, _ = get_instance("or-50-10-7-UC-10").build()
    config = SamplerConfig(batch_size=512, seed=0, max_rounds=2)
    result = sample_cnf(formula, num_solutions=200, config=config)
    diversity = hamming_diversity(result.sample.solution_matrix())
    assert diversity > 0.2
