"""Round-trip integration tests: circuit -> Tseitin CNF -> Algorithm 1 -> circuit.

The central correctness property of the reproduction: transforming the
Tseitin encoding of a circuit must yield a multi-level function whose
completions satisfy the CNF exactly when the recovered constraint outputs are
satisfied, and the solution counts must agree with exhaustive enumeration on
small instances.
"""

import numpy as np
import pytest

from repro.baselines.dpll import DPLLSolver
from repro.circuit.builder import CircuitBuilder
from repro.circuit.tseitin import circuit_to_cnf
from repro.core.transform import transform_cnf
from tests.conftest import all_assignments


def _solution_count_via_transform(formula, transform):
    matrix = all_assignments(len(transform.primary_inputs))
    completed = transform.complete_assignments(matrix)
    valid = formula.evaluate_batch(completed)
    distinct = {tuple(row.tolist()) for row in completed[valid]}
    return len(distinct)


class TestRoundTripCounts:
    def test_adder_constrained_to_value(self):
        """Constrain a 2-bit adder's output to a constant and count solutions."""
        builder = CircuitBuilder("adder")
        a_bits = builder.inputs(2, prefix="a")
        b_bits = builder.inputs(2, prefix="b")
        sums, carry = builder.ripple_adder(a_bits, b_bits)
        for net in sums:
            builder.output(net)
        builder.output(carry)
        circuit = builder.circuit
        # Constrain the sum to 3 (= 0b011, carry 0): pairs (a, b) with a+b=3 -> 4 pairs.
        constraints = {sums[0]: True, sums[1]: True, carry: False}
        formula, _ = circuit_to_cnf(circuit, output_constraints=constraints)
        formula.name = "adder3"
        transform = transform_cnf(formula)
        dpll_count = DPLLSolver(formula).count_models()
        assert _solution_count_via_transform(formula, transform) == dpll_count

    def test_comparator_equality(self):
        builder = CircuitBuilder("cmp")
        a_bits = builder.inputs(3, prefix="a")
        b_bits = builder.inputs(3, prefix="b")
        equal = builder.equality_comparator(a_bits, b_bits)
        builder.output(equal)
        formula, _ = circuit_to_cnf(builder.circuit, output_constraints={equal: True})
        formula.name = "cmp-eq"
        transform = transform_cnf(formula)
        # Exactly 8 input pairs are equal; every model is determined by the inputs.
        assert _solution_count_via_transform(formula, transform) == DPLLSolver(formula).count_models()

    def test_mux_tree(self):
        builder = CircuitBuilder("muxtree")
        select = builder.input("s")
        data = builder.inputs(4, prefix="d")
        first = builder.mux(select, data[0], data[1])
        second = builder.mux(select, data[2], data[3])
        out = builder.or_(first, second, name="out")
        builder.output(out)
        formula, _ = circuit_to_cnf(builder.circuit, output_constraints={"out": True})
        formula.name = "muxtree"
        transform = transform_cnf(formula)
        assert _solution_count_via_transform(formula, transform) == DPLLSolver(formula).count_models()


class TestRoundTripStructure:
    def test_recovered_ops_not_larger_than_original_circuit(self, small_circuit):
        """The recovered multi-level function should cost no more 2-input gate
        equivalents than the CNF it came from (that is the whole point)."""
        formula, _ = circuit_to_cnf(small_circuit, output_constraints={"f": True})
        formula.name = "small"
        transform = transform_cnf(formula)
        assert transform.stats.circuit_operations <= transform.stats.cnf_operations

    def test_primary_inputs_subset_of_original_inputs_plus_aux(self, small_circuit):
        formula, var_map = circuit_to_cnf(small_circuit, output_constraints={"f": True})
        formula.name = "small"
        transform = transform_cnf(formula)
        original_input_indices = {var_map[name] for name in small_circuit.inputs}
        recovered_indices = {
            int(name[1:]) for name in transform.primary_inputs
        }
        # Every original circuit input that the constrained cone touches should
        # be recoverable as a primary input (the reverse containment need not hold).
        assert recovered_indices & original_input_indices

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_random_netlists_roundtrip_equivalently(self, seed):
        from repro.instances.iscas import generate_iscas_like_instance

        formula, _ = generate_iscas_like_instance(
            num_inputs=8, num_gates=30, num_constrained_outputs=2, seed=seed
        )
        transform = transform_cnf(formula)
        matrix = all_assignments(min(len(transform.primary_inputs), 12))
        if matrix.shape[1] < len(transform.primary_inputs):
            rng = np.random.default_rng(seed)
            padding = rng.random(
                (matrix.shape[0], len(transform.primary_inputs) - matrix.shape[1])
            ) < 0.5
            matrix = np.hstack([matrix, padding])
        completed = transform.complete_assignments(matrix)
        valid = formula.evaluate_batch(completed)
        # The instance is satisfiable by construction, so the transformation must
        # expose at least one satisfying completion over the PI space.
        assert valid.any()
