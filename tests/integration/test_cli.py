"""End-to-end CLI tests: ``python -m repro.cli`` as a real subprocess.

The in-process CLI tests (tests/utils/test_cli.py) cover argument handling;
these verify the installed entry point actually works from a shell — module
resolution, exit codes, files on disk — for every subcommand, including the
``serve`` batch front end with a two-job manifest.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from tests.conftest import FIG1_DIMACS

#: Generous bound per CLI invocation (spawned workers import numpy etc.).
TIMEOUT = 180


def run_cli(*arguments, cwd=None):
    source_root = Path(__file__).resolve().parents[2] / "src"
    environment = dict(os.environ)
    environment["PYTHONPATH"] = (
        f"{source_root}{os.pathsep}{environment['PYTHONPATH']}"
        if environment.get("PYTHONPATH")
        else str(source_root)
    )
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", *arguments],
        capture_output=True,
        text=True,
        timeout=TIMEOUT,
        env=environment,
        cwd=cwd,
    )


@pytest.fixture
def fig1_path(tmp_path):
    path = tmp_path / "fig1.cnf"
    path.write_text(FIG1_DIMACS)
    return path


class TestSampleSubcommand:
    def test_sample_end_to_end(self, fig1_path, tmp_path):
        output = tmp_path / "solutions.txt"
        completed = run_cli(
            "sample", str(fig1_path), "-n", "8", "-b", "32", "--seed", "0",
            "-o", str(output),
        )
        assert completed.returncode == 0, completed.stderr
        assert "unique solutions" in completed.stdout
        assert output.exists()
        assert sum(1 for line in output.read_text().splitlines() if line.strip()) >= 1


class TestTransformSubcommand:
    def test_transform_reports_structure(self, fig1_path, tmp_path):
        verilog = tmp_path / "fig1.v"
        completed = run_cli("transform", str(fig1_path), "--verilog", str(verilog))
        assert completed.returncode == 0, completed.stderr
        assert "constrained inputs" in completed.stdout
        assert verilog.exists()
        assert "module" in verilog.read_text()


class TestInstancesSubcommand:
    def test_list_registry(self):
        completed = run_cli("instances", "--family", "or")
        assert completed.returncode == 0, completed.stderr
        assert "or-50-10-7-UC-10" in completed.stdout

    def test_write_instance(self, tmp_path):
        completed = run_cli(
            "instances", "--write", "or-50-10-7-UC-10", "--output-dir", str(tmp_path)
        )
        assert completed.returncode == 0, completed.stderr
        assert (tmp_path / "or-50-10-7-UC-10.cnf").exists()


class TestServeSubcommand:
    def write_manifest(self, tmp_path, fig1_path):
        manifest = tmp_path / "jobs.json"
        manifest.write_text(
            json.dumps(
                {
                    "jobs": [
                        {
                            "id": "plain",
                            "path": str(fig1_path),
                            "num_solutions": 8,
                            "config": {"batch_size": 32, "seed": 0},
                        },
                        {
                            "id": "folio",
                            "path": str(fig1_path),
                            "num_solutions": 8,
                            "config": {"batch_size": 32, "seed": 1},
                            "portfolio": 2,
                        },
                    ]
                }
            )
        )
        return manifest

    def test_serve_inline(self, fig1_path, tmp_path):
        manifest = self.write_manifest(tmp_path, fig1_path)
        out_dir = tmp_path / "out"
        completed = run_cli("serve", str(manifest), "-o", str(out_dir))
        assert completed.returncode == 0, completed.stderr
        assert "2 jobs" in completed.stdout
        results = json.loads((out_dir / "results.json").read_text())
        assert [row["job_id"] for row in results] == ["plain", "folio"]
        assert all(row["status"] == "done" for row in results)
        assert len(results[1]["members"]) == 2
        for job_id in ("plain", "folio"):
            solutions = (out_dir / f"{job_id}.solutions").read_text()
            assert solutions.strip(), f"no solutions written for {job_id}"

    def test_serve_with_worker_pool(self, fig1_path, tmp_path):
        manifest = self.write_manifest(tmp_path, fig1_path)
        out_dir = tmp_path / "out-pool"
        completed = run_cli("serve", str(manifest), "--workers", "2", "-o", str(out_dir))
        assert completed.returncode == 0, completed.stderr
        results = json.loads((out_dir / "results.json").read_text())
        assert all(row["status"] == "done" for row in results)

    def test_serve_bad_manifest_fails_loudly(self, tmp_path):
        manifest = tmp_path / "bad.json"
        manifest.write_text('[{"num_solutions": 3}]')
        completed = run_cli("serve", str(manifest))
        assert completed.returncode != 0
        assert "exactly one of" in completed.stderr
