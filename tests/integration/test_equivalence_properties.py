"""Property-based end-to-end invariants (hypothesis).

Random circuits are Tseitin-encoded, transformed and sampled; every reported
solution must satisfy the original CNF, and the transformation must stay
exactly equivalence-preserving over the primary-input space.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.dpll import DPLLSolver
from repro.circuit.builder import CircuitBuilder
from repro.circuit.gates import GateType
from repro.circuit.tseitin import circuit_to_cnf
from repro.cnf.generators import planted_ksat
from repro.core.config import SamplerConfig
from repro.core.sampler import GradientSATSampler
from repro.core.transform import transform_cnf
from tests.conftest import all_assignments

_BINARY_GATES = [GateType.AND, GateType.OR, GateType.NAND, GateType.NOR, GateType.XOR]


@st.composite
def constrained_circuit_cnfs(draw):
    """A random small circuit with its output constrained to a reachable value."""
    num_inputs = draw(st.integers(2, 4))
    num_gates = draw(st.integers(2, 8))
    builder = CircuitBuilder("hyp")
    nets = builder.inputs(num_inputs, prefix="i")
    for _ in range(num_gates):
        gate_type = draw(st.sampled_from(_BINARY_GATES + [GateType.NOT]))
        if gate_type == GateType.NOT:
            nets.append(builder.not_(draw(st.sampled_from(nets))))
        else:
            first = draw(st.sampled_from(nets))
            second = draw(st.sampled_from(nets))
            nets.append(builder.gate(gate_type, [first, second]))
    output = nets[-1]
    builder.output(output)
    circuit = builder.circuit
    # Pick a constraint value the circuit can actually reach so the CNF is SAT.
    reference = {name: draw(st.booleans()) for name in circuit.inputs}
    value = circuit.evaluate(reference)[output]
    formula, _ = circuit_to_cnf(circuit, output_constraints={output: value})
    formula.name = "hyp"
    return formula


@given(constrained_circuit_cnfs())
@settings(max_examples=25, deadline=None)
def test_transform_preserves_model_count(formula):
    """Projected onto the variables the CNF actually mentions, the set of valid
    completions must equal the exact model set (free variables are sampled at
    random by the sampler, so they are projected out here)."""
    transform = transform_cnf(formula)
    mentioned = sorted({abs(lit) for clause in formula.clauses for lit in clause})
    columns = [index - 1 for index in mentioned]
    matrix = all_assignments(len(transform.primary_inputs))
    completed = transform.complete_assignments(matrix)
    valid = formula.evaluate_batch(completed)
    distinct_valid = {tuple(row.tolist()) for row in completed[valid][:, columns]}
    dpll_models = {
        tuple(model[columns].tolist()) for model in DPLLSolver(formula).enumerate_models()
    }
    assert distinct_valid == dpll_models


@given(constrained_circuit_cnfs())
@settings(max_examples=15, deadline=None)
def test_sampler_reports_only_valid_solutions(formula):
    config = SamplerConfig(batch_size=32, seed=0, max_rounds=2)
    result = GradientSATSampler(formula, config=config).sample(8)
    matrix = result.solution_matrix()
    if matrix.shape[0]:
        assert formula.evaluate_batch(matrix).all()


@given(st.integers(0, 10_000))
@settings(max_examples=15, deadline=None)
def test_sampler_valid_on_planted_ksat(seed):
    """Random (non-circuit) CNFs exercise the under-specified fallback path."""
    formula = planted_ksat(12, 30, seed=seed)
    config = SamplerConfig(batch_size=64, seed=0, max_rounds=3)
    result = GradientSATSampler(formula, config=config).sample(5)
    matrix = result.solution_matrix()
    if matrix.shape[0]:
        assert formula.evaluate_batch(matrix).all()


@given(constrained_circuit_cnfs())
@settings(max_examples=20, deadline=None)
def test_ops_reduction_at_least_parity(formula):
    transform = transform_cnf(formula)
    assert transform.stats.circuit_operations <= transform.stats.cnf_operations
