"""Projected dedup and weighted initialization, pinned against oracles.

Three contracts:

* :class:`SolutionSet` with ``project`` keys uniqueness on the projected
  columns while storing full-width witness rows — checked against a naive
  first-witness oracle under hypothesis;
* the weighted sampler biases only the *initialization* and stays valid —
  every solution still satisfies the CNF, and free/unconstrained marginals
  follow the weights;
* the **default task is bitwise free**: with a fixed seed the sampler
  produces the exact same candidate bit-stream with ``task=None``, the
  default task, and even an explicit 0.5 weight (which compiles to no bias
  vectors at all).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cnf import CNF, planted_ksat
from repro.core.config import SamplerConfig
from repro.core.pipeline import sample_cnf
from repro.core.sampler import GradientSATSampler
from repro.core.solutions import SolutionSet
from repro.core.task import DEFAULT_TASK, SamplingTask


def planted() -> CNF:
    return planted_ksat(16, 40, 3, seed=11)


def config(**overrides) -> SamplerConfig:
    settings = dict(seed=3, batch_size=128, max_rounds=4)
    settings.update(overrides)
    return SamplerConfig(**settings)


# -- SolutionSet projection ---------------------------------------------------------------

def projected_oracle(matrix: np.ndarray, columns):
    """First full-row witness of each projected pattern, in stream order."""
    witnesses, seen = [], set()
    for row in matrix:
        key = tuple(bool(v) for v in row[list(columns)])
        if key not in seen:
            seen.add(key)
            witnesses.append(row)
    return np.array(witnesses, dtype=bool).reshape(len(witnesses), matrix.shape[1])


@settings(max_examples=60, deadline=None)
@given(data=st.data())
def test_projected_add_batch_matches_first_witness_oracle(data):
    num_variables = data.draw(st.integers(1, 8), label="num_variables")
    num_rows = data.draw(st.integers(0, 40), label="rows")
    columns = data.draw(
        st.lists(
            st.integers(0, num_variables - 1), min_size=1, max_size=num_variables,
            unique=True,
        ),
        label="projection",
    )
    bits = data.draw(
        st.lists(
            st.lists(st.booleans(), min_size=num_variables, max_size=num_variables),
            min_size=num_rows, max_size=num_rows,
        ),
        label="bits",
    )
    matrix = np.array(bits, dtype=bool).reshape(num_rows, num_variables)
    solutions = SolutionSet(num_variables, project=columns)
    split = num_rows // 2
    solutions.add_batch(matrix[:split])
    solutions.add_batch(matrix[split:])
    expected = projected_oracle(matrix, sorted(set(columns)))
    np.testing.assert_array_equal(solutions.to_matrix(), expected)
    # add() agrees with add_batch()
    one_by_one = SolutionSet(num_variables, project=columns)
    for row in matrix:
        one_by_one.add(row)
    np.testing.assert_array_equal(one_by_one.to_matrix(), expected)


def test_projected_set_basics():
    solutions = SolutionSet(4, project=[2, 0])
    assert solutions.project == (0, 2)
    assert solutions.add([True, False, False, False])
    assert not solutions.add([True, True, False, True])  # same projected pattern
    assert solutions.contains([True, False, False, True])
    assert len(solutions) == 1
    # stored row is the full-width first witness
    np.testing.assert_array_equal(
        solutions.to_matrix(), [[True, False, False, False]]
    )


def test_projection_bounds_validated():
    with pytest.raises(ValueError):
        SolutionSet(4, project=[4])
    with pytest.raises(ValueError):
        SolutionSet(4, project=[-1])
    assert SolutionSet(4, project=[]).project is None  # empty = unprojected


# -- default-task bitwise identity --------------------------------------------------------

def test_default_task_fixed_seed_bit_stream_identity():
    formula = planted()
    runs = []
    for task in (None, DEFAULT_TASK, SamplingTask(weights=((1, 0.5), (7, 0.5)))):
        sampler = GradientSATSampler(formula, config=config(), task=task)
        result = sampler.sample(num_solutions=30)
        runs.append(result.solution_matrix())
    assert runs[0].shape[0] > 0
    np.testing.assert_array_equal(runs[0], runs[1])
    # A literal 0.5 weight compiles to *no* bias/probability vectors, so even
    # a technically-weighted task keeps the exact candidate bit-stream.
    np.testing.assert_array_equal(runs[0], runs[2])


def test_projected_run_finds_same_patterns_as_projecting_a_default_run():
    formula = planted()
    columns = (0, 1, 2)
    # One round each: identical candidate streams, so the projected run's
    # pattern sequence must equal the default run's patterns after projection.
    default = sample_cnf(formula, num_solutions=10**6, config=config(max_rounds=1))
    projected = sample_cnf(
        formula,
        num_solutions=10**6,
        config=config(max_rounds=1),
        task=SamplingTask.build(project=[1, 2, 3]),
    )
    oracle = projected_oracle(default.sample.solution_matrix(), columns)
    np.testing.assert_array_equal(
        projected.sample.solution_matrix()[:, list(columns)],
        oracle[:, list(columns)],
    )


# -- weighted sampling --------------------------------------------------------------------

def test_weighted_solutions_stay_valid_and_marginals_shift():
    # Variables 17/18 appear in no clause: they are free, so their weighted
    # Bernoulli draws are directly observable in the solutions.
    base = planted()
    formula = CNF(
        [list(clause.literals) for clause in base.clauses],
        num_variables=18,
        name="free-tail",
    )
    task = SamplingTask.build(weights={17: 0.95, 18: 0.05, 1: 0.9})
    result = sample_cnf(
        formula, num_solutions=200, config=config(batch_size=512, max_rounds=4),
        task=task,
    )
    matrix = result.sample.solution_matrix()
    assert matrix.shape[0] >= 50
    assert formula.evaluate_batch(matrix).all()
    assert matrix[:, 16].mean() > 0.75   # weighted towards 1
    assert matrix[:, 17].mean() < 0.25   # weighted towards 0
    assert result.sample.task_kind == "weighted"


def test_weight_validation_against_formula():
    formula = planted()
    with pytest.raises(ValueError):
        GradientSATSampler(
            formula, config=config(), task=SamplingTask.build(weights={99: 0.9})
        )


# -- result surface (satellite: summary fields) -------------------------------------------

def test_summary_surfaces_task_kind_and_projected_unique():
    formula = planted()
    result = sample_cnf(
        formula, num_solutions=4, config=config(),
        task=SamplingTask.build(project=[1, 2]),
    )
    summary = result.sample.summary()
    assert summary["task"] == "projected"
    assert summary["projected_unique"] == result.sample.num_unique
    assert summary["stopped_early"] is False
    default = sample_cnf(formula, num_solutions=4, config=config())
    assert default.sample.summary()["task"] == "default"
    assert default.sample.task_kind == "default"
