"""Workload-spec (SamplingTask) test suite."""
