"""SamplingTask / ClauseDelta semantics: validation, identity, application.

The task layer is pure bookkeeping — no sampling here.  These tests pin the
contracts every other layer builds on: normalization and rejection rules,
the canonical/serialised forms used by signatures and serve coalescing, and
the CNF-level delta application (including the append-only evaluation-plan
splice, checked field-for-field against a cold ``compile_evaluation_plan``).
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.cnf import CNF, Clause, ClauseDelta, compile_evaluation_plan
from repro.core.signatures import formula_signature, task_signature
from repro.core.task import DEFAULT_TASK, SamplingTask


def small_formula() -> CNF:
    return CNF([[1, 2], [-1, 3], [2, -3], [-2, -3, 1]], num_variables=4, name="small")


# -- SamplingTask ------------------------------------------------------------------------

class TestSamplingTask:
    def test_default_task_is_identity(self):
        task = SamplingTask()
        assert task.is_default
        assert task.kind() == "default"
        formula = small_formula()
        assert task.apply_to(formula) is formula
        assert task.projection_columns(4) == ()
        assert task.weight_map() == {}

    def test_projection_normalized_sorted_deduplicated(self):
        task = SamplingTask(project=(3, 1, 3, 2))
        assert task.project == (1, 2, 3)
        assert task.projection_columns(4) == (0, 1, 2)
        assert task.kind() == "projected"

    def test_projection_rejects_nonpositive_and_out_of_range(self):
        with pytest.raises(ValueError):
            SamplingTask(project=(0,))
        with pytest.raises(ValueError):
            SamplingTask(project=(5,)).projection_columns(4)

    def test_weights_validated(self):
        task = SamplingTask(weights=((2, 0.25), (1, 0.75)))
        assert task.weights == ((1, 0.75), (2, 0.25))
        assert task.kind() == "weighted"
        logits = task.weight_logits()
        assert logits[1] == pytest.approx(math.log(3.0))
        for bad in ({1: 0.0}, {1: 1.0}, {0: 0.5}, {1: -0.2}):
            with pytest.raises(ValueError):
                SamplingTask.build(weights=bad)
        with pytest.raises(ValueError):
            SamplingTask(weights=((1, 0.2), (1, 0.8)))  # conflicting
        with pytest.raises(ValueError):
            SamplingTask(weights=((9, 0.5),)).weight_map(4)

    def test_kind_composes(self):
        task = SamplingTask.build(project=[1], weights={2: 0.9}, assume=[3])
        assert task.kind() == "projected+weighted+incremental"
        assert task.is_projected and task.is_weighted and task.is_incremental

    def test_canonical_and_dict_round_trip(self):
        task = SamplingTask.build(
            project=[2, 1], weights={3: 0.75}, add=[[1, -2]], assume=[4]
        )
        rebuilt = SamplingTask.from_dict(task.to_dict())
        assert rebuilt == task
        assert rebuilt.canonical() == task.canonical()
        assert SamplingTask.from_dict(None) == DEFAULT_TASK
        with pytest.raises(ValueError):
            SamplingTask.from_dict({"projection": [1]})

    def test_tasks_are_hashable(self):
        a = SamplingTask.build(project=[1, 2])
        b = SamplingTask.build(project=[2, 1])
        assert a == b and hash(a) == hash(b)
        assert len({a, b, DEFAULT_TASK}) == 2


# -- ClauseDelta -------------------------------------------------------------------------

class TestClauseDelta:
    def test_empty_and_append_only(self):
        assert ClauseDelta().is_empty
        assert not ClauseDelta(add=((1, 2),)).is_empty
        assert ClauseDelta(add=((1, 2),), assume=(3,)).is_append_only
        assert not ClauseDelta(retract=((1, 2),)).is_append_only

    def test_assume_rejects_zero(self):
        with pytest.raises(ValueError):
            ClauseDelta(assume=(0,))

    def test_apply_appends_and_retracts(self):
        clauses = [Clause([1, 2]), Clause([-1, 3]), Clause([2, -3])]
        delta = ClauseDelta(add=((1, 3),), retract=((-1, 3),), assume=(2,))
        mutated, change_position = delta.apply(clauses)
        assert [tuple(c.literals) for c in mutated] == [
            (1, 2), (2, -3), (1, 3), (2,),
        ]
        assert change_position == 1  # first mutated index: the retraction

    def test_apply_pure_append_change_position_is_length(self):
        clauses = [Clause([1, 2]), Clause([-1, 3])]
        delta = ClauseDelta(assume=(4,))
        mutated, change_position = delta.apply(clauses)
        assert change_position == 2
        assert tuple(mutated[-1].literals) == (4,)

    def test_retract_missing_clause_raises(self):
        with pytest.raises(ValueError, match="cannot retract"):
            ClauseDelta(retract=((9, 8),)).apply([Clause([1, 2])])

    def test_retract_matches_one_occurrence_per_entry(self):
        clauses = [Clause([1, 2]), Clause([1, 2]), Clause([3])]
        mutated, _ = ClauseDelta(retract=((1, 2),)).apply(clauses)
        assert [tuple(c.literals) for c in mutated] == [(1, 2), (3,)]

    def test_dict_round_trip(self):
        delta = ClauseDelta(add=((1, -2), (3,)), retract=((1, 2),), assume=(-4,))
        assert ClauseDelta.from_dict(delta.to_dict()) == delta
        with pytest.raises(ValueError):
            ClauseDelta.from_dict({"append": [[1]]})


# -- CNF.with_delta / retract_clause -----------------------------------------------------

class TestFormulaDelta:
    def test_with_delta_empty_returns_self(self):
        formula = small_formula()
        assert formula.with_delta(ClauseDelta()) is formula
        assert formula.with_delta(None) is formula

    def test_with_delta_builds_mutated_formula(self):
        formula = small_formula()
        delta = ClauseDelta(add=((1, 4),), assume=(2,))
        mutated = formula.with_delta(delta)
        assert mutated is not formula
        assert mutated.num_clauses == formula.num_clauses + 2
        assert formula.num_clauses == 4  # original untouched

    def test_retract_clause(self):
        formula = small_formula()
        removed = formula.retract_clause([-1, 3])
        assert tuple(removed.literals) == (-1, 3)
        assert formula.num_clauses == 3
        with pytest.raises(ValueError, match="cannot retract"):
            formula.retract_clause([9, 8])

    def test_append_only_delta_patches_compiled_plan(self):
        formula = small_formula()
        plan = formula.evaluation_plan()  # compile before the delta
        delta = ClauseDelta(add=((4, -1), (1, 2, 3, -4)), assume=(2,))
        mutated = formula.with_delta(delta)
        patched = mutated.evaluation_plan()
        cold = compile_evaluation_plan(mutated)
        assert patched.num_clauses == cold.num_clauses
        assert patched.num_variables == cold.num_variables
        assert patched.num_empty == cold.num_empty
        assert patched.width_groups == cold.width_groups
        np.testing.assert_array_equal(patched.literal_columns, cold.literal_columns)
        np.testing.assert_array_equal(patched.literal_negated, cold.literal_negated)
        np.testing.assert_array_equal(patched.reduce_offsets, cold.reduce_offsets)
        np.testing.assert_array_equal(patched.nonempty_index, cold.nonempty_index)
        assert plan.num_clauses == 4  # parent plan untouched

    def test_retracting_delta_does_not_carry_stale_plan(self):
        formula = small_formula()
        formula.evaluation_plan()
        mutated = formula.with_delta(ClauseDelta(retract=((1, 2),)))
        plan = mutated.evaluation_plan()
        cold = compile_evaluation_plan(mutated)
        np.testing.assert_array_equal(plan.literal_columns, cold.literal_columns)
        assert plan.num_clauses == formula.num_clauses - 1

    def test_batch_evaluation_matches_after_delta(self):
        formula = small_formula()
        formula.evaluation_plan()
        mutated = formula.with_delta(ClauseDelta(add=((4, 1),), assume=(-2,)))
        rng = np.random.default_rng(0)
        batch = rng.random((64, mutated.num_variables)) < 0.5
        slow = np.array([
            all(c.evaluate_bool_row(row) if hasattr(c, "evaluate_bool_row")
                else any(row[abs(l) - 1] == (l > 0) for l in c.literals)
                for c in mutated.clauses)
            for row in batch
        ])
        np.testing.assert_array_equal(mutated.evaluate_batch(batch), slow)


# -- task_signature ----------------------------------------------------------------------

class TestTaskSignature:
    def test_default_task_signature_equals_formula_signature(self):
        formula = small_formula()
        assert task_signature(formula) == formula_signature(formula)
        assert task_signature(formula, SamplingTask()) == formula_signature(formula)

    def test_non_default_aspects_change_the_signature(self):
        formula = small_formula()
        base = formula_signature(formula)
        signatures = {
            base,
            task_signature(formula, SamplingTask.build(project=[1])),
            task_signature(formula, SamplingTask.build(project=[2])),
            task_signature(formula, SamplingTask.build(weights={1: 0.9})),
            task_signature(formula, SamplingTask.build(assume=[1])),
        }
        assert len(signatures) == 5  # all distinct

    def test_signature_is_stable_across_equal_tasks(self):
        formula = small_formula()
        a = SamplingTask.build(project=[2, 1], weights={3: 0.75})
        b = SamplingTask.build(project=[1, 2], weights=[(3, 0.75)])
        assert task_signature(formula, a) == task_signature(formula, b)
