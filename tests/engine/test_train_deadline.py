"""Deadline handling in the engine's training loop (repro.engine.train).

Regression tests for the timeout-overshoot fix: the GD loop must observe an
absolute deadline between chunks and between iterations instead of running a
whole round to completion, and must report the truncation to the caller.
"""

import numpy as np
import pytest

from repro.circuit.builder import CircuitBuilder
from repro.core.config import SamplerConfig
from repro.engine.compiler import compile_circuit
from repro.engine.train import learn_batch, learn_chunk
from repro.gpu.device import Device, DeviceKind


@pytest.fixture
def program():
    """A tiny compiled program: f = (a & b) | c."""
    builder = CircuitBuilder("deadline")
    a = builder.input("a")
    b = builder.input("b")
    c = builder.input("c")
    builder.output(builder.or_(builder.and_(a, b), c, name="f"))
    return compile_circuit(builder.circuit, ["f"])


@pytest.fixture
def fake_clock(monkeypatch):
    """Deterministic perf_counter: every call advances the clock by 0.01s."""
    import repro.engine.train as train_module

    state = {"now": 0.0}

    def fake_perf_counter():
        state["now"] += 0.01
        return state["now"]

    monkeypatch.setattr(train_module.time, "perf_counter", fake_perf_counter)
    return state


def _draw(chunk):
    return np.random.default_rng(0).normal(0.0, 1.0, size=(chunk, 3))


class TestLearnChunkDeadline:
    def test_no_deadline_runs_all_iterations(self, program):
        config = SamplerConfig(batch_size=4, iterations=7)
        hard, losses, timed_out = learn_chunk(program, _draw(4), np.ones((4, 1)), config)
        assert not timed_out
        assert len(losses) == 7
        assert hard.shape == (4, 3)

    def test_expired_deadline_cuts_iterations(self, program, fake_clock):
        config = SamplerConfig(batch_size=4, iterations=1000)
        hard, losses, timed_out = learn_chunk(
            program, _draw(4), np.ones((4, 1)), config, deadline=0.25
        )
        assert timed_out
        assert 0 < len(losses) < 1000
        assert hard.shape == (4, 3)  # partially-trained bits are still returned

    def test_already_expired_deadline_trains_nothing(self, program, fake_clock):
        config = SamplerConfig(batch_size=4, iterations=10)
        hard, losses, timed_out = learn_chunk(
            program, _draw(4), np.ones((4, 1)), config, deadline=0.0
        )
        assert timed_out
        assert losses == []
        assert hard.shape == (4, 3)


class TestLearnBatchDeadline:
    def test_truncates_to_completed_chunks(self, program, fake_clock):
        # Per-sample CPU chunking: each chunk consumes several clock ticks,
        # so a mid-batch deadline leaves later samples untrained.
        config = SamplerConfig(
            batch_size=8, iterations=3, device=Device(DeviceKind.CPU)
        )
        hard, losses, timed_out = learn_batch(
            program, 8, np.ones((8, 1)), config, _draw, deadline=0.15
        )
        assert timed_out
        assert 0 < hard.shape[0] < 8
        assert hard.shape[1] == 3

    def test_full_batch_without_deadline(self, program):
        config = SamplerConfig(batch_size=8, iterations=3)
        hard, losses, timed_out = learn_batch(program, 8, np.ones((8, 1)), config, _draw)
        assert not timed_out
        assert hard.shape == (8, 3)
        assert len(losses) == 3
