"""Engine-vs-interpreter equivalence: forward, backward, and sampled solutions.

The compiled engine is specified to be *bitwise identical* to the legacy
per-gate autodiff interpreter on the forward pass and to match its input
gradients to 1e-10 (they are bitwise-equal in practice too; the looser bound
guards against platform-dependent reduction orders).
"""

import numpy as np
import pytest

from repro.core.config import SamplerConfig
from repro.core.circuit_sampler import CircuitSampler
from repro.core.model import ProbabilisticCircuitModel
from repro.core.sampler import GradientSATSampler
from repro.core.transform import transform_cnf
from repro.gpu.device import Device, DeviceKind
from repro.tensor.tensor import Tensor
from tests.engine.conftest import random_circuit

GRAD_TOLERANCE = 1e-10


def _models(circuit, outputs):
    engine = ProbabilisticCircuitModel(circuit, output_nets=outputs, backend="engine")
    interpreter = ProbabilisticCircuitModel(
        circuit, output_nets=outputs, backend="interpreter"
    )
    return engine, interpreter


def _compare_forward_backward(circuit, outputs, rng, batch=8):
    engine, interpreter = _models(circuit, outputs)
    probabilities = rng.random((batch, engine.num_inputs))
    tensor_e = Tensor(probabilities.copy(), requires_grad=True)
    tensor_i = Tensor(probabilities.copy(), requires_grad=True)
    out_e = engine.forward(tensor_e)
    out_i = interpreter.forward(tensor_i)
    assert np.array_equal(out_e.data, out_i.data), "forward passes diverged"
    seed_grad = rng.random(out_e.shape)
    out_e.backward(seed_grad)
    out_i.backward(seed_grad)
    assert tensor_i.grad is not None and tensor_e.grad is not None
    np.testing.assert_allclose(
        tensor_e.grad, tensor_i.grad, rtol=0.0, atol=GRAD_TOLERANCE
    )


class TestForwardBackwardEquivalence:
    @pytest.mark.parametrize("seed", range(8))
    def test_randomized_circuits(self, seed):
        rng = np.random.default_rng(1000 + seed)
        circuit = random_circuit(rng, num_inputs=5, num_gates=35, num_outputs=3)
        _compare_forward_backward(circuit, list(circuit.outputs), rng)

    def test_fig1_cone(self, fig1_formula, rng):
        transform = transform_cnf(fig1_formula)
        engine = ProbabilisticCircuitModel.from_transform(transform, backend="engine")
        interpreter = ProbabilisticCircuitModel.from_transform(
            transform, backend="interpreter"
        )
        probabilities = rng.random((16, engine.num_inputs))
        tensor_e = Tensor(probabilities.copy(), requires_grad=True)
        tensor_i = Tensor(probabilities.copy(), requires_grad=True)
        out_e, out_i = engine.forward(tensor_e), interpreter.forward(tensor_i)
        assert np.array_equal(out_e.data, out_i.data)
        out_e.sum().backward()
        out_i.sum().backward()
        np.testing.assert_allclose(
            tensor_e.grad, tensor_i.grad, rtol=0.0, atol=GRAD_TOLERANCE
        )

    def test_gradients_match_finite_differences(self, rng):
        circuit = random_circuit(rng, num_inputs=4, num_gates=12, num_outputs=2)
        engine, _ = _models(circuit, list(circuit.outputs))
        base = rng.random((1, engine.num_inputs)) * 0.8 + 0.1
        tensor = Tensor(base.copy(), requires_grad=True)
        engine.forward(tensor).sum().backward()
        step = 1e-6
        for column in range(engine.num_inputs):
            bumped = base.copy()
            bumped[0, column] += step
            with_bump = engine.forward(Tensor(bumped)).data.sum()
            without = engine.forward(Tensor(base)).data.sum()
            numeric = (with_bump - without) / step
            assert tensor.grad[0, column] == pytest.approx(numeric, abs=1e-4)


class TestSamplerEquivalence:
    def _solution_bytes(self, formula, config):
        result = GradientSATSampler(formula, config=config).sample(num_solutions=30)
        return result.solution_matrix().tobytes(), result.num_unique

    @pytest.mark.parametrize(
        "device",
        [
            Device(DeviceKind.GPU_SIM),
            Device(DeviceKind.GPU_SIM, chunk_size=17),
            Device(DeviceKind.CPU, chunk_size=8),
        ],
    )
    def test_bitwise_identical_solutions(self, fig1_formula, device):
        base = SamplerConfig(batch_size=48, max_rounds=3, seed=1234, device=device)
        engine_bytes, engine_count = self._solution_bytes(
            fig1_formula, base.with_(backend="engine")
        )
        interp_bytes, interp_count = self._solution_bytes(
            fig1_formula, base.with_(backend="interpreter")
        )
        assert engine_count == interp_count
        assert engine_bytes == interp_bytes

    def test_bitwise_identical_solutions_xor(self, xor_chain_formula):
        base = SamplerConfig(batch_size=32, max_rounds=2, seed=7)
        engine_bytes, _ = self._solution_bytes(
            xor_chain_formula, base.with_(backend="engine")
        )
        interp_bytes, _ = self._solution_bytes(
            xor_chain_formula, base.with_(backend="interpreter")
        )
        assert engine_bytes == interp_bytes

    def test_adam_optimizer_equivalence(self, fig1_formula):
        base = SamplerConfig(
            batch_size=32, max_rounds=2, seed=99, optimizer="adam", learning_rate=0.5
        )
        engine_bytes, _ = self._solution_bytes(
            fig1_formula, base.with_(backend="engine")
        )
        interp_bytes, _ = self._solution_bytes(
            fig1_formula, base.with_(backend="interpreter")
        )
        assert engine_bytes == interp_bytes

    def test_learning_curves_identical(self, fig1_formula):
        curves = []
        for backend in ("engine", "interpreter"):
            config = SamplerConfig(batch_size=32, seed=5, backend=backend)
            sampler = GradientSATSampler(fig1_formula, config=config)
            curves.append(sampler.learning_curve(max_iterations=4))
        assert curves[0] == curves[1]


class TestCircuitSamplerEquivalence:
    def test_direct_circuit_sampling_identical(self, small_circuit):
        matrices = []
        for backend in ("engine", "interpreter"):
            config = SamplerConfig(
                batch_size=32, max_rounds=2, seed=11, backend=backend
            )
            result = CircuitSampler(small_circuit, config=config).sample(
                num_solutions=10
            )
            matrices.append(result.input_matrix())
        assert np.array_equal(matrices[0], matrices[1])
