"""Boolean and bit-packed engine execution modes vs independent references.

The scalar dict-walking evaluator in :mod:`repro.circuit.netlist` is kept
deliberately engine-free, which makes it an independent oracle for the
compiled boolean mode; the packed mode is then cross-checked bit-for-bit
against the boolean mode on the same samples.
"""

import numpy as np
import pytest

from repro.circuit.simulate import simulate, simulate_packed
from repro.engine.compiler import compile_circuit
from repro.engine.executor import execute_bool
from tests.engine.conftest import random_circuit


def _random_matrix(rng, rows, columns):
    return rng.random((rows, columns)) < 0.5


class TestBooleanMode:
    @pytest.mark.parametrize("seed", range(10))
    def test_matches_scalar_evaluation(self, seed):
        rng = np.random.default_rng(2000 + seed)
        circuit = random_circuit(rng, num_inputs=6, num_gates=30, num_outputs=4)
        matrix = _random_matrix(rng, 32, len(circuit.inputs))
        results = simulate(circuit, matrix)
        for row in range(matrix.shape[0]):
            assignment = dict(zip(circuit.inputs, matrix[row].tolist()))
            expected = circuit.evaluate_outputs(assignment)
            for name in circuit.outputs:
                assert bool(results[name][row]) == expected[name], (
                    f"net {name} row {row} diverged"
                )

    def test_internal_nets_match_scalar_evaluation(self, seed=0):
        rng = np.random.default_rng(3000)
        circuit = random_circuit(rng, num_inputs=4, num_gates=20, num_outputs=2)
        matrix = _random_matrix(rng, 16, len(circuit.inputs))
        cone_nets = sorted(circuit.transitive_fanin(circuit.outputs))
        results = simulate(circuit, matrix, nets=cone_nets)
        for row in range(matrix.shape[0]):
            assignment = dict(zip(circuit.inputs, matrix[row].tolist()))
            expected = circuit.evaluate(assignment)
            for name in cone_nets:
                assert bool(results[name][row]) == expected[name]

    def test_executor_rejects_bad_shape(self, small_circuit):
        program = compile_circuit(small_circuit, ["f"])
        with pytest.raises(ValueError):
            execute_bool(program, np.zeros((4, 99), dtype=bool))


class TestPackedMode:
    @pytest.mark.parametrize("seed", range(5))
    def test_matches_boolean_mode(self, seed):
        rng = np.random.default_rng(4000 + seed)
        circuit = random_circuit(rng, num_inputs=5, num_gates=25, num_outputs=3)
        matrix = _random_matrix(rng, 64, len(circuit.inputs))
        packed_inputs = {}
        for column, name in enumerate(circuit.inputs):
            word = 0
            for row in range(64):
                if matrix[row, column]:
                    word |= 1 << row
            packed_inputs[name] = np.array([word], dtype=np.uint64)
        packed = simulate_packed(circuit, packed_inputs)
        plain = simulate(circuit, matrix)
        for name in circuit.outputs:
            for row in range(64):
                packed_bit = bool((int(packed[name][0]) >> row) & 1)
                assert packed_bit == bool(plain[name][row])

    def test_constant_driven_output_keeps_input_shape(self):
        from repro.circuit.builder import CircuitBuilder

        builder = CircuitBuilder()
        builder.input("a")
        one = builder.constant(True)
        builder.output(builder.not_(one, name="out"))  # cone has no inputs
        lanes = np.array([1, 2, 3, 4], dtype=np.uint64)
        results = simulate_packed(builder.circuit, {"a": lanes})
        assert results["out"].shape == lanes.shape
        assert results["out"].tolist() == [0, 0, 0, 0]

    def test_multiword_shapes_are_preserved(self, small_circuit):
        rng = np.random.default_rng(5000)
        packed_inputs = {
            name: rng.integers(0, 2**63, size=(3, 2), dtype=np.uint64)
            for name in small_circuit.inputs
        }
        results = simulate_packed(small_circuit, packed_inputs)
        for name in small_circuit.outputs:
            assert results[name].shape == (3, 2)
