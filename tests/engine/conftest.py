"""Shared helpers for the engine tests: randomized circuit generation."""

from __future__ import annotations

import numpy as np

from repro.circuit.gates import GateType
from repro.circuit.netlist import Circuit

_LOGIC_TYPES = [
    GateType.NOT,
    GateType.BUF,
    GateType.AND,
    GateType.OR,
    GateType.NAND,
    GateType.NOR,
    GateType.XOR,
    GateType.XNOR,
]


def random_circuit(
    rng: np.random.Generator,
    num_inputs: int = 5,
    num_gates: int = 25,
    num_outputs: int = 3,
    with_constants: bool = True,
) -> Circuit:
    """Build a random DAG over all gate types (duplicate fanins allowed).

    Fanins are drawn from *all* earlier nets, so the circuit mixes wide
    reconvergent fanout, buffers, constants and duplicated operands — the
    shapes that stress the compiler's aliasing and gradient accumulation.
    """
    circuit = Circuit("random")
    nets = [circuit.add_input(f"x{i}") for i in range(num_inputs)]
    if with_constants:
        nets.append(circuit.add_constant("const_zero", False))
        nets.append(circuit.add_constant("const_one", True))
    for index in range(num_gates):
        gate_type = _LOGIC_TYPES[rng.integers(0, len(_LOGIC_TYPES))]
        if gate_type.is_unary:
            fanins = [nets[rng.integers(0, len(nets))]]
        else:
            arity = int(rng.integers(2, 5))
            fanins = [nets[rng.integers(0, len(nets))] for _ in range(arity)]
        nets.append(circuit.add_gate(f"g{index}", gate_type, fanins))
    # The last nets depend on the most structure; constrain a few of them.
    for name in nets[-num_outputs:]:
        circuit.set_output(name)
    return circuit
