"""Tests for the circuit-to-program compiler (repro.engine.compiler)."""

import numpy as np
import pytest

from repro.circuit.builder import CircuitBuilder
from repro.circuit.gates import GateType
from repro.engine.compiler import CompileError, compile_circuit, compiled_program_for
from repro.engine.program import OP_ADD, OP_MUL, OP_NOT
from tests.engine.conftest import random_circuit


class TestLowering:
    def test_and_gate_is_mul_chain(self):
        builder = CircuitBuilder()
        a, b, c = builder.input("a"), builder.input("b"), builder.input("c")
        builder.output(builder.and_(a, b, c, name="out"))
        program = compile_circuit(builder.circuit, ["out"])
        assert program.num_ops == 2
        assert all(block.opcode == OP_MUL for block in program.blocks)

    def test_xor_gate_lowering(self):
        builder = CircuitBuilder()
        a, b = builder.input("a"), builder.input("b")
        builder.output(builder.xor_(a, b, name="out"))
        program = compile_circuit(builder.circuit, ["out"])
        # r = a(1-b) + (1-a)b: two NOTs, two MULs, one ADD.
        opcode_counts = {OP_MUL: 0, OP_ADD: 0, OP_NOT: 0}
        for block in program.blocks:
            opcode_counts[block.opcode] += block.size
        assert opcode_counts == {OP_NOT: 2, OP_MUL: 2, OP_ADD: 1}

    def test_buffer_gates_are_aliased_away(self):
        builder = CircuitBuilder()
        a = builder.input("a")
        buffered = builder.buf(a, name="buffered")
        builder.output(builder.not_(buffered, name="out"))
        program = compile_circuit(builder.circuit, ["out"])
        assert program.net_slot["buffered"] == program.net_slot["a"]
        assert program.num_ops == 1

    def test_cone_restriction_excludes_unrelated_gates(self, small_circuit):
        # g = a ^ c: the f-cone gates (AND/OR over b) must not be compiled.
        program = compile_circuit(small_circuit, ["g"])
        assert program.cone_inputs == ["a", "c"]
        assert "f" not in program.net_slot

    def test_constant_slots(self):
        builder = CircuitBuilder()
        a = builder.input("a")
        one = builder.constant(True)
        builder.output(builder.and_(a, one, name="out"))
        program = compile_circuit(builder.circuit, ["out"])
        assert program.const1_slot >= 0
        assert program.const0_slot == -1


class TestProgramInvariants:
    def test_blocks_are_levelized_and_contiguous(self, rng):
        circuit = random_circuit(rng, num_gates=40)
        program = compile_circuit(circuit, list(circuit.outputs))
        previous_level = 0
        next_slot = program.num_slots - program.num_ops
        for block in program.blocks:
            assert block.level >= previous_level
            previous_level = block.level
            assert block.out_start == next_slot
            next_slot = block.out_stop
            # Operands must be computed strictly before the block's level.
            for slots in (block.a_slots, block.b_slots):
                for slot in slots:
                    assert slot < block.out_start
        assert next_slot == program.num_slots

    def test_scatter_plans_are_sound(self, rng):
        circuit = random_circuit(rng, num_gates=60)
        program = compile_circuit(circuit, list(circuit.outputs))
        for block in program.blocks:
            plans = [(block.a_plan, block.a_slots)]
            if block.opcode != OP_NOT:
                plans.append((block.b_plan, block.b_slots))
            for plan, slots in plans:
                if plan.unique:
                    assert len(np.unique(slots)) == len(slots)
                else:
                    # The dedup path must cover every slot exactly once in sum.
                    grads = np.zeros((program.num_slots, 1))
                    plan.scatter(grads, np.ones((len(slots), 1)))
                    expected = np.zeros(program.num_slots)
                    np.add.at(expected, slots, 1.0)
                    assert np.array_equal(grads[:, 0], expected)


class TestValidation:
    def test_unknown_output_rejected(self, small_circuit):
        with pytest.raises(CompileError):
            compile_circuit(small_circuit, ["nope"])

    def test_empty_outputs_rejected(self, small_circuit):
        with pytest.raises(CompileError):
            compile_circuit(small_circuit, [])

    def test_missing_cone_input_rejected(self, small_circuit):
        with pytest.raises(CompileError):
            compile_circuit(small_circuit, ["f"], input_order=["a"])


class TestMemoization:
    def test_repeated_compiles_are_cached(self, small_circuit):
        first = compiled_program_for(small_circuit, ["f"])
        second = compiled_program_for(small_circuit, ["f"])
        assert first is second
        other = compiled_program_for(small_circuit, ["g"])
        assert other is not first

    def test_mutation_invalidates_cache(self, small_circuit):
        first = compiled_program_for(small_circuit, ["f"])
        small_circuit.add_gate("extra", GateType.NOT, ["a"])
        second = compiled_program_for(small_circuit, ["f"])
        assert first is not second

    def test_replace_gate_invalidates_cache(self, small_circuit):
        first = compiled_program_for(small_circuit, ["f"])
        small_circuit.replace_gate("f", GateType.AND, ["a", "b"])
        second = compiled_program_for(small_circuit, ["f"])
        assert first is not second
        assert second.num_ops < first.num_ops or second.num_ops == 1
