"""Tests for the probabilistic gate relaxations (repro.tensor.functional).

Table I of the paper defines both the forward probabilities and the
derivatives of each operator; the tests check the forward values at the
boolean corner points, the probabilistic values in between, and that the
autodiff gradients equal the closed-form derivatives of Table I.
"""

import numpy as np
import pytest

from repro.tensor.functional import (
    l2_loss,
    prob_and,
    prob_buf,
    prob_nand,
    prob_nor,
    prob_not,
    prob_or,
    prob_xnor,
    prob_xor,
    sigmoid,
    square,
)
from repro.tensor.tensor import Tensor


class TestSigmoid:
    def test_values(self):
        result = sigmoid(Tensor([0.0, 100.0, -100.0]))
        assert np.allclose(result.numpy(), [0.5, 1.0, 0.0], atol=1e-6)

    def test_gradient(self):
        x = Tensor([0.0], requires_grad=True)
        sigmoid(x).sum().backward()
        assert np.allclose(x.grad, [0.25])  # sigma'(0) = 0.25


class TestGateCornerPoints:
    @pytest.mark.parametrize(
        "gate, table",
        [
            (prob_and, {(0, 0): 0, (0, 1): 0, (1, 0): 0, (1, 1): 1}),
            (prob_or, {(0, 0): 0, (0, 1): 1, (1, 0): 1, (1, 1): 1}),
            (prob_nand, {(0, 0): 1, (0, 1): 1, (1, 0): 1, (1, 1): 0}),
            (prob_nor, {(0, 0): 1, (0, 1): 0, (1, 0): 0, (1, 1): 0}),
            (prob_xor, {(0, 0): 0, (0, 1): 1, (1, 0): 1, (1, 1): 0}),
            (prob_xnor, {(0, 0): 1, (0, 1): 0, (1, 0): 0, (1, 1): 1}),
        ],
    )
    def test_binary_gate_matches_boolean_truth_table(self, gate, table):
        for (a, b), expected in table.items():
            result = gate([Tensor([float(a)]), Tensor([float(b)])])
            assert np.allclose(result.numpy(), [float(expected)])

    def test_not_and_buf(self):
        assert np.allclose(prob_not(Tensor([0.0, 1.0])).numpy(), [1.0, 0.0])
        assert np.allclose(prob_buf(Tensor([0.25])).numpy(), [0.25])


class TestGateProbabilisticSemantics:
    def test_and_is_product(self):
        result = prob_and([Tensor([0.5]), Tensor([0.4]), Tensor([0.25])])
        assert np.allclose(result.numpy(), [0.05])

    def test_or_is_complement_of_product(self):
        result = prob_or([Tensor([0.5]), Tensor([0.5])])
        assert np.allclose(result.numpy(), [0.75])

    def test_xor_table1_formula(self):
        p1, p2 = 0.3, 0.8
        result = prob_xor([Tensor([p1]), Tensor([p2])])
        assert np.allclose(result.numpy(), [p1 * (1 - p2) + (1 - p1) * p2])

    def test_nary_xor_is_chained(self):
        values = [0.2, 0.7, 0.6]
        result = prob_xor([Tensor([v]) for v in values])
        chained = values[0]
        for value in values[1:]:
            chained = chained * (1 - value) + (1 - chained) * value
        assert np.allclose(result.numpy(), [chained])

    def test_empty_inputs_rejected(self):
        for gate in (prob_and, prob_or, prob_xor):
            with pytest.raises(ValueError):
                gate([])


class TestTable1Derivatives:
    """The autodiff gradients must equal the closed-form derivatives of Table I."""

    def test_and_derivative(self):
        p1 = Tensor([0.3], requires_grad=True)
        p2 = Tensor([0.8], requires_grad=True)
        prob_and([p1, p2]).sum().backward()
        assert np.allclose(p1.grad, [0.8])   # dPy/dP1 = P2
        assert np.allclose(p2.grad, [0.3])   # dPy/dP2 = P1

    def test_or_derivative(self):
        p1 = Tensor([0.3], requires_grad=True)
        p2 = Tensor([0.8], requires_grad=True)
        prob_or([p1, p2]).sum().backward()
        assert np.allclose(p1.grad, [1 - 0.8])  # dPy/dP1 = 1 - P2 (= "P2 bar" in Table I)
        assert np.allclose(p2.grad, [1 - 0.3])

    def test_not_derivative(self):
        p = Tensor([0.4], requires_grad=True)
        prob_not(p).sum().backward()
        assert np.allclose(p.grad, [-1.0])

    def test_xor_derivative(self):
        p1 = Tensor([0.3], requires_grad=True)
        p2 = Tensor([0.8], requires_grad=True)
        prob_xor([p1, p2]).sum().backward()
        assert np.allclose(p1.grad, [1 - 2 * 0.8])  # 1 - 2 P2
        assert np.allclose(p2.grad, [1 - 2 * 0.3])

    def test_xnor_derivative(self):
        p1 = Tensor([0.3], requires_grad=True)
        p2 = Tensor([0.8], requires_grad=True)
        prob_xnor([p1, p2]).sum().backward()
        assert np.allclose(p1.grad, [2 * 0.8 - 1])  # 2 P2 - 1
        assert np.allclose(p2.grad, [2 * 0.3 - 1])


class TestLoss:
    def test_square(self):
        assert np.allclose(square(Tensor([3.0])).numpy(), [9.0])

    def test_l2_loss_value(self):
        outputs = Tensor([[0.5, 1.0]])
        targets = Tensor([[1.0, 1.0]])
        assert np.allclose(l2_loss(outputs, targets).item(), 0.25)

    def test_l2_loss_gradient_matches_eq9_shape(self):
        """Eq. 9: dL/dY = 2 (Y - T)."""
        outputs = Tensor([[0.25, 0.75]], requires_grad=True)
        targets = Tensor([[1.0, 0.0]])
        l2_loss(outputs, targets).backward()
        assert np.allclose(outputs.grad, [[2 * (0.25 - 1.0), 2 * (0.75 - 0.0)]])
