"""Tests for the optimizers (repro.tensor.optim)."""

import numpy as np
import pytest

from repro.tensor.functional import square
from repro.tensor.optim import SGD, Adam, Optimizer
from repro.tensor.tensor import Tensor


class TestOptimizerBase:
    def test_requires_parameters(self):
        with pytest.raises(ValueError):
            SGD([], lr=1.0)

    def test_rejects_non_grad_parameters(self):
        with pytest.raises(ValueError):
            SGD([Tensor([1.0])], lr=1.0)

    def test_zero_grad(self):
        parameter = Tensor([1.0], requires_grad=True)
        optimizer = SGD([parameter], lr=0.1)
        square(parameter).sum().backward()
        optimizer.zero_grad()
        assert parameter.grad is None

    def test_step_is_abstract(self):
        parameter = Tensor([1.0], requires_grad=True)
        with pytest.raises(NotImplementedError):
            Optimizer([parameter]).step()


class TestSGD:
    def test_eq10_update_rule(self):
        """x <- x - lr * dL/dx with L = x^2, x=3, lr=0.1 gives 3 - 0.1*6 = 2.4."""
        parameter = Tensor([3.0], requires_grad=True)
        optimizer = SGD([parameter], lr=0.1)
        square(parameter).sum().backward()
        optimizer.step()
        assert np.allclose(parameter.numpy(), [2.4])

    def test_converges_on_quadratic(self):
        parameter = Tensor([5.0], requires_grad=True)
        optimizer = SGD([parameter], lr=0.2)
        for _ in range(50):
            optimizer.zero_grad()
            square(parameter).sum().backward()
            optimizer.step()
        assert abs(parameter.item()) < 1e-3

    def test_momentum_accumulates_velocity(self):
        """After the second step the momentum update exceeds the plain SGD update."""
        plain = Tensor([5.0], requires_grad=True)
        heavy = Tensor([5.0], requires_grad=True)
        sgd = SGD([plain], lr=0.05)
        momentum = SGD([heavy], lr=0.05, momentum=0.9)
        for _ in range(3):
            for parameter, optimizer in ((plain, sgd), (heavy, momentum)):
                optimizer.zero_grad()
                square(parameter).sum().backward()
                optimizer.step()
        assert (5.0 - heavy.item()) > (5.0 - plain.item())

    def test_invalid_hyperparameters(self):
        parameter = Tensor([1.0], requires_grad=True)
        with pytest.raises(ValueError):
            SGD([parameter], lr=0.0)
        with pytest.raises(ValueError):
            SGD([parameter], lr=1.0, momentum=1.0)

    def test_skips_parameters_without_grad(self):
        parameter = Tensor([1.0], requires_grad=True)
        optimizer = SGD([parameter], lr=0.5)
        optimizer.step()  # no backward yet; must not crash
        assert np.allclose(parameter.numpy(), [1.0])

    def test_velocity_keyed_by_position_not_id(self):
        """Regression: id() keys can be recycled by a freed tensor, silently
        handing its momentum to an unrelated parameter."""
        first = Tensor([1.0], requires_grad=True)
        second = Tensor([2.0], requires_grad=True)
        optimizer = SGD([first, second], lr=0.1, momentum=0.9)
        first.grad = np.array([1.0])
        second.grad = np.array([1.0])
        optimizer.step()
        assert set(optimizer._velocity) == {0, 1}

    def test_velocity_stays_per_position(self):
        """Each slot's momentum must evolve independently of object identity."""
        first = Tensor([0.0], requires_grad=True)
        second = Tensor([0.0], requires_grad=True)
        optimizer = SGD([first, second], lr=1.0, momentum=0.5)
        first.grad = np.array([1.0])
        second.grad = np.array([3.0])
        optimizer.step()
        optimizer.step()
        # v1 = g, v2 = 0.5*g + g = 1.5*g; x = -(v1 + v2) = -2.5*g
        assert np.allclose(first.numpy(), [-2.5])
        assert np.allclose(second.numpy(), [-7.5])


class TestAdam:
    def test_converges_on_quadratic(self):
        parameter = Tensor([4.0], requires_grad=True)
        optimizer = Adam([parameter], lr=0.3)
        for _ in range(200):
            optimizer.zero_grad()
            square(parameter).sum().backward()
            optimizer.step()
        assert abs(parameter.item()) < 1e-2

    def test_invalid_learning_rate(self):
        parameter = Tensor([1.0], requires_grad=True)
        with pytest.raises(ValueError):
            Adam([parameter], lr=-0.1)

    def test_first_step_magnitude_close_to_lr(self):
        parameter = Tensor([10.0], requires_grad=True)
        optimizer = Adam([parameter], lr=0.5)
        square(parameter).sum().backward()
        optimizer.step()
        assert np.isclose(abs(10.0 - parameter.item()), 0.5, atol=0.05)

    def test_moments_keyed_by_position_not_id(self):
        """Regression: same id()-recycling hazard as SGD._velocity."""
        first = Tensor([1.0], requires_grad=True)
        second = Tensor([2.0], requires_grad=True)
        optimizer = Adam([first, second], lr=0.1)
        first.grad = np.array([1.0])
        second.grad = np.array([1.0])
        optimizer.step()
        assert set(optimizer._first_moment) == {0, 1}
        assert set(optimizer._second_moment) == {0, 1}
