"""Property-based gradient checking of the autodiff engine.

Every probabilistic gate's autodiff gradient is compared against a central
finite-difference estimate on random probability inputs — the invariant that
makes Eq. 9/10 of the paper work without hand-coded derivatives.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tensor.functional import (
    l2_loss,
    prob_and,
    prob_nand,
    prob_nor,
    prob_or,
    prob_xnor,
    prob_xor,
    sigmoid,
)
from repro.tensor.tensor import Tensor

_GATES = [prob_and, prob_or, prob_nand, prob_nor, prob_xor, prob_xnor]

probabilities = st.floats(min_value=0.05, max_value=0.95)


def _numeric_gradient(function, values, epsilon=1e-5):
    gradient = np.zeros(len(values))
    for index in range(len(values)):
        plus = list(values)
        minus = list(values)
        plus[index] += epsilon
        minus[index] -= epsilon
        gradient[index] = (function(plus) - function(minus)) / (2 * epsilon)
    return gradient


@given(st.sampled_from(_GATES), st.lists(probabilities, min_size=2, max_size=4))
@settings(max_examples=80, deadline=None)
def test_gate_gradients_match_finite_differences(gate, values):
    tensors = [Tensor([value], requires_grad=True) for value in values]
    gate(tensors).sum().backward()
    analytic = np.array([tensor.grad[0] for tensor in tensors])

    def forward(raw):
        return gate([Tensor([v]) for v in raw]).item()

    numeric = _numeric_gradient(forward, values)
    assert np.allclose(analytic, numeric, atol=1e-4)


@given(st.lists(st.floats(min_value=-3, max_value=3), min_size=1, max_size=5))
@settings(max_examples=60, deadline=None)
def test_sigmoid_gradient_matches_finite_differences(values):
    tensor = Tensor(values, requires_grad=True)
    sigmoid(tensor).sum().backward()

    def forward(raw):
        return float((1.0 / (1.0 + np.exp(-np.asarray(raw)))).sum())

    numeric = _numeric_gradient(forward, values)
    assert np.allclose(tensor.grad, numeric, atol=1e-4)


@given(
    st.lists(probabilities, min_size=2, max_size=4),
    st.lists(st.sampled_from([0.0, 1.0]), min_size=2, max_size=4),
)
@settings(max_examples=60, deadline=None)
def test_l2_loss_gradient_matches_finite_differences(outputs, targets):
    size = min(len(outputs), len(targets))
    outputs, targets = outputs[:size], targets[:size]
    tensor = Tensor([outputs], requires_grad=True)
    l2_loss(tensor, Tensor([targets])).backward()

    def forward(raw):
        return float(((np.asarray(raw) - np.asarray(targets)) ** 2).sum())

    numeric = _numeric_gradient(forward, outputs)
    assert np.allclose(tensor.grad[0], numeric, atol=1e-4)


@given(st.lists(probabilities, min_size=2, max_size=4))
@settings(max_examples=40, deadline=None)
def test_gate_outputs_stay_in_unit_interval(values):
    for gate in _GATES:
        result = gate([Tensor([v]) for v in values]).item()
        assert -1e-9 <= result <= 1.0 + 1e-9
