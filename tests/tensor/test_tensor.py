"""Tests for the autodiff engine (repro.tensor.tensor)."""

import numpy as np
import pytest

from repro.tensor.tensor import (
    Tensor,
    grad_enabled,
    no_grad,
    stack_columns,
    take_column,
)


class TestTensorBasics:
    def test_construction_and_shape(self):
        tensor = Tensor([[1.0, 2.0], [3.0, 4.0]])
        assert tensor.shape == (2, 2)
        assert tensor.ndim == 2
        assert tensor.size == 4

    def test_item_and_numpy(self):
        assert Tensor(3.5).item() == 3.5
        assert np.array_equal(Tensor([1.0, 2.0]).numpy(), [1.0, 2.0])

    def test_detach_cuts_graph(self):
        tensor = Tensor([1.0], requires_grad=True)
        detached = tensor.detach()
        assert not detached.requires_grad

    def test_no_grad_context(self):
        assert grad_enabled()
        with no_grad():
            assert not grad_enabled()
            inside = Tensor([1.0], requires_grad=True)
            assert not inside.requires_grad
        assert grad_enabled()


class TestArithmeticForward:
    def test_add_sub_mul(self):
        a = Tensor([1.0, 2.0])
        b = Tensor([3.0, 4.0])
        assert np.allclose((a + b).numpy(), [4.0, 6.0])
        assert np.allclose((a - b).numpy(), [-2.0, -2.0])
        assert np.allclose((a * b).numpy(), [3.0, 8.0])

    def test_scalar_broadcasting(self):
        a = Tensor([[1.0, 2.0]])
        assert np.allclose((1.0 - a).numpy(), [[0.0, -1.0]])
        assert np.allclose((a * 2.0).numpy(), [[2.0, 4.0]])
        assert np.allclose((2.0 + a).numpy(), [[3.0, 4.0]])

    def test_neg_and_pow(self):
        a = Tensor([2.0, -3.0])
        assert np.allclose((-a).numpy(), [-2.0, 3.0])
        assert np.allclose((a**2).numpy(), [4.0, 9.0])

    def test_sum_and_mean(self):
        a = Tensor([[1.0, 2.0], [3.0, 4.0]])
        assert a.sum().item() == 10.0
        assert a.mean().item() == 2.5
        assert np.allclose(a.sum(axis=0).numpy(), [4.0, 6.0])


class TestBackward:
    def test_add_gradients(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([3.0, 4.0], requires_grad=True)
        (a + b).sum().backward()
        assert np.allclose(a.grad, [1.0, 1.0])
        assert np.allclose(b.grad, [1.0, 1.0])

    def test_mul_gradients(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([3.0, 4.0], requires_grad=True)
        (a * b).sum().backward()
        assert np.allclose(a.grad, [3.0, 4.0])
        assert np.allclose(b.grad, [1.0, 2.0])

    def test_chain_rule(self):
        a = Tensor([2.0], requires_grad=True)
        loss = ((a * a) + a).sum()   # d/da (a^2 + a) = 2a + 1 = 5
        loss.backward()
        assert np.allclose(a.grad, [5.0])

    def test_broadcast_gradient_unbroadcast(self):
        a = Tensor([[1.0, 2.0], [3.0, 4.0]], requires_grad=True)
        loss = (1.0 - a).sum()
        loss.backward()
        assert np.allclose(a.grad, -np.ones((2, 2)))

    def test_reused_tensor_accumulates(self):
        a = Tensor([1.0], requires_grad=True)
        loss = (a * a * a).sum()     # derivative 3a^2 = 3
        loss.backward()
        assert np.allclose(a.grad, [3.0])

    def test_zero_grad(self):
        a = Tensor([1.0], requires_grad=True)
        (a * 2.0).sum().backward()
        a.zero_grad()
        assert a.grad is None

    def test_backward_twice_accumulates(self):
        a = Tensor([1.0], requires_grad=True)
        (a * 2.0).sum().backward()
        first = a.grad.copy()
        (a * 2.0).sum().backward()
        assert np.allclose(a.grad, 2 * first)

    def test_pow_gradient(self):
        a = Tensor([3.0], requires_grad=True)
        (a**2).sum().backward()
        assert np.allclose(a.grad, [6.0])

    def test_sum_axis_gradient(self):
        a = Tensor(np.ones((2, 3)), requires_grad=True)
        a.sum(axis=1).sum().backward()
        assert np.allclose(a.grad, np.ones((2, 3)))


class TestColumnOps:
    def test_take_column_forward(self):
        matrix = Tensor([[1.0, 2.0], [3.0, 4.0]])
        assert np.allclose(take_column(matrix, 1).numpy(), [2.0, 4.0])

    def test_take_column_gradient_scatters(self):
        matrix = Tensor(np.ones((2, 3)), requires_grad=True)
        take_column(matrix, 2).sum().backward()
        expected = np.zeros((2, 3))
        expected[:, 2] = 1.0
        assert np.allclose(matrix.grad, expected)

    def test_take_column_rejects_1d(self):
        with pytest.raises(ValueError):
            take_column(Tensor([1.0, 2.0]), 0)

    def test_stack_columns_forward_and_backward(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([3.0, 4.0], requires_grad=True)
        stacked = stack_columns([a, b])
        assert stacked.shape == (2, 2)
        stacked.sum().backward()
        assert np.allclose(a.grad, [1.0, 1.0])
        assert np.allclose(b.grad, [1.0, 1.0])

    def test_stack_columns_requires_input(self):
        with pytest.raises(ValueError):
            stack_columns([])

    def test_take_then_stack_roundtrip(self):
        matrix = Tensor(np.arange(6, dtype=float).reshape(2, 3), requires_grad=True)
        rebuilt = stack_columns([take_column(matrix, i) for i in range(3)])
        assert np.allclose(rebuilt.numpy(), matrix.numpy())
        rebuilt.sum().backward()
        assert np.allclose(matrix.grad, np.ones((2, 3)))
