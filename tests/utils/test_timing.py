"""Tests for repro.utils.timing."""

import time

from repro.utils.timing import PhaseTimer, Stopwatch, Timer


class TestStopwatch:
    def test_initially_stopped_and_zero(self):
        watch = Stopwatch()
        assert not watch.running
        assert watch.elapsed == 0.0

    def test_start_stop_accumulates(self):
        watch = Stopwatch()
        watch.start()
        time.sleep(0.01)
        first = watch.stop()
        watch.start()
        time.sleep(0.01)
        second = watch.stop()
        assert second > first > 0.0

    def test_reset(self):
        watch = Stopwatch()
        watch.start()
        watch.stop()
        watch.reset()
        assert watch.elapsed == 0.0
        assert not watch.running

    def test_elapsed_while_running(self):
        watch = Stopwatch().start()
        time.sleep(0.005)
        assert watch.elapsed > 0.0
        assert watch.running

    def test_double_start_is_idempotent(self):
        watch = Stopwatch()
        watch.start()
        watch.start()
        assert watch.running


class TestTimer:
    def test_measures_block(self):
        with Timer("block") as timer:
            time.sleep(0.01)
        assert timer.seconds >= 0.009
        assert timer.milliseconds == timer.seconds * 1e3
        assert timer.label == "block"

    def test_zero_before_use(self):
        timer = Timer()
        assert timer.seconds == 0.0


class TestPhaseTimer:
    def test_add_and_total(self):
        phases = PhaseTimer()
        phases.add("transform", 1.0)
        phases.add("sample", 2.0)
        phases.add("transform", 0.5)
        assert phases.total == 3.5
        assert phases.as_dict() == {"transform": 1.5, "sample": 2.0}

    def test_measure_context(self):
        phases = PhaseTimer()
        with phases.measure("work"):
            time.sleep(0.005)
        assert phases.phases["work"] > 0.0

    def test_order_preserved(self):
        phases = PhaseTimer()
        phases.add("b", 1.0)
        phases.add("a", 1.0)
        assert list(phases.as_dict()) == ["b", "a"]
