"""Tests for the command-line interface (repro.cli)."""

import pytest

from repro.cli import main
from repro.cnf.dimacs import parse_dimacs_file, write_dimacs_file
from tests.conftest import FIG1_DIMACS


@pytest.fixture
def fig1_path(tmp_path):
    path = tmp_path / "fig1.cnf"
    path.write_text(FIG1_DIMACS)
    return path


class TestSampleCommand:
    def test_basic_run(self, fig1_path, capsys):
        exit_code = main([
            "sample", str(fig1_path), "-n", "16", "-b", "64", "--seed", "0",
        ])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "unique solutions" in captured
        assert "throughput" in captured

    def test_solution_file_written(self, fig1_path, tmp_path, capsys):
        output = tmp_path / "solutions.txt"
        exit_code = main([
            "sample", str(fig1_path), "-n", "8", "-b", "64", "-o", str(output),
        ])
        assert exit_code == 0
        lines = [line for line in output.read_text().splitlines() if line.strip()]
        assert len(lines) >= 8

    def test_unsat_instance_exit_code(self, tmp_path, capsys):
        path = tmp_path / "unsat.cnf"
        path.write_text("p cnf 1 2\n1 0\n-1 0\n")
        exit_code = main(["sample", str(path), "-n", "5", "-b", "16"])
        assert exit_code == 1

    def test_cpu_device_option(self, fig1_path, capsys):
        exit_code = main([
            "sample", str(fig1_path), "-n", "4", "-b", "16", "--device", "cpu",
        ])
        assert exit_code == 0


class TestTransformCommand:
    def test_structure_report(self, fig1_path, capsys):
        exit_code = main(["transform", str(fig1_path)])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "primary inputs        : 6" in captured
        assert "ops reduction" in captured

    def test_verilog_and_bench_export(self, fig1_path, tmp_path, capsys):
        verilog_path = tmp_path / "out.v"
        bench_path = tmp_path / "out.bench"
        exit_code = main([
            "transform", str(fig1_path),
            "--verilog", str(verilog_path), "--bench", str(bench_path),
        ])
        assert exit_code == 0
        assert verilog_path.read_text().startswith("module")
        assert "INPUT(" in bench_path.read_text()

    def test_no_simplify_flag(self, fig1_path, capsys):
        assert main(["transform", str(fig1_path), "--no-simplify"]) == 0


class TestInstancesCommand:
    def test_listing(self, capsys):
        exit_code = main(["instances", "--family", "prod"])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "Prod-8" in captured

    def test_write_instance(self, tmp_path, capsys):
        exit_code = main([
            "instances", "--write", "75-10-1-q", "--output-dir", str(tmp_path),
        ])
        assert exit_code == 0
        written = parse_dimacs_file(tmp_path / "75-10-1-q.cnf")
        assert written.num_clauses > 0

    def test_unknown_instance(self, tmp_path):
        with pytest.raises(KeyError):
            main(["instances", "--write", "does-not-exist", "--output-dir", str(tmp_path)])
