"""Tests for repro.utils.validation."""

import pytest

from repro.utils.validation import (
    check_in_range,
    check_non_negative,
    check_positive,
    check_probability,
)


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive("x", 3) == 3
        assert check_positive("x", 0.5) == 0.5

    def test_rejects_zero_and_negative(self):
        with pytest.raises(ValueError, match="x must be positive"):
            check_positive("x", 0)
        with pytest.raises(ValueError):
            check_positive("x", -1)


class TestCheckNonNegative:
    def test_accepts_zero(self):
        assert check_non_negative("n", 0) == 0

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="n must be non-negative"):
            check_non_negative("n", -0.1)


class TestCheckProbability:
    def test_accepts_bounds(self):
        assert check_probability("p", 0.0) == 0.0
        assert check_probability("p", 1.0) == 1.0

    def test_rejects_outside(self):
        with pytest.raises(ValueError):
            check_probability("p", 1.01)
        with pytest.raises(ValueError):
            check_probability("p", -0.01)


class TestCheckInRange:
    def test_accepts_inside(self):
        assert check_in_range("v", 5, 1, 10) == 5

    def test_rejects_outside(self):
        with pytest.raises(ValueError, match="v must be in"):
            check_in_range("v", 11, 1, 10)
