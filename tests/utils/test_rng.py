"""Tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.utils.rng import (
    choice_without_replacement,
    derive_seed,
    new_rng,
    optional_rng,
    random_bool_matrix,
    spawn_rngs,
)


class TestNewRng:
    def test_integer_seed_is_deterministic(self):
        a = new_rng(7).integers(0, 1000, size=5)
        b = new_rng(7).integers(0, 1000, size=5)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = new_rng(1).integers(0, 10**9)
        b = new_rng(2).integers(0, 10**9)
        assert a != b

    def test_passing_generator_returns_it(self):
        generator = np.random.default_rng(0)
        assert new_rng(generator) is generator

    def test_seed_sequence_accepted(self):
        sequence = np.random.SeedSequence(5)
        generator = new_rng(sequence)
        assert isinstance(generator, np.random.Generator)


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(0, 4)) == 4

    def test_streams_are_independent(self):
        first, second = spawn_rngs(0, 2)
        assert first.integers(0, 10**9) != second.integers(0, 10**9)

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_deterministic_given_seed(self):
        a = [g.integers(0, 1000) for g in spawn_rngs(3, 3)]
        b = [g.integers(0, 1000) for g in spawn_rngs(3, 3)]
        assert a == b


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1, "inst") == derive_seed(1, "inst")

    def test_token_sensitivity(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")

    def test_base_sensitivity(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_result_in_range(self):
        value = derive_seed(123, "some-instance-name")
        assert 0 <= value < 2**63 - 1

    def test_none_seed_allowed(self):
        assert isinstance(derive_seed(None, "x"), int)


class TestHelpers:
    def test_random_bool_matrix_shape_and_dtype(self):
        matrix = random_bool_matrix(new_rng(0), 5, 7)
        assert matrix.shape == (5, 7)
        assert matrix.dtype == bool

    def test_random_bool_matrix_probability_extremes(self):
        rng = new_rng(0)
        assert not random_bool_matrix(rng, 4, 4, p_true=0.0).any()
        assert random_bool_matrix(rng, 4, 4, p_true=1.0).all()

    def test_random_bool_matrix_invalid_probability(self):
        with pytest.raises(ValueError):
            random_bool_matrix(new_rng(0), 2, 2, p_true=1.5)

    def test_choice_without_replacement_distinct(self):
        chosen = choice_without_replacement(new_rng(0), 10, 10)
        assert sorted(chosen.tolist()) == list(range(10))

    def test_choice_without_replacement_too_many(self):
        with pytest.raises(ValueError):
            choice_without_replacement(new_rng(0), 3, 4)

    def test_optional_rng_prefers_given(self):
        generator = new_rng(0)
        assert optional_rng(generator, seed=5) is generator
        assert isinstance(optional_rng(None, seed=5), np.random.Generator)
