"""Tests for solution/result I/O (repro.io)."""

import json

import numpy as np
import pytest

from repro.core.solutions import SolutionSet
from repro.eval.runner import RunRecord
from repro.io.results_io import load_run_records_json, run_records_to_csv, run_records_to_json
from repro.io.solutions_io import (
    parse_solutions_text,
    read_solutions_file,
    solutions_to_text,
    write_solutions_file,
)


def _solution_set():
    solutions = SolutionSet(4)
    solutions.add(np.array([True, False, True, False]))
    solutions.add(np.array([False, True, False, True]))
    return solutions


class TestSolutionsIO:
    def test_text_format(self):
        text = solutions_to_text(_solution_set())
        assert text.splitlines() == ["1 -2 3 -4 0", "-1 2 -3 4 0"]

    def test_without_terminator(self):
        text = solutions_to_text(_solution_set(), terminate_with_zero=False)
        assert text.splitlines()[0] == "1 -2 3 -4"

    def test_roundtrip(self):
        original = _solution_set()
        parsed = parse_solutions_text(solutions_to_text(original), num_variables=4)
        assert np.array_equal(parsed.to_matrix(), original.to_matrix())

    def test_comments_skipped(self):
        parsed = parse_solutions_text("c comment\n# another\n1 -2 0\n", num_variables=2)
        assert len(parsed) == 1

    def test_out_of_range_literal_rejected(self):
        with pytest.raises(ValueError):
            parse_solutions_text("1 5 0\n", num_variables=3)

    def test_empty_set(self):
        assert solutions_to_text(SolutionSet(3)) == ""

    def test_file_roundtrip(self, tmp_path):
        original = _solution_set()
        path = write_solutions_file(original, tmp_path / "solutions.txt")
        loaded = read_solutions_file(path, num_variables=4)
        assert np.array_equal(loaded.to_matrix(), original.to_matrix())

    def test_limit(self):
        text = solutions_to_text(_solution_set(), limit=1)
        assert len(text.splitlines()) == 1


class TestResultsIO:
    def _records(self):
        return [
            RunRecord("this-work", "inst-a", num_unique=100, elapsed_seconds=0.5,
                      num_requested=100, transform_seconds=0.1),
            RunRecord("cmsgen-style", "inst-a", num_unique=40, elapsed_seconds=2.0,
                      num_requested=100, timed_out=True),
        ]

    def test_json_export_and_load(self):
        text = run_records_to_json(self._records())
        rows = load_run_records_json(text)
        assert len(rows) == 2
        assert rows[0]["throughput"] == pytest.approx(200.0)
        assert rows[1]["timed_out"] is True

    def test_json_rejects_non_list(self):
        with pytest.raises(ValueError):
            load_run_records_json(json.dumps({"not": "a list"}))

    def test_csv_export(self):
        text = run_records_to_csv(self._records())
        lines = text.strip().splitlines()
        assert lines[0].startswith("sampler_name,instance_name,num_unique")
        assert len(lines) == 3
        assert "this-work" in lines[1]
