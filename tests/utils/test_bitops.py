"""Tests for repro.utils.bitops."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.utils.bitops import (
    bools_to_int,
    hamming_distance,
    int_to_bools,
    pack_bool_matrix,
    popcount64,
    rows_as_bytes,
    unpack_bool_matrix,
)


class TestPacking:
    def test_roundtrip_small(self):
        matrix = np.array([[True, False, True], [False, False, True]])
        packed = pack_bool_matrix(matrix)
        assert packed.shape == (2, 1)
        assert np.array_equal(unpack_bool_matrix(packed, 3), matrix)

    def test_roundtrip_multiword(self):
        rng = np.random.default_rng(0)
        matrix = rng.random((5, 130)) < 0.5
        packed = pack_bool_matrix(matrix)
        assert packed.shape == (5, 3)
        assert np.array_equal(unpack_bool_matrix(packed, 130), matrix)

    def test_pack_rejects_1d(self):
        with pytest.raises(ValueError):
            pack_bool_matrix(np.array([True, False]))

    def test_unpack_rejects_too_many_columns(self):
        packed = pack_bool_matrix(np.zeros((1, 4), dtype=bool))
        with pytest.raises(ValueError):
            unpack_bool_matrix(packed, 65)

    @given(arrays(bool, st.tuples(st.integers(1, 8), st.integers(1, 100))))
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_property(self, matrix):
        packed = pack_bool_matrix(matrix)
        assert np.array_equal(unpack_bool_matrix(packed, matrix.shape[1]), matrix)


class TestPopcountAndHamming:
    def test_popcount_known_values(self):
        words = np.array([[0, 1, 3, 0xFFFFFFFFFFFFFFFF]], dtype=np.uint64)
        assert popcount64(words).tolist() == [[0, 1, 2, 64]]

    def test_popcount_matches_unpack(self):
        rng = np.random.default_rng(1)
        matrix = rng.random((3, 70)) < 0.5
        packed = pack_bool_matrix(matrix)
        assert popcount64(packed).sum() == matrix.sum()

    def test_hamming_distance_basics(self):
        a = np.array([True, False, True])
        b = np.array([True, True, False])
        assert hamming_distance(a, b) == 2
        assert hamming_distance(a, a) == 0

    def test_hamming_distance_shape_mismatch(self):
        with pytest.raises(ValueError):
            hamming_distance(np.zeros(3, dtype=bool), np.zeros(4, dtype=bool))


class TestIntConversions:
    def test_bools_to_int_lsb_first(self):
        assert bools_to_int([True, False, True]) == 0b101

    def test_int_to_bools_roundtrip(self):
        for value in (0, 1, 5, 255, 1023):
            width = 12
            assert bools_to_int(int_to_bools(value, width)) == value

    def test_int_to_bools_negative_rejected(self):
        with pytest.raises(ValueError):
            int_to_bools(-1, 4)

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_property(self, value):
        assert bools_to_int(int_to_bools(value, 32)) == value


class TestRowsAsBytes:
    def test_distinct_rows_have_distinct_keys(self):
        matrix = np.array([[True, False], [False, True], [True, False]])
        keys = rows_as_bytes(matrix)
        assert keys[0] == keys[2]
        assert keys[0] != keys[1]

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            rows_as_bytes(np.array([1, 0], dtype=np.uint8))
