"""Tests for the cache plumbing in repro.utils.weakcache."""

import gc

import pytest

from repro.utils.weakcache import BoundedLRUCache, OwnerRegistry


class TestOwnerRegistry:
    def test_dead_owner_drops_out(self):
        registry = OwnerRegistry()

        class Owner:
            pass

        owner = Owner()
        registry.register(owner)
        assert len(registry) == 1
        del owner
        gc.collect()
        assert len(registry) == 0


class TestBoundedLRUCache:
    def test_get_put_and_recency(self):
        cache = BoundedLRUCache(max_entries=2, max_bytes=None)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh "a": "b" becomes LRU
        cache.put("c", 3)
        assert "b" not in cache
        assert cache.get("a") == 1
        assert cache.get("c") == 3

    def test_miss_returns_none_and_counts(self):
        cache = BoundedLRUCache(max_entries=2)
        assert cache.get("nope") is None
        cache.put("a", 1)
        cache.get("a")
        stats = cache.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1

    def test_byte_bound_evicts_lru(self):
        cache = BoundedLRUCache(max_entries=10, max_bytes=100)
        cache.put("a", "A", nbytes=60)
        cache.put("b", "B", nbytes=60)  # 120 > 100: "a" evicted
        assert "a" not in cache
        assert "b" in cache
        assert cache.total_bytes == 60

    def test_oversized_entry_admitted_alone(self):
        cache = BoundedLRUCache(max_entries=10, max_bytes=100)
        cache.put("a", "A", nbytes=10)
        cache.put("big", "B", nbytes=500)
        assert "a" not in cache
        assert "big" in cache
        assert len(cache) == 1

    def test_replace_updates_bytes(self):
        cache = BoundedLRUCache(max_entries=4, max_bytes=None)
        cache.put("a", 1, nbytes=10)
        cache.put("a", 2, nbytes=30)
        assert cache.total_bytes == 30
        assert cache.get("a") == 2
        assert len(cache) == 1

    def test_on_evict_called_for_every_eviction(self):
        evicted = []
        cache = BoundedLRUCache(
            max_entries=1, max_bytes=None, on_evict=lambda k, v: evicted.append(k)
        )
        cache.put("a", 1)
        cache.put("b", 2)  # evicts a
        cache.pop("b")
        cache.put("c", 3)
        cache.clear()
        assert evicted == ["a", "b", "c"]

    def test_entry_bound_eviction_order(self):
        cache = BoundedLRUCache(max_entries=3, max_bytes=None)
        for key in "abc":
            cache.put(key, key)
        cache.get("a")
        cache.put("d", "d")  # LRU is "b"
        assert list(cache.keys()) == ["c", "a", "d"]

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ValueError):
            BoundedLRUCache(max_entries=0)
        with pytest.raises(ValueError):
            BoundedLRUCache(max_entries=1, max_bytes=0)
        cache = BoundedLRUCache(max_entries=1)
        with pytest.raises(ValueError):
            cache.put("a", 1, nbytes=-1)
