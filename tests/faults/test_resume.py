"""Crash-safe journal resume and graceful drain, unit level and CLI level."""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.core.config import SamplerConfig
from repro.serve.journal import (
    JOURNAL_NAME,
    JobJournal,
    job_fingerprint,
    plan_resume,
    read_journal,
)
from repro.serve.jobs import SamplingJob
from tests.conftest import FIG1_DIMACS

#: Generous bound per CLI invocation (spawned interpreter imports numpy).
TIMEOUT = 180


def make_job(seed=0, num_solutions=8, job_id=None):
    return SamplingJob.build(
        {"dimacs": FIG1_DIMACS},
        num_solutions=num_solutions,
        config=SamplerConfig(batch_size=32, seed=seed),
        job_id=job_id,
    )


def journal_done(journal, job, job_id):
    journal.record(
        "done",
        job=job_id,
        fingerprint=job_fingerprint(job),
        status="done",
        result={"job_id": job_id, "status": "done"},
    )


class TestPlanResume:
    def test_completed_jobs_skipped_others_pending(self, tmp_path):
        jobs = [make_job(seed=0), make_job(seed=1)]
        (tmp_path / "done-0.solutions").write_text("0 1\n")
        with JobJournal(tmp_path / JOURNAL_NAME) as journal:
            journal_done(journal, jobs[0], "done-0")
        pending, rows = plan_resume(jobs, tmp_path / JOURNAL_NAME, tmp_path)
        assert [index for index, _job in pending] == [1]
        assert rows[0] == {"job_id": "done-0", "status": "done", "resumed": True}
        assert rows[1] is None

    def test_missing_solutions_file_forces_rerun(self, tmp_path):
        jobs = [make_job(seed=0)]
        with JobJournal(tmp_path / JOURNAL_NAME) as journal:
            journal_done(journal, jobs[0], "done-0")  # no .solutions on disk
        pending, rows = plan_resume(jobs, tmp_path / JOURNAL_NAME, tmp_path)
        assert [index for index, _job in pending] == [0]
        assert rows == [None]

    def test_non_done_records_do_not_satisfy(self, tmp_path):
        jobs = [make_job(seed=0)]
        (tmp_path / "j.solutions").write_text("0 1\n")
        with JobJournal(tmp_path / JOURNAL_NAME) as journal:
            journal.record(
                "done",
                job="j",
                fingerprint=job_fingerprint(jobs[0]),
                status="interrupted",
                result={"job_id": "j", "status": "interrupted"},
            )
        pending, rows = plan_resume(jobs, tmp_path / JOURNAL_NAME, tmp_path)
        assert len(pending) == 1 and rows == [None]

    def test_duplicate_jobs_consume_completions_fifo(self, tmp_path):
        # two manifest entries with identical fingerprints, one completion:
        # exactly one resumes, the other still runs
        jobs = [make_job(seed=0), make_job(seed=0)]
        (tmp_path / "first.solutions").write_text("0 1\n")
        with JobJournal(tmp_path / JOURNAL_NAME) as journal:
            journal_done(journal, jobs[0], "first")
        pending, rows = plan_resume(jobs, tmp_path / JOURNAL_NAME, tmp_path)
        assert [index for index, _job in pending] == [1]
        assert rows[0]["resumed"] is True and rows[1] is None

    def test_no_journal_means_everything_pending(self, tmp_path):
        jobs = [make_job(seed=0)]
        pending, rows = plan_resume(jobs, tmp_path / JOURNAL_NAME, tmp_path)
        assert len(pending) == 1 and rows == [None]


def run_cli(*arguments, **popen_kwargs):
    source_root = Path(__file__).resolve().parents[2] / "src"
    environment = dict(os.environ)
    environment["PYTHONPATH"] = (
        f"{source_root}{os.pathsep}{environment['PYTHONPATH']}"
        if environment.get("PYTHONPATH")
        else str(source_root)
    )
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", *arguments],
        capture_output=True,
        text=True,
        timeout=TIMEOUT,
        env=environment,
        **popen_kwargs,
    )


@pytest.fixture
def fig1_path(tmp_path):
    path = tmp_path / "fig1.cnf"
    path.write_text(FIG1_DIMACS)
    return path


def write_manifest(tmp_path, fig1_path, extra_jobs=()):
    manifest = tmp_path / "jobs.json"
    manifest.write_text(
        json.dumps(
            {
                "jobs": [
                    {
                        "id": "alpha",
                        "path": str(fig1_path),
                        "num_solutions": 8,
                        "config": {"batch_size": 32, "seed": 0},
                    },
                    {
                        "id": "beta",
                        "path": str(fig1_path),
                        "num_solutions": 8,
                        "config": {"batch_size": 32, "seed": 1},
                    },
                    *extra_jobs,
                ]
            }
        )
    )
    return manifest


class TestResumeCli:
    def test_resume_of_finished_run_submits_nothing(self, fig1_path, tmp_path):
        manifest = write_manifest(tmp_path, fig1_path)
        out_dir = tmp_path / "out"
        first = run_cli("serve", str(manifest), "-o", str(out_dir))
        assert first.returncode == 0, first.stderr
        resumed = run_cli("serve", str(manifest), "--resume", str(out_dir))
        assert resumed.returncode == 0, resumed.stderr
        assert "2/2 jobs already complete" in resumed.stdout
        assert "running 0" in resumed.stdout
        results = json.loads((out_dir / "results.json").read_text())
        assert [row["job_id"] for row in results] == ["alpha", "beta"]
        assert all(row.get("resumed") is True for row in results)

    def test_resume_runs_exactly_the_unfinished_jobs(self, fig1_path, tmp_path):
        manifest = write_manifest(tmp_path, fig1_path)
        out_dir = tmp_path / "out"
        first = run_cli("serve", str(manifest), "-o", str(out_dir))
        assert first.returncode == 0, first.stderr
        # simulate a crash that lost one job's output
        (out_dir / "beta.solutions").unlink()
        resumed = run_cli("serve", str(manifest), "--resume", str(out_dir))
        assert resumed.returncode == 0, resumed.stderr
        assert "1/2 jobs already complete" in resumed.stdout
        assert "running 1" in resumed.stdout
        results = json.loads((out_dir / "results.json").read_text())
        by_id = {row["job_id"]: row for row in results}
        assert by_id["alpha"].get("resumed") is True
        assert by_id["beta"]["status"] == "done"
        assert "resumed" not in by_id["beta"]
        assert (out_dir / "beta.solutions").read_text().strip()

    def test_resume_rejects_conflicting_output_dir(self, fig1_path, tmp_path):
        manifest = write_manifest(tmp_path, fig1_path)
        completed = run_cli(
            "serve", str(manifest),
            "--resume", str(tmp_path / "a"), "-o", str(tmp_path / "b"),
        )
        assert completed.returncode == 2
        assert "--resume" in completed.stderr


class TestDrainOnSignal:
    def test_sigterm_drains_checkpoints_and_exits_130(self, fig1_path, tmp_path):
        # one quick job plus one unreachable-target job that would run for
        # minutes: SIGTERM must checkpoint what finished and exit 130 with a
        # resume hint, leaving a "drain" record in the journal
        manifest = write_manifest(
            tmp_path,
            fig1_path,
            extra_jobs=[
                {
                    "id": "endless",
                    "path": str(fig1_path),
                    "num_solutions": 10**9,
                    "config": {
                        "batch_size": 32,
                        "seed": 2,
                        "max_rounds": 10**6,
                        "stall_rounds": None,
                    },
                }
            ],
        )
        out_dir = tmp_path / "out"
        source_root = Path(__file__).resolve().parents[2] / "src"
        environment = dict(os.environ)
        environment["PYTHONPATH"] = str(source_root)
        process = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve", str(manifest),
             "-o", str(out_dir)],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env=environment,
        )
        try:
            # wait until the first job's output proves the run is underway
            deadline = time.monotonic() + TIMEOUT
            while time.monotonic() < deadline:
                if (out_dir / "beta.solutions").exists():
                    break
                if process.poll() is not None:
                    break
                time.sleep(0.05)
            assert process.poll() is None, process.communicate()[1]
            process.send_signal(signal.SIGTERM)
            stdout, stderr = process.communicate(timeout=TIMEOUT)
        finally:
            if process.poll() is None:
                process.kill()
                process.communicate()
        assert process.returncode == 130, stderr
        assert "drain requested" in stderr
        assert "--resume" in stderr  # the resume hint
        records = read_journal(out_dir / JOURNAL_NAME)
        assert any(record["type"] == "drain" for record in records)
        results = json.loads((out_dir / "results.json").read_text())
        by_id = {row["job_id"]: row for row in results}
        assert by_id["alpha"]["status"] == "done"
        assert by_id["beta"]["status"] == "done"
        assert by_id["endless"]["status"] == "interrupted"
        # completed jobs' outputs were flushed incrementally before the drain
        assert (out_dir / "alpha.solutions").read_text().strip()
