"""RetryPolicy resolution, WorkerSupervisor bookkeeping, journal units."""

import json

import pytest

from repro.serve.journal import JobJournal, job_fingerprint, read_journal
from repro.serve.jobs import SamplingJob
from repro.serve.retry import (
    RetryPolicy,
    RetrySpecError,
    normalize_retry_overrides,
    resolve_retry_policy,
)
from repro.serve.supervisor import RestartPolicy, WorkerSupervisor


class TestRetryPolicy:
    def test_defaults_and_validation(self):
        policy = RetryPolicy()
        assert policy.max_attempts == 3
        with pytest.raises(RetrySpecError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(RetrySpecError):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(RetrySpecError):
            RetryPolicy(deadline_budget_seconds=0)

    def test_delay_grows_and_caps(self):
        policy = RetryPolicy(
            backoff_seconds=0.1, backoff_factor=2.0, backoff_max_seconds=0.35
        )
        assert policy.delay_for(1) == pytest.approx(0.1)
        assert policy.delay_for(2) == pytest.approx(0.2)
        assert policy.delay_for(3) == pytest.approx(0.35)  # capped

    def test_normalize_accepts_every_form(self):
        assert normalize_retry_overrides(None) is None
        assert normalize_retry_overrides(5) == {"max_attempts": 5}
        assert normalize_retry_overrides("attempts=4,backoff=0.5") == {
            "max_attempts": 4,
            "backoff_seconds": 0.5,
        }
        assert normalize_retry_overrides({"deadline": 60}) == {
            "deadline_budget_seconds": 60.0
        }
        assert normalize_retry_overrides({"deadline": "none"}) == {
            "deadline_budget_seconds": None
        }
        full = normalize_retry_overrides(RetryPolicy(max_attempts=7))
        assert full["max_attempts"] == 7

    @pytest.mark.parametrize("bad", [True, "attempts", "wat=3", {"wat": 1}, 3.5])
    def test_normalize_rejects_garbage(self, bad):
        with pytest.raises(RetrySpecError):
            normalize_retry_overrides(bad)

    def test_resolution_precedence(self, monkeypatch):
        monkeypatch.setenv("REPRO_RETRY", "attempts=9,backoff=9")
        # env is the weakest layer; later layers override per-field
        policy = resolve_retry_policy("attempts=4", {"backoff": 0.25})
        assert policy.max_attempts == 4
        assert policy.backoff_seconds == 0.25

    def test_env_only(self, monkeypatch):
        monkeypatch.setenv("REPRO_RETRY", "attempts=2")
        assert resolve_retry_policy().max_attempts == 2
        monkeypatch.delenv("REPRO_RETRY")
        assert resolve_retry_policy().max_attempts == 3


class TestWorkerSupervisor:
    def test_backoff_grows_then_resets_on_success(self):
        policy = RestartPolicy(backoff_seconds=1.0, backoff_factor=2.0,
                               backoff_max_seconds=100.0, max_restarts=10)
        supervisor = WorkerSupervisor(1, policy)
        assert supervisor.record_death(0, now=0.0) == pytest.approx(1.0)
        supervisor.record_respawn(0)
        assert supervisor.record_death(0, now=10.0) == pytest.approx(12.0)
        supervisor.record_respawn(0)
        supervisor.record_success(0)  # a completed task ends the streak
        assert supervisor.record_death(0, now=20.0) == pytest.approx(21.0)

    def test_restart_budget_abandons_slot(self):
        policy = RestartPolicy(max_restarts=2, window_seconds=100.0)
        supervisor = WorkerSupervisor(1, policy)
        assert supervisor.record_death(0, now=0.0) is not None
        assert supervisor.record_death(0, now=1.0) is not None
        assert supervisor.record_death(0, now=2.0) is None  # third in window
        assert supervisor.is_failed(0)
        assert not supervisor.any_pending()

    def test_window_slides(self):
        policy = RestartPolicy(max_restarts=2, window_seconds=10.0)
        supervisor = WorkerSupervisor(1, policy)
        supervisor.record_death(0, now=0.0)
        supervisor.record_death(0, now=1.0)
        # old deaths age out of the window: no abandonment
        assert supervisor.record_death(0, now=50.0) is not None
        assert not supervisor.is_failed(0)

    def test_due_and_deadline(self):
        policy = RestartPolicy(backoff_seconds=5.0, backoff_factor=1.0)
        supervisor = WorkerSupervisor(2, policy)
        supervisor.record_death(0, now=0.0)
        supervisor.record_death(1, now=2.0)
        assert supervisor.due(4.0) == []
        assert supervisor.due(6.0) == [0]
        assert supervisor.due(10.0) == [0, 1]
        assert supervisor.next_deadline() == pytest.approx(5.0)
        assert supervisor.record_respawn(0) == 1
        assert supervisor.incarnation(0) == 1
        assert supervisor.next_deadline() == pytest.approx(7.0)


class TestJournalUnits:
    def test_round_trip_and_torn_line(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with JobJournal(path) as journal:
            journal.record("run", pid=1)
            journal.record("done", job="job-0", status="done")
        # simulate a crash mid-write: a torn trailing line
        with open(path, "a") as handle:
            handle.write('{"type": "done", "job"')
        records = read_journal(path)
        assert [record["type"] for record in records] == ["run", "done"]
        assert all("time" in record for record in records)

    def test_unwritable_journal_goes_quiet(self, tmp_path):
        journal = JobJournal(tmp_path / "journal.jsonl")
        journal.close()
        journal.record("run")  # no raise after close

    def test_unserialisable_fields_stringified(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with JobJournal(path) as journal:
            journal.record("done", weird=object())
        (record,) = read_journal(path)
        assert isinstance(record["weird"], str)

    def test_fingerprint_ignores_id_and_retry(self):
        a = SamplingJob.build({"dimacs": "p cnf 1 1\n1 0\n"}, num_solutions=10,
                              job_id="a", retry=5)
        b = SamplingJob.build({"dimacs": "p cnf 1 1\n1 0\n"}, num_solutions=10,
                              job_id="b", retry=None)
        assert job_fingerprint(a) == job_fingerprint(b)
        c = SamplingJob.build({"dimacs": "p cnf 1 1\n1 0\n"}, num_solutions=11)
        assert job_fingerprint(a) != job_fingerprint(c)

    def test_read_missing_journal(self, tmp_path):
        assert read_journal(tmp_path / "nope.jsonl") == []
