"""Shared fixtures for the fault-injection and resilience suite."""

import pytest

from repro import faults


@pytest.fixture(autouse=True)
def clean_fault_plan():
    """The plan is process-global state; every test starts and ends clean."""
    faults.clear()
    yield
    faults.clear()
