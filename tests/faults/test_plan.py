"""FaultPlan parsing, activation semantics, and the production hook sites."""

import numpy as np
import pytest

from repro import faults
from repro.faults import FaultPlan, FaultSpecError, InjectedFault


class TestSpecParsing:
    def test_sites_and_options(self):
        plan = FaultPlan.from_spec(
            "seed=7;kill:at=3,incarnation=0;corrupt:every=2;delay:prob=0.5,seconds=0.2"
        )
        assert plan.seed == 7
        assert [rule.site for rule in plan.rules] == ["kill", "corrupt", "delay"]
        assert plan.rules[0].at == 3 and plan.rules[0].incarnation == 0
        assert plan.rules[1].every == 2
        assert plan.rules[2].prob == 0.5 and plan.rules[2].seconds == 0.2

    def test_empty_spec_has_no_rules(self):
        assert FaultPlan.from_spec("").rules == ()
        assert FaultPlan.from_spec(" ; ; ").rules == ()

    @pytest.mark.parametrize(
        "spec",
        [
            "explode:at=1",          # unknown site
            "kill:at=0",             # at must be >= 1
            "kill:prob=1.5",         # prob out of range
            "kill:wat=3",            # unknown option
            "kill:at",               # not key=value
            "kill:at=x",             # not an int
            "seed=x",                # bad seed segment
        ],
    )
    def test_malformed_specs_rejected(self, spec):
        with pytest.raises(FaultSpecError):
            FaultPlan.from_spec(spec)


class TestActivation:
    def test_at_fires_exactly_once(self):
        plan = FaultPlan.from_spec("kill:at=3")
        hits = [plan.fire("kill") is not None for _ in range(6)]
        assert hits == [False, False, True, False, False, False]
        assert plan.activations() == {"kill": 1}

    def test_every_fires_periodically(self):
        plan = FaultPlan.from_spec("corrupt:every=2")
        hits = [plan.fire("corrupt") is not None for _ in range(6)]
        assert hits == [False, True, False, True, False, True]

    def test_times_caps_activations(self):
        plan = FaultPlan.from_spec("delay:every=1,times=2")
        hits = [plan.fire("delay") is not None for _ in range(5)]
        assert hits == [True, True, False, False, False]

    def test_prob_is_seed_deterministic(self):
        def draw():
            plan = FaultPlan.from_spec("seed=11;kill:prob=0.5")
            plan.set_identity(worker=1, incarnation=0)
            return [plan.fire("kill") is not None for _ in range(32)]

        first = draw()
        assert first == draw()
        assert any(first) and not all(first)

    def test_identity_filters(self):
        plan = FaultPlan.from_spec("kill:at=1,worker=1,incarnation=0")
        # wrong worker
        assert plan.fire("kill", worker=0, incarnation=0) is None
        # respawned incarnation no longer matches
        assert plan.fire("kill", worker=1, incarnation=1) is None
        # the original worker 1 does (identity-filtered events count per rule,
        # and this is its first eligible one)
        assert plan.fire("kill", worker=1, incarnation=0) is not None

    def test_phase_defaults_to_task(self):
        plan = FaultPlan.from_spec("kill:at=1,phase=round")
        assert plan.fire("kill") is None  # phase "task" by default
        assert plan.fire("kill", phase="round") is not None

    def test_unmatched_site_is_quiet(self):
        plan = FaultPlan.from_spec("kill:at=1")
        assert plan.fire("build") is None


class TestModuleState:
    def test_install_and_clear(self):
        assert faults.install_plan("kill:at=1") is not None
        assert faults.fire("kill") is not None
        faults.install_plan(None)
        assert faults.active_plan() is None
        assert faults.fire("kill") is None

    def test_env_var_resolved_lazily(self, monkeypatch):
        monkeypatch.setenv(faults.ENV_VAR, "delay:every=1,seconds=0")
        faults.clear()
        rule = faults.fire("delay")
        assert rule is not None and rule.seconds == 0

    def test_corrupt_file_flips_one_byte(self, tmp_path):
        target = tmp_path / "blob.bin"
        payload = bytes(range(256)) * 8
        target.write_bytes(payload)
        plan = FaultPlan.from_spec("seed=5;corrupt:every=1")
        assert plan.corrupt_file(target)
        mutated = target.read_bytes()
        assert len(mutated) == len(payload)
        diffs = [i for i, (a, b) in enumerate(zip(payload, mutated)) if a != b]
        assert len(diffs) == 1
        # the flip lands in the payload half, past any header region
        assert diffs[0] >= len(payload) // 2


class TestProductionSites:
    def test_build_site_raises_injected_fault(self):
        from repro.cnf.dimacs import parse_dimacs
        from repro.serve.cache import build_artifact
        from tests.conftest import FIG1_DIMACS

        faults.install_plan("build:at=1")
        with pytest.raises(InjectedFault):
            build_artifact(parse_dimacs(FIG1_DIMACS))
        # the rule fired once; the rebuild succeeds
        artifact = build_artifact(parse_dimacs(FIG1_DIMACS))
        assert artifact.formula.num_variables > 0

    def test_store_corruption_is_quarantined_as_miss(self, tmp_path):
        from repro.store import ArtifactStore

        store = ArtifactStore(tmp_path / "store")
        faults.install_plan("seed=3;corrupt:at=1")
        assert store.put("plan", "a" * 16, {"x": np.arange(64)})
        # checksum verification catches the injected flip: miss + quarantine
        assert store.get("plan", "a" * 16) is None
        counters = store.counters()
        assert counters["corrupt"] == 1 and counters["misses"] == 1

    def test_lease_counters_registered(self, tmp_path):
        from repro.store import ArtifactStore

        store = ArtifactStore(tmp_path / "store")
        counters = store.counters()
        assert "lease_broken" in counters
        assert "lease_wait_timeouts" in counters
