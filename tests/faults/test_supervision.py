"""Supervised worker pools under injected faults.

These spawn real worker processes; each scenario uses the smallest pool and
target that still exercises the path, and every fault plan is seeded so the
runs are reproducible.
"""

import time

import numpy as np
import pytest

from repro.core.config import SamplerConfig
from repro.serve import SamplingService, read_journal
from tests.conftest import FIG1_DIMACS

CONFIG = SamplerConfig(batch_size=32, seed=0)

#: Generous bound for pool operations on a loaded CI box.
TIMEOUT = 120.0


def baseline_matrix(num_solutions=30):
    with SamplingService(num_workers=1, store_dir=False) as service:
        job_id = service.submit(
            FIG1_DIMACS, num_solutions=num_solutions, config=CONFIG
        )
        result = service.result(job_id, timeout=TIMEOUT)
    assert result.status == "done"
    return result.solutions.to_matrix()


class TestKillRecovery:
    def test_mid_job_kill_is_bitwise_identical(self, tmp_path):
        expected = baseline_matrix()
        journal_path = tmp_path / "journal.jsonl"
        # kill the original worker the moment it dequeues its first task;
        # the respawn (incarnation 1) no longer matches the rule
        with SamplingService(
            num_workers=1,
            store_dir=False,
            journal=journal_path,
            faults="seed=3;kill:at=1,incarnation=0",
        ) as service:
            job_id = service.submit(FIG1_DIMACS, num_solutions=30, config=CONFIG)
            result = service.result(job_id, timeout=TIMEOUT)
        assert result.status == "done", result.error
        assert result.summary["retries"] == 1
        (member,) = result.members
        assert member["retries"] == 1
        assert member["attempts"][0]["died"] is True
        assert np.array_equal(result.solutions.to_matrix(), expected)
        # the journal recorded the whole story
        events = [
            (record.get("event") or record["type"])
            for record in read_journal(journal_path)
        ]
        for expected_event in ("submit", "attempt", "death", "retry", "respawn", "done"):
            assert expected_event in events, events

    def test_mid_stream_kill_replays_without_duplicates(self):
        expected = baseline_matrix()
        # die right after streaming the 2nd round message: the replacement
        # replays rounds 1-2 (deduped out of the stream) then continues
        with SamplingService(
            num_workers=1,
            store_dir=False,
            faults="seed=3;kill:at=2,incarnation=0,phase=round",
        ) as service:
            job_id = service.submit(FIG1_DIMACS, num_solutions=30, config=CONFIG)
            chunks = list(service.stream(job_id))
            result = service.result(job_id, timeout=TIMEOUT)
        assert result.status == "done", result.error
        assert result.summary["retries"] == 1
        streamed = np.concatenate(chunks, axis=0)
        # no duplicates leaked into the stream despite the replay
        assert len(np.unique(np.packbits(streamed, axis=1), axis=0)) == streamed.shape[0]
        assert np.array_equal(streamed, expected)
        assert np.array_equal(result.solutions.to_matrix(), expected)

    def test_four_worker_pool_with_one_kill_completes_all_jobs(self):
        # the acceptance scenario: a 4-worker manifest where one worker is
        # killed mid-run still completes every job
        with SamplingService(
            num_workers=4,
            store_dir=False,
            faults="seed=5;kill:at=2,worker=1,incarnation=0",
        ) as service:
            job_ids = [
                service.submit(
                    FIG1_DIMACS,
                    num_solutions=20,
                    config=CONFIG.with_(seed=100 + index),
                    coalesce=False,
                )
                for index in range(8)
            ]
            results = [service.result(job_id, timeout=TIMEOUT) for job_id in job_ids]
        assert [result.status for result in results] == ["done"] * 8


class TestPoisoning:
    def test_task_that_keeps_killing_workers_is_quarantined(self):
        # no incarnation filter: every incarnation dies on its first task,
        # so the retry budget (2 attempts) is spent on worker deaths
        with SamplingService(
            num_workers=1,
            store_dir=False,
            retry={"attempts": 2, "backoff": 0.05},
            faults="seed=3;kill:at=1",
        ) as service:
            job_id = service.submit(FIG1_DIMACS, num_solutions=10, config=CONFIG)
            result = service.result(job_id, timeout=TIMEOUT)
        assert result.status == "poisoned"
        assert "died" in (result.error or "")
        (member,) = result.members
        assert member["status"] == "poisoned"
        assert len(member["attempts"]) == 2
        assert all(attempt["died"] for attempt in member["attempts"])
        assert result.summary["poisoned_members"] == 1

    def test_unsupervised_death_fails_fast(self):
        with SamplingService(
            num_workers=1,
            store_dir=False,
            supervise=False,
            faults="seed=3;kill:at=1",
        ) as service:
            job_id = service.submit(FIG1_DIMACS, num_solutions=10, config=CONFIG)
            result = service.result(job_id, timeout=TIMEOUT)
        # fail-fast semantics: one death, no retries, a plain error
        assert result.status == "error"
        assert result.summary["retries"] == 0


class TestPromptWake:
    def test_worker_death_wakes_blocked_result_promptly(self):
        # an unreachable target with no stall cutoff: the job would run for
        # minutes; the only way result() returns fast is the death wake
        config = CONFIG.with_(max_rounds=10**6, stall_rounds=None)
        service = SamplingService(num_workers=1, store_dir=False, supervise=False)
        try:
            job_id = service.submit(FIG1_DIMACS, num_solutions=10**9, config=config)
            # wait for sampling to actually start (first streamed round)
            next(iter(service.stream(job_id)))
            service._workers[0].process.terminate()  # noqa: SLF001
            start = time.perf_counter()
            result = service.result(job_id, timeout=TIMEOUT)
            elapsed = time.perf_counter() - start
        finally:
            service.close()
        assert result.status == "error"
        assert elapsed < 5.0

    def test_retry_exhaustion_error_mentions_death(self):
        with SamplingService(
            num_workers=1,
            store_dir=False,
            retry=1,  # never retry
            faults="seed=3;kill:at=1",
        ) as service:
            job_id = service.submit(FIG1_DIMACS, num_solutions=10, config=CONFIG)
            result = service.result(job_id, timeout=TIMEOUT)
        assert result.status == "poisoned"
        (member,) = result.members
        assert len(member["attempts"]) == 1


class TestStoreRePrime:
    def test_respawned_worker_reloads_artifact_from_store(self, tmp_path):
        # With a persistent store, the respawned worker re-primes its cache
        # from disk instead of recompiling: its member reports a store hit.
        store_dir = tmp_path / "store"
        with SamplingService(num_workers=1, store_dir=store_dir) as service:
            first = service.submit(FIG1_DIMACS, num_solutions=10, config=CONFIG)
            assert service.result(first, timeout=TIMEOUT).status == "done"
        # fresh service, same store: kill the original worker on its first
        # task; the respawn must satisfy the artifact from the store
        with SamplingService(
            num_workers=1,
            store_dir=store_dir,
            faults="seed=3;kill:at=1,incarnation=0",
        ) as service:
            job_id = service.submit(FIG1_DIMACS, num_solutions=10, config=CONFIG)
            result = service.result(job_id, timeout=TIMEOUT)
        assert result.status == "done", result.error
        (member,) = result.members
        assert member["artifact_source"] == "store"


class TestDispatcherSupervisionHooks:
    def test_offline_slots_never_chosen(self):
        from repro.serve.queue import Dispatcher

        dispatcher = Dispatcher(2)
        dispatcher.record_dispatch(0, "sig")
        dispatcher.set_offline(0)
        assert not dispatcher.is_online(0)
        assert dispatcher.outstanding(0) == 0  # accounting zeroed
        assert dispatcher.choose("sig") == 1  # warm affinity forgotten too
        dispatcher.set_offline(1)
        assert not dispatcher.has_online
        with pytest.raises(RuntimeError):
            dispatcher.choose("sig")
        dispatcher.set_online(0)
        assert dispatcher.choose("sig") == 0
