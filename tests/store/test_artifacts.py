"""Artifact persist/load: bitwise equivalence and every degraded path."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cnf.dimacs import parse_dimacs
from repro.core.config import SamplerConfig
from repro.core.sampler import GradientSATSampler
from repro.serve.cache import build_artifact
from repro.store import (
    KIND_PLAN,
    KIND_PROGRAM,
    KIND_TRANSFORM,
    fetch_or_build_artifact,
    load_sampling_artifact,
    persist_artifact,
)
from tests.conftest import FIG1_DIMACS


def _solutions(artifact, seed=0):
    config = SamplerConfig.paper_defaults(batch_size=64, seed=seed, max_rounds=6)
    sampler = GradientSATSampler(
        artifact.formula, transform=artifact.transform, config=config
    )
    return sampler.sample(num_solutions=20).solutions.to_matrix()


class TestRoundTrip:
    def test_all_three_kinds_are_written(self, store, fig1_artifact):
        assert persist_artifact(store, fig1_artifact)
        signature = fig1_artifact.signature
        assert store.contains(KIND_TRANSFORM, signature)
        assert store.contains(KIND_PLAN, signature)
        assert store.contains(KIND_PROGRAM, signature)

    def test_persist_is_idempotent(self, store, fig1_artifact):
        persist_artifact(store, fig1_artifact)
        writes = store.counters()["writes"]
        assert persist_artifact(store, fig1_artifact)
        assert store.counters()["writes"] == writes  # complete entry: no rewrite

    def test_loaded_artifact_structure(self, store, fig1_artifact):
        persist_artifact(store, fig1_artifact)
        loaded = load_sampling_artifact(store, fig1_artifact.signature)
        assert loaded is not None
        assert loaded.source == "store"
        assert loaded.load_seconds > 0.0
        assert loaded.build_seconds == 0.0
        assert loaded.signature == fig1_artifact.signature
        # The formula round-trips exactly (clauses, width, plan shape).
        assert loaded.formula.clauses == fig1_artifact.formula.clauses
        assert loaded.formula.num_variables == fig1_artifact.formula.num_variables
        # The plan was installed as the formula's memo, not recompiled.
        assert loaded.plan is loaded.formula.evaluation_plan()
        # The engine programs were adopted into the circuit's memo.
        from repro.engine.compiler import cached_programs

        assert len(cached_programs(loaded.transform.circuit)) == len(
            cached_programs(fig1_artifact.transform.circuit)
        )

    def test_sampler_bit_stream_is_identical(self, store, fig1_artifact):
        persist_artifact(store, fig1_artifact)
        loaded = load_sampling_artifact(store, fig1_artifact.signature)
        for seed in (0, 7):
            fresh = _solutions(fig1_artifact, seed)
            from_store = _solutions(loaded, seed)
            assert fresh.shape == from_store.shape
            assert np.array_equal(fresh, from_store)

    def test_loaded_nbytes_matches_built(self, store, fig1_artifact):
        persist_artifact(store, fig1_artifact)
        loaded = load_sampling_artifact(store, fig1_artifact.signature)
        assert loaded.nbytes == fig1_artifact.nbytes


class TestDegradedLoads:
    def test_missing_signature_loads_none(self, store):
        assert load_sampling_artifact(store, "unknown") is None

    def test_missing_plan_entry_recompiles(self, store, fig1_artifact):
        persist_artifact(store, fig1_artifact)
        store.object_path(KIND_PLAN, fig1_artifact.signature).unlink()
        loaded = load_sampling_artifact(store, fig1_artifact.signature)
        assert loaded is not None
        assert loaded.plan is loaded.formula.evaluation_plan()
        assert np.array_equal(_solutions(loaded), _solutions(fig1_artifact))

    def test_missing_program_entry_recompiles(self, store, fig1_artifact):
        persist_artifact(store, fig1_artifact)
        store.object_path(KIND_PROGRAM, fig1_artifact.signature).unlink()
        loaded = load_sampling_artifact(store, fig1_artifact.signature)
        assert loaded is not None
        from repro.engine.compiler import cached_programs

        assert cached_programs(loaded.transform.circuit)  # recompiled eagerly
        assert np.array_equal(_solutions(loaded), _solutions(fig1_artifact))

    def test_corrupt_transform_entry_is_a_miss(self, store, fig1_artifact):
        persist_artifact(store, fig1_artifact)
        path = store.object_path(KIND_TRANSFORM, fig1_artifact.signature)
        data = bytearray(path.read_bytes())
        data[len(data) // 2] ^= 0xFF
        path.write_bytes(bytes(data))
        assert load_sampling_artifact(store, fig1_artifact.signature) is None


class TestFetchOrBuild:
    def test_none_store_builds(self, fig1, fig1_signature):
        artifact, source = fetch_or_build_artifact(
            None, fig1_signature, lambda: build_artifact(fig1, fig1_signature)
        )
        assert source == "built" and artifact.source == "built"

    def test_cold_build_persists_then_warm_loads(self, store, fig1, fig1_signature):
        builds = []

        def builder():
            builds.append(1)
            return build_artifact(fig1, fig1_signature)

        first, source1 = fetch_or_build_artifact(store, fig1_signature, builder)
        assert source1 == "built" and len(builds) == 1
        second, source2 = fetch_or_build_artifact(store, fig1_signature, builder)
        assert source2 == "store" and len(builds) == 1
        assert np.array_equal(_solutions(first), _solutions(second))

    def test_build_lease_is_released_on_builder_failure(
        self, store, fig1, fig1_signature
    ):
        with pytest.raises(RuntimeError):
            fetch_or_build_artifact(
                store, fig1_signature, lambda: (_ for _ in ()).throw(RuntimeError("boom"))
            )
        assert not store.lock_path(fig1_signature).exists()
        # The signature is still buildable afterwards.
        artifact, source = fetch_or_build_artifact(
            store, fig1_signature, lambda: build_artifact(fig1, fig1_signature)
        )
        assert source == "built" and artifact is not None

    def test_unwritable_store_still_returns_artifacts(self, tmp_path, fig1, fig1_signature):
        from repro.store import ArtifactStore

        blocked = tmp_path / "blocked"
        blocked.write_text("not a directory")
        store = ArtifactStore(blocked)
        artifact, source = fetch_or_build_artifact(
            store, fig1_signature, lambda: build_artifact(fig1, fig1_signature)
        )
        assert source == "built"
        assert np.array_equal(
            _solutions(artifact), _solutions(build_artifact(fig1, fig1_signature))
        )
