"""Cross-process store behaviour: racing writers and single-flight builds.

Every worker function lives at module top level so the ``spawn`` start
method (the service pool's own start method) can pickle it by reference.
"""

from __future__ import annotations

import multiprocessing
import os
import time

import numpy as np
from repro.store import ArtifactStore, KIND_TRANSFORM

_SPAWN = multiprocessing.get_context("spawn")


def _writer(root, signature, barrier_dir, done_dir):
    """Put one entry under ``signature``, starting as simultaneously as the
    scheduler allows (all writers spin until the go-file appears)."""
    store = ArtifactStore(root)
    deadline = time.monotonic() + 30.0
    while not os.path.exists(os.path.join(barrier_dir, "go")):
        if time.monotonic() > deadline:
            raise RuntimeError("barrier never opened")
        time.sleep(0.001)
    payload = {"signature": signature, "data": np.arange(50_000)}
    for _ in range(5):
        store.put("plan", signature, payload)
    with open(os.path.join(done_dir, f"{os.getpid()}.done"), "w") as handle:
        handle.write("ok")


def _single_flight_worker(root, signature, builds_dir, results_dir):
    """Resolve one cold signature through the single-flight protocol."""
    from repro.cnf.dimacs import parse_dimacs
    from repro.serve.cache import build_artifact
    from repro.store import fetch_or_build_artifact
    from tests.conftest import FIG1_DIMACS

    store = ArtifactStore(root)

    def builder():
        # Log the build *before* doing it, then dilate the race window so
        # overlapping processes are forced through the wait path.
        with open(os.path.join(builds_dir, f"{os.getpid()}.built"), "w") as handle:
            handle.write("built")
        time.sleep(0.3)
        return build_artifact(parse_dimacs(FIG1_DIMACS, name="fig1"), signature)

    artifact, source = fetch_or_build_artifact(store, signature, builder)
    assert artifact is not None and artifact.signature == signature
    with open(os.path.join(results_dir, f"{os.getpid()}.{source}"), "w") as handle:
        handle.write(source)


class TestConcurrentWriters:
    def test_racing_writers_leave_a_valid_store(self, tmp_path):
        root = tmp_path / "store"
        barrier_dir = tmp_path / "barrier"
        done_dir = tmp_path / "done"
        barrier_dir.mkdir()
        done_dir.mkdir()

        processes = [
            _SPAWN.Process(
                target=_writer,
                args=(str(root), "shared-sig", str(barrier_dir), str(done_dir)),
            )
            for _ in range(4)
        ]
        for process in processes:
            process.start()
        (barrier_dir / "go").write_text("go")
        for process in processes:
            process.join(timeout=120)
            assert process.exitcode == 0

        assert len(list(done_dir.iterdir())) == 4
        # However the renames interleaved, the surviving entry is intact.
        store = ArtifactStore(root)
        loaded = store.get("plan", "shared-sig")
        assert loaded is not None
        assert np.array_equal(loaded["data"], np.arange(50_000))
        intact, bad = store.verify()
        assert not bad and len(intact) == 1
        # No temp droppings anywhere in the objects tree.
        leftovers = [
            p
            for p in (store.version_root / "objects").rglob("*")
            if p.is_file() and not p.name.endswith(".bin")
        ]
        assert leftovers == []


class TestSingleFlight:
    def test_exactly_one_cold_build_across_processes(self, tmp_path):
        from repro.cnf.dimacs import parse_dimacs
        from repro.core.signatures import formula_signature
        from tests.conftest import FIG1_DIMACS

        signature = formula_signature(parse_dimacs(FIG1_DIMACS, name="fig1"))
        root = tmp_path / "store"
        builds_dir = tmp_path / "builds"
        results_dir = tmp_path / "results"
        builds_dir.mkdir()
        results_dir.mkdir()

        processes = [
            _SPAWN.Process(
                target=_single_flight_worker,
                args=(str(root), signature, str(builds_dir), str(results_dir)),
            )
            for _ in range(4)
        ]
        for process in processes:
            process.start()
        for process in processes:
            process.join(timeout=120)
            assert process.exitcode == 0

        assert len(list(builds_dir.iterdir())) == 1  # single flight
        results = sorted(p.suffix for p in results_dir.iterdir())
        assert len(results) == 4
        assert results.count(".built") == 1
        assert results.count(".store") == 3
        # The winner's artifact landed in the store for future processes.
        store = ArtifactStore(root)
        assert store.contains(KIND_TRANSFORM, signature)
        assert not store.lock_path(signature).exists()
