"""The binary entry container: round trips and every rejection path."""

from __future__ import annotations

import json
import struct

import numpy as np
import pytest

from repro.store.format import (
    ALIGNMENT,
    FORMAT_VERSION,
    MAGIC,
    StoreFormatError,
    decode_entry,
    encode_entry,
    read_header,
)

_PRELUDE = struct.Struct("<4sHI")


def _sample_payload():
    return {
        "ints": np.arange(1000, dtype=np.int64),
        "floats": np.linspace(0.0, 1.0, 257, dtype=np.float32),
        "bools": np.array([True, False, True]),
        "nested": {"tuple": (1, "two", 3.0), "empty": np.zeros(0, dtype=np.int32)},
    }


def _rewrite_header(data: bytes, **updates) -> bytes:
    """Re-emit an entry with some header fields replaced (payload untouched)."""
    magic, version, header_length = _PRELUDE.unpack_from(data)
    header = json.loads(data[_PRELUDE.size : _PRELUDE.size + header_length].decode())
    payload_start = -(-(_PRELUDE.size + header_length) // ALIGNMENT) * ALIGNMENT
    payload = data[payload_start:]
    header.update(updates)
    header_bytes = json.dumps(header, sort_keys=True).encode()
    new_start = -(-(_PRELUDE.size + len(header_bytes)) // ALIGNMENT) * ALIGNMENT
    return (
        _PRELUDE.pack(magic, version, len(header_bytes))
        + header_bytes
        + b"\0" * (new_start - _PRELUDE.size - len(header_bytes))
        + payload
    )


class TestRoundTrip:
    def test_identity(self):
        original = _sample_payload()
        blob = encode_entry("plan", "sig123", original)
        restored = decode_entry(bytearray(blob), kind="plan", signature="sig123")
        assert np.array_equal(restored["ints"], original["ints"])
        assert np.array_equal(restored["floats"], original["floats"])
        assert restored["floats"].dtype == np.float32
        assert np.array_equal(restored["bools"], original["bools"])
        assert restored["nested"]["tuple"] == (1, "two", 3.0)
        assert restored["nested"]["empty"].shape == (0,)

    def test_loaded_arrays_are_writable(self):
        blob = encode_entry("plan", "s", np.arange(16))
        array = decode_entry(bytearray(blob))
        array[0] = 99  # zero-copy views over a bytearray stay writable
        assert array[0] == 99

    def test_array_blobs_are_aligned(self):
        blob = encode_entry("plan", "s", _sample_payload())
        header, payload_start = read_header(blob)
        assert payload_start % ALIGNMENT == 0
        for offset, _length in header["buffers"]:
            assert offset % ALIGNMENT == 0

    def test_header_is_readable_without_unpickling(self):
        blob = encode_entry("transform", "sig456", {"x": np.ones(4)})
        header, _start = read_header(blob)
        assert header["kind"] == "transform"
        assert header["signature"] == "sig456"
        assert header["checksum"].startswith("sha256:")


class TestRejections:
    def test_wrong_kind(self):
        blob = encode_entry("plan", "s", [1, 2])
        with pytest.raises(StoreFormatError, match="kind"):
            decode_entry(bytearray(blob), kind="transform")

    def test_wrong_signature(self):
        blob = encode_entry("plan", "s", [1, 2])
        with pytest.raises(StoreFormatError, match="signature"):
            decode_entry(bytearray(blob), signature="other")

    def test_bad_magic(self):
        blob = bytearray(encode_entry("plan", "s", [1]))
        blob[:4] = b"XXXX"
        with pytest.raises(StoreFormatError, match="magic"):
            decode_entry(blob)

    def test_future_format_version(self):
        blob = bytearray(encode_entry("plan", "s", [1]))
        struct.pack_into("<H", blob, 4, FORMAT_VERSION + 1)
        with pytest.raises(StoreFormatError, match="format"):
            decode_entry(blob)

    def test_truncated_prelude(self):
        with pytest.raises(StoreFormatError, match="short"):
            decode_entry(bytearray(MAGIC))

    def test_truncated_payload(self):
        blob = encode_entry("plan", "s", np.arange(1000))
        with pytest.raises(StoreFormatError, match="truncated"):
            decode_entry(bytearray(blob[: len(blob) - 64]))

    def test_flipped_payload_byte(self):
        blob = bytearray(encode_entry("plan", "s", np.arange(1000)))
        blob[-1] ^= 0xFF
        with pytest.raises(StoreFormatError, match="checksum"):
            decode_entry(blob)

    def test_foreign_endianness(self):
        blob = encode_entry("plan", "s", np.arange(4))
        import sys

        foreign = "big" if sys.byteorder == "little" else "little"
        rewritten = _rewrite_header(blob, byte_order=foreign)
        with pytest.raises(StoreFormatError, match="endian"):
            decode_entry(bytearray(rewritten))

    def test_other_repro_version(self):
        blob = encode_entry("plan", "s", np.arange(4))
        rewritten = _rewrite_header(blob, version="0.0.0-other")
        with pytest.raises(StoreFormatError, match="written by repro"):
            decode_entry(bytearray(rewritten))

    def test_garbage_header_json(self):
        blob = bytearray(encode_entry("plan", "s", [1]))
        blob[_PRELUDE.size] = 0xFF
        with pytest.raises(StoreFormatError):
            decode_entry(blob)

    def test_span_outside_payload(self):
        blob = encode_entry("plan", "s", np.arange(8))
        rewritten = _rewrite_header(blob, buffers=[[0, 10**9]])
        with pytest.raises(StoreFormatError):
            decode_entry(bytearray(rewritten))
