"""ArtifactCache with a persistent second tier: memory -> store -> build."""

from __future__ import annotations

import numpy as np

from repro.cnf import planted_ksat
from repro.cnf.dimacs import parse_dimacs
from repro.core.signatures import formula_signature
from repro.core.task import SamplingTask
from repro.serve.cache import ArtifactCache
from repro.store import ArtifactStore, KIND_TRANSFORM
from tests.conftest import FIG1_DIMACS


def _fig1():
    return parse_dimacs(FIG1_DIMACS, name="fig1")


class TestGetOrBuild:
    def test_cold_build_persists(self, store):
        cache = ArtifactCache(store=store)
        artifact, built = cache.get_or_build(_fig1())
        assert built and artifact.source == "built"
        assert store.contains(KIND_TRANSFORM, artifact.signature)

    def test_second_process_loads_instead_of_building(self, tmp_path):
        directory = tmp_path / "shared"
        first = ArtifactCache(store=ArtifactStore(directory))
        built_artifact, built = first.get_or_build(_fig1())
        assert built

        # A different cache over the same directory models a fresh process.
        second = ArtifactCache(store=ArtifactStore(directory))
        loaded, built2 = second.get_or_build(_fig1())
        assert not built2
        assert loaded.source == "store"
        assert loaded.signature == built_artifact.signature

    def test_memory_tier_wins_over_store(self, store):
        cache = ArtifactCache(store=store)
        first, _ = cache.get_or_build(_fig1())
        hits_before = store.counters()["hits"]
        again, built = cache.get_or_build(_fig1())
        assert again is first and not built
        assert store.counters()["hits"] == hits_before  # store never consulted

    def test_stats_surface_store_counters(self, store):
        cache = ArtifactCache(store=store)
        cache.get_or_build(_fig1())
        stats = cache.stats()
        assert stats["store_writes"] == 3  # transform + plan + program
        assert "store_hits" in stats and "store_corrupt" in stats

    def test_no_store_keeps_legacy_behaviour(self):
        cache = ArtifactCache()
        _, built_first = cache.get_or_build(_fig1())
        _, built_second = cache.get_or_build(_fig1())
        assert built_first and not built_second
        assert "store_hits" not in cache.stats()

    def test_corrupt_store_entry_falls_back_to_build(self, store):
        warmer = ArtifactCache(store=store)
        artifact, _ = warmer.get_or_build(_fig1())
        path = store.object_path(KIND_TRANSFORM, artifact.signature)
        blob = bytearray(path.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        path.write_bytes(bytes(blob))

        fresh = ArtifactCache(store=ArtifactStore(store.root))
        rebuilt, built = fresh.get_or_build(_fig1())
        assert built and rebuilt.source == "built"
        # The bad entry was quarantined and replaced by the rebuild.
        assert store.contains(KIND_TRANSFORM, artifact.signature)

    def test_store_loaded_solutions_match_built(self, tmp_path):
        from repro.core.config import SamplerConfig
        from repro.core.sampler import GradientSATSampler

        def sample(artifact):
            sampler = GradientSATSampler(
                artifact.formula,
                transform=artifact.transform,
                config=SamplerConfig.paper_defaults(batch_size=64, seed=3, max_rounds=6),
            )
            return sampler.sample(num_solutions=20).solutions.to_matrix()

        directory = tmp_path / "shared"
        built, _ = ArtifactCache(store=ArtifactStore(directory)).get_or_build(_fig1())
        loaded, _ = ArtifactCache(store=ArtifactStore(directory)).get_or_build(_fig1())
        assert loaded.source == "store"
        assert np.array_equal(sample(built), sample(loaded))


def _base():
    return planted_ksat(16, 40, 3, seed=11)


class TestGetOrBuildTask:
    def _delta_task(self):
        # A unit assumption: a satisfiable, genuinely different formula.
        return SamplingTask.build(assume=(2,))

    def test_task_artifacts_persist_and_reload(self, tmp_path):
        directory = tmp_path / "shared"
        formula = _base()
        base_signature = formula_signature(formula)
        task = self._delta_task()
        effective_signature = formula_signature(task.apply_to(formula))

        first = ArtifactCache(store=ArtifactStore(directory))
        artifact, built, derived = first.get_or_build_task(
            task, effective_signature, base_signature, loader=_base
        )
        assert built and not derived  # no warm parent: cold build of effective

        second = ArtifactCache(store=ArtifactStore(directory))
        loaded, built2, derived2 = second.get_or_build_task(
            task, effective_signature, base_signature, loader=_base
        )
        assert (built2, derived2) == (False, False)
        assert loaded.source == "store"
        assert loaded.signature == effective_signature

    def test_incremental_derivation_still_works_with_store(self, store):
        cache = ArtifactCache(store=store)
        formula = _base()
        base_signature = formula_signature(formula)
        base, built, derived = cache.get_or_build_task(
            None, base_signature, base_signature, loader=_base
        )
        assert (built, derived) == (True, False)

        task = self._delta_task()
        effective_signature = formula_signature(task.apply_to(formula))
        artifact, built2, derived2 = cache.get_or_build_task(
            task, effective_signature, base_signature, loader=_base
        )
        assert (built2, derived2) == (True, True)  # derived from the warm parent
        assert artifact.incremental
        # The derived artifact was persisted under the effective signature.
        assert store.contains(KIND_TRANSFORM, effective_signature)
