"""ArtifactStore behaviour: writes, quarantine, prune, degraded modes."""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.store import ArtifactStore
from repro.store.format import encode_entry


class TestPutGet:
    def test_round_trip(self, store):
        assert store.put("plan", "a" * 16, {"x": np.arange(32)})
        loaded = store.get("plan", "a" * 16)
        assert np.array_equal(loaded["x"], np.arange(32))
        counters = store.counters()
        assert counters["writes"] == 1 and counters["hits"] == 1

    def test_missing_entry_is_a_miss(self, store):
        assert store.get("plan", "nope") is None
        assert store.counters()["misses"] == 1

    def test_contains(self, store):
        assert not store.contains("plan", "s")
        store.put("plan", "s", [1])
        assert store.contains("plan", "s")

    def test_entries_and_stats(self, store):
        store.put("plan", "aa11", [1, 2, 3])
        store.put("transform", "bb22", {"k": np.ones(8)})
        entries = store.entries()
        assert {(e.kind, e.signature) for e in entries} == {
            ("plan", "aa11"),
            ("transform", "bb22"),
        }
        stats = store.stats()
        assert stats["entries"] == 2
        assert stats["bytes"] == sum(e.nbytes for e in entries)
        assert stats["kinds"] == {"plan": 1, "transform": 1}

    def test_no_partial_entry_files(self, store):
        # Atomic rename: the objects tree never holds temp files after a put.
        store.put("plan", "cc33", np.zeros(1024))
        kind_dir = store.version_root / "objects" / "plan"
        names = [p.name for p in kind_dir.rglob("*") if p.is_file()]
        assert names == ["cc33.bin"]


class TestCorruption:
    def test_corrupt_entry_is_quarantined(self, store):
        store.put("plan", "dd44", np.arange(100))
        path = store.object_path("plan", "dd44")
        data = bytearray(path.read_bytes())
        data[-1] ^= 0xFF
        path.write_bytes(bytes(data))

        assert store.get("plan", "dd44") is None
        assert store.counters()["corrupt"] == 1
        assert not path.exists()  # moved out of the objects tree
        assert list((store.version_root / "quarantine").iterdir())

    def test_truncated_entry_is_a_miss(self, store):
        store.put("plan", "ee55", np.arange(100))
        path = store.object_path("plan", "ee55")
        path.write_bytes(path.read_bytes()[:100])
        assert store.get("plan", "ee55") is None

    def test_entry_under_wrong_signature_is_rejected(self, store):
        # A foreign entry renamed into place must not be served.
        blob = encode_entry("plan", "actual-sig", [1, 2, 3])
        path = store.object_path("plan", "claimed-sig")
        path.parent.mkdir(parents=True)
        path.write_bytes(blob)
        assert store.get("plan", "claimed-sig") is None
        assert store.counters()["corrupt"] == 1

    def test_verify_reports_without_mutating(self, store):
        store.put("plan", "good", [1])
        store.put("plan", "badd", [2])
        path = store.object_path("plan", "badd")
        data = bytearray(path.read_bytes())
        data[-1] ^= 0xFF
        path.write_bytes(bytes(data))

        intact, bad = store.verify()
        assert [e.signature for e in intact] == ["good"]
        assert [e.signature for (e, _reason) in bad] == ["badd"]
        assert path.exists()  # verify never quarantines


class TestPrune:
    def test_prune_respects_byte_bound(self, store):
        for index in range(6):
            store.put("plan", f"sig{index}", np.zeros(4096))
            time.sleep(0.01)  # distinct mtimes for a deterministic LRU order
        total = store.stats()["bytes"]
        bound = total // 2
        removed = store.prune(bound)
        assert removed  # something had to go
        assert store.stats()["bytes"] <= bound
        # Oldest entries go first.
        assert [e.signature for e in removed] == [f"sig{i}" for i in range(len(removed))]

    def test_get_refreshes_recency(self, store):
        store.put("plan", "old1", np.zeros(4096))
        time.sleep(0.01)
        store.put("plan", "new2", np.zeros(4096))
        time.sleep(0.01)
        store.get("plan", "old1")  # touch: now most recently used
        one_entry = max(e.nbytes for e in store.entries())
        store.prune(one_entry)
        assert store.contains("plan", "old1")
        assert not store.contains("plan", "new2")

    def test_prune_zero_empties_the_store(self, store):
        store.put("plan", "x", [1])
        store.prune(0)
        assert store.stats()["entries"] == 0

    def test_prune_rejects_negative(self, store):
        with pytest.raises(ValueError):
            store.prune(-1)


class TestDegradedModes:
    def test_unwritable_directory_never_raises(self, tmp_path):
        # A plain file where the store root should be defeats every mkdir/
        # write/read with OSError — unlike chmod, this stays unwritable even
        # when the suite runs as root (CI containers).
        root = tmp_path / "blocked"
        root.write_text("not a directory")
        store = ArtifactStore(root)
        assert store.put("plan", "sig", [1]) is False
        assert store.get("plan", "sig") is None  # miss, no exception
        assert store.counters()["write_errors"] == 1
        assert store.stats()["entries"] == 0
        assert store.prune(0) == []
        assert store.lease("sig").acquire()  # no coordination: build locally

    def test_writes_disable_after_first_failure(self, tmp_path):
        root = tmp_path / "blocked"
        root.write_text("not a directory")
        store = ArtifactStore(root)
        store.put("plan", "one", [1])
        store.put("plan", "two", [2])
        assert store.counters()["write_errors"] == 1  # second put short-circuits

    def test_unpicklable_payload_is_counted_not_raised(self, store):
        assert store.put("plan", "sig", lambda: None) is False
        assert store.counters()["write_errors"] == 1
        assert store._writes_disabled is False  # encode failures don't disable


class TestBuildLease:
    def test_acquire_release(self, store):
        lease = store.lease("sig")
        assert lease.acquire()
        assert store.lock_path("sig").exists()
        # Second claimant loses while the lock is held.
        assert not store.lease("sig").acquire()
        lease.release()
        assert not store.lock_path("sig").exists()
        assert store.lease("sig").acquire()

    def test_wait_returns_loaded_entry(self, store):
        lease = store.lease("sig")
        assert lease.acquire()
        waiter = store.lease("sig")
        assert not waiter.acquire()
        store.put("plan", "sig", [42])
        loaded = waiter.wait(lambda: store.get("plan", "sig"), timeout=5.0)
        assert loaded == [42]
        lease.release()

    def test_wait_times_out_to_local_build(self, store):
        lease = store.lease("sig")
        assert lease.acquire()
        waiter = store.lease("sig")
        assert waiter.wait(lambda: None, timeout=0.05) is None
        lease.release()

    def test_dead_owner_lock_is_broken(self, store):
        # Forge a claim from a dead same-host pid: the next claimant wins.
        path = store.lock_path("sig")
        path.parent.mkdir(parents=True, exist_ok=True)
        import socket

        dead_pid = 2**22 - 1  # far beyond any live pid on test hosts
        path.write_text(f"{dead_pid} {socket.gethostname()} {time.time()}\n")
        assert store.lease("sig").acquire()

    def test_stale_lock_is_broken_by_age(self, tmp_path):
        store = ArtifactStore(tmp_path, stale_lock_seconds=0.01)
        path = store.lock_path("sig")
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text("not-a-pid\n")
        time.sleep(0.05)
        assert store.lease("sig").acquire()
