"""SamplingService with a persistent store: warm starts, pool single-flight."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cnf.dimacs import parse_dimacs
from repro.core.config import SamplerConfig
from repro.serve import SamplingService
from repro.store import ArtifactStore, KIND_TRANSFORM
from tests.conftest import FIG1_DIMACS

CONFIG = SamplerConfig(batch_size=32, seed=0)
TIMEOUT = 120.0


@pytest.fixture
def fig1():
    return parse_dimacs(FIG1_DIMACS, name="fig1")


class TestInlineService:
    def test_cold_then_store_warm_across_service_instances(self, tmp_path, fig1):
        store_dir = tmp_path / "store"

        with SamplingService(num_workers=0, store_dir=store_dir) as first:
            result = first.result(
                first.submit(fig1, num_solutions=8, config=CONFIG, coalesce=False)
            )
            assert result.summary["cold_builds"] == 1
            assert result.members[0]["artifact_source"] == "built"
            cold_matrix = result.solutions.to_matrix()

        # The artifact landed on disk under the service's store.
        assert ArtifactStore(store_dir).entries()  # something was persisted

        # A brand-new service over the same directory never compiles.
        with SamplingService(num_workers=0, store_dir=store_dir) as second:
            warm = second.result(
                second.submit(fig1, num_solutions=8, config=CONFIG, coalesce=False)
            )
            assert warm.summary["cold_builds"] == 0
            assert warm.summary["store_hits"] == 1
            member = warm.members[0]
            assert member["artifact_source"] == "store"
            assert member["load_seconds"] > 0.0
            assert np.array_equal(warm.solutions.to_matrix(), cold_matrix)

    def test_member_records_carry_cache_stats(self, tmp_path, fig1):
        with SamplingService(num_workers=0, store_dir=tmp_path / "store") as service:
            result = service.result(
                service.submit(fig1, num_solutions=8, config=CONFIG, coalesce=False)
            )
        stats = result.members[0]["cache_stats"]
        assert stats["store_writes"] == 3  # transform + plan + program
        assert "hits" in stats and "misses" in stats

    def test_no_store_by_default(self, tmp_path, fig1, monkeypatch):
        monkeypatch.delenv("REPRO_STORE_DIR", raising=False)
        with SamplingService(num_workers=0) as service:
            assert service.store_dir is None
            result = service.result(
                service.submit(fig1, num_solutions=8, config=CONFIG, coalesce=False)
            )
            assert result.summary["cold_builds"] == 1
            assert "store_writes" not in result.members[0].get("cache_stats", {})

    def test_env_var_enables_store(self, tmp_path, fig1, monkeypatch):
        monkeypatch.setenv("REPRO_STORE_DIR", str(tmp_path / "env-store"))
        with SamplingService(num_workers=0) as service:
            assert service.store_dir == str(tmp_path / "env-store")
            service.result(
                service.submit(fig1, num_solutions=8, config=CONFIG, coalesce=False)
            )
        assert ArtifactStore(tmp_path / "env-store").entries()


class TestPoolService:
    def test_pool_single_flight_one_build_total(self, tmp_path, fig1):
        # Enough same-formula jobs to overflow the affinity spill threshold:
        # the backlog forces a second worker onto the signature, and the
        # store (load or build-lease wait) spares it the recompile — one
        # cold build total, however the pool interleaves.
        store_dir = tmp_path / "store"
        with SamplingService(num_workers=2, store_dir=store_dir) as service:
            job_ids = [
                service.submit(
                    fig1,
                    num_solutions=8,
                    config=CONFIG.with_(seed=100 + index),
                    coalesce=False,
                )
                for index in range(5)
            ]
            results = [service.result(job_id, timeout=TIMEOUT) for job_id in job_ids]
        assert all(result.status == "done" for result in results)
        sources = [result.members[0]["artifact_source"] for result in results]
        assert sum(result.summary["cold_builds"] for result in results) == 1
        assert sources.count("built") == 1
        assert set(sources) <= {"built", "memory", "store"}
        # The spilled worker warmed from the store, not a recompile.
        workers = {result.members[0]["worker"] for result in results}
        if len(workers) > 1:
            assert "store" in sources

    def test_second_pool_run_is_all_store_hits(self, tmp_path, fig1):
        store_dir = tmp_path / "store"
        with SamplingService(num_workers=2, store_dir=store_dir) as first:
            first.result(
                first.submit(fig1, num_solutions=8, config=CONFIG, coalesce=False),
                timeout=TIMEOUT,
            )
        with SamplingService(num_workers=2, store_dir=store_dir) as second:
            warm = second.result(
                second.submit(fig1, num_solutions=8, config=CONFIG, coalesce=False),
                timeout=TIMEOUT,
            )
        assert warm.summary["cold_builds"] == 0
        assert warm.summary["store_hits"] == 1

    def test_store_results_match_no_store_results(self, tmp_path, fig1):
        with SamplingService(num_workers=1, store_dir=tmp_path / "store") as with_store:
            stored = with_store.result(
                with_store.submit(fig1, num_solutions=16, config=CONFIG, coalesce=False),
                timeout=TIMEOUT,
            )
        with SamplingService(num_workers=1) as plain:
            bare = plain.result(
                plain.submit(fig1, num_solutions=16, config=CONFIG, coalesce=False),
                timeout=TIMEOUT,
            )
        assert np.array_equal(
            stored.solutions.to_matrix(), bare.solutions.to_matrix()
        )
