"""The ``repro-sat cache`` subcommand: stats / ls / verify / prune."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import main
from repro.store import ArtifactStore


@pytest.fixture
def populated_dir(tmp_path):
    store = ArtifactStore(tmp_path / "store")
    store.put("plan", "aaaa1111", np.zeros(2048))
    store.put("transform", "bbbb2222", {"x": np.ones(512)})
    return tmp_path / "store"


def test_stats(populated_dir, capsys):
    assert main(["cache", "stats", "--store-dir", str(populated_dir)]) == 0
    out = capsys.readouterr().out
    assert "entries         : 2" in out
    assert "plan" in out and "transform" in out


def test_ls(populated_dir, capsys):
    assert main(["cache", "ls", "--store-dir", str(populated_dir)]) == 0
    out = capsys.readouterr().out
    assert "aaaa1111" in out and "bbbb2222" in out


def test_verify_clean_store(populated_dir, capsys):
    assert main(["cache", "verify", "--store-dir", str(populated_dir)]) == 0
    assert "2 intact, 0 bad" in capsys.readouterr().out


def test_verify_reports_corruption(populated_dir, capsys):
    store = ArtifactStore(populated_dir)
    path = store.object_path("plan", "aaaa1111")
    data = bytearray(path.read_bytes())
    data[-1] ^= 0xFF
    path.write_bytes(bytes(data))
    assert main(["cache", "verify", "--store-dir", str(populated_dir)]) == 1
    captured = capsys.readouterr()
    assert "1 intact, 1 bad" in captured.out
    assert "BAD" in captured.err


def test_prune(populated_dir, capsys):
    assert main(
        ["cache", "prune", "--store-dir", str(populated_dir), "--max-bytes", "0"]
    ) == 0
    assert "pruned 2 entries" in capsys.readouterr().out
    assert ArtifactStore(populated_dir).stats()["entries"] == 0


def test_prune_requires_max_bytes(populated_dir):
    with pytest.raises(SystemExit):
        main(["cache", "prune", "--store-dir", str(populated_dir)])


def test_env_var_names_the_store(populated_dir, capsys, monkeypatch):
    monkeypatch.setenv("REPRO_STORE_DIR", str(populated_dir))
    assert main(["cache", "stats"]) == 0
    assert str(populated_dir) in capsys.readouterr().out
