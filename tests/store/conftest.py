"""Shared fixtures for the artifact-store suite."""

from __future__ import annotations

import pytest

from repro.cnf.dimacs import parse_dimacs
from repro.core.signatures import formula_signature
from repro.serve.cache import build_artifact
from repro.store import ArtifactStore
from tests.conftest import FIG1_DIMACS


@pytest.fixture
def fig1():
    return parse_dimacs(FIG1_DIMACS, name="fig1")


@pytest.fixture
def fig1_signature(fig1):
    return formula_signature(fig1)


@pytest.fixture
def store(tmp_path):
    return ArtifactStore(tmp_path / "store")


@pytest.fixture
def fig1_artifact(fig1, fig1_signature):
    """A freshly built artifact for Fig. 1 (transform + plan + program)."""
    return build_artifact(fig1, fig1_signature)
