"""Input/output helpers for solution sets and experiment results."""

from repro.io.solutions_io import (
    solutions_to_text,
    parse_solutions_text,
    write_solutions_file,
    read_solutions_file,
)
from repro.io.results_io import run_records_to_json, run_records_to_csv

__all__ = [
    "solutions_to_text",
    "parse_solutions_text",
    "write_solutions_file",
    "read_solutions_file",
    "run_records_to_json",
    "run_records_to_csv",
]
