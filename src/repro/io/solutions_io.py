"""Reading and writing solution files.

The de-facto interchange format used by sampler-testing tools (Barbarik,
the UniGen tool chain) is one solution per line as signed DIMACS literals,
optionally terminated by ``0``.  These helpers convert between that format
and the :class:`~repro.core.solutions.SolutionSet` used throughout the
library, so sampled solutions can be fed to external checkers (or external
samples loaded for the uniformity metrics).
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Union

import numpy as np

from repro.core.solutions import SolutionSet


def solutions_to_text(
    solutions: SolutionSet, limit: Optional[int] = None, terminate_with_zero: bool = True
) -> str:
    """Serialise solutions as one line of signed literals per solution."""
    lines = []
    for literals in solutions.to_literal_lists(limit):
        body = " ".join(str(literal) for literal in literals)
        lines.append(f"{body} 0" if terminate_with_zero else body)
    return "\n".join(lines) + ("\n" if lines else "")


def parse_solutions_text(text: str, num_variables: int) -> SolutionSet:
    """Parse a solutions file back into a :class:`SolutionSet`.

    Lines may or may not end with ``0``; unmentioned variables default to
    false; comment lines starting with ``c`` or ``#`` are skipped.
    """
    solutions = SolutionSet(num_variables)
    for raw_line in text.splitlines():
        line = raw_line.strip()
        if not line or line.startswith(("c", "#")):
            continue
        vector = np.zeros(num_variables, dtype=bool)
        for token in line.split():
            literal = int(token)
            if literal == 0:
                break
            variable = abs(literal)
            if variable > num_variables:
                raise ValueError(
                    f"literal {literal} exceeds declared variable count {num_variables}"
                )
            vector[variable - 1] = literal > 0
        solutions.add(vector)
    return solutions


def write_solutions_file(
    solutions: SolutionSet, path: Union[str, Path], limit: Optional[int] = None
) -> Path:
    """Write solutions to a file and return the path."""
    path = Path(path)
    path.write_text(solutions_to_text(solutions, limit=limit))
    return path


def read_solutions_file(path: Union[str, Path], num_variables: int) -> SolutionSet:
    """Read a solutions file written by :func:`write_solutions_file` (or compatible tools)."""
    path = Path(path)
    return parse_solutions_text(path.read_text(), num_variables)
