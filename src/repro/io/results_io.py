"""Exporting evaluation results (RunRecords) to JSON and CSV.

The benchmark harness prints text tables; these helpers let scripts persist
the same measurements for later analysis or plotting without re-running the
experiments.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Iterable, List

from repro.eval.runner import RunRecord

_FIELDS = [
    "sampler_name",
    "instance_name",
    "num_unique",
    "elapsed_seconds",
    "throughput",
    "num_requested",
    "timed_out",
    "transform_seconds",
]


def _record_row(record: RunRecord) -> dict:
    return {
        "sampler_name": record.sampler_name,
        "instance_name": record.instance_name,
        "num_unique": record.num_unique,
        "elapsed_seconds": record.elapsed_seconds,
        "throughput": record.throughput,
        "num_requested": record.num_requested,
        "timed_out": record.timed_out,
        "transform_seconds": record.transform_seconds,
    }


def run_records_to_json(records: Iterable[RunRecord], indent: int = 2) -> str:
    """Serialise run records to a JSON array (stable field order)."""
    return json.dumps([_record_row(record) for record in records], indent=indent)


def run_records_to_csv(records: Iterable[RunRecord]) -> str:
    """Serialise run records to CSV text with a header row."""
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=_FIELDS)
    writer.writeheader()
    for record in records:
        writer.writerow(_record_row(record))
    return buffer.getvalue()


def load_run_records_json(text: str) -> List[dict]:
    """Load previously exported JSON back into plain dictionaries."""
    data = json.loads(text)
    if not isinstance(data, list):
        raise ValueError("expected a JSON array of run records")
    return data
