"""Exporting evaluation results (RunRecords) and service job results.

The benchmark harness prints text tables; these helpers let scripts persist
the same measurements for later analysis or plotting without re-running the
experiments.  The sampling service's batch front end (``repro-sat serve``)
uses the job-result exporters to write one machine-readable record per
manifest job.
"""

from __future__ import annotations

import csv
import io
import json
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, List, Union

from repro.eval.runner import RunRecord

if TYPE_CHECKING:  # avoid importing the serving layer for plain run records
    from repro.serve.service import JobResult

_FIELDS = [
    "sampler_name",
    "instance_name",
    "num_unique",
    "elapsed_seconds",
    "throughput",
    "num_requested",
    "timed_out",
    "transform_seconds",
]


def _record_row(record: RunRecord) -> dict:
    return {
        "sampler_name": record.sampler_name,
        "instance_name": record.instance_name,
        "num_unique": record.num_unique,
        "elapsed_seconds": record.elapsed_seconds,
        "throughput": record.throughput,
        "num_requested": record.num_requested,
        "timed_out": record.timed_out,
        "transform_seconds": record.transform_seconds,
    }


def run_records_to_json(records: Iterable[RunRecord], indent: int = 2) -> str:
    """Serialise run records to a JSON array (stable field order)."""
    return json.dumps([_record_row(record) for record in records], indent=indent)


def run_records_to_csv(records: Iterable[RunRecord]) -> str:
    """Serialise run records to CSV text with a header row."""
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=_FIELDS)
    writer.writeheader()
    for record in records:
        writer.writerow(_record_row(record))
    return buffer.getvalue()


def load_run_records_json(text: str) -> List[dict]:
    """Load previously exported JSON back into plain dictionaries."""
    data = json.loads(text)
    if not isinstance(data, list):
        raise ValueError("expected a JSON array of run records")
    return data


# -- service job results ------------------------------------------------------------------

def job_result_row(result: "JobResult") -> dict:
    """Flatten one :class:`~repro.serve.service.JobResult` for export.

    The row carries the aggregate summary plus the per-member records (the
    solutions themselves go to separate files via
    :func:`repro.io.solutions_io.write_solutions_file`).  A dictionary
    passes through unchanged — that is how ``repro-sat serve --resume``
    re-exports rows recovered from the job journal next to fresh results.
    """
    if isinstance(result, dict):
        return result
    row = {
        "job_id": result.job_id,
        "status": result.status,
        "num_unique": result.num_unique,
        "num_requested": result.num_requested,
        "elapsed_seconds": result.elapsed_seconds,
        "throughput": result.throughput,
        "coalesced_with": result.coalesced_with,
        "error": result.error,
        "summary": dict(result.summary),
        "members": [dict(member) for member in result.members],
    }
    return row


def job_results_to_json(results: Iterable["JobResult"], indent: int = 2) -> str:
    """Serialise service job results (or recovered row dicts) to a JSON
    array (submission order)."""
    return json.dumps([job_result_row(result) for result in results], indent=indent)


def write_job_results_json(
    results: Iterable["JobResult"], path: Union[str, Path]
) -> Path:
    """Write :func:`job_results_to_json` output to ``path`` (returned)."""
    path = Path(path)
    path.write_text(job_results_to_json(results) + "\n")
    return path


def load_job_results_json(text: str) -> List[dict]:
    """Load previously exported job results back into plain dictionaries."""
    data = json.loads(text)
    if not isinstance(data, list):
        raise ValueError("expected a JSON array of job results")
    return data


# -- telemetry exports ---------------------------------------------------------------------

def write_metrics_prometheus(dump: dict, path: Union[str, Path]) -> Path:
    """Write a metrics dump in Prometheus text exposition format.

    ``dump`` is a :meth:`repro.obs.MetricsRegistry.to_dict` dump — e.g.
    :meth:`repro.serve.service.SamplingService.merged_metrics`, so the file
    covers the service process *and* every worker.  This is the file a
    node-exporter-style textfile collector scrapes; the future HTTP tier's
    ``/metrics`` endpoint serves the same rendering.
    """
    from repro.obs import MetricsRegistry

    registry = MetricsRegistry()
    registry.merge(dump)
    path = Path(path)
    path.write_text(registry.to_prometheus())
    return path


def write_metrics_json(dump: dict, path: Union[str, Path]) -> Path:
    """Write a metrics dump as indented JSON (the machine-readable twin of
    :func:`write_metrics_prometheus`)."""
    path = Path(path)
    path.write_text(json.dumps(dump, indent=2, sort_keys=True) + "\n")
    return path
