"""Table II: unique-solution throughput of this work vs the CNF-level baselines.

:func:`build_table2` runs the Table II protocol (every sampler must produce a
minimum number of unique solutions within a timeout) over the representative
instances and assembles one row per instance with the measured throughputs and
the speedup of this work over the best baseline — the same quantities the
paper reports.  The paper's own numbers (when available from the registry
metadata) ride along in each row so EXPERIMENTS.md can show both side by side.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.baselines.base import BaselineSampler
from repro.core.config import SamplerConfig
from repro.eval.report import render_rows
from repro.eval.runner import RunRecord, default_samplers, run_sampler_on_instance
from repro.instances.registry import TABLE2_INSTANCES, get_instance


@dataclass
class Table2Row:
    """One row of the reproduced Table II."""

    instance: str
    num_variables: int
    num_clauses: int
    primary_inputs: int
    primary_outputs: int
    throughputs: Dict[str, float] = field(default_factory=dict)
    timed_out: Dict[str, bool] = field(default_factory=dict)
    speedup_vs_best_baseline: Optional[float] = None
    paper_throughput_this_work: Optional[float] = None
    paper_speedup: Optional[float] = None

    def as_dict(self) -> Dict[str, object]:
        """Flatten for text rendering."""
        row: Dict[str, object] = {
            "instance": self.instance,
            "vars": self.num_variables,
            "clauses": self.num_clauses,
            "PI": self.primary_inputs,
            "PO": self.primary_outputs,
        }
        for name, value in self.throughputs.items():
            row[f"tput[{name}]"] = None if self.timed_out.get(name) and value == 0 else value
        row["speedup"] = self.speedup_vs_best_baseline
        row["paper_speedup"] = self.paper_speedup
        return row


def build_table2(
    instance_names: Optional[Sequence[str]] = None,
    samplers: Optional[Sequence[BaselineSampler]] = None,
    num_solutions: int = 200,
    timeout_seconds: float = 60.0,
    config: Optional[SamplerConfig] = None,
) -> List[Table2Row]:
    """Reproduce Table II over ``instance_names`` (defaults to the paper's 14).

    ``num_solutions`` and ``timeout_seconds`` default to CPU-friendly values;
    pass 1000 and 7200 to match the paper's protocol exactly.
    """
    names = list(instance_names) if instance_names is not None else list(TABLE2_INSTANCES)
    line_up = list(samplers) if samplers is not None else default_samplers(config=config)
    rows: List[Table2Row] = []

    for name in names:
        entry = get_instance(name)
        formula, _ = entry.build()
        records: List[RunRecord] = []
        for sampler in line_up:
            records.append(
                run_sampler_on_instance(
                    sampler, formula, num_solutions=num_solutions,
                    timeout_seconds=timeout_seconds,
                )
            )
        this_work = next((r for r in records if r.sampler_name == "this-work"), None)
        transform_extra = this_work.extra if this_work is not None else {}
        row = Table2Row(
            instance=name,
            num_variables=formula.num_variables,
            num_clauses=formula.num_clauses,
            primary_inputs=entry.paper.primary_inputs if entry.paper else 0,
            primary_outputs=entry.paper.primary_outputs if entry.paper else 0,
            paper_throughput_this_work=(
                entry.paper.throughput_this_work if entry.paper else None
            ),
            paper_speedup=entry.paper.speedup if entry.paper else None,
        )
        # Measured structural counts override the paper metadata when available.
        row.primary_inputs = int(transform_extra.get("primary_inputs", row.primary_inputs) or row.primary_inputs)
        best_baseline = 0.0
        for record in records:
            row.throughputs[record.sampler_name] = record.throughput
            row.timed_out[record.sampler_name] = record.timed_out
            if record.sampler_name != "this-work":
                best_baseline = max(best_baseline, record.throughput)
        if this_work is not None and best_baseline > 0:
            row.speedup_vs_best_baseline = this_work.throughput / best_baseline
        rows.append(row)
    return rows


def render_table2(rows: Sequence[Table2Row]) -> str:
    """Render the reproduced Table II as text."""
    return render_rows(
        [row.as_dict() for row in rows],
        title="Table II - unique-solution throughput (solutions/second)",
    )
