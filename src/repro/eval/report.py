"""Plain-text report rendering shared by the tables, figures and benchmarks."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence


def format_number(value, precision: int = 1) -> str:
    """Human-friendly numeric formatting (thousands separators, TO for None)."""
    if value is None:
        return "TO"
    if isinstance(value, float):
        if value == float("inf"):
            return "inf"
        if abs(value) >= 1000:
            return f"{value:,.{precision}f}"
        return f"{value:.{precision}f}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def render_rows(
    rows: Sequence[Dict[str, object]],
    columns: Optional[Sequence[str]] = None,
    title: str = "",
) -> str:
    """Render a list of dict rows as an aligned text table."""
    if not rows:
        return f"{title}\n(no rows)\n" if title else "(no rows)\n"
    if columns is None:
        columns = list(rows[0].keys())
    rendered = [[format_number(row.get(column)) for column in columns] for row in rows]
    widths = [
        max(len(str(column)), *(len(cells[i]) for cells in rendered))
        for i, column in enumerate(columns)
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    header = "  ".join(str(column).ljust(widths[i]) for i, column in enumerate(columns))
    lines.append(header)
    lines.append("  ".join("-" * width for width in widths))
    for cells in rendered:
        lines.append("  ".join(cells[i].ljust(widths[i]) for i in range(len(columns))))
    return "\n".join(lines) + "\n"


def render_series(
    series: Dict[str, Sequence[float]],
    x_label: str = "x",
    y_label: str = "y",
    title: str = "",
) -> str:
    """Render named (x -> y) series as aligned columns (one block per series)."""
    lines: List[str] = []
    if title:
        lines.append(title)
    for name, values in series.items():
        lines.append(f"[{name}]")
        lines.append(f"  {x_label:>12}  {y_label:>16}")
        for x, y in values:
            lines.append(f"  {format_number(x):>12}  {format_number(y, 3):>16}")
    return "\n".join(lines) + "\n"
