"""Unified sampler runner used by the Table II / Fig. 2 experiments.

The paper compares "this work" against UniGen3, CMSGen and DiffSampler under a
common protocol: each sampler must produce at least a target number of unique
solutions within a timeout, and throughput = unique solutions / second.
:func:`run_sampler_on_instance` applies that protocol to any sampler exposing
the :class:`repro.baselines.base.BaselineSampler` interface;
:class:`ThisWorkSampler` adapts the paper's gradient sampler to it (the
transformation time is kept separate, mirroring the paper's treatment of the
transformation as a one-off preprocessing step reported in Fig. 4 right).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.baselines.base import BaselineSampler, SamplerOutput
from repro.baselines.cmsgen_like import CMSGenStyleSampler
from repro.baselines.diffsampler_like import DiffSamplerStyleSampler
from repro.baselines.quicksampler_like import QuickSamplerStyleSampler
from repro.baselines.unigen_like import UniGenStyleSampler
from repro.cnf.formula import CNF
from repro.core.config import SamplerConfig
from repro.core.sampler import GradientSATSampler
from repro.core.solutions import SolutionSet
from repro.core.transform import TransformResult, transform_cnf


@dataclass
class RunRecord:
    """One (sampler, instance) measurement."""

    sampler_name: str
    instance_name: str
    num_unique: int
    elapsed_seconds: float
    num_requested: int
    timed_out: bool = False
    transform_seconds: float = 0.0
    extra: Dict[str, object] = field(default_factory=dict)

    @property
    def throughput(self) -> float:
        """Unique valid solutions per second (Table II metric)."""
        if self.elapsed_seconds <= 0.0:
            return float("inf") if self.num_unique else 0.0
        return self.num_unique / self.elapsed_seconds


class ThisWorkSampler(BaselineSampler):
    """Adapter exposing the paper's gradient sampler through the common interface."""

    name = "this-work"

    def __init__(
        self,
        config: Optional[SamplerConfig] = None,
        transform_cache: Optional[Dict[str, TransformResult]] = None,
    ) -> None:
        self.config = config or SamplerConfig()
        self._transform_cache = transform_cache if transform_cache is not None else {}
        self.last_transform_seconds = 0.0

    def sample(
        self,
        formula: CNF,
        num_solutions: int = 1000,
        timeout_seconds: Optional[float] = None,
    ) -> SamplerOutput:
        transform_start = time.perf_counter()
        cached = self._transform_cache.get(formula.name)
        if cached is None:
            cached = transform_cnf(formula)
            if formula.name:
                self._transform_cache[formula.name] = cached
        self.last_transform_seconds = time.perf_counter() - transform_start

        config = self.config
        if timeout_seconds is not None:
            config = config.with_(timeout_seconds=timeout_seconds)
        sampler = GradientSATSampler(formula, transform=cached, config=config)
        start = time.perf_counter()
        result = sampler.sample(num_solutions=num_solutions)
        elapsed = time.perf_counter() - start
        return SamplerOutput(
            sampler_name=self.name,
            instance_name=formula.name,
            solutions=result.solutions,
            num_requested=num_solutions,
            elapsed_seconds=elapsed,
            num_generated=result.num_generated,
            timed_out=result.timed_out,
            extra={
                "validity_rate": result.validity_rate,
                "rounds": len(result.rounds),
                "transform_seconds": self.last_transform_seconds,
                "ops_reduction": cached.stats.operations_reduction,
                "primary_inputs": len(cached.primary_inputs),
                "primary_outputs": len(cached.primary_outputs) + len(cached.constraints),
            },
        )


def default_samplers(
    config: Optional[SamplerConfig] = None, seed: int = 0
) -> List[BaselineSampler]:
    """The sampler line-up of Table II: this work + the three CNF-level baselines."""
    return [
        ThisWorkSampler(config=config),
        UniGenStyleSampler(seed=seed),
        CMSGenStyleSampler(seed=seed),
        DiffSamplerStyleSampler(seed=seed),
    ]


def run_sampler_on_instance(
    sampler: BaselineSampler,
    formula: CNF,
    num_solutions: int = 1000,
    timeout_seconds: Optional[float] = None,
) -> RunRecord:
    """Apply the Table II protocol to one (sampler, instance) pair."""
    output = sampler.sample(
        formula, num_solutions=num_solutions, timeout_seconds=timeout_seconds
    )
    transform_seconds = float(output.extra.get("transform_seconds", 0.0) or 0.0)
    return RunRecord(
        sampler_name=output.sampler_name,
        instance_name=formula.name,
        num_unique=output.num_unique,
        elapsed_seconds=output.elapsed_seconds,
        num_requested=num_solutions,
        timed_out=output.timed_out,
        transform_seconds=transform_seconds,
        extra=dict(output.extra),
    )


def run_matrix(
    samplers: Sequence[BaselineSampler],
    formulas: Sequence[CNF],
    num_solutions: int = 1000,
    timeout_seconds: Optional[float] = None,
) -> List[RunRecord]:
    """Run every sampler on every instance; returns the flat list of records."""
    records: List[RunRecord] = []
    for formula in formulas:
        for sampler in samplers:
            records.append(
                run_sampler_on_instance(
                    sampler, formula, num_solutions=num_solutions,
                    timeout_seconds=timeout_seconds,
                )
            )
    return records
