"""Evaluation harness: throughput runner, Table II builder and figure builders.

Each public function regenerates the data behind one table or figure of the
paper's evaluation section (see DESIGN.md's per-experiment index); the
benchmarks in ``benchmarks/`` are thin wrappers that call these functions and
print the resulting rows/series.
"""

from repro.eval.runner import RunRecord, ThisWorkSampler, run_sampler_on_instance, default_samplers
from repro.eval.tables import Table2Row, build_table2, render_table2
from repro.eval.figures import (
    fig2_latency_vs_solutions,
    fig3_learning_curve,
    fig3_memory_vs_batch,
    fig4_gpu_speedup,
    fig4_ops_reduction,
    fig4_transform_time,
)
from repro.eval.report import render_rows
from repro.eval.uniformity_study import UniformityRow, uniformity_study

__all__ = [
    "RunRecord",
    "ThisWorkSampler",
    "run_sampler_on_instance",
    "default_samplers",
    "Table2Row",
    "build_table2",
    "render_table2",
    "fig2_latency_vs_solutions",
    "fig3_learning_curve",
    "fig3_memory_vs_batch",
    "fig4_gpu_speedup",
    "fig4_ops_reduction",
    "fig4_transform_time",
    "render_rows",
    "UniformityRow",
    "uniformity_study",
]
