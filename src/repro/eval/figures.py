"""Figure builders: the data series behind Fig. 2, Fig. 3 and Fig. 4.

Each function returns plain data structures (dicts of series / scalars) so
that the benchmark scripts can print them and tests can assert on their
shapes; no plotting library is required.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.baselines.base import BaselineSampler
from repro.core.config import SamplerConfig
from repro.core.sampler import GradientSATSampler
from repro.core.transform import transform_cnf
from repro.eval.runner import default_samplers, run_sampler_on_instance
from repro.gpu.device import Device, DeviceKind
from repro.gpu.memory import estimate_training_memory
from repro.instances.registry import FIGURE_INSTANCES, get_instance

#: (x, y) pair series type used throughout this module.
Series = List[Tuple[float, float]]


def fig2_latency_vs_solutions(
    instance_names: Optional[Sequence[str]] = None,
    samplers: Optional[Sequence[BaselineSampler]] = None,
    solution_counts: Sequence[int] = (10, 50, 200),
    timeout_seconds: float = 30.0,
    config: Optional[SamplerConfig] = None,
) -> Dict[str, Series]:
    """Fig. 2: latency (ms) vs number of unique solutions, per sampler.

    Every point is one (sampler, instance, requested-count) run; the paper
    plots all 60 instances, this builder defaults to the four ablation
    instances to stay within a CPU budget.
    """
    names = list(instance_names) if instance_names is not None else list(FIGURE_INSTANCES)
    line_up = list(samplers) if samplers is not None else default_samplers(config=config)
    series: Dict[str, Series] = {sampler.name: [] for sampler in line_up}
    for name in names:
        formula, _ = get_instance(name).build()
        for count in solution_counts:
            for sampler in line_up:
                record = run_sampler_on_instance(
                    sampler, formula, num_solutions=count,
                    timeout_seconds=timeout_seconds,
                )
                if record.num_unique > 0:
                    series[record.sampler_name].append(
                        (float(record.num_unique), record.elapsed_seconds * 1e3)
                    )
    return series


def fig3_learning_curve(
    instance_names: Optional[Sequence[str]] = None,
    max_iterations: int = 10,
    batch_size: int = 1024,
    config: Optional[SamplerConfig] = None,
) -> Dict[str, Series]:
    """Fig. 3 (left): unique satisfying solutions vs GD iteration count."""
    names = list(instance_names) if instance_names is not None else list(FIGURE_INSTANCES)
    base_config = config or SamplerConfig(batch_size=batch_size)
    curves: Dict[str, Series] = {}
    for name in names:
        formula, _ = get_instance(name).build()
        transform = transform_cnf(formula)
        sampler = GradientSATSampler(formula, transform=transform, config=base_config)
        counts = sampler.learning_curve(max_iterations=max_iterations, batch_size=batch_size)
        curves[name] = [(float(iteration), float(count)) for iteration, count in enumerate(counts)]
    return curves


def fig3_memory_vs_batch(
    instance_names: Optional[Sequence[str]] = None,
    batch_sizes: Sequence[int] = (100, 1000, 10_000, 100_000, 1_000_000),
) -> Dict[str, Series]:
    """Fig. 3 (right): modelled GPU memory (MB) vs batch size, per instance."""
    names = list(instance_names) if instance_names is not None else list(FIGURE_INSTANCES)
    curves: Dict[str, Series] = {}
    for name in names:
        formula, _ = get_instance(name).build()
        transform = transform_cnf(formula)
        series: Series = []
        for batch in batch_sizes:
            model = estimate_training_memory(transform.circuit, batch)
            series.append((float(batch), model.total_mb))
        curves[name] = series
    return curves


def fig4_gpu_speedup(
    instance_names: Optional[Sequence[str]] = None,
    batch_size: int = 64,
    num_solutions: int = 64,
    config: Optional[SamplerConfig] = None,
) -> Dict[str, Dict[str, float]]:
    """Fig. 4 (left): speedup of vectorised ("gpu-sim") over per-sample ("cpu") execution.

    Both runs execute the identical learning computation on the identical
    batch; only the execution style differs (full-batch NumPy calls vs a
    per-sample Python loop), which is the substituted analogue of the paper's
    GPU-vs-CPU measurement.
    """
    names = list(instance_names) if instance_names is not None else list(FIGURE_INSTANCES)
    results: Dict[str, Dict[str, float]] = {}
    for name in names:
        formula, _ = get_instance(name).build()
        transform = transform_cnf(formula)
        timings: Dict[str, float] = {}
        for device_name, device in (
            ("gpu-sim", Device(DeviceKind.GPU_SIM)),
            ("cpu", Device(DeviceKind.CPU)),
        ):
            run_config = (config or SamplerConfig()).with_(
                batch_size=batch_size, device=device, max_rounds=1,
            )
            sampler = GradientSATSampler(formula, transform=transform, config=run_config)
            start = time.perf_counter()
            sampler.sample(num_solutions=num_solutions)
            timings[device_name] = time.perf_counter() - start
        speedup = timings["cpu"] / timings["gpu-sim"] if timings["gpu-sim"] > 0 else float("inf")
        results[name] = {
            "gpu_seconds": timings["gpu-sim"],
            "cpu_seconds": timings["cpu"],
            "speedup": speedup,
        }
    return results


def fig4_ops_reduction(
    instance_names: Optional[Sequence[str]] = None,
) -> Dict[str, float]:
    """Fig. 4 (middle): bit-wise operation reduction (CNF ops / circuit ops)."""
    names = list(instance_names) if instance_names is not None else list(FIGURE_INSTANCES)
    results: Dict[str, float] = {}
    for name in names:
        formula, _ = get_instance(name).build()
        transform = transform_cnf(formula)
        results[name] = transform.stats.operations_reduction
    return results


def fig4_transform_time(
    instance_names: Optional[Sequence[str]] = None,
) -> Dict[str, float]:
    """Fig. 4 (right): CNF-to-circuit transformation time in seconds."""
    names = list(instance_names) if instance_names is not None else list(FIGURE_INSTANCES)
    results: Dict[str, float] = {}
    for name in names:
        formula, _ = get_instance(name).build()
        start = time.perf_counter()
        transform_cnf(formula)
        results[name] = time.perf_counter() - start
    return results
