"""Uniformity study: how close is each sampler to the uniform distribution?

UniGen3 comes with approximate-uniformity guarantees; CMSGen, QuickSampler and
the paper's gradient sampler do not.  The paper does not quantify uniformity
(its metric is throughput), but any downstream CRV user will ask the question,
so this extension experiment measures it directly on instances small enough to
enumerate exactly:

1. enumerate the full model set with the DPLL oracle,
2. draw a fixed budget of samples from each sampler (with replacement across
   repeated calls, so repeat frequencies are observable),
3. compare the empirical distribution against uniform with a chi-square
   statistic, a p-value and the KL divergence, and record the model coverage.

The companion benchmark (``benchmarks/bench_extension_uniformity.py``) prints
one row per (sampler, instance).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.baselines.base import BaselineSampler
from repro.baselines.dpll import DPLLSolver
from repro.cnf.formula import CNF
from repro.core.config import SamplerConfig
from repro.eval.runner import default_samplers
from repro.metrics.uniformity import chi_square_uniformity, kl_divergence_from_uniform


@dataclass
class UniformityRow:
    """Uniformity measurements for one (sampler, instance) pair."""

    sampler_name: str
    instance_name: str
    num_models: int
    models_covered: int
    draws: int
    chi_square: float
    p_value: float
    kl_divergence: float

    @property
    def coverage(self) -> float:
        """Fraction of the model space that was sampled at least once."""
        if self.num_models == 0:
            return 0.0
        return self.models_covered / self.num_models

    def as_dict(self) -> Dict[str, object]:
        """Flatten for text rendering."""
        return {
            "sampler": self.sampler_name,
            "instance": self.instance_name,
            "models": self.num_models,
            "covered": self.models_covered,
            "coverage": self.coverage,
            "chi2": self.chi_square,
            "p_value": self.p_value,
            "kl": self.kl_divergence,
        }


def _draw_with_repeats(
    sampler: BaselineSampler,
    formula: CNF,
    total_draws: int,
    per_call: int,
    timeout_seconds: float,
) -> Dict[bytes, int]:
    """Accumulate draw counts over repeated sampler calls.

    Each call returns *unique* solutions; calling repeatedly (the way a CRV
    testbench would request batch after batch) exposes each sampler's bias
    through which solutions keep reappearing across calls.
    """
    counts: Dict[bytes, int] = {}
    drawn = 0
    calls = 0
    max_calls = max(4, (total_draws // max(per_call, 1)) * 4)
    while drawn < total_draws and calls < max_calls:
        calls += 1
        output = sampler.sample(formula, num_solutions=per_call, timeout_seconds=timeout_seconds)
        if output.num_unique == 0:
            break
        for row in output.solutions:
            key = np.packbits(np.asarray(row, dtype=bool)).tobytes()
            counts[key] = counts.get(key, 0) + 1
            drawn += 1
            if drawn >= total_draws:
                break
    return counts


def uniformity_study(
    formulas: Sequence[CNF],
    samplers: Optional[Sequence[BaselineSampler]] = None,
    draws_per_instance: int = 400,
    per_call: int = 50,
    timeout_seconds: float = 20.0,
    config: Optional[SamplerConfig] = None,
    max_models: int = 4096,
) -> List[UniformityRow]:
    """Run the uniformity study over small formulas with exactly countable models."""
    line_up = list(samplers) if samplers is not None else default_samplers(config=config)
    rows: List[UniformityRow] = []
    for formula in formulas:
        num_models = DPLLSolver(formula).count_models(limit=max_models + 1)
        if num_models == 0 or num_models > max_models:
            raise ValueError(
                f"instance {formula.name!r} has {num_models} models; the uniformity "
                f"study needs a non-empty model set of at most {max_models}"
            )
        for sampler in line_up:
            counts = _draw_with_repeats(
                sampler, formula, draws_per_instance, per_call, timeout_seconds
            )
            statistic, p_value = chi_square_uniformity(counts, num_models)
            rows.append(
                UniformityRow(
                    sampler_name=sampler.name,
                    instance_name=formula.name,
                    num_models=num_models,
                    models_covered=len(counts),
                    draws=sum(counts.values()),
                    chi_square=statistic,
                    p_value=p_value,
                    kl_divergence=kl_divergence_from_uniform(counts, num_models),
                )
            )
    return rows
