"""Per-batch solution-quality metrics.

The paper's headline metric is unique-solution throughput; these helpers
compute the underlying quantities (validity and uniqueness rates) plus the
Hamming-diversity statistics used by the extended ablation benchmarks to show
that the gradient sampler's solutions are not clustered around a single mode.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.cnf.formula import CNF


def validity_rate(formula: CNF, assignments: np.ndarray) -> float:
    """Fraction of assignments that satisfy ``formula``."""
    assignments = np.asarray(assignments, dtype=bool)
    if assignments.shape[0] == 0:
        return 0.0
    return float(formula.evaluate_batch(assignments).mean())


def uniqueness_rate(assignments: np.ndarray) -> float:
    """Fraction of assignments that are distinct within the batch."""
    assignments = np.asarray(assignments, dtype=bool)
    if assignments.shape[0] == 0:
        return 0.0
    packed = np.packbits(assignments, axis=1)
    unique = np.unique(packed, axis=0).shape[0]
    return unique / assignments.shape[0]


def hamming_diversity(assignments: np.ndarray, sample_pairs: int = 2000,
                      seed: Optional[int] = 0) -> float:
    """Mean pairwise Hamming distance (normalised to [0, 1]).

    For uniform random vectors the expectation is 0.5; values far below
    indicate the sampler collapsed onto a few nearby solutions.  Pairs are
    subsampled for large batches.
    """
    assignments = np.asarray(assignments, dtype=bool)
    count, width = assignments.shape if assignments.ndim == 2 else (0, 0)
    if count < 2 or width == 0:
        return 0.0
    rng = np.random.default_rng(seed)
    total_pairs = count * (count - 1) // 2
    if total_pairs <= sample_pairs:
        first, second = np.triu_indices(count, k=1)
    else:
        first = rng.integers(0, count, size=sample_pairs)
        second = rng.integers(0, count, size=sample_pairs)
        keep = first != second
        first, second = first[keep], second[keep]
        if first.size == 0:
            return 0.0
    distances = (assignments[first] ^ assignments[second]).sum(axis=1)
    return float(distances.mean() / width)


def pairwise_hamming_histogram(
    assignments: np.ndarray, bins: int = 10
) -> Tuple[np.ndarray, np.ndarray]:
    """Histogram of normalised pairwise Hamming distances (exact, small batches)."""
    assignments = np.asarray(assignments, dtype=bool)
    count, width = assignments.shape
    if count < 2:
        return np.zeros(bins), np.linspace(0.0, 1.0, bins + 1)
    first, second = np.triu_indices(count, k=1)
    distances = (assignments[first] ^ assignments[second]).sum(axis=1) / width
    return np.histogram(distances, bins=bins, range=(0.0, 1.0))


def solution_statistics(formula: CNF, assignments: np.ndarray) -> Dict[str, float]:
    """Bundle of quality metrics for one batch of assignments."""
    return {
        "validity_rate": validity_rate(formula, assignments),
        "uniqueness_rate": uniqueness_rate(assignments),
        "hamming_diversity": hamming_diversity(assignments),
    }
