"""Solution-quality metrics: uniqueness, validity, diversity and uniformity."""

from repro.metrics.quality import (
    validity_rate,
    uniqueness_rate,
    hamming_diversity,
    pairwise_hamming_histogram,
)
from repro.metrics.uniformity import (
    chi_square_uniformity,
    empirical_distribution,
    kl_divergence_from_uniform,
)

__all__ = [
    "validity_rate",
    "uniqueness_rate",
    "hamming_diversity",
    "pairwise_hamming_histogram",
    "chi_square_uniformity",
    "empirical_distribution",
    "kl_divergence_from_uniform",
]
