"""Uniformity testing of samplers over the full solution space.

UniGen3 provides approximate-uniformity *guarantees*; the paper's sampler
does not, and neither do CMSGen or QuickSampler.  For small instances the
entire solution space can be enumerated (with the DPLL oracle), so the
empirical distribution of a sampler's draws can be tested against uniform
with a chi-square statistic — this is how the extended benchmarks
characterise each sampler's bias.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

import numpy as np


def empirical_distribution(
    draws: Iterable[np.ndarray],
) -> Dict[bytes, int]:
    """Count how often each distinct assignment appears in ``draws``."""
    counts: Dict[bytes, int] = {}
    for draw in draws:
        key = np.packbits(np.asarray(draw, dtype=bool)).tobytes()
        counts[key] = counts.get(key, 0) + 1
    return counts


def chi_square_uniformity(
    draw_counts: Dict[bytes, int], num_models: int
) -> Tuple[float, float]:
    """Chi-square statistic (and p-value) of draws against the uniform distribution.

    ``num_models`` is the true model count; models never drawn contribute
    their full expected count to the statistic.  The p-value uses the
    chi-square survival function from SciPy when available and a normal
    approximation otherwise.
    """
    if num_models <= 0:
        raise ValueError("num_models must be positive")
    total_draws = sum(draw_counts.values())
    if total_draws == 0:
        return 0.0, 1.0
    expected = total_draws / num_models
    observed = list(draw_counts.values())
    missing_models = num_models - len(observed)
    statistic = sum((count - expected) ** 2 / expected for count in observed)
    statistic += missing_models * expected  # (0 - expected)^2 / expected per missing model
    degrees = num_models - 1
    p_value = _chi2_survival(statistic, degrees)
    return float(statistic), float(p_value)


def kl_divergence_from_uniform(
    draw_counts: Dict[bytes, int], num_models: int
) -> float:
    """KL divergence (nats) of the empirical draw distribution from uniform."""
    total_draws = sum(draw_counts.values())
    if total_draws == 0 or num_models <= 0:
        return 0.0
    uniform = 1.0 / num_models
    divergence = 0.0
    for count in draw_counts.values():
        probability = count / total_draws
        divergence += probability * np.log(probability / uniform)
    return float(divergence)


def _chi2_survival(statistic: float, degrees: int) -> float:
    """Chi-square survival function with a SciPy-free fallback."""
    try:
        from scipy.stats import chi2

        return float(chi2.sf(statistic, degrees))
    except ImportError:  # pragma: no cover - scipy is installed in this environment
        if degrees <= 0:
            return 1.0
        # Wilson-Hilferty normal approximation.
        scaled = (statistic / degrees) ** (1.0 / 3.0)
        mean = 1.0 - 2.0 / (9.0 * degrees)
        std = np.sqrt(2.0 / (9.0 * degrees))
        z = (scaled - mean) / std
        return float(0.5 * (1.0 - np.math.erf(z / np.sqrt(2.0))))
