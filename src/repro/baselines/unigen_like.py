"""UniGen-style sampler: XOR-hash partitioning for near-uniform sampling.

UniGen3 (Soos et al., CAV 2020) achieves approximate-uniformity guarantees by
intersecting the formula with random XOR constraints that partition the
solution space into roughly equal cells, enumerating one random cell and
returning a random member.  This baseline reproduces the mechanism on top of
the from-scratch CDCL solver:

1. draw ``m`` sparse random XOR constraints over the variables,
2. Tseitin-encode them into CNF and conjoin with the formula,
3. enumerate the cell's solutions (up to a pivot) with blocking clauses,
4. emit a random subset of the cell, and adapt ``m`` if the cell was empty
   (too many hashes) or overflowed the pivot (too few).

The statistical guarantees of the original are *not* claimed — this is a
behavioural stand-in with the same algorithmic skeleton and the same
CNF-level costs, which is what the throughput comparison needs.
"""

from __future__ import annotations

import time
from typing import List, Optional, Tuple

import numpy as np

from repro.baselines.base import BaselineSampler, SamplerOutput
from repro.baselines.cdcl import CDCLSolver
from repro.cnf.formula import CNF
from repro.core.solutions import SolutionSet
from repro.utils.rng import RandomState, new_rng


class UniGenStyleSampler(BaselineSampler):
    """Hash-based near-uniform sampler in the style of UniGen3."""

    name = "unigen-style"

    def __init__(
        self,
        seed: Optional[int] = 0,
        pivot: int = 32,
        xor_width: int = 3,
        initial_hashes: int = 2,
        max_hashes: int = 24,
        max_conflicts_per_call: Optional[int] = 50000,
    ) -> None:
        self.seed = seed
        self.pivot = pivot
        self.xor_width = xor_width
        self.initial_hashes = initial_hashes
        self.max_hashes = max_hashes
        self.max_conflicts_per_call = max_conflicts_per_call

    # -- hashing -------------------------------------------------------------------------
    def _random_xor(
        self, rng: RandomState, num_variables: int
    ) -> Tuple[List[int], bool]:
        """Draw a sparse XOR constraint: variables and the required parity."""
        width = min(self.xor_width, num_variables)
        variables = rng.choice(num_variables, size=width, replace=False) + 1
        parity = bool(rng.random() < 0.5)
        return [int(v) for v in variables], parity

    @staticmethod
    def _encode_xor(
        formula: CNF, variables: List[int], parity: bool, next_aux: int
    ) -> Tuple[CNF, int]:
        """Conjoin ``XOR(variables) == parity`` using a chain of auxiliary variables."""
        extended = formula.copy()
        extended.num_variables = max(extended.num_variables, next_aux - 1)
        current = variables[0]
        for variable in variables[1:]:
            aux = next_aux
            next_aux += 1
            extended.num_variables = max(extended.num_variables, aux)
            # aux == current XOR variable
            extended.add_clause([-aux, current, variable])
            extended.add_clause([-aux, -current, -variable])
            extended.add_clause([aux, current, -variable])
            extended.add_clause([aux, -current, variable])
            current = aux
        extended.add_clause([current] if parity else [-current])
        return extended, next_aux

    def _hashed_formula(
        self, formula: CNF, rng: RandomState, num_hashes: int
    ) -> CNF:
        hashed = formula.copy()
        next_aux = formula.num_variables + 1
        for _ in range(num_hashes):
            variables, parity = self._random_xor(rng, formula.num_variables)
            hashed, next_aux = self._encode_xor(hashed, variables, parity, next_aux)
        return hashed

    # -- cell enumeration ------------------------------------------------------------------
    def _enumerate_cell(
        self, hashed: CNF, original_variables: int, rng: RandomState
    ) -> List[np.ndarray]:
        """Enumerate up to ``pivot + 1`` solutions of the hashed formula."""
        solver = CDCLSolver(
            hashed,
            seed=int(rng.integers(2**31 - 1)),
            random_polarity=True,
            max_conflicts=self.max_conflicts_per_call,
        )
        cell: List[np.ndarray] = []
        blocking = hashed.copy()
        while len(cell) <= self.pivot:
            result = solver.solve()
            if result.satisfiable is not True or result.assignment is None:
                break
            assignment = result.assignment[:original_variables]
            cell.append(assignment.copy())
            # Block this solution (projected on original variables) and rebuild.
            blocking_clause = [
                -(index + 1) if value else (index + 1)
                for index, value in enumerate(assignment)
            ]
            blocking.add_clause(blocking_clause)
            solver = CDCLSolver(
                blocking,
                seed=int(rng.integers(2**31 - 1)),
                random_polarity=True,
                max_conflicts=self.max_conflicts_per_call,
            )
        return cell

    # -- main loop ----------------------------------------------------------------------------
    def sample(
        self,
        formula: CNF,
        num_solutions: int = 1000,
        timeout_seconds: Optional[float] = None,
    ) -> SamplerOutput:
        start = time.perf_counter()
        rng = new_rng(self.seed)
        solutions = SolutionSet(formula.num_variables)
        num_hashes = self.initial_hashes
        generated = 0
        timed_out = False
        rounds = 0
        max_rounds = max(num_solutions, 16) * 4

        while len(solutions) < num_solutions and rounds < max_rounds:
            if timeout_seconds is not None and time.perf_counter() - start > timeout_seconds:
                timed_out = True
                break
            rounds += 1
            hashed = self._hashed_formula(formula, rng, num_hashes)
            cell = self._enumerate_cell(hashed, formula.num_variables, rng)
            if not cell:
                # Over-constrained: remove a hash (unless none are left, in
                # which case the formula itself may be unsatisfiable).
                if num_hashes == 0:
                    break
                num_hashes = max(num_hashes - 1, 0)
                continue
            if len(cell) > self.pivot:
                num_hashes = min(num_hashes + 1, self.max_hashes)
            generated += len(cell)
            order = rng.permutation(len(cell))
            for position in order:
                solutions.add(cell[int(position)])
                if len(solutions) >= num_solutions:
                    break
        elapsed = time.perf_counter() - start
        return SamplerOutput(
            sampler_name=self.name,
            instance_name=formula.name,
            solutions=solutions,
            num_requested=num_solutions,
            elapsed_seconds=elapsed,
            num_generated=generated,
            timed_out=timed_out,
            extra={"final_hash_count": num_hashes, "rounds": rounds},
        )
