"""A simple DPLL (Davis-Putnam-Logemann-Loveland) backtracking solver.

Mostly used as a test oracle (exhaustive enumeration of all models for small
formulas) and as the seed-solution provider for the QuickSampler-style
baseline.  The CDCL solver in :mod:`repro.baselines.cdcl` is the one used for
large instances.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.cnf.formula import CNF
from repro.utils.rng import RandomState, new_rng


class DPLLSolver:
    """Recursive DPLL with unit propagation and pure-literal elimination."""

    def __init__(self, formula: CNF, seed: Optional[int] = None) -> None:
        self.formula = formula
        self.num_variables = formula.num_variables
        self._rng: RandomState = new_rng(seed)
        self._clauses: List[Tuple[int, ...]] = [
            clause.literals for clause in formula.clauses
        ]

    # -- public API ---------------------------------------------------------------------
    def solve(self, randomize: bool = False) -> Optional[np.ndarray]:
        """Return one satisfying assignment as a boolean vector, or ``None`` if UNSAT."""
        assignment = self._search(dict(), self._clauses, randomize)
        if assignment is None:
            return None
        return self._complete(assignment, randomize)

    def enumerate_models(self, limit: Optional[int] = None) -> Iterator[np.ndarray]:
        """Yield every model (full assignments) of the formula, up to ``limit``.

        Free variables (those not occurring in any clause, or left unassigned
        by the search) are expanded into both values, so the enumeration is
        over complete assignments — matching how unique solutions are counted
        throughout the library.
        """
        count = 0
        for partial in self._enumerate(dict(), self._clauses):
            for full in self._expand_free(partial):
                yield full
                count += 1
                if limit is not None and count >= limit:
                    return

    def count_models(self, limit: Optional[int] = None) -> int:
        """Count models (up to ``limit``)."""
        total = 0
        for _ in self.enumerate_models(limit=limit):
            total += 1
        return total

    # -- search internals -----------------------------------------------------------------
    def _search(
        self,
        assignment: Dict[int, bool],
        clauses: List[Tuple[int, ...]],
        randomize: bool,
    ) -> Optional[Dict[int, bool]]:
        simplified = self._simplify(assignment, clauses)
        if simplified is None:
            return None
        assignment, clauses = simplified
        if not clauses:
            return assignment
        variable = self._choose_variable(clauses, randomize)
        order = [True, False]
        if randomize and self._rng.random() < 0.5:
            order.reverse()
        for value in order:
            extended = dict(assignment)
            extended[variable] = value
            result = self._search(extended, clauses, randomize)
            if result is not None:
                return result
        return None

    def _enumerate(
        self, assignment: Dict[int, bool], clauses: List[Tuple[int, ...]]
    ) -> Iterator[Dict[int, bool]]:
        simplified = self._simplify(assignment, clauses)
        if simplified is None:
            return
        assignment, clauses = simplified
        if not clauses:
            yield assignment
            return
        variable = self._choose_variable(clauses, randomize=False)
        for value in (False, True):
            extended = dict(assignment)
            extended[variable] = value
            yield from self._enumerate(extended, clauses)

    def _simplify(
        self, assignment: Dict[int, bool], clauses: List[Tuple[int, ...]]
    ) -> Optional[Tuple[Dict[int, bool], List[Tuple[int, ...]]]]:
        assignment = dict(assignment)
        current = clauses
        while True:
            reduced: List[Tuple[int, ...]] = []
            unit: Optional[int] = None
            for clause in current:
                satisfied = False
                remaining: List[int] = []
                for literal in clause:
                    variable = abs(literal)
                    if variable in assignment:
                        if assignment[variable] == (literal > 0):
                            satisfied = True
                            break
                    else:
                        remaining.append(literal)
                if satisfied:
                    continue
                if not remaining:
                    return None
                if len(remaining) == 1 and unit is None:
                    unit = remaining[0]
                reduced.append(tuple(remaining))
            if unit is None:
                return assignment, reduced
            assignment[abs(unit)] = unit > 0
            current = reduced

    def _choose_variable(self, clauses: List[Tuple[int, ...]], randomize: bool) -> int:
        if randomize:
            clause = clauses[int(self._rng.integers(len(clauses)))]
            return abs(clause[int(self._rng.integers(len(clause)))])
        # Pick the variable occurring most often (a simple MOMS-like heuristic).
        counts: Dict[int, int] = {}
        for clause in clauses:
            for literal in clause:
                counts[abs(literal)] = counts.get(abs(literal), 0) + 1
        return max(counts, key=counts.get)

    # -- helpers -------------------------------------------------------------------------------
    def _complete(self, assignment: Dict[int, bool], randomize: bool) -> np.ndarray:
        values = np.zeros(self.num_variables, dtype=bool)
        for variable in range(1, self.num_variables + 1):
            if variable in assignment:
                values[variable - 1] = assignment[variable]
            elif randomize:
                values[variable - 1] = bool(self._rng.random() < 0.5)
        return values

    def _expand_free(self, assignment: Dict[int, bool]) -> Iterator[np.ndarray]:
        free = [
            variable
            for variable in range(1, self.num_variables + 1)
            if variable not in assignment
        ]
        base = np.zeros(self.num_variables, dtype=bool)
        for variable, value in assignment.items():
            base[variable - 1] = value
        if not free:
            yield base
            return
        for mask in range(2 ** len(free)):
            vector = base.copy()
            for position, variable in enumerate(free):
                vector[variable - 1] = bool((mask >> position) & 1)
            yield vector
