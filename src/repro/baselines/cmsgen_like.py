"""CMSGen-style sampler: randomised CDCL enumeration.

CMSGen (Golia et al., FMCAD 2021) obtains surprisingly uniform samples by
running a CDCL solver with heavily randomised branching polarity and order,
restarting for every sample.  This baseline reproduces that recipe on top of
:class:`repro.baselines.cdcl.CDCLSolver`: each sample is one solver call with
fresh random seed, random polarities and a small random-decision rate, and
duplicates are discarded.
"""

from __future__ import annotations

import time
from typing import Optional

from repro.baselines.base import BaselineSampler, SamplerOutput
from repro.baselines.cdcl import CDCLSolver
from repro.cnf.formula import CNF
from repro.core.solutions import SolutionSet
from repro.utils.rng import new_rng


class CMSGenStyleSampler(BaselineSampler):
    """One randomised CDCL run per sample, in the style of CMSGen."""

    name = "cmsgen-style"

    def __init__(
        self,
        seed: Optional[int] = 0,
        random_decision_rate: float = 0.3,
        max_conflicts_per_call: Optional[int] = 50000,
        max_attempt_factor: int = 20,
    ) -> None:
        self.seed = seed
        self.random_decision_rate = random_decision_rate
        self.max_conflicts_per_call = max_conflicts_per_call
        self.max_attempt_factor = max_attempt_factor

    def sample(
        self,
        formula: CNF,
        num_solutions: int = 1000,
        timeout_seconds: Optional[float] = None,
    ) -> SamplerOutput:
        start = time.perf_counter()
        rng = new_rng(self.seed)
        solutions = SolutionSet(formula.num_variables)
        attempts = 0
        generated = 0
        timed_out = False
        max_attempts = max(num_solutions * self.max_attempt_factor, 10)

        solver = CDCLSolver(
            formula,
            seed=int(rng.integers(2**31 - 1)),
            random_polarity=True,
            random_decision_rate=self.random_decision_rate,
            max_conflicts=self.max_conflicts_per_call,
        )
        while len(solutions) < num_solutions and attempts < max_attempts:
            if timeout_seconds is not None and time.perf_counter() - start > timeout_seconds:
                timed_out = True
                break
            attempts += 1
            solver._rng = new_rng(int(rng.integers(2**31 - 1)))
            result = solver.solve()
            if result.satisfiable is not True or result.assignment is None:
                if result.satisfiable is False:
                    break  # UNSAT: no solutions exist at all.
                continue
            generated += 1
            solutions.add(result.assignment)
        elapsed = time.perf_counter() - start
        return SamplerOutput(
            sampler_name=self.name,
            instance_name=formula.name,
            solutions=solutions,
            num_requested=num_solutions,
            elapsed_seconds=elapsed,
            num_generated=generated,
            timed_out=timed_out,
            extra={"attempts": attempts},
        )
