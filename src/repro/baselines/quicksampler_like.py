"""QuickSampler-style sampler: seed solution + atomic-mutation combination.

QuickSampler (Dutra et al., ICSE 2018) observes that, starting from one
satisfying "seed" assignment, the *atomic mutations* needed to flip each
individual variable (while staying satisfiable) can be combined — simply
XOR-ing several mutation patterns onto the seed — to produce large numbers of
candidate assignments with very few solver calls; candidates are then checked
and only the valid ones kept.  This baseline reproduces that recipe:

1. obtain a seed solution with the CDCL solver;
2. for every variable, solve once under the assumption that the variable is
   flipped (phase saving biased towards the seed keeps the solution close),
   recording the difference pattern;
3. combine random subsets of the difference patterns into candidates;
4. validate candidates against the formula and keep the unique valid ones.
"""

from __future__ import annotations

import time
from typing import List, Optional

import numpy as np

from repro.baselines.base import BaselineSampler, SamplerOutput
from repro.baselines.cdcl import CDCLSolver
from repro.cnf.formula import CNF
from repro.core.solutions import SolutionSet
from repro.utils.rng import new_rng


class QuickSamplerStyleSampler(BaselineSampler):
    """Mutation-combining sampler in the style of QuickSampler."""

    name = "quicksampler-style"

    def __init__(
        self,
        seed: Optional[int] = 0,
        max_mutations: int = 128,
        combinations_per_round: int = 512,
        max_combination_size: int = 4,
        max_conflicts_per_call: Optional[int] = 50000,
    ) -> None:
        self.seed = seed
        self.max_mutations = max_mutations
        self.combinations_per_round = combinations_per_round
        self.max_combination_size = max_combination_size
        self.max_conflicts_per_call = max_conflicts_per_call

    def sample(
        self,
        formula: CNF,
        num_solutions: int = 1000,
        timeout_seconds: Optional[float] = None,
    ) -> SamplerOutput:
        start = time.perf_counter()
        rng = new_rng(self.seed)
        solutions = SolutionSet(formula.num_variables)
        generated = 0
        timed_out = False

        solver = CDCLSolver(
            formula,
            seed=int(rng.integers(2**31 - 1)),
            random_polarity=True,
            max_conflicts=self.max_conflicts_per_call,
        )
        seed_result = solver.solve()
        if seed_result.satisfiable is not True or seed_result.assignment is None:
            return self._empty_output(
                formula, num_solutions, time.perf_counter() - start
            )
        seed_solution = seed_result.assignment
        solutions.add(seed_solution)
        generated += 1

        mutations = self._collect_mutations(
            formula, seed_solution, rng, start, timeout_seconds
        )

        # Combine mutations until the target count or the budget is reached.
        while len(solutions) < num_solutions:
            if timeout_seconds is not None and time.perf_counter() - start > timeout_seconds:
                timed_out = True
                break
            if not mutations:
                break
            candidates = self._combine(seed_solution, mutations, rng)
            generated += candidates.shape[0]
            valid = formula.evaluate_batch(candidates)
            before = len(solutions)
            solutions.add_batch(candidates, valid)
            if len(solutions) == before:
                # The mutation pool is exhausted for this seed; draw a new seed
                # to escape, or stop when the solver cannot produce one.
                solver._rng = new_rng(int(rng.integers(2**31 - 1)))
                new_seed = solver.solve()
                if new_seed.satisfiable is not True or new_seed.assignment is None:
                    break
                if solutions.contains(new_seed.assignment):
                    break
                seed_solution = new_seed.assignment
                solutions.add(seed_solution)
                mutations = self._collect_mutations(
                    formula, seed_solution, rng, start, timeout_seconds
                )
        elapsed = time.perf_counter() - start
        return SamplerOutput(
            sampler_name=self.name,
            instance_name=formula.name,
            solutions=solutions,
            num_requested=num_solutions,
            elapsed_seconds=elapsed,
            num_generated=generated,
            timed_out=timed_out,
            extra={"num_mutations": len(mutations)},
        )

    # -- internals ---------------------------------------------------------------------------
    def _collect_mutations(
        self,
        formula: CNF,
        seed_solution: np.ndarray,
        rng,
        start: float,
        timeout_seconds: Optional[float],
    ) -> List[np.ndarray]:
        """Difference patterns obtained by flipping each variable of the seed."""
        mutations: List[np.ndarray] = []
        num_variables = formula.num_variables
        variables = rng.permutation(num_variables)[: self.max_mutations]
        for variable_index in variables:
            if timeout_seconds is not None and time.perf_counter() - start > timeout_seconds:
                break
            variable = int(variable_index) + 1
            flipped_value = not seed_solution[variable - 1]
            assumption = variable if flipped_value else -variable
            solver = CDCLSolver(
                formula,
                seed=int(rng.integers(2**31 - 1)),
                random_polarity=False,
                max_conflicts=self.max_conflicts_per_call,
            )
            # Bias the search towards the seed so the mutation stays "atomic".
            for index in range(num_variables):
                solver._saved_phase[index + 1] = bool(seed_solution[index])
            result = solver.solve(assumptions=[assumption])
            if result.satisfiable is not True or result.assignment is None:
                continue
            difference = np.logical_xor(result.assignment, seed_solution)
            if difference.any():
                mutations.append(difference)
        return mutations

    def _combine(
        self, seed_solution: np.ndarray, mutations: List[np.ndarray], rng
    ) -> np.ndarray:
        """XOR random subsets of mutation patterns onto the seed solution."""
        count = self.combinations_per_round
        candidates = np.tile(seed_solution, (count, 1))
        for row in range(count):
            subset_size = int(rng.integers(1, self.max_combination_size + 1))
            chosen = rng.choice(len(mutations), size=min(subset_size, len(mutations)), replace=False)
            for mutation_index in chosen:
                candidates[row] ^= mutations[int(mutation_index)]
        return candidates
