"""DiffSampler-style baseline: gradient descent directly on the CNF.

DiffSampler (Ardakani et al., DAC 2024 late-breaking) is the paper's closest
comparator: a GPU-accelerated, differentiable sampler that — unlike the
paper's method — operates on the *flat CNF* rather than on a recovered
multi-level circuit.  Reproducing it isolates the benefit of the
transformation: both samplers share the same learning machinery (sigmoid
embedding, probabilistic relaxation, batched gradient descent), but this one
must evaluate every clause of the CNF, so its per-iteration cost scales with
the CNF's operation count rather than the circuit's.

Relaxation used here (standard for differentiable SAT):

* variable probability ``p_v = sigmoid(V_v)``;
* literal probability ``q = p`` for a positive literal, ``1 - p`` for a
  negative one;
* clause unsatisfaction ``u_c = prod_{literals} (1 - q)``;
* loss ``L = sum_c u_c^2`` (zero exactly when every clause is satisfied).

The forward and backward passes are hand-vectorised over a padded
``(clauses, width)`` literal matrix (processed in chunks to bound memory),
which mirrors how the JAX implementation vectorises over clauses.
"""

from __future__ import annotations

import time
from typing import List, Optional, Tuple

import numpy as np

from repro.baselines.base import BaselineSampler, SamplerOutput
from repro.cnf.formula import CNF
from repro.core.solutions import SolutionSet
from repro.utils.rng import new_rng


class DiffSamplerStyleSampler(BaselineSampler):
    """Batched gradient-descent sampling directly over CNF clauses."""

    name = "diffsampler-style"

    def __init__(
        self,
        batch_size: int = 256,
        iterations: int = 20,
        learning_rate: float = 4.0,
        init_scale: float = 1.0,
        seed: Optional[int] = 0,
        max_rounds: int = 32,
        clause_chunk_elements: int = 2_000_000,
    ) -> None:
        if batch_size <= 0 or iterations <= 0 or learning_rate <= 0:
            raise ValueError("batch_size, iterations and learning_rate must be positive")
        self.batch_size = batch_size
        self.iterations = iterations
        self.learning_rate = learning_rate
        self.init_scale = init_scale
        self.seed = seed
        self.max_rounds = max_rounds
        self.clause_chunk_elements = clause_chunk_elements

    # -- clause tensorisation -------------------------------------------------------------
    @staticmethod
    def _pad_clauses(formula: CNF) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Pad clauses into index/sign/mask matrices of shape (clauses, max_width)."""
        widths = [len(clause) for clause in formula.clauses]
        max_width = max(widths) if widths else 1
        num_clauses = formula.num_clauses
        variable_index = np.zeros((num_clauses, max_width), dtype=np.int64)
        positive = np.zeros((num_clauses, max_width), dtype=bool)
        mask = np.zeros((num_clauses, max_width), dtype=bool)
        for row, clause in enumerate(formula.clauses):
            for column, literal in enumerate(clause):
                variable_index[row, column] = abs(literal) - 1
                positive[row, column] = literal > 0
                mask[row, column] = True
        return variable_index, positive, mask

    def _loss_and_grad(
        self,
        probabilities: np.ndarray,
        variable_index: np.ndarray,
        positive: np.ndarray,
        mask: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Loss per sample and gradient w.r.t. the probabilities."""
        batch, num_variables = probabilities.shape
        num_clauses, width = variable_index.shape
        loss = np.zeros(batch)
        grad = np.zeros_like(probabilities)
        chunk = max(1, self.clause_chunk_elements // max(batch * width, 1))
        epsilon = 1e-12
        for start in range(0, num_clauses, chunk):
            stop = min(start + chunk, num_clauses)
            idx = variable_index[start:stop]          # (c, w)
            pos = positive[start:stop]
            msk = mask[start:stop]
            lit_prob = probabilities[:, idx]           # (b, c, w)
            lit_prob = np.where(pos, lit_prob, 1.0 - lit_prob)
            miss = np.where(msk, 1.0 - lit_prob, 1.0)  # padded entries contribute 1
            unsat = miss.prod(axis=2)                  # (b, c)
            loss += (unsat**2).sum(axis=1)
            # d(unsat)/d(miss_j) = prod_{k != j} miss_k = unsat / miss_j
            partial = 2.0 * unsat[:, :, None] * (unsat[:, :, None] / np.maximum(miss, epsilon))
            # d(miss)/d(p) = -1 for positive literals, +1 for negative ones.
            dp = np.where(pos, -partial, partial)
            dp = np.where(msk, dp, 0.0)
            # Scatter-add into the gradient (duplicate variable indices accumulate).
            flat_idx = idx.reshape(-1)
            dp_flat = dp.reshape(batch, -1)
            rows = np.arange(batch)[:, None]
            np.add.at(grad, (rows, flat_idx[None, :]), dp_flat)
        return loss, grad

    # -- sampling loop -----------------------------------------------------------------------
    def sample(
        self,
        formula: CNF,
        num_solutions: int = 1000,
        timeout_seconds: Optional[float] = None,
    ) -> SamplerOutput:
        start = time.perf_counter()
        rng = new_rng(self.seed)
        solutions = SolutionSet(formula.num_variables)
        variable_index, positive, mask = self._pad_clauses(formula)
        generated = 0
        timed_out = False
        loss_history: List[float] = []

        for _ in range(self.max_rounds):
            if len(solutions) >= num_solutions:
                break
            if timeout_seconds is not None and time.perf_counter() - start > timeout_seconds:
                timed_out = True
                break
            soft = rng.normal(0.0, self.init_scale, size=(self.batch_size, formula.num_variables))
            for _ in range(self.iterations):
                probabilities = 1.0 / (1.0 + np.exp(-soft))
                loss, grad_p = self._loss_and_grad(
                    probabilities, variable_index, positive, mask
                )
                grad_soft = grad_p * probabilities * (1.0 - probabilities)
                soft -= self.learning_rate * grad_soft
            loss_history.append(float(loss.mean()))
            candidates = soft > 0.0
            valid = formula.evaluate_batch(candidates)
            generated += candidates.shape[0]
            solutions.add_batch(candidates, valid)
        elapsed = time.perf_counter() - start
        return SamplerOutput(
            sampler_name=self.name,
            instance_name=formula.name,
            solutions=solutions,
            num_requested=num_solutions,
            elapsed_seconds=elapsed,
            num_generated=generated,
            timed_out=timed_out,
            extra={"mean_final_loss": loss_history[-1] if loss_history else None},
        )
