"""Baseline SAT solvers and samplers.

The paper compares against UniGen3, CMSGen and DiffSampler (and cites
QuickSampler); all of them operate directly on the CNF.  To make the
comparison self-contained this package re-implements the whole stack from
scratch:

* solver substrates: :mod:`repro.baselines.dpll` (DPLL),
  :mod:`repro.baselines.cdcl` (CDCL with watched literals, VSIDS and Luby
  restarts) and :mod:`repro.baselines.walksat` (stochastic local search);
* sampler baselines in the style of the published tools:
  :class:`~repro.baselines.unigen_like.UniGenStyleSampler` (XOR-hash
  partitioning for near-uniform sampling),
  :class:`~repro.baselines.cmsgen_like.CMSGenStyleSampler` (randomised-
  polarity CDCL enumeration),
  :class:`~repro.baselines.quicksampler_like.QuickSamplerStyleSampler`
  (seed-solution flipping), and
  :class:`~repro.baselines.diffsampler_like.DiffSamplerStyleSampler`
  (gradient descent directly on the CNF clauses, i.e. the paper's
  DiffSampler comparator — same learning machinery as the core sampler but
  without the CNF-to-circuit transformation).
"""

from repro.baselines.base import BaselineSampler, SamplerOutput
from repro.baselines.dpll import DPLLSolver
from repro.baselines.cdcl import CDCLSolver, SolverResult
from repro.baselines.walksat import WalkSATSolver
from repro.baselines.unigen_like import UniGenStyleSampler
from repro.baselines.cmsgen_like import CMSGenStyleSampler
from repro.baselines.quicksampler_like import QuickSamplerStyleSampler
from repro.baselines.diffsampler_like import DiffSamplerStyleSampler

__all__ = [
    "BaselineSampler",
    "SamplerOutput",
    "DPLLSolver",
    "CDCLSolver",
    "SolverResult",
    "WalkSATSolver",
    "UniGenStyleSampler",
    "CMSGenStyleSampler",
    "QuickSamplerStyleSampler",
    "DiffSamplerStyleSampler",
]
