"""WalkSAT stochastic local search (Selman et al.).

Referenced by the paper as one of the classic efficient SAT-solving
techniques; used here both as a standalone solution finder and as the
diversification engine inside the QuickSampler-style baseline.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.cnf.formula import CNF
from repro.utils.rng import RandomState, new_rng


class WalkSATSolver:
    """WalkSAT with the standard noise parameter and random restarts."""

    def __init__(
        self,
        formula: CNF,
        noise: float = 0.5,
        max_flips: int = 10000,
        max_restarts: int = 10,
        seed: Optional[int] = None,
    ) -> None:
        if not 0.0 <= noise <= 1.0:
            raise ValueError(f"noise must be in [0, 1], got {noise}")
        self.formula = formula
        self.noise = noise
        self.max_flips = max_flips
        self.max_restarts = max_restarts
        self._rng: RandomState = new_rng(seed)
        self.num_variables = formula.num_variables
        self._clauses: List[List[int]] = [list(c.literals) for c in formula.clauses]
        self._plan = formula.evaluation_plan()
        # Occurrence lists: variable -> clause indices containing it.
        self._occurrences: Dict[int, List[int]] = {}
        for index, clause in enumerate(self._clauses):
            for literal in clause:
                self._occurrences.setdefault(abs(literal), []).append(index)

    def solve(self, initial: Optional[np.ndarray] = None) -> Optional[np.ndarray]:
        """Search for a satisfying assignment; returns it or ``None`` on failure."""
        for restart in range(self.max_restarts):
            if initial is not None and restart == 0:
                assignment = np.asarray(initial, dtype=bool).copy()
            else:
                assignment = self._rng.random(self.num_variables) < 0.5
            result = self._walk(assignment)
            if result is not None:
                return result
        return None

    def _walk(self, assignment: np.ndarray) -> Optional[np.ndarray]:
        unsatisfied = self._unsatisfied_clauses(assignment)
        for _ in range(self.max_flips):
            if not unsatisfied:
                return assignment
            clause_index = unsatisfied[int(self._rng.integers(len(unsatisfied)))]
            clause = self._clauses[clause_index]
            if self._rng.random() < self.noise:
                literal = clause[int(self._rng.integers(len(clause)))]
                flip_variable = abs(literal)
            else:
                flip_variable = self._best_flip(clause, assignment)
            assignment[flip_variable - 1] = not assignment[flip_variable - 1]
            unsatisfied = self._unsatisfied_clauses(assignment)
        return None

    def _best_flip(self, clause: List[int], assignment: np.ndarray) -> int:
        """Pick the variable in ``clause`` whose flip breaks the fewest clauses."""
        best_variable = abs(clause[0])
        best_broken = None
        for literal in clause:
            variable = abs(literal)
            assignment[variable - 1] = not assignment[variable - 1]
            broken = 0
            for clause_index in self._occurrences.get(variable, []):
                if not self._clause_satisfied(self._clauses[clause_index], assignment):
                    broken += 1
            assignment[variable - 1] = not assignment[variable - 1]
            if best_broken is None or broken < best_broken:
                best_broken = broken
                best_variable = variable
        return best_variable

    def _clause_satisfied(self, clause: List[int], assignment: np.ndarray) -> bool:
        return any(
            assignment[abs(literal) - 1] == (literal > 0) for literal in clause
        )

    def _unsatisfied_clauses(self, assignment: np.ndarray) -> List[int]:
        satisfied = self._plan.clause_satisfaction(assignment[None, :])[0]
        return np.flatnonzero(~satisfied).tolist()
