"""A conflict-driven clause-learning (CDCL) SAT solver.

This is the solver substrate underneath the UniGen-style and CMSGen-style
samplers.  It implements the standard modern architecture the paper describes
in Section I (and attributes to GRASP/Chaff/MiniSat):

* two-watched-literal clause propagation,
* first-UIP conflict analysis with clause learning and non-chronological
  backjumping,
* VSIDS-style activity-based decision heuristics with decay,
* Luby-sequence restarts, and
* optional randomised polarity / decision-order, which is what the
  CMSGen-style sampler perturbs to obtain diverse solutions.

The implementation favours clarity over raw speed — it comfortably handles the
synthetic benchmark instances of this reproduction (thousands of variables)
but is not meant to compete with C++ solvers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cnf.formula import CNF
from repro.utils.rng import RandomState, new_rng

#: Sentinel decision level for unassigned variables.
_UNASSIGNED = -1


@dataclass
class SolverResult:
    """Outcome of one solver call."""

    satisfiable: Optional[bool]
    assignment: Optional[np.ndarray] = None  # boolean vector, variable 1 first
    conflicts: int = 0
    decisions: int = 0
    propagations: int = 0
    restarts: int = 0
    learned_clauses: int = 0

    @property
    def status(self) -> str:
        """``"sat"``, ``"unsat"`` or ``"unknown"`` (budget exhausted)."""
        if self.satisfiable is None:
            return "unknown"
        return "sat" if self.satisfiable else "unsat"


@dataclass
class _ClauseRef:
    """Internal clause storage with its two watched literal positions."""

    literals: List[int]
    learned: bool = False


def _luby(index: int) -> int:
    """The Luby restart sequence 1,1,2,1,1,2,4,... (``index`` is 0-based)."""
    position = index + 1
    while True:
        length = position.bit_length()
        if position == (1 << length) - 1:
            return 1 << (length - 1)
        position = position - (1 << (length - 1)) + 1


class CDCLSolver:
    """CDCL solver over a :class:`~repro.cnf.formula.CNF`."""

    def __init__(
        self,
        formula: CNF,
        seed: Optional[int] = None,
        random_polarity: bool = False,
        random_decision_rate: float = 0.02,
        restart_interval: int = 64,
        max_conflicts: Optional[int] = None,
        decay: float = 0.95,
    ) -> None:
        self.formula = formula
        self.num_variables = formula.num_variables
        self._rng: RandomState = new_rng(seed)
        self.random_polarity = random_polarity
        self.random_decision_rate = random_decision_rate
        self.restart_interval = restart_interval
        self.max_conflicts = max_conflicts
        self.decay = decay

        self._clauses: List[_ClauseRef] = []
        self._watches: Dict[int, List[int]] = {}
        self._assignment: List[Optional[bool]] = [None] * (self.num_variables + 1)
        self._level: List[int] = [_UNASSIGNED] * (self.num_variables + 1)
        self._reason: List[Optional[int]] = [None] * (self.num_variables + 1)
        self._trail: List[int] = []
        self._trail_limits: List[int] = []
        self._activity: np.ndarray = np.zeros(self.num_variables + 1)
        self._activity_increment = 1.0
        self._saved_phase: List[bool] = [False] * (self.num_variables + 1)
        self._empty_clause = False
        self._units: List[int] = []

        for clause in formula.clauses:
            self._add_clause(list(clause.literals), learned=False)

    # -- clause management ------------------------------------------------------------
    def _add_clause(self, literals: List[int], learned: bool) -> Optional[int]:
        unique = list(dict.fromkeys(literals))
        if any(-lit in unique for lit in unique):
            return None  # tautology
        if not unique:
            self._empty_clause = True
            return None
        if len(unique) == 1:
            # Unit clauses are handled as level-0 facts rather than watched
            # clauses (two-watched-literal propagation needs two positions).
            self._units.append(unique[0])
            return None
        index = len(self._clauses)
        self._clauses.append(_ClauseRef(unique, learned))
        for watch_literal in unique[:2]:
            self._watches.setdefault(watch_literal, []).append(index)
        return index

    # -- assignment helpers -------------------------------------------------------------
    def _value(self, literal: int) -> Optional[bool]:
        value = self._assignment[abs(literal)]
        if value is None:
            return None
        return value if literal > 0 else not value

    def _current_level(self) -> int:
        return len(self._trail_limits)

    def _enqueue(self, literal: int, reason: Optional[int]) -> bool:
        value = self._value(literal)
        if value is not None:
            return value
        variable = abs(literal)
        self._assignment[variable] = literal > 0
        self._level[variable] = self._current_level()
        self._reason[variable] = reason
        self._trail.append(literal)
        return True

    # -- propagation -----------------------------------------------------------------------
    def _propagate(self, result: SolverResult) -> Optional[int]:
        """Unit propagation; returns a conflicting clause index or ``None``."""
        queue_position = len(self._trail) - 1 if self._trail else 0
        # Propagate everything on the trail that has not been processed yet.
        pointer = getattr(self, "_propagated", 0)
        while pointer < len(self._trail):
            literal = self._trail[pointer]
            pointer += 1
            result.propagations += 1
            falsified = -literal
            watch_list = self._watches.get(falsified, [])
            new_watch_list: List[int] = []
            conflict: Optional[int] = None
            index_position = 0
            while index_position < len(watch_list):
                clause_index = watch_list[index_position]
                index_position += 1
                clause = self._clauses[clause_index]
                literals = clause.literals
                # Ensure the falsified literal is in position 1.
                if literals[0] == falsified:
                    literals[0], literals[1] = literals[1], literals[0]
                first = literals[0]
                if self._value(first) is True:
                    new_watch_list.append(clause_index)
                    continue
                # Look for a replacement watch.
                replaced = False
                for position in range(2, len(literals)):
                    candidate = literals[position]
                    if self._value(candidate) is not False:
                        literals[1], literals[position] = literals[position], literals[1]
                        self._watches.setdefault(candidate, []).append(clause_index)
                        replaced = True
                        break
                if replaced:
                    continue
                # No replacement: clause is unit or conflicting.
                new_watch_list.append(clause_index)
                if self._value(first) is False:
                    # Conflict: keep remaining watches and report.
                    new_watch_list.extend(watch_list[index_position:])
                    conflict = clause_index
                    break
                self._enqueue(first, clause_index)
            self._watches[falsified] = new_watch_list
            if conflict is not None:
                self._propagated = pointer
                return conflict
        self._propagated = pointer
        del queue_position
        return None

    # -- conflict analysis --------------------------------------------------------------------
    def _analyze(self, conflict_index: int) -> Tuple[List[int], int]:
        """First-UIP conflict analysis; returns (learned clause, backjump level)."""
        learned: List[int] = []
        seen = [False] * (self.num_variables + 1)
        counter = 0
        literal: Optional[int] = None
        clause_literals = list(self._clauses[conflict_index].literals)
        trail_index = len(self._trail) - 1
        current_level = self._current_level()

        while True:
            for clause_literal in clause_literals:
                variable = abs(clause_literal)
                if seen[variable] or self._level[variable] == 0:
                    continue
                seen[variable] = True
                self._bump_activity(variable)
                if self._level[variable] == current_level:
                    counter += 1
                else:
                    learned.append(clause_literal)
            # Find the next literal on the trail to resolve on.
            while True:
                literal = self._trail[trail_index]
                trail_index -= 1
                if seen[abs(literal)]:
                    break
            counter -= 1
            if counter == 0:
                break
            reason_index = self._reason[abs(literal)]
            if reason_index is None:
                break
            clause_literals = [
                lit for lit in self._clauses[reason_index].literals if lit != literal
            ]
        assert literal is not None
        learned = [-literal] + learned
        if len(learned) == 1:
            return learned, 0
        backjump = max(self._level[abs(lit)] for lit in learned[1:])
        # Place a literal from the backjump level in the second watch position.
        for position in range(1, len(learned)):
            if self._level[abs(learned[position])] == backjump:
                learned[1], learned[position] = learned[position], learned[1]
                break
        return learned, backjump

    def _bump_activity(self, variable: int) -> None:
        self._activity[variable] += self._activity_increment
        if self._activity[variable] > 1e100:
            self._activity /= 1e100
            self._activity_increment /= 1e100

    def _decay_activity(self) -> None:
        self._activity_increment /= self.decay

    # -- backtracking -------------------------------------------------------------------------
    def _backtrack(self, level: int) -> None:
        if self._current_level() <= level:
            return
        cutoff = self._trail_limits[level]
        for literal in self._trail[cutoff:]:
            variable = abs(literal)
            self._saved_phase[variable] = self._assignment[variable] is True
            self._assignment[variable] = None
            self._level[variable] = _UNASSIGNED
            self._reason[variable] = None
        del self._trail[cutoff:]
        del self._trail_limits[level:]
        self._propagated = min(getattr(self, "_propagated", 0), len(self._trail))

    # -- decision heuristics ---------------------------------------------------------------------
    def _pick_branch_variable(self) -> Optional[int]:
        unassigned = [
            variable
            for variable in range(1, self.num_variables + 1)
            if self._assignment[variable] is None
        ]
        if not unassigned:
            return None
        if self._rng.random() < self.random_decision_rate:
            return int(self._rng.choice(unassigned))
        activities = self._activity[unassigned]
        best = int(np.argmax(activities))
        return unassigned[best]

    def _pick_polarity(self, variable: int) -> bool:
        if self.random_polarity:
            return bool(self._rng.random() < 0.5)
        return self._saved_phase[variable]

    # -- main loop ----------------------------------------------------------------------------------
    def solve(self, assumptions: Sequence[int] = ()) -> SolverResult:
        """Solve the formula (optionally under assumption literals)."""
        result = SolverResult(satisfiable=None)
        if self._empty_clause:
            result.satisfiable = False
            return result
        self._reset_state()

        # Apply unit clauses and assumptions as level-0 enqueues.
        for literal in list(self._units) + list(assumptions):
            if not self._enqueue(literal, None):
                result.satisfiable = False
                return result

        conflicts_since_restart = 0
        restart_count = 0
        restart_limit = self.restart_interval * _luby(0)

        while True:
            conflict = self._propagate(result)
            if conflict is not None:
                result.conflicts += 1
                conflicts_since_restart += 1
                if self.max_conflicts is not None and result.conflicts >= self.max_conflicts:
                    result.satisfiable = None
                    return result
                if self._current_level() == 0:
                    result.satisfiable = False
                    return result
                learned, backjump_level = self._analyze(conflict)
                self._backtrack(backjump_level)
                clause_index = self._add_clause(learned, learned=True)
                result.learned_clauses += 1
                self._decay_activity()
                if clause_index is not None and len(learned) > 1:
                    self._enqueue(learned[0], clause_index)
                elif len(learned) == 1:
                    if not self._enqueue(learned[0], None):
                        result.satisfiable = False
                        return result
                continue

            if conflicts_since_restart >= restart_limit:
                restart_count += 1
                result.restarts += 1
                conflicts_since_restart = 0
                restart_limit = self.restart_interval * _luby(restart_count)
                self._backtrack(0)
                continue

            variable = self._pick_branch_variable()
            if variable is None:
                result.satisfiable = True
                result.assignment = self._extract_assignment()
                return result
            result.decisions += 1
            self._trail_limits.append(len(self._trail))
            polarity = self._pick_polarity(variable)
            self._enqueue(variable if polarity else -variable, None)

    def _reset_state(self) -> None:
        self._assignment = [None] * (self.num_variables + 1)
        self._level = [_UNASSIGNED] * (self.num_variables + 1)
        self._reason = [None] * (self.num_variables + 1)
        self._trail = []
        self._trail_limits = []
        self._propagated = 0
        # Drop learned clauses from previous calls to keep repeated sampling
        # calls independent (and memory bounded).
        keep = [clause for clause in self._clauses if not clause.learned]
        if len(keep) != len(self._clauses):
            self._clauses = keep
            self._watches = {}
            for index, clause in enumerate(self._clauses):
                for watch_literal in clause.literals[:2]:
                    self._watches.setdefault(watch_literal, []).append(index)

    def _extract_assignment(self) -> np.ndarray:
        values = np.zeros(self.num_variables, dtype=bool)
        for variable in range(1, self.num_variables + 1):
            value = self._assignment[variable]
            values[variable - 1] = bool(value) if value is not None else bool(
                self._rng.random() < 0.5
            )
        return values
