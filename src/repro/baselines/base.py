"""Common interface shared by every sampler (baselines and the paper's sampler).

The evaluation harness only needs two things from a sampler: a name and a
``sample`` method returning a :class:`SamplerOutput` with the unique valid
solutions and the wall-clock time spent, from which throughput (the Table II
metric) is derived.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.cnf.formula import CNF
from repro.core.solutions import SolutionSet


@dataclass
class SamplerOutput:
    """Unified result record for any sampler."""

    sampler_name: str
    instance_name: str
    solutions: SolutionSet
    num_requested: int
    elapsed_seconds: float
    num_generated: int = 0
    timed_out: bool = False
    extra: Dict[str, object] = field(default_factory=dict)

    @property
    def num_unique(self) -> int:
        """Number of unique valid solutions produced."""
        return len(self.solutions)

    @property
    def throughput(self) -> float:
        """Unique valid solutions per second."""
        if self.elapsed_seconds <= 0.0:
            return float("inf") if self.num_unique else 0.0
        return self.num_unique / self.elapsed_seconds

    def solution_matrix(self, limit: Optional[int] = None) -> np.ndarray:
        """Unique solutions as a boolean matrix over the original variables."""
        return self.solutions.to_matrix(limit)


class BaselineSampler:
    """Abstract base class for CNF-level samplers."""

    #: Human-readable sampler name used in tables and plots.
    name = "baseline"

    def sample(
        self,
        formula: CNF,
        num_solutions: int = 1000,
        timeout_seconds: Optional[float] = None,
    ) -> SamplerOutput:
        """Produce up to ``num_solutions`` unique valid solutions of ``formula``."""
        raise NotImplementedError

    # -- shared helpers ---------------------------------------------------------------
    def _empty_output(
        self, formula: CNF, num_solutions: int, elapsed: float, timed_out: bool = False
    ) -> SamplerOutput:
        return SamplerOutput(
            sampler_name=self.name,
            instance_name=formula.name,
            solutions=SolutionSet(formula.num_variables),
            num_requested=num_solutions,
            elapsed_seconds=elapsed,
            timed_out=timed_out,
        )

    @staticmethod
    def _validate_and_store(
        formula: CNF, solutions: SolutionSet, candidates: List[np.ndarray]
    ) -> int:
        """Validate candidate assignments against ``formula`` and store the valid ones."""
        if not candidates:
            return 0
        matrix = np.stack(candidates, axis=0)
        valid = formula.evaluate_batch(matrix)
        return solutions.add_batch(matrix, valid)
