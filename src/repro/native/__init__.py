"""Optional native kernel tiers for the measured hot loops (``repro.native``).

After the array-backend work vectorised everything NumPy can vectorise, the
remaining wall-clock lives in loops NumPy cannot fuse: the CNF kernel's
width-bucketed clause reduction, the engine executor's per-block dispatch and
the transform's per-candidate complement checks.  This package provides
compiled implementations of exactly those three dominators, each pinned to
the pure-Python path by the equivalence suite in ``tests/native/``:

* the **cext** tier — small dependency-free C kernels compiled on demand with
  the system compiler and loaded via :mod:`ctypes`
  (:mod:`repro.native.cext`);
* the **numba** tier — jitted mirrors used when Numba is installed
  (:mod:`repro.native.numba_tier`).

Tier selection mirrors :mod:`repro.xp` backend selection, with precedence
``environment < SamplerConfig.kernel < CLI --kernel``:

* ``auto`` (default) — the best available tier, silently none when no tier
  can be brought up (pure-Python/NumPy paths keep running unchanged);
* ``native`` — the best available tier, raising
  :class:`~repro.xp.backend.BackendUnavailableError` when none is;
* ``cext`` / ``numba`` — that specific tier or an error;
* ``python`` (alias ``off``) — disable native kernels outright.

Availability is probed once per process and memoised; the one-time build/JIT
cost is reported by :func:`compile_seconds` so the serving layer and the
benchmarks can keep cold-vs-warm numbers honest.
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager
from typing import Iterator, Optional, Tuple

from repro.xp.backend import BackendUnavailableError
from repro.native.kernels import (
    NativeKernels,
    TRANSFORM_MAX_VARS,
    clear_artifact_caches,
)

#: Environment variable selecting the default kernel mode.
NATIVE_ENV_VAR = "REPRO_NATIVE"

#: Recognised kernel modes (``off`` is accepted as an alias of ``python``).
MODES = ("auto", "native", "python", "off", "cext", "numba")

#: Tier probe order under ``auto``/``native``.
TIERS = ("cext", "numba")

_DEFAULT_MODE: Optional[str] = None
_LOCK = threading.Lock()
#: Memoised tier probes: name -> (kernels or None, error message or None).
_TIER_STATE: dict = {}
#: Memoised ``numba_tier`` module (False = not probed, None = unavailable).
_NUMBA_MODULE: object = False


def _validate_mode(mode: str) -> str:
    if mode not in MODES:
        raise ValueError(f"unknown native kernel mode {mode!r}; expected one of {MODES}")
    return "python" if mode == "off" else mode


def default_mode() -> str:
    """The process-default mode (explicit override, else ``$REPRO_NATIVE``, else auto)."""
    if _DEFAULT_MODE is not None:
        return _DEFAULT_MODE
    return _validate_mode(os.environ.get(NATIVE_ENV_VAR, "auto").strip().lower() or "auto")


def set_default_mode(mode: Optional[str]) -> None:
    """Set (or with ``None`` reset) the process-default kernel mode."""
    global _DEFAULT_MODE
    _DEFAULT_MODE = None if mode is None else _validate_mode(mode)


def resolve_mode(mode: Optional[str] = None) -> str:
    """``mode`` validated, falling back to the process default when ``None``."""
    if mode is None:
        return default_mode()
    return _validate_mode(mode)


@contextmanager
def use_kernel(mode: Optional[str]) -> Iterator[None]:
    """Scope the process-default kernel mode (``None`` = leave unchanged)."""
    global _DEFAULT_MODE
    if mode is None:
        yield
        return
    previous = _DEFAULT_MODE
    set_default_mode(mode)
    try:
        yield
    finally:
        _DEFAULT_MODE = previous


def _probe_tier(name: str) -> Tuple[Optional[NativeKernels], Optional[str]]:
    state = _TIER_STATE.get(name)  # lock-free fast path once probed
    if state is not None:
        return state
    with _LOCK:
        state = _TIER_STATE.get(name)
        if state is None:
            try:
                if name == "cext":
                    from repro.native.kernels import CExtKernels

                    state = (CExtKernels(), None)
                else:
                    from repro.native.kernels import NumbaKernels

                    state = (NumbaKernels(), None)
            except BackendUnavailableError as error:
                state = (None, str(error))
            except Exception as error:  # pragma: no cover - environment-specific
                state = (None, f"native tier {name!r} failed to load: {error}")
            _TIER_STATE[name] = state
        return state


def kernels_for(mode: Optional[str] = None) -> Optional[NativeKernels]:
    """The kernel set for ``mode``, or ``None`` when native execution is off.

    ``auto`` degrades silently to ``None`` when no tier is available; the
    explicit modes (``native``, ``cext``, ``numba``) raise
    :class:`~repro.xp.backend.BackendUnavailableError` instead, mirroring how
    explicitly requested array backends fail loudly while defaults degrade.
    """
    resolved = resolve_mode(mode)
    if resolved == "python":
        return None
    if resolved in ("cext", "numba"):
        kernels, error = _probe_tier(resolved)
        if kernels is None:
            raise BackendUnavailableError(error or f"native tier {resolved!r} unavailable")
        return kernels
    errors = []
    for tier in TIERS:
        kernels, error = _probe_tier(tier)
        if kernels is not None:
            return kernels
        errors.append(error or f"{tier}: unavailable")
    if resolved == "native":
        raise BackendUnavailableError(
            "no native kernel tier available: " + "; ".join(errors)
        )
    return None


def native_available() -> bool:
    """Whether any native tier can be brought up in this process."""
    try:
        return kernels_for("auto") is not None
    except BackendUnavailableError:  # pragma: no cover - auto never raises
        return False


def active_tier(mode: Optional[str] = None) -> Optional[str]:
    """Name of the tier ``mode`` resolves to (``None`` = pure Python/NumPy)."""
    try:
        kernels = kernels_for(mode)
    except BackendUnavailableError:
        return None
    return None if kernels is None else kernels.tier


def available_tiers() -> Tuple[str, ...]:
    """The native tiers that can be brought up, in probe order."""
    return tuple(tier for tier in TIERS if _probe_tier(tier)[0] is not None)


def compile_seconds() -> float:
    """Total wall-clock seconds this process spent building native kernels.

    Covers the C tier's shared-library build (0.0 on a disk-cache hit) and
    the Numba tier's JIT warm-up.  Monotone non-decreasing; callers snapshot
    deltas around work units to attribute compile cost honestly.
    """
    total = 0.0
    from repro.native import cext

    total += cext.compile_seconds()
    numba_tier = _numba_module()
    if numba_tier is not None:
        total += numba_tier.compile_seconds()
    return total


def _numba_module():
    """The ``numba_tier`` module, or ``None`` when Numba is absent (memoised).

    A module whose body raises is evicted from ``sys.modules``, so repeating
    the bare import from concurrent threads can surface as a spurious
    ``ImportError`` mid-import; probing once under the lock keeps
    :func:`compile_seconds` thread-safe and cheap.
    """
    global _NUMBA_MODULE
    if _NUMBA_MODULE is not False:
        return _NUMBA_MODULE
    with _LOCK:
        if _NUMBA_MODULE is False:
            try:
                from repro.native import numba_tier

                _NUMBA_MODULE = numba_tier
            except (BackendUnavailableError, ImportError):
                _NUMBA_MODULE = None
    return _NUMBA_MODULE


def clear_caches() -> None:
    """Drop per-artifact native memos (flattened programs, CNF plan arrays).

    Folded into :func:`repro.xp.clear_caches`; the compiled libraries and
    jitted functions themselves stay loaded (they are artifact-independent).
    """
    clear_artifact_caches()


__all__ = [
    "BackendUnavailableError",
    "MODES",
    "NATIVE_ENV_VAR",
    "NativeKernels",
    "TIERS",
    "TRANSFORM_MAX_VARS",
    "active_tier",
    "available_tiers",
    "clear_caches",
    "compile_seconds",
    "default_mode",
    "kernels_for",
    "native_available",
    "resolve_mode",
    "set_default_mode",
    "use_kernel",
]
