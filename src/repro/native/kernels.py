"""Array marshalling and per-artifact caching for the native kernel tiers.

The tier modules (:mod:`repro.native.cext`, :mod:`repro.native.numba_tier`)
expose raw kernels over flat C-contiguous buffers; this module owns everything
above them:

* flattening compiled artifacts into the layouts the kernels consume —
  :func:`cnf_native_arrays` for a :class:`~repro.cnf.kernel.CNFEvalPlan`,
  :func:`engine_native_state` for a
  :class:`~repro.engine.program.CompiledProgram` — memoised *on the artifact*
  so they drop with their owner exactly like the engine's block arrays and
  the CNF plan's device uploads.  Both memos are additionally tracked in
  :class:`~repro.utils.weakcache.OwnerRegistry` instances so
  :func:`repro.native.clear_caches` (folded into
  :func:`repro.xp.clear_caches`) can strip them process-wide;
* the :class:`NativeKernels` facade the integration points call, with one
  concrete subclass per tier.  The facade's methods take the repo's own
  objects (plans, programs, clause groups) and host NumPy arrays, and return
  host NumPy arrays bitwise-identical to the pure-Python reference paths
  (gradients: within the engine's 1e-10 accumulation-order contract).
"""

from __future__ import annotations

import ctypes
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.utils.weakcache import OwnerRegistry

#: Widest raw support the native complement scan handles (truth tables of
#: 2**16 rows = 1024 uint64 words); wider ``max_vars`` requests stay on the
#: Python big-int path so decisions never depend on the tier.
TRANSFORM_MAX_VARS = 16

#: Plans holding memoised native arrays / programs holding native states.
_PLAN_OWNERS = OwnerRegistry()
_PROGRAM_OWNERS = OwnerRegistry()


def clear_artifact_caches() -> None:
    """Strip the native memos off every live plan and program."""
    _PLAN_OWNERS.clear(lambda plan: plan._native_arrays.clear())
    _PROGRAM_OWNERS.clear(lambda program: program.__dict__.pop("_native_state", None))
    _SCAN_VERDICTS.clear()


# -- CNF plan flattening ----------------------------------------------------------------
@dataclass(frozen=True)
class CNFNativeArrays:
    """The flat clause layout the CNF kernels consume (int64/uint8, contiguous)."""

    literal_columns: np.ndarray  # int64, one entry per literal
    literal_negated: np.ndarray  # uint8, parallel to literal_columns
    clause_offsets: np.ndarray  # int64, len = num_nonempty + 1 (end-inclusive)

    @property
    def num_clauses(self) -> int:
        return int(self.clause_offsets.shape[0]) - 1

    @property
    def nbytes(self) -> int:
        return int(
            self.literal_columns.nbytes
            + self.literal_negated.nbytes
            + self.clause_offsets.nbytes
        )


def cnf_native_arrays(plan) -> CNFNativeArrays:
    """The native layout of ``plan``, memoised on the plan itself."""
    arrays = plan._native_arrays.get("native")
    if arrays is None:
        offsets = np.empty(plan.reduce_offsets.shape[0] + 1, dtype=np.int64)
        offsets[:-1] = plan.reduce_offsets
        offsets[-1] = plan.num_literals
        arrays = CNFNativeArrays(
            literal_columns=np.ascontiguousarray(plan.literal_columns, dtype=np.int64),
            literal_negated=np.ascontiguousarray(plan.literal_negated, dtype=np.uint8),
            clause_offsets=offsets,
        )
        plan._native_arrays["native"] = arrays
        _PLAN_OWNERS.register(plan)
    return arrays


# -- engine program flattening ----------------------------------------------------------
@dataclass(frozen=True)
class EngineNativeState:
    """A compiled program as flat per-op arrays (the native execution layout)."""

    opcodes: np.ndarray  # uint8
    a_slots: np.ndarray  # int32
    b_slots: np.ndarray  # int32 (0 for NOT ops; never read)
    out_slots: np.ndarray  # int32

    @property
    def num_ops(self) -> int:
        return int(self.opcodes.shape[0])

    @property
    def nbytes(self) -> int:
        return int(
            self.opcodes.nbytes
            + self.a_slots.nbytes
            + self.b_slots.nbytes
            + self.out_slots.nbytes
        )


def engine_native_state(program) -> EngineNativeState:
    """Flatten ``program`` into per-op arrays, memoised on the program.

    The memo rides the program object, so it is dropped together with the
    program by the engine's mutation-driven invalidation and by the serving
    layer's byte-bounded :class:`~repro.serve.cache.ArtifactCache` eviction;
    :func:`repro.native.clear_caches` strips it explicitly.
    """
    state = program.__dict__.get("_native_state")
    if state is None:
        num_ops = program.num_ops
        opcodes = np.empty(num_ops, dtype=np.uint8)
        a_slots = np.empty(num_ops, dtype=np.int32)
        b_slots = np.zeros(num_ops, dtype=np.int32)
        out_slots = np.empty(num_ops, dtype=np.int32)
        position = 0
        for block in program.blocks:
            stop = position + block.size
            opcodes[position:stop] = block.opcode
            a_slots[position:stop] = block.a_slots
            if block.b_slots.size:
                b_slots[position:stop] = block.b_slots
            out_slots[position:stop] = np.arange(
                block.out_start, block.out_stop, dtype=np.int32
            )
            position = stop
        state = EngineNativeState(opcodes, a_slots, b_slots, out_slots)
        program._native_state = state
        _PROGRAM_OWNERS.register(program)
    return state


# -- clause-group flattening (transform complement scan) --------------------------------
def flatten_clause_group(clauses: Sequence) -> tuple:
    """``(literals, offsets)`` python lists of a clause group for the scan kernel.

    Lists, not arrays: the scan runs thousands of times per transform on
    groups of a few dozen literals, where ``ndarray`` construction costs more
    than the kernel itself.  Each tier converts once, into its own layout
    (the C tier into persistent per-thread buffers).
    """
    literals: list = []
    offsets = [0]
    for clause in clauses:
        literals.extend(clause.literals)
        offsets.append(len(literals))
    return literals, offsets


#: Memoised scan verdicts.  The stream loop re-attempts the same
#: ``(variable, clause group)`` many times while the buffer grows around it;
#: the pure-Python path amortises those repeats through its interned clause
#: truth tables, so the native path must not pay full marshalling + kernel
#: cost per repeat to stay ahead.  Verdicts are tier-independent (every tier
#: is pinned decision-for-decision to the Python path), so one flat map
#: serves them all.  Bounded by wholesale reset — the map is tiny (a handful
#: of machine words per entry) and one transform rarely makes > 100k distinct
#: attempts; cleared with the other native memos by ``clear_artifact_caches``.
_SCAN_VERDICTS: dict = {}
_SCAN_VERDICT_LIMIT = 1 << 18


def _as_bool_matrix(matrix) -> np.ndarray:
    """Host C-contiguous uint8 view of a boolean assignment matrix."""
    matrix = np.asarray(matrix)
    if matrix.dtype != np.bool_:
        matrix = matrix.astype(bool)
    return np.ascontiguousarray(matrix).view(np.uint8)


class NativeKernels:
    """One tier's kernels behind a uniform, repo-object-level API.

    Subclasses provide the raw per-buffer entry points (``_cnf_eval`` …);
    every public method here does the marshalling: contiguity, dtype views,
    scratch allocation, and the empty-formula / empty-clause special cases —
    kept identical to :class:`~repro.cnf.kernel.CNFEvalPlan`'s fused paths.
    """

    tier = "abstract"

    # -- CNF ----------------------------------------------------------------------------
    def cnf_evaluate(self, plan, assignments) -> np.ndarray:
        """Per-row satisfaction, bitwise identical to ``plan.evaluate``."""
        matrix = _as_bool_matrix(assignments)
        batch = matrix.shape[0]
        if plan.num_empty:
            return np.zeros(batch, dtype=bool)
        if plan.reduce_offsets.size == 0:
            return np.ones(batch, dtype=bool)
        arrays = cnf_native_arrays(plan)
        num_words = (batch + 63) // 64
        scratch = np.empty((matrix.shape[1], num_words), dtype=np.uint64)
        out = np.empty(batch, dtype=np.uint8)
        self._cnf_eval(
            matrix,
            arrays.literal_columns,
            arrays.literal_negated,
            arrays.clause_offsets,
            scratch,
            out,
        )
        return out.view(np.bool_)

    def cnf_unsatisfied_counts(self, plan, assignments) -> np.ndarray:
        """Per-row falsified-clause counts, identical to ``plan.unsatisfied_counts``."""
        matrix = _as_bool_matrix(assignments)
        batch = matrix.shape[0]
        if plan.reduce_offsets.size == 0:
            return np.full(batch, plan.num_empty, dtype=np.int64)
        arrays = cnf_native_arrays(plan)
        num_words = (batch + 63) // 64
        scratch = np.empty((matrix.shape[1], num_words), dtype=np.uint64)
        out = np.empty(batch, dtype=np.int64)
        self._cnf_unsat_counts(
            matrix,
            arrays.literal_columns,
            arrays.literal_negated,
            arrays.clause_offsets,
            plan.num_empty,
            scratch,
            out,
        )
        return out

    # -- engine -------------------------------------------------------------------------
    def engine_forward(self, program, values) -> None:
        """Run the op stream in place over the ``(slots, batch)`` float matrix."""
        state = engine_native_state(program)
        self._engine_forward(values, state)

    def engine_backward(self, program, values, grads) -> None:
        """Accumulate operand gradients in place (reverse op order)."""
        state = engine_native_state(program)
        self._engine_backward(values, grads, state)

    def engine_execute_bool(self, program, values) -> None:
        """Boolean mode in place over the ``(slots, batch)`` bool matrix."""
        state = engine_native_state(program)
        self._engine_execute_bool(values.view(np.uint8), state)

    def engine_execute_packed(self, program, values) -> None:
        """Bit-parallel mode in place over the ``(slots, lanes)`` uint64 matrix."""
        state = engine_native_state(program)
        self._engine_execute_packed(values, state)

    # -- transform ----------------------------------------------------------------------
    def complement_scan(self, variable: int, clauses: Sequence, max_vars: int) -> int:
        """Fast-path verdict for one ``(variable, clause group)`` attempt.

        Returns ``1`` (the group defines ``variable``), ``0`` (it does not)
        or ``-1`` (raw support wider than ``max_vars``; the caller falls back
        to the exact expression route).  ``max_vars`` must be at most
        :data:`TRANSFORM_MAX_VARS`; the caller guards.  Verdicts are memoised
        (see ``_SCAN_VERDICTS``) — repeat attempts on a growing stream buffer
        cost a dict lookup, like the Python path's interned truth tables.
        """
        key = (
            int(variable),
            int(max_vars),
            tuple(clause.literals for clause in clauses),
        )
        verdict = _SCAN_VERDICTS.get(key)
        if verdict is None:
            literals, offsets = flatten_clause_group(clauses)
            verdict = self._complement_scan(
                literals, offsets, int(variable), int(max_vars)
            )
            if len(_SCAN_VERDICTS) >= _SCAN_VERDICT_LIMIT:
                _SCAN_VERDICTS.clear()
            _SCAN_VERDICTS[key] = verdict
        return verdict


def _ptr(array: np.ndarray, ctype):
    return array.ctypes.data_as(ctypes.POINTER(ctype))


class CExtKernels(NativeKernels):
    """The compiled-C tier (ctypes over the on-demand-built shared library)."""

    tier = "cext"

    def __init__(self) -> None:
        import threading

        from repro.native import cext

        self._lib = cext.load_library()
        # Per-thread scan scratch: one buffer pair with its ctypes pointers
        # built once.  ``ndarray.ctypes.data_as`` costs microseconds — more
        # than the scan kernel itself on typical groups — so per-call pointer
        # construction would hand the win straight back to the Python path.
        self._scan_local = threading.local()

    def _scan_scratch(self, num_literals: int, num_offsets: int):
        scratch = getattr(self._scan_local, "scratch", None)
        if (
            scratch is None
            or scratch[0].shape[0] < num_literals
            or scratch[1].shape[0] < num_offsets
        ):
            literals = np.empty(max(4096, num_literals), dtype=np.int32)
            offsets = np.empty(max(1025, num_offsets), dtype=np.int64)
            scratch = (
                literals,
                offsets,
                literals.ctypes.data_as(ctypes.POINTER(ctypes.c_int32)),
                offsets.ctypes.data_as(ctypes.POINTER(ctypes.c_int64)),
            )
            self._scan_local.scratch = scratch
        return scratch

    def _cnf_eval(self, matrix, cols, neg, offs, scratch, out) -> None:
        batch, nvars = matrix.shape
        self._lib.repro_cnf_eval(
            _ptr(matrix, ctypes.c_uint8),
            batch,
            nvars,
            _ptr(cols, ctypes.c_int64),
            _ptr(neg, ctypes.c_uint8),
            _ptr(offs, ctypes.c_int64),
            offs.shape[0] - 1,
            _ptr(scratch, ctypes.c_uint64),
            _ptr(out, ctypes.c_uint8),
        )

    def _cnf_unsat_counts(self, matrix, cols, neg, offs, num_empty, scratch, out) -> None:
        batch, nvars = matrix.shape
        self._lib.repro_cnf_unsat_counts(
            _ptr(matrix, ctypes.c_uint8),
            batch,
            nvars,
            _ptr(cols, ctypes.c_int64),
            _ptr(neg, ctypes.c_uint8),
            _ptr(offs, ctypes.c_int64),
            offs.shape[0] - 1,
            num_empty,
            _ptr(scratch, ctypes.c_uint64),
            _ptr(out, ctypes.c_int64),
        )

    def _engine_forward(self, values, state) -> None:
        if values.dtype == np.float64:
            fn, ctype = self._lib.repro_engine_forward_f64, ctypes.c_double
        else:
            fn, ctype = self._lib.repro_engine_forward_f32, ctypes.c_float
        fn(
            _ptr(values, ctype),
            values.shape[1],
            state.num_ops,
            _ptr(state.opcodes, ctypes.c_uint8),
            _ptr(state.a_slots, ctypes.c_int32),
            _ptr(state.b_slots, ctypes.c_int32),
            _ptr(state.out_slots, ctypes.c_int32),
        )

    def _engine_backward(self, values, grads, state) -> None:
        if values.dtype == np.float64:
            fn, ctype = self._lib.repro_engine_backward_f64, ctypes.c_double
        else:
            fn, ctype = self._lib.repro_engine_backward_f32, ctypes.c_float
        fn(
            _ptr(values, ctype),
            _ptr(grads, ctype),
            values.shape[1],
            state.num_ops,
            _ptr(state.opcodes, ctypes.c_uint8),
            _ptr(state.a_slots, ctypes.c_int32),
            _ptr(state.b_slots, ctypes.c_int32),
            _ptr(state.out_slots, ctypes.c_int32),
        )

    def _engine_execute_bool(self, values, state) -> None:
        self._lib.repro_engine_execute_bool(
            _ptr(values, ctypes.c_uint8),
            values.shape[1],
            state.num_ops,
            _ptr(state.opcodes, ctypes.c_uint8),
            _ptr(state.a_slots, ctypes.c_int32),
            _ptr(state.b_slots, ctypes.c_int32),
            _ptr(state.out_slots, ctypes.c_int32),
        )

    def _engine_execute_packed(self, values, state) -> None:
        self._lib.repro_engine_execute_packed(
            _ptr(values, ctypes.c_uint64),
            values.shape[1],
            state.num_ops,
            _ptr(state.opcodes, ctypes.c_uint8),
            _ptr(state.a_slots, ctypes.c_int32),
            _ptr(state.b_slots, ctypes.c_int32),
            _ptr(state.out_slots, ctypes.c_int32),
        )

    def _complement_scan(self, literals, offsets, variable, max_vars) -> int:
        buffer_literals, buffer_offsets, literals_ptr, offsets_ptr = (
            self._scan_scratch(len(literals), len(offsets))
        )
        buffer_literals[: len(literals)] = literals
        buffer_offsets[: len(offsets)] = offsets
        return int(
            self._lib.repro_transform_complement_scan(
                literals_ptr, offsets_ptr, len(offsets) - 1, variable, max_vars
            )
        )


class NumbaKernels(NativeKernels):
    """The Numba tier (optional dependency; jitted mirrors of the C kernels)."""

    tier = "numba"

    def __init__(self) -> None:
        from repro.native import numba_tier

        self._mod = numba_tier
        numba_tier.warm_up()

    def _cnf_eval(self, matrix, cols, neg, offs, scratch, out) -> None:
        self._mod.cnf_eval(matrix, cols, neg, offs, scratch, out)

    def _cnf_unsat_counts(self, matrix, cols, neg, offs, num_empty, scratch, out) -> None:
        self._mod.cnf_unsat_counts(matrix, cols, neg, offs, num_empty, scratch, out)

    def _engine_forward(self, values, state) -> None:
        self._mod.engine_forward(
            values, state.opcodes, state.a_slots, state.b_slots, state.out_slots
        )

    def _engine_backward(self, values, grads, state) -> None:
        self._mod.engine_backward(
            values, grads, state.opcodes, state.a_slots, state.b_slots, state.out_slots
        )

    def _engine_execute_bool(self, values, state) -> None:
        self._mod.engine_execute_bool(
            values, state.opcodes, state.a_slots, state.b_slots, state.out_slots
        )

    def _engine_execute_packed(self, values, state) -> None:
        self._mod.engine_execute_packed(
            values, state.opcodes, state.a_slots, state.b_slots, state.out_slots
        )

    def _complement_scan(self, literals, offsets, variable, max_vars) -> int:
        return int(
            self._mod.complement_scan(
                np.array(literals, dtype=np.int32),
                np.array(offsets, dtype=np.int64),
                variable,
                max_vars,
            )
        )
