"""The C tier of :mod:`repro.native`: kernels compiled on demand with ``cc``.

The hot loops NumPy cannot fuse — the CNF clause reduction, the engine's
per-slot op dispatch and the transform's bitmask complement scan — are small,
dependency-free C functions.  Rather than shipping a build step, the source
below is compiled *on first use* into a shared library (``cc -O3 -fPIC
-shared``) under a per-user cache directory keyed by the source hash, then
loaded with :mod:`ctypes`.  A repeat process with the same source finds the
library on disk and pays nothing; the one-time build cost is recorded in
:func:`repro.native.compile_seconds` so benchmarks and the serving layer can
report cold-vs-warm numbers honestly.

No compiler, a failing compile, or a failing load all degrade to
"tier unavailable" (:class:`~repro.xp.backend.BackendUnavailableError` at
explicit request, silent fallback under ``auto``) — the same contract the
CuPy/Torch array backends follow.

Kernel inventory (all operate on caller-allocated C-contiguous buffers):

* ``repro_cnf_eval`` / ``repro_cnf_unsat_counts`` — packed-uint64 clause
  reduction: the boolean assignment matrix is bit-packed column-wise into
  64-row words once, then every clause reduces word-wise (64 assignments per
  op) with an early exit once a word has no satisfying row left.
* ``repro_engine_forward_/backward_f64/f32`` — the levelized program as one
  C loop over flat per-op arrays; forward is elementwise and therefore
  bitwise identical to the NumPy block path, backward accumulates operand
  gradients sequentially per op (covered by the engine's 1e-10 gradient
  contract — NumPy's ``reduceat`` uses platform-dependent reduction trees).
* ``repro_engine_execute_bool`` / ``_packed`` — the boolean and bit-parallel
  execution modes of the same program.
* ``repro_transform_complement_scan`` — the fast-path prelude of
  ``find_boolean_expression`` (raw-support scan, tautology rule, width gate)
  plus the truth-table bitmask complement check, over uint64 words instead
  of Python big-ints.  Returns accept/reject/wide.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import subprocess
import tempfile
import time
from pathlib import Path
from typing import Optional

from repro.xp.backend import BackendUnavailableError
from repro import obs

_COMPILE_SECONDS_METRIC = obs.counter(
    "repro_native_compile_seconds_total",
    "Wall-clock seconds spent building native kernel tiers.",
    labels=("tier",),
)

#: Environment variable overriding where compiled libraries are cached.
CACHE_DIR_ENV_VAR = "REPRO_NATIVE_CACHE_DIR"

C_SOURCE = r"""
#include <stdint.h>

/* ---------------- CNF kernels (packed-uint64 clause reduction) ------------------- */

/* Bit-pack the (batch, nvars) row-major boolean matrix column-wise:
   bit j of colwords[v*nwords + w] = assign[(w*64 + j)*nvars + v].
   Branchless register accumulation — random assignments mispredict a
   per-bit test ~50% of the time, which would make packing cost more
   than the clause reduction it feeds. */
static void pack_columns(const uint8_t *assign, int64_t batch, int64_t nvars,
                         uint64_t *colwords, int64_t nwords)
{
    for (int64_t w = 0; w < nwords; ++w) {
        const int64_t base = w << 6;
        const int64_t limit = batch - base < 64 ? batch - base : 64;
        const uint8_t *block = assign + base * nvars;
        for (int64_t v = 0; v < nvars; ++v) {
            uint64_t word = 0;
            const uint8_t *col = block + v;
            for (int64_t j = 0; j < limit; ++j)
                word |= (uint64_t)(col[j * nvars] & 1) << j;
            colwords[v * nwords + w] = word;
        }
    }
}

void repro_cnf_eval(const uint8_t *assign, int64_t batch, int64_t nvars,
                    const int64_t *cols, const uint8_t *neg,
                    const int64_t *offs, int64_t nclauses,
                    uint64_t *colwords, uint8_t *out)
{
    const int64_t nwords = (batch + 63) >> 6;
    pack_columns(assign, batch, nvars, colwords, nwords);
    for (int64_t w = 0; w < nwords; ++w) {
        const int64_t base = w << 6;
        const int64_t limit = batch - base < 64 ? batch - base : 64;
        uint64_t formula = ~(uint64_t)0;
        for (int64_t c = 0; c < nclauses && formula; ++c) {
            uint64_t clause = 0;
            for (int64_t k = offs[c]; k < offs[c + 1]; ++k) {
                const uint64_t cw = colwords[cols[k] * nwords + w];
                clause |= neg[k] ? ~cw : cw;
                if (!~clause)
                    break; /* clause satisfied on every remaining row */
            }
            formula &= clause;
        }
        for (int64_t j = 0; j < limit; ++j)
            out[base + j] = (uint8_t)((formula >> j) & 1);
    }
}

void repro_cnf_unsat_counts(const uint8_t *assign, int64_t batch, int64_t nvars,
                            const int64_t *cols, const uint8_t *neg,
                            const int64_t *offs, int64_t nclauses,
                            int64_t num_empty, uint64_t *colwords, int64_t *out)
{
    const int64_t nwords = (batch + 63) >> 6;
    pack_columns(assign, batch, nvars, colwords, nwords);
    for (int64_t r = 0; r < batch; ++r)
        out[r] = num_empty;
    for (int64_t w = 0; w < nwords; ++w) {
        const int64_t base = w << 6;
        const uint64_t live =
            batch - base < 64 ? (((uint64_t)1 << (batch - base)) - 1) : ~(uint64_t)0;
        for (int64_t c = 0; c < nclauses; ++c) {
            uint64_t clause = 0;
            for (int64_t k = offs[c]; k < offs[c + 1]; ++k) {
                const uint64_t cw = colwords[cols[k] * nwords + w];
                clause |= neg[k] ? ~cw : cw;
                if (!~clause)
                    break;
            }
            uint64_t unsat = ~clause & live;
            while (unsat) { /* sparse for near-satisfying batches */
                out[base + __builtin_ctzll(unsat)] += 1;
                unsat &= unsat - 1;
            }
        }
    }
}

/* ---------------- engine kernels (flat per-op straight-line program) ------------- */
/* opcodes: 0 = MUL (a*b / &), 1 = ADD (a+b / |), 2 = NOT (1-a / ^ / ~).
   values is the (num_slots, batch) C-contiguous slot matrix; the per-op slot
   arrays index rows of it.  Operand rows always precede output rows, so the
   single in-order pass reproduces the levelized block schedule exactly.      */

#define ENGINE_FORWARD(NAME, T)                                                \
void NAME(T *values, int64_t batch, int64_t nops, const uint8_t *opc,          \
          const int32_t *a, const int32_t *b, const int32_t *o)                \
{                                                                              \
    for (int64_t i = 0; i < nops; ++i) {                                       \
        T *out = values + (int64_t)o[i] * batch;                               \
        const T *pa = values + (int64_t)a[i] * batch;                          \
        if (opc[i] == 0) {                                                     \
            const T *pb = values + (int64_t)b[i] * batch;                      \
            for (int64_t j = 0; j < batch; ++j)                                \
                out[j] = pa[j] * pb[j];                                        \
        } else if (opc[i] == 1) {                                              \
            const T *pb = values + (int64_t)b[i] * batch;                      \
            for (int64_t j = 0; j < batch; ++j)                                \
                out[j] = pa[j] + pb[j];                                        \
        } else {                                                               \
            for (int64_t j = 0; j < batch; ++j)                                \
                out[j] = (T)1 - pa[j];                                         \
        }                                                                      \
    }                                                                          \
}

ENGINE_FORWARD(repro_engine_forward_f64, double)
ENGINE_FORWARD(repro_engine_forward_f32, float)

#define ENGINE_BACKWARD(NAME, T)                                               \
void NAME(const T *values, T *grads, int64_t batch, int64_t nops,              \
          const uint8_t *opc, const int32_t *a, const int32_t *b,              \
          const int32_t *o)                                                    \
{                                                                              \
    for (int64_t i = nops - 1; i >= 0; --i) {                                  \
        const T *g = grads + (int64_t)o[i] * batch;                            \
        T *ga = grads + (int64_t)a[i] * batch;                                 \
        if (opc[i] == 0) {                                                     \
            T *gb = grads + (int64_t)b[i] * batch;                             \
            const T *va = values + (int64_t)a[i] * batch;                      \
            const T *vb = values + (int64_t)b[i] * batch;                      \
            for (int64_t j = 0; j < batch; ++j) {                              \
                ga[j] += g[j] * vb[j];                                         \
                gb[j] += g[j] * va[j];                                         \
            }                                                                  \
        } else if (opc[i] == 1) {                                              \
            T *gb = grads + (int64_t)b[i] * batch;                             \
            for (int64_t j = 0; j < batch; ++j) {                              \
                ga[j] += g[j];                                                 \
                gb[j] += g[j];                                                 \
            }                                                                  \
        } else {                                                               \
            for (int64_t j = 0; j < batch; ++j)                                \
                ga[j] -= g[j];                                                 \
        }                                                                      \
    }                                                                          \
}

ENGINE_BACKWARD(repro_engine_backward_f64, double)
ENGINE_BACKWARD(repro_engine_backward_f32, float)

void repro_engine_execute_bool(uint8_t *values, int64_t batch, int64_t nops,
                               const uint8_t *opc, const int32_t *a,
                               const int32_t *b, const int32_t *o)
{
    for (int64_t i = 0; i < nops; ++i) {
        uint8_t *out = values + (int64_t)o[i] * batch;
        const uint8_t *pa = values + (int64_t)a[i] * batch;
        if (opc[i] == 0) {
            const uint8_t *pb = values + (int64_t)b[i] * batch;
            for (int64_t j = 0; j < batch; ++j)
                out[j] = pa[j] & pb[j];
        } else if (opc[i] == 1) {
            const uint8_t *pb = values + (int64_t)b[i] * batch;
            for (int64_t j = 0; j < batch; ++j)
                out[j] = pa[j] | pb[j];
        } else {
            for (int64_t j = 0; j < batch; ++j)
                out[j] = pa[j] ^ 1;
        }
    }
}

void repro_engine_execute_packed(uint64_t *values, int64_t lanes, int64_t nops,
                                 const uint8_t *opc, const int32_t *a,
                                 const int32_t *b, const int32_t *o)
{
    for (int64_t i = 0; i < nops; ++i) {
        uint64_t *out = values + (int64_t)o[i] * lanes;
        const uint64_t *pa = values + (int64_t)a[i] * lanes;
        if (opc[i] == 0) {
            const uint64_t *pb = values + (int64_t)b[i] * lanes;
            for (int64_t j = 0; j < lanes; ++j)
                out[j] = pa[j] & pb[j];
        } else if (opc[i] == 1) {
            const uint64_t *pb = values + (int64_t)b[i] * lanes;
            for (int64_t j = 0; j < lanes; ++j)
                out[j] = pa[j] | pb[j];
        } else {
            for (int64_t j = 0; j < lanes; ++j)
                out[j] = ~pa[j];
        }
    }
}

/* ---------------- transform kernel (complement scan) ----------------------------- */
/* Mirrors find_boolean_expression's fast-path prelude decision-for-decision:
   returns 1 (accept: the group defines `variable`), 0 (reject) or -1 (raw
   support wider than max_vars: the caller falls back to the exact
   expression-based route).  max_vars must be <= 16 (the Python wrapper
   guards); the truth tables then fit 1024 uint64 words on the stack.        */

static const uint64_t VAR_PATTERNS[6] = {
    0xAAAAAAAAAAAAAAAAULL, 0xCCCCCCCCCCCCCCCCULL, 0xF0F0F0F0F0F0F0F0ULL,
    0xFF00FF00FF00FF00ULL, 0xFFFF0000FFFF0000ULL, 0xFFFFFFFF00000000ULL,
};

/* Bitmask word w of the variable at sorted-support position p: the periodic
   pattern bit r = (r >> p) & 1, identical to truth_table._var_mask. */
static inline uint64_t var_mask_word(int p, int64_t w)
{
    if (p < 6)
        return VAR_PATTERNS[p];
    return ((w >> (p - 6)) & 1) ? ~(uint64_t)0 : 0;
}

int32_t repro_transform_complement_scan(const int32_t *lits, const int64_t *offs,
                                        int64_t nclauses, int32_t variable,
                                        int32_t max_vars)
{
    /* 1. Raw support (sorted) + the tautology rule.  The support can only be
       decided WIDE once it provably exceeds max_vars even after the possible
       removal of `variable` itself, i.e. at max_vars + 2 entries. */
    int32_t support[18];
    int nsup = 0;
    int keep_variable = 0;
    for (int64_t c = 0; c < nclauses; ++c) {
        int has_pos = 0, has_neg = 0;
        for (int64_t k = offs[c]; k < offs[c + 1]; ++k) {
            const int32_t lit = lits[k];
            const int32_t v = lit < 0 ? -lit : lit;
            if (lit == variable)
                has_pos = 1;
            else if (lit == -variable)
                has_neg = 1;
            int lo = 0, hi = nsup;
            while (lo < hi) {
                const int mid = (lo + hi) >> 1;
                if (support[mid] < v)
                    lo = mid + 1;
                else
                    hi = mid;
            }
            if (lo == nsup || support[lo] != v) {
                if (nsup >= max_vars + 2)
                    return -1;
                for (int m = nsup; m > lo; --m)
                    support[m] = support[m - 1];
                support[lo] = v;
                ++nsup;
            }
        }
        if (has_pos && has_neg)
            keep_variable = 1;
    }
    if (!keep_variable) {
        int lo = 0, hi = nsup;
        while (lo < hi) {
            const int mid = (lo + hi) >> 1;
            if (support[mid] < variable)
                lo = mid + 1;
            else
                hi = mid;
        }
        if (lo < nsup && support[lo] == variable) {
            for (int m = lo; m < nsup - 1; ++m)
                support[m] = support[m + 1];
            --nsup;
        }
    }
    if (nsup > max_vars)
        return -1;

    /* 2. Truth-table bitmask complement check over uint64 words. */
    const int n = nsup;
    const int64_t nbits = (int64_t)1 << n;
    const int64_t nw = nbits > 64 ? nbits >> 6 : 1;
    const uint64_t fullw =
        nbits >= 64 ? ~(uint64_t)0 : (((uint64_t)1 << nbits) - 1);
    uint64_t pos_bits[1024], neg_bits[1024], rem[1024];
    for (int64_t w = 0; w < nw; ++w) {
        pos_bits[w] = ~(uint64_t)0;
        neg_bits[w] = ~(uint64_t)0;
    }
    for (int64_t c = 0; c < nclauses; ++c) {
        for (int side = 0; side < 2; ++side) {
            const int32_t skip = side == 0 ? -variable : variable;
            int present = 0;
            for (int64_t k = offs[c]; k < offs[c + 1]; ++k)
                if (lits[k] == skip) {
                    present = 1;
                    break;
                }
            if (!present)
                continue;
            for (int64_t w = 0; w < nw; ++w)
                rem[w] = 0;
            for (int64_t k = offs[c]; k < offs[c + 1]; ++k) {
                const int32_t lit = lits[k];
                if (lit == skip)
                    continue;
                const int32_t v = lit < 0 ? -lit : lit;
                int lo = 0, hi = n;
                while (lo < hi) {
                    const int mid = (lo + hi) >> 1;
                    if (support[mid] < v)
                        lo = mid + 1;
                    else
                        hi = mid;
                }
                for (int64_t w = 0; w < nw; ++w) {
                    const uint64_t mask = var_mask_word(lo, w);
                    rem[w] |= lit > 0 ? mask : ~mask;
                }
            }
            if (side == 0)
                for (int64_t w = 0; w < nw; ++w)
                    pos_bits[w] &= rem[w];
            else
                for (int64_t w = 0; w < nw; ++w)
                    neg_bits[w] &= rem[w];
        }
    }
    for (int64_t w = 0; w < nw - 1; ++w)
        if (pos_bits[w] != ~neg_bits[w])
            return 0;
    return (pos_bits[nw - 1] & fullw) == (~neg_bits[nw - 1] & fullw) ? 1 : 0;
}
"""

#: Wall-clock seconds spent compiling (building the shared library); read via
#: :func:`repro.native.compile_seconds`.
_compile_seconds = 0.0

_lib: Optional[ctypes.CDLL] = None
_load_error: Optional[str] = None


def compile_seconds() -> float:
    """Seconds this process spent building the C tier (0.0 on a disk-cache hit).

    Back-compat accessor; the registered form is
    ``repro_native_compile_seconds_total{tier="cext"}`` in :mod:`repro.obs`.
    """
    return _compile_seconds


def _cache_dir() -> Path:
    override = os.environ.get(CACHE_DIR_ENV_VAR)
    if override:
        return Path(override)
    return Path(tempfile.gettempdir()) / f"repro-native-{os.getuid()}"


def _find_compiler() -> Optional[str]:
    from shutil import which

    for name in ("cc", "gcc", "clang"):
        path = which(name)
        if path:
            return path
    return None


def _declare(lib: ctypes.CDLL) -> ctypes.CDLL:
    """Attach argtypes so a mismatched call fails loudly instead of corrupting."""
    p_u8 = ctypes.POINTER(ctypes.c_uint8)
    p_u64 = ctypes.POINTER(ctypes.c_uint64)
    p_i32 = ctypes.POINTER(ctypes.c_int32)
    p_i64 = ctypes.POINTER(ctypes.c_int64)
    p_f64 = ctypes.POINTER(ctypes.c_double)
    p_f32 = ctypes.POINTER(ctypes.c_float)
    i64 = ctypes.c_int64
    lib.repro_cnf_eval.argtypes = [p_u8, i64, i64, p_i64, p_u8, p_i64, i64, p_u64, p_u8]
    lib.repro_cnf_eval.restype = None
    lib.repro_cnf_unsat_counts.argtypes = [
        p_u8, i64, i64, p_i64, p_u8, p_i64, i64, i64, p_u64, p_i64,
    ]
    lib.repro_cnf_unsat_counts.restype = None
    for name, p_t in (
        ("repro_engine_forward_f64", p_f64),
        ("repro_engine_forward_f32", p_f32),
    ):
        fn = getattr(lib, name)
        fn.argtypes = [p_t, i64, i64, p_u8, p_i32, p_i32, p_i32]
        fn.restype = None
    for name, p_t in (
        ("repro_engine_backward_f64", p_f64),
        ("repro_engine_backward_f32", p_f32),
    ):
        fn = getattr(lib, name)
        fn.argtypes = [p_t, p_t, i64, i64, p_u8, p_i32, p_i32, p_i32]
        fn.restype = None
    lib.repro_engine_execute_bool.argtypes = [p_u8, i64, i64, p_u8, p_i32, p_i32, p_i32]
    lib.repro_engine_execute_bool.restype = None
    lib.repro_engine_execute_packed.argtypes = [
        p_u64, i64, i64, p_u8, p_i32, p_i32, p_i32,
    ]
    lib.repro_engine_execute_packed.restype = None
    lib.repro_transform_complement_scan.argtypes = [
        p_i32, p_i64, i64, ctypes.c_int32, ctypes.c_int32,
    ]
    lib.repro_transform_complement_scan.restype = ctypes.c_int32
    return lib


def _build_library() -> ctypes.CDLL:
    global _compile_seconds
    compiler = _find_compiler()
    if compiler is None:
        raise BackendUnavailableError(
            "native C tier unavailable: no C compiler (cc/gcc/clang) on PATH"
        )
    digest = hashlib.sha256(C_SOURCE.encode()).hexdigest()[:16]
    cache_dir = _cache_dir()
    library_path = cache_dir / f"repronative_{digest}.so"
    if not library_path.exists():
        start = time.perf_counter()
        cache_dir.mkdir(parents=True, exist_ok=True)
        source_path = cache_dir / f"repronative_{digest}.c"
        source_path.write_text(C_SOURCE)
        # Build into a temp name then rename: concurrent processes racing the
        # build each produce a complete library and the rename is atomic.
        scratch = cache_dir / f"repronative_{digest}.{os.getpid()}.so"
        command = [compiler, "-O3", "-fPIC", "-shared", "-o", str(scratch), str(source_path)]
        result = subprocess.run(command, capture_output=True, text=True)
        if result.returncode != 0:
            raise BackendUnavailableError(
                f"native C tier unavailable: compile failed: {result.stderr.strip()}"
            )
        os.replace(scratch, library_path)
        delta = time.perf_counter() - start
        _compile_seconds += delta
        _COMPILE_SECONDS_METRIC.inc(delta, "cext")
    return _declare(ctypes.CDLL(str(library_path)))


def load_library() -> ctypes.CDLL:
    """The compiled kernel library (built and memoised on first call).

    Raises :class:`~repro.xp.backend.BackendUnavailableError` when the tier
    cannot be brought up; the failure is memoised so repeated availability
    probes stay cheap.
    """
    global _lib, _load_error
    if _lib is not None:
        return _lib
    if _load_error is not None:
        raise BackendUnavailableError(_load_error)
    try:
        _lib = _build_library()
    except BackendUnavailableError as error:
        _load_error = str(error)
        raise
    except Exception as error:  # pragma: no cover - environment-specific
        _load_error = f"native C tier unavailable: {type(error).__name__}: {error}"
        raise BackendUnavailableError(_load_error) from error
    return _lib


def available() -> bool:
    """Whether the C tier can be (or already was) brought up."""
    try:
        load_library()
    except BackendUnavailableError:
        return False
    return True
