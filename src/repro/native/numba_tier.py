"""Numba-jitted mirrors of the native kernels (optional dependency tier).

Importing this module raises :class:`~repro.xp.BackendUnavailableError` when
Numba is not installed, mirroring the CuPy/Torch optional-backend pattern —
callers go through :func:`repro.native.kernels_for`, which probes tiers and
degrades silently in ``auto`` mode.

The kernels here are semantically identical to the C tier in
:mod:`repro.native.cext` but written as plain per-row loops where that is
simpler (Numba fuses them fine); the equivalence suite in ``tests/native/``
pins both tiers to the same pure-Python oracle.  All kernels are compiled
eagerly by :func:`warm_up` so JIT time lands in :func:`compile_seconds`
rather than inside anybody's timing loop.
"""

from __future__ import annotations

import time

import numpy as np

try:  # pragma: no cover - exercised only where numba is installed
    import numba
    from numba import njit
except ImportError as exc:  # pragma: no cover - the common local case
    from repro.xp import BackendUnavailableError

    raise BackendUnavailableError(
        "numba is not installed; the native numba tier is unavailable"
    ) from exc

from repro import obs as _obs

_compile_seconds = 0.0
_warmed = False

_COMPILE_SECONDS_METRIC = _obs.counter(
    "repro_native_compile_seconds_total",
    "Wall-clock seconds spent building native kernel tiers.",
    labels=("tier",),
)


def compile_seconds() -> float:
    """Wall-clock seconds spent JIT-compiling kernels in this process.

    Back-compat accessor; the registered form is
    ``repro_native_compile_seconds_total{tier="numba"}`` in :mod:`repro.obs`.
    """
    return _compile_seconds


@njit(cache=True)
def cnf_eval(matrix, cols, neg, offs, scratch, out):  # pragma: no cover - jitted
    batch = matrix.shape[0]
    nclauses = offs.shape[0] - 1
    for row in range(batch):
        satisfied = True
        for clause in range(nclauses):
            clause_true = False
            for index in range(offs[clause], offs[clause + 1]):
                value = matrix[row, cols[index]]
                if value != neg[index]:
                    clause_true = True
                    break
            if not clause_true:
                satisfied = False
                break
        out[row] = 1 if satisfied else 0


@njit(cache=True)
def cnf_unsat_counts(matrix, cols, neg, offs, num_empty, scratch, out):  # pragma: no cover
    batch = matrix.shape[0]
    nclauses = offs.shape[0] - 1
    for row in range(batch):
        unsat = num_empty
        for clause in range(nclauses):
            clause_true = False
            for index in range(offs[clause], offs[clause + 1]):
                value = matrix[row, cols[index]]
                if value != neg[index]:
                    clause_true = True
                    break
            if not clause_true:
                unsat += 1
        out[row] = unsat


@njit(cache=True)
def engine_forward(values, opcodes, a_slots, b_slots, out_slots):  # pragma: no cover
    batch = values.shape[1]
    for op in range(opcodes.shape[0]):
        code = opcodes[op]
        a = a_slots[op]
        o = out_slots[op]
        if code == 0:  # MUL
            b = b_slots[op]
            for j in range(batch):
                values[o, j] = values[a, j] * values[b, j]
        elif code == 1:  # ADD
            b = b_slots[op]
            for j in range(batch):
                values[o, j] = values[a, j] + values[b, j]
        else:  # NOT
            for j in range(batch):
                values[o, j] = 1.0 - values[a, j]


@njit(cache=True)
def engine_backward(values, grads, opcodes, a_slots, b_slots, out_slots):  # pragma: no cover
    batch = values.shape[1]
    for op in range(opcodes.shape[0] - 1, -1, -1):
        code = opcodes[op]
        a = a_slots[op]
        o = out_slots[op]
        if code == 0:  # MUL
            b = b_slots[op]
            for j in range(batch):
                g = grads[o, j]
                grads[a, j] += g * values[b, j]
                grads[b, j] += g * values[a, j]
        elif code == 1:  # ADD
            b = b_slots[op]
            for j in range(batch):
                g = grads[o, j]
                grads[a, j] += g
                grads[b, j] += g
        else:  # NOT
            for j in range(batch):
                grads[a, j] -= grads[o, j]


@njit(cache=True)
def engine_execute_bool(values, opcodes, a_slots, b_slots, out_slots):  # pragma: no cover
    batch = values.shape[1]
    for op in range(opcodes.shape[0]):
        code = opcodes[op]
        a = a_slots[op]
        o = out_slots[op]
        if code == 0:  # AND
            b = b_slots[op]
            for j in range(batch):
                values[o, j] = values[a, j] & values[b, j]
        elif code == 1:  # OR
            b = b_slots[op]
            for j in range(batch):
                values[o, j] = values[a, j] | values[b, j]
        else:  # NOT
            for j in range(batch):
                values[o, j] = values[a, j] ^ 1


@njit(cache=True)
def engine_execute_packed(values, opcodes, a_slots, b_slots, out_slots):  # pragma: no cover
    lanes = values.shape[1]
    for op in range(opcodes.shape[0]):
        code = opcodes[op]
        a = a_slots[op]
        o = out_slots[op]
        if code == 0:
            b = b_slots[op]
            for j in range(lanes):
                values[o, j] = values[a, j] & values[b, j]
        elif code == 1:
            b = b_slots[op]
            for j in range(lanes):
                values[o, j] = values[a, j] | values[b, j]
        else:
            for j in range(lanes):
                values[o, j] = ~values[a, j]


@njit(cache=True)
def complement_scan(literals, offsets, variable, max_vars):  # pragma: no cover
    """Line-for-line mirror of ``repro_transform_complement_scan`` (see cext.py)."""
    nclauses = offsets.shape[0] - 1
    support = np.empty(max_vars + 2, dtype=np.int32)
    nsup = 0
    keep_variable = False
    for clause in range(nclauses):
        has_pos = False
        has_neg = False
        for index in range(offsets[clause], offsets[clause + 1]):
            lit = literals[index]
            var = -lit if lit < 0 else lit
            if lit == variable:
                has_pos = True
            elif lit == -variable:
                has_neg = True
            lo = 0
            hi = nsup
            while lo < hi:
                mid = (lo + hi) >> 1
                if support[mid] < var:
                    lo = mid + 1
                else:
                    hi = mid
            if lo == nsup or support[lo] != var:
                if nsup >= max_vars + 2:
                    return -1
                for move in range(nsup, lo, -1):
                    support[move] = support[move - 1]
                support[lo] = var
                nsup += 1
        if has_pos and has_neg:
            keep_variable = True
    if not keep_variable:
        lo = 0
        hi = nsup
        while lo < hi:
            mid = (lo + hi) >> 1
            if support[mid] < variable:
                lo = mid + 1
            else:
                hi = mid
        if lo < nsup and support[lo] == variable:
            for move in range(lo, nsup - 1):
                support[move] = support[move + 1]
            nsup -= 1
    if nsup > max_vars:
        return -1
    n = nsup
    nbits = 1 << n
    nwords = nbits >> 6 if nbits > 64 else 1
    FULL = np.uint64(0xFFFFFFFFFFFFFFFF)
    ZERO = np.uint64(0)
    fullw = FULL if nbits >= 64 else np.uint64((1 << nbits) - 1)
    patterns = np.empty(6, dtype=np.uint64)
    patterns[0] = np.uint64(0xAAAAAAAAAAAAAAAA)
    patterns[1] = np.uint64(0xCCCCCCCCCCCCCCCC)
    patterns[2] = np.uint64(0xF0F0F0F0F0F0F0F0)
    patterns[3] = np.uint64(0xFF00FF00FF00FF00)
    patterns[4] = np.uint64(0xFFFF0000FFFF0000)
    patterns[5] = np.uint64(0xFFFFFFFF00000000)
    pos_bits = np.full(nwords, FULL, dtype=np.uint64)
    neg_bits = np.full(nwords, FULL, dtype=np.uint64)
    rem = np.empty(nwords, dtype=np.uint64)
    for clause in range(nclauses):
        for side in range(2):
            skip = -variable if side == 0 else variable
            present = False
            for index in range(offsets[clause], offsets[clause + 1]):
                if literals[index] == skip:
                    present = True
                    break
            if not present:
                continue
            for w in range(nwords):
                rem[w] = ZERO
            for index in range(offsets[clause], offsets[clause + 1]):
                lit = literals[index]
                if lit == skip:
                    continue
                var = -lit if lit < 0 else lit
                lo = 0
                hi = n
                while lo < hi:
                    mid = (lo + hi) >> 1
                    if support[mid] < var:
                        lo = mid + 1
                    else:
                        hi = mid
                for w in range(nwords):
                    if lo < 6:
                        mask = patterns[lo]
                    elif (w >> (lo - 6)) & 1:
                        mask = FULL
                    else:
                        mask = ZERO
                    rem[w] |= mask if lit > 0 else ~mask
            if side == 0:
                for w in range(nwords):
                    pos_bits[w] &= rem[w]
            else:
                for w in range(nwords):
                    neg_bits[w] &= rem[w]
    for w in range(nwords - 1):
        if pos_bits[w] != ~neg_bits[w]:
            return 0
    if (pos_bits[nwords - 1] & fullw) != (~neg_bits[nwords - 1] & fullw):
        return 0
    return 1


_KERNELS = (
    cnf_eval,
    cnf_unsat_counts,
    engine_forward,
    engine_backward,
    engine_execute_bool,
    engine_execute_packed,
    complement_scan,
)


def warm_up() -> None:
    """Eagerly compile every kernel once, recording JIT time.

    Benchmark and timing loops call through warmed kernels only; a
    disk-cached Numba build makes this near-free on repeat runs.
    """
    global _compile_seconds, _warmed
    if _warmed:
        return
    start = time.perf_counter()
    matrix = np.zeros((2, 2), dtype=np.uint8)
    cols = np.zeros(1, dtype=np.int64)
    neg = np.zeros(1, dtype=np.uint8)
    offs = np.array([0, 1], dtype=np.int64)
    scratch = np.zeros((2, 1), dtype=np.uint64)
    cnf_eval(matrix, cols, neg, offs, scratch, np.zeros(2, dtype=np.uint8))
    cnf_unsat_counts(matrix, cols, neg, offs, 0, scratch, np.zeros(2, dtype=np.int64))
    ops = (
        np.array([0, 1, 2], dtype=np.uint8),
        np.array([0, 0, 0], dtype=np.int32),
        np.array([1, 1, 0], dtype=np.int32),
        np.array([2, 3, 4], dtype=np.int32),
    )
    engine_forward(np.zeros((5, 2), dtype=np.float64), *ops)
    engine_forward(np.zeros((5, 2), dtype=np.float32), *ops)
    engine_backward(
        np.zeros((5, 2), dtype=np.float64), np.zeros((5, 2), dtype=np.float64), *ops
    )
    engine_backward(
        np.zeros((5, 2), dtype=np.float32), np.zeros((5, 2), dtype=np.float32), *ops
    )
    engine_execute_bool(np.zeros((5, 2), dtype=np.uint8), *ops)
    engine_execute_packed(np.zeros((5, 2), dtype=np.uint64), *ops)
    complement_scan(
        np.array([1, -2, -1, 2], dtype=np.int32),
        np.array([0, 2, 4], dtype=np.int64),
        1,
        4,
    )
    delta = time.perf_counter() - start
    _compile_seconds += delta
    _COMPILE_SECONDS_METRIC.inc(delta, "numba")
    _warmed = True
