"""Random CNF generators.

These generators provide additional workloads beyond the four benchmark
families of Table II: random k-SAT (for stress-testing the samplers away from
circuit-structured CNFs), planted-solution k-SAT (guaranteed satisfiable, used
by the property-based tests), and random Horn formulas.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.cnf.formula import CNF
from repro.utils.rng import RandomState, new_rng


def random_ksat(
    num_variables: int,
    num_clauses: int,
    k: int = 3,
    seed: Optional[int] = None,
    rng: Optional[RandomState] = None,
    name: str = "",
) -> CNF:
    """Generate a uniformly random k-SAT formula.

    Each clause draws ``k`` distinct variables and independent random phases.
    """
    if k > num_variables:
        raise ValueError(f"k={k} exceeds the number of variables {num_variables}")
    generator = rng if rng is not None else new_rng(seed)
    formula = CNF(num_variables=num_variables, name=name or f"random-{k}sat-{num_variables}")
    for _ in range(num_clauses):
        variables = generator.choice(num_variables, size=k, replace=False) + 1
        phases = generator.random(k) < 0.5
        clause = [int(v) if p else -int(v) for v, p in zip(variables, phases)]
        formula.add_clause(clause)
    return formula


def planted_ksat(
    num_variables: int,
    num_clauses: int,
    k: int = 3,
    seed: Optional[int] = None,
    rng: Optional[RandomState] = None,
    name: str = "",
) -> CNF:
    """Generate a random k-SAT formula guaranteed satisfiable by a planted assignment.

    A hidden assignment is drawn first; every generated clause is re-drawn
    until it is satisfied by the hidden assignment.  The planted solution is
    recorded in the formula comments (as signed literals) so that tests can
    recover it.
    """
    if k > num_variables:
        raise ValueError(f"k={k} exceeds the number of variables {num_variables}")
    generator = rng if rng is not None else new_rng(seed)
    planted = generator.random(num_variables) < 0.5
    formula = CNF(num_variables=num_variables, name=name or f"planted-{k}sat-{num_variables}")
    for _ in range(num_clauses):
        while True:
            variables = generator.choice(num_variables, size=k, replace=False) + 1
            phases = generator.random(k) < 0.5
            clause = [int(v) if p else -int(v) for v, p in zip(variables, phases)]
            if any(planted[abs(lit) - 1] == (lit > 0) for lit in clause):
                break
        formula.add_clause(clause)
    witness = " ".join(
        str(i + 1) if planted[i] else str(-(i + 1)) for i in range(num_variables)
    )
    formula.comments.append(f"planted {witness}")
    return formula


def planted_solution(formula: CNF) -> Optional[np.ndarray]:
    """Recover the planted assignment recorded by :func:`planted_ksat`, if any."""
    for comment in formula.comments:
        if comment.startswith("planted "):
            literals = [int(token) for token in comment.split()[1:]]
            vector = np.zeros(formula.num_variables, dtype=bool)
            for literal in literals:
                vector[abs(literal) - 1] = literal > 0
            return vector
    return None


def random_horn(
    num_variables: int,
    num_clauses: int,
    max_width: int = 4,
    seed: Optional[int] = None,
    rng: Optional[RandomState] = None,
    name: str = "",
) -> CNF:
    """Generate a random Horn formula (at most one positive literal per clause)."""
    generator = rng if rng is not None else new_rng(seed)
    formula = CNF(num_variables=num_variables, name=name or f"horn-{num_variables}")
    for _ in range(num_clauses):
        width = int(generator.integers(1, max_width + 1))
        width = min(width, num_variables)
        variables = generator.choice(num_variables, size=width, replace=False) + 1
        clause: List[int] = [-int(v) for v in variables]
        if generator.random() < 0.5:
            clause[0] = abs(clause[0])
        formula.add_clause(clause)
    return formula
