"""Compiled CNF evaluation kernel.

Batch CNF evaluation used to walk the clause list in Python
(:meth:`~repro.cnf.formula.CNF.evaluate_batch`'s clause-by-clause,
literal-by-literal loop).  This module compiles a formula once into a flat
*evaluation plan* — the CNF analogue of the engine's levelized programs
(:mod:`repro.engine.program`):

* ``literal_columns`` / ``literal_negated`` — every literal occurrence of
  every non-empty clause, flattened into one index array and one sign array,
  so a single fancy-index gather ``assignments.T[columns] ^ negated``
  produces all literal values of the whole formula at once;
* ``reduce_offsets`` — clause start boundaries into the flat arrays, in the
  spirit of ``np.logical_or.reduceat``.  ``reduceat`` itself pays per-segment
  overhead on thousands of tiny clauses, so the clauses are stored sorted by
  width and each ``width_groups`` bucket reduces as a fused
  ``(clauses, width, batch)`` slice-OR instead — same flat layout, no
  per-clause Python or per-segment ufunc cost.  The boolean reductions run
  over the transposed ``(variables, batch)`` matrix so every gathered row is
  contiguous;
* a bit-packed variant that packs the batch axis 8 rows per byte
  (``np.packbits``) and reduces the flat layout with
  ``np.bitwise_or.reduceat`` / ``np.bitwise_and.reduce``, mirroring the
  engine's packed execution mode.

Empty clauses cannot ride either reduction (a zero-length segment is not an
identity reduction), so they are counted separately: one empty clause makes
every assignment unsatisfying.

Plans are memoised per :class:`~repro.cnf.formula.CNF` via
:meth:`~repro.cnf.formula.CNF.evaluation_plan` and invalidated whenever the
formula mutates (``add_clause`` or a ``num_variables`` change), mirroring the
engine's compile-once design; :func:`clear_plan_caches` (surfaced as
:func:`repro.xp.clear_caches`) drops them explicitly.  The clause-loop
implementation survives as the ``"reference"`` backend;
:func:`default_backend` (overridable with :func:`set_default_backend` or the
``REPRO_CNF_BACKEND`` environment variable) selects which implementation
:meth:`CNF.evaluate_batch` uses.

The fused kernels execute on the active *array backend*
(:mod:`repro.xp`): plan compilation stays host-side NumPy, while the plan's
index arrays are uploaded once per backend (memoised on the plan) so the
evaluation itself runs where the assignments live — NumPy bitwise-identical
to the seed, CuPy/Torch best-effort.  Note the two "backend" axes are
orthogonal: this module's ``backend`` strings pick the *kernel
implementation* ("compiled"/"packed"/"reference"); :mod:`repro.xp` picks the
*array runtime* it executes on.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Optional, Tuple

import numpy as np

from repro.utils.weakcache import OwnerRegistry
from repro.xp import ArrayBackend, backend_for, get_backend
from repro import obs

_PLAN_COMPILES = obs.counter(
    "repro_cnf_plan_compiles_total",
    "CNF evaluation plans flattened from clause lists.",
)
_CNF_EVALUATIONS = obs.counter(
    "repro_cnf_evaluations_total",
    "Batched CNF satisfaction evaluations by kernel flavour.",
    labels=("kind",),
)

if TYPE_CHECKING:  # avoid a runtime import cycle with repro.cnf.formula
    from repro.cnf.formula import CNF

#: Accepted values for the evaluation-backend knob.
BACKENDS = ("compiled", "packed", "reference", "native")

#: Environment variable consulted for the process-wide default backend.
BACKEND_ENV_VAR = "REPRO_CNF_BACKEND"

_default_backend: Optional[str] = None


def default_backend() -> str:
    """The process-wide evaluation backend (env override, else ``"compiled"``)."""
    if _default_backend is not None:
        return _default_backend
    return _validate_backend(os.environ.get(BACKEND_ENV_VAR, "compiled"))


def set_default_backend(name: Optional[str]) -> None:
    """Set the process-wide backend; ``None`` restores the environment default."""
    global _default_backend
    _default_backend = None if name is None else _validate_backend(name)


def resolve_backend(name: Optional[str]) -> str:
    """Resolve a per-call backend argument (``None`` means the default)."""
    return default_backend() if name is None else _validate_backend(name)


def _validate_backend(name: str) -> str:
    if name not in BACKENDS:
        raise ValueError(f"backend must be one of {BACKENDS}, got {name!r}")
    return name


def resolve_native_kernels():
    """The native kernel set backing ``backend="native"`` (never ``None``).

    An explicitly requested native CNF backend fails loudly — with
    :class:`~repro.xp.backend.BackendUnavailableError` — when native kernels
    are disabled (``REPRO_NATIVE=off``) or no tier can be brought up,
    mirroring how explicitly requested array backends fail.
    """
    from repro import native
    from repro.xp.backend import BackendUnavailableError

    mode = native.resolve_mode(None)
    if mode == "python":
        raise BackendUnavailableError(
            'CNF backend "native" requested but native kernels are disabled '
            f"(mode 'python' via ${native.NATIVE_ENV_VAR} or "
            "repro.native.set_default_mode)"
        )
    # A tier-specific default mode keeps selecting that tier; "auto" hardens
    # to "native" so the explicit backend request fails loudly if unavailable.
    return native.kernels_for("native" if mode == "auto" else mode)


@dataclass(frozen=True)
class CNFEvalPlan:
    """A compiled, formula-specific batch-evaluation plan (immutable)."""

    #: Declared variable width the plan was compiled for.
    num_variables: int
    #: Total clause count, including empty clauses.
    num_clauses: int
    #: Flat assignment-column index of every literal, clauses sorted by width.
    literal_columns: np.ndarray
    #: Sign of each flat literal (``True`` for a negated literal).
    literal_negated: np.ndarray
    #: Start offset of each (width-sorted) non-empty clause in the flat arrays.
    reduce_offsets: np.ndarray
    #: Original clause index of each width-sorted non-empty clause.
    nonempty_index: np.ndarray
    #: ``(clause_start, clause_end, width)`` spans over the width-sorted
    #: clauses; each bucket reduces as one fused ``(clauses, width, batch)`` OR.
    width_groups: Tuple[Tuple[int, int, int], ...]
    #: Number of empty clauses (each one falsifies every assignment).
    num_empty: int
    #: Per-array-backend uploads of the index arrays (keyed by cache_key).
    _device_arrays: Dict[str, Tuple] = field(
        default_factory=dict, repr=False, compare=False
    )
    #: Native-kernel layouts of the index arrays (see :mod:`repro.native.kernels`).
    _native_arrays: Dict[str, object] = field(
        default_factory=dict, repr=False, compare=False
    )

    def __getstate__(self):
        # The per-backend device uploads and native-kernel layouts hold
        # ctypes/device handles that are process-local and unpicklable;
        # serialised plans (repro.store entries, spawned workers) start with
        # empty memos and re-upload lazily on first use.
        state = dict(self.__dict__)
        state["_device_arrays"] = {}
        state["_native_arrays"] = {}
        return state

    @property
    def num_literals(self) -> int:
        """Total literal occurrences across the non-empty clauses."""
        return int(self.literal_columns.shape[0])

    @property
    def nbytes(self) -> int:
        """Resident size of the plan's host index arrays.

        Per-backend device uploads are excluded (they live on the device and
        are dropped with the plan).  Used by byte-bounded artifact caches
        (:mod:`repro.serve.cache`) to account for compiled state.
        """
        return int(
            self.literal_columns.nbytes
            + self.literal_negated.nbytes
            + self.reduce_offsets.nbytes
            + self.nonempty_index.nbytes
        )

    @staticmethod
    def _resolve_xpb(assignments, xpb: Optional[ArrayBackend]) -> ArrayBackend:
        """Default backend resolution following the *input's* residency.

        Delegates to :func:`repro.xp.backend_for` — the same rule
        :meth:`CNF._check_assignment_matrix` applies — so direct-plan
        consumers (WalkSAT's unsat scan, metrics) keep working regardless of
        ``REPRO_ARRAY_BACKEND``.  Pass ``xpb`` explicitly to override.
        """
        return xpb if xpb is not None else backend_for(assignments)

    # -- array-backend residency --------------------------------------------------------
    def _arrays_for(self, xpb: ArrayBackend) -> Tuple:
        """``(literal_columns, literal_negated)`` resident on ``xpb``.

        The NumPy reference uses the compiled arrays directly; other
        backends get a one-time upload memoised per backend (dropped with
        the plan, e.g. by :func:`clear_plan_caches`).
        """
        if xpb.is_numpy:
            return self.literal_columns, self.literal_negated
        arrays = self._device_arrays.get(xpb.cache_key)
        if arrays is None:
            arrays = (
                xpb.from_numpy(self.literal_columns),
                xpb.from_numpy(self.literal_negated),
            )
            self._device_arrays[xpb.cache_key] = arrays
        return arrays

    # -- fused evaluation -------------------------------------------------------------
    def _gather_literal_values(self, assignments, xpb: ArrayBackend):
        """``(literals, batch)`` literal values over the transposed matrix."""
        columns, negated = self._arrays_for(xpb)
        transposed = xpb.ascontiguousarray(assignments.T)
        values = transposed[columns]
        values ^= negated[:, None]
        return values

    def _group_blocks(self, values, batch: int):
        """Yield each width bucket as a ``(clauses, width, batch)`` view."""
        for clause_start, clause_end, width in self.width_groups:
            flat_start = int(self.reduce_offsets[clause_start])
            count = clause_end - clause_start
            block = values[flat_start : flat_start + count * width]
            yield clause_start, clause_end, block.reshape(count, width, batch)

    @staticmethod
    def _or_over_width(block):
        """OR a ``(clauses, width, batch)`` block down to ``(clauses, batch)``."""
        satisfied = block[:, 0]
        for column in range(1, block.shape[1]):
            satisfied = satisfied | block[:, column]
        return satisfied

    def evaluate(self, assignments, xpb: Optional[ArrayBackend] = None):
        """Per-row satisfaction of the whole formula (boolean kernel).

        Runs on ``xpb`` (default: the active array backend); ``assignments``
        may be a host or device array of that backend.
        """
        xpb = self._resolve_xpb(assignments, xpb)
        batch = assignments.shape[0]
        _CNF_EVALUATIONS.inc(1.0, "bool")
        if self.num_empty:
            return xpb.zeros(batch, dtype=xpb.bool_dtype)
        if self.reduce_offsets.size == 0:
            return xpb.ones(batch, dtype=xpb.bool_dtype)
        values = self._gather_literal_values(assignments, xpb)
        satisfied = xpb.ones(batch, dtype=xpb.bool_dtype)
        for _, _, block in self._group_blocks(values, batch):
            satisfied &= xpb.all(self._or_over_width(block), axis=0)
        return satisfied

    def evaluate_packed(self, assignments, xpb: Optional[ArrayBackend] = None):
        """Per-row satisfaction via the bit-packed kernel (8 rows per byte).

        The batch axis is packed with ``packbits``, the flat clause
        boundaries then drive one ``bitwise_or`` segmented reduction over
        ``uint8`` words; results are bitwise-identical to :meth:`evaluate`.
        Backends without native packed support run on the NumPy reference
        and upload the result.
        """
        xpb = self._resolve_xpb(assignments, xpb)
        if not xpb.supports_packed:
            # Counted by the NumPy-reference recursion below, not here.
            host = self.evaluate_packed(
                np.asarray(xpb.asnumpy(assignments), dtype=bool),
                get_backend("numpy"),
            )
            return xpb.from_numpy(host)
        _CNF_EVALUATIONS.inc(1.0, "packed")
        batch = assignments.shape[0]
        if self.num_empty:
            return xpb.zeros(batch, dtype=xpb.bool_dtype)
        if self.reduce_offsets.size == 0:
            return xpb.ones(batch, dtype=xpb.bool_dtype)
        columns, negated = self._arrays_for(xpb)
        packed_columns = xpb.packbits(xpb.ascontiguousarray(assignments.T), axis=1)
        literal_words = packed_columns[columns]
        literal_words[negated] ^= xpb.packed_ones_u8
        clause_words = xpb.bitwise_or_reduceat(
            literal_words, self.reduce_offsets, axis=0
        )
        formula_words = xpb.bitwise_and_reduce(clause_words, axis=0)
        return xpb.astype(xpb.unpackbits(formula_words, count=batch), xpb.bool_dtype)

    def clause_satisfaction(self, assignments, xpb: Optional[ArrayBackend] = None):
        """Full ``(batch, num_clauses)`` satisfaction matrix, empty clauses False."""
        xpb = self._resolve_xpb(assignments, xpb)
        batch = assignments.shape[0]
        result = xpb.zeros((batch, self.num_clauses), dtype=xpb.bool_dtype)
        if self.reduce_offsets.size:
            values = self._gather_literal_values(assignments, xpb)
            for clause_start, clause_end, block in self._group_blocks(values, batch):
                columns = self.nonempty_index[clause_start:clause_end]
                result[:, columns] = self._or_over_width(block).T
        return result

    def unsatisfied_counts(self, assignments, xpb: Optional[ArrayBackend] = None):
        """Per-row count of falsified clauses."""
        xpb = self._resolve_xpb(assignments, xpb)
        batch = assignments.shape[0]
        counts = xpb.full(batch, self.num_empty, dtype=xpb.int64_dtype)
        if self.reduce_offsets.size:
            values = self._gather_literal_values(assignments, xpb)
            for _, _, block in self._group_blocks(values, batch):
                counts += xpb.sum(~self._or_over_width(block), axis=0)
        return counts


#: Formulas holding a memoised plan.
_PLAN_OWNERS = OwnerRegistry()


def register_plan_owner(formula: "CNF") -> None:
    """Track a formula that memoised an evaluation plan (for bulk clearing)."""
    _PLAN_OWNERS.register(formula)


def clear_plan_caches() -> None:
    """Drop every memoised CNF evaluation plan in the process.

    Complements the automatic mutation-driven invalidation and also releases
    the plans' per-backend device uploads.  Exposed to users as
    :func:`repro.xp.clear_caches`.
    """
    _PLAN_OWNERS.clear(lambda formula: formula.clear_evaluation_plan())


def compile_evaluation_plan(formula: "CNF") -> CNFEvalPlan:
    """Flatten ``formula`` into a :class:`CNFEvalPlan` (one pass over the clauses)."""
    _PLAN_COMPILES.inc()
    indexed = [(index, clause) for index, clause in enumerate(formula.clauses)]
    nonempty = [(index, clause) for index, clause in indexed if len(clause)]
    num_empty = len(indexed) - len(nonempty)
    nonempty.sort(key=lambda pair: len(pair[1]))  # stable: insertion order per width
    columns = []
    negated = []
    offsets = []
    original_index = []
    groups = []
    position = 0
    for sorted_position, (index, clause) in enumerate(nonempty):
        width = len(clause)
        if groups and groups[-1][2] == width:
            groups[-1][1] = sorted_position + 1
        else:
            groups.append([sorted_position, sorted_position + 1, width])
        offsets.append(position)
        original_index.append(index)
        for literal in clause:
            columns.append(abs(literal) - 1)
            negated.append(literal < 0)
            position += 1
    return CNFEvalPlan(
        num_variables=formula.num_variables,
        num_clauses=formula.num_clauses,
        literal_columns=np.asarray(columns, dtype=np.intp),
        literal_negated=np.asarray(negated, dtype=bool),
        reduce_offsets=np.asarray(offsets, dtype=np.intp),
        nonempty_index=np.asarray(original_index, dtype=np.intp),
        width_groups=tuple((start, stop, width) for start, stop, width in groups),
        num_empty=num_empty,
    )


def _concatenate(segments, dtype):
    if not segments:
        return np.asarray([], dtype=dtype)
    if len(segments) == 1:
        return np.asarray(segments[0], dtype=dtype)
    return np.concatenate(segments).astype(dtype, copy=False)


def extend_evaluation_plan(plan: CNFEvalPlan, formula: "CNF") -> CNFEvalPlan:
    """Patch a parent plan into the plan of an append-only extended formula.

    ``formula``'s first ``plan.num_clauses`` clauses must be exactly the
    clauses the parent plan was compiled from; only appended clauses (and a
    possibly larger variable count) may differ.  Because the width sort in
    :func:`compile_evaluation_plan` is stable and appended clauses carry the
    largest original indices, each appended clause lands at the *end* of its
    width bucket — so the parent's flat arrays can be spliced per bucket
    without recompiling the whole formula.  The result is equal, field for
    field, to ``compile_evaluation_plan(formula)`` (pinned by tests).
    """
    clauses = formula.clauses
    if len(clauses) < plan.num_clauses:
        raise ValueError(
            f"formula has {len(clauses)} clauses but the parent plan covers "
            f"{plan.num_clauses}; extend_evaluation_plan is append-only"
        )
    appended = clauses[plan.num_clauses :]
    num_empty = plan.num_empty + sum(1 for clause in appended if not len(clause))
    new_by_width: Dict[int, list] = {}
    for offset, clause in enumerate(appended):
        if len(clause):
            index = plan.num_clauses + offset
            new_by_width.setdefault(len(clause), []).append((index, clause))

    old_spans = {width: (start, stop) for start, stop, width in plan.width_groups}
    boundaries = np.append(plan.reduce_offsets, plan.literal_columns.size)
    columns_segments = []
    negated_segments = []
    offsets_segments = []
    index_segments = []
    groups = []
    position = 0
    sorted_position = 0
    for width in sorted(set(old_spans) | set(new_by_width)):
        group_start = sorted_position
        if width in old_spans:
            start, stop = old_spans[width]
            literal_start, literal_stop = boundaries[start], boundaries[stop]
            columns_segments.append(plan.literal_columns[literal_start:literal_stop])
            negated_segments.append(plan.literal_negated[literal_start:literal_stop])
            offsets_segments.append(
                plan.reduce_offsets[start:stop] - literal_start + position
            )
            index_segments.append(plan.nonempty_index[start:stop])
            position += int(literal_stop - literal_start)
            sorted_position += stop - start
        for index, clause in new_by_width.get(width, ()):
            columns_segments.append(
                np.asarray([abs(literal) - 1 for literal in clause], dtype=np.intp)
            )
            negated_segments.append(
                np.asarray([literal < 0 for literal in clause], dtype=bool)
            )
            offsets_segments.append(np.asarray([position], dtype=np.intp))
            index_segments.append(np.asarray([index], dtype=np.intp))
            position += width
            sorted_position += 1
        groups.append((group_start, sorted_position, width))
    return CNFEvalPlan(
        num_variables=formula.num_variables,
        num_clauses=len(clauses),
        literal_columns=_concatenate(columns_segments, np.intp),
        literal_negated=_concatenate(negated_segments, bool),
        reduce_offsets=_concatenate(offsets_segments, np.intp),
        nonempty_index=_concatenate(index_segments, np.intp),
        width_groups=tuple(groups),
        num_empty=num_empty,
    )
