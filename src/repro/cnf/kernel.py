"""Compiled CNF evaluation kernel.

Batch CNF evaluation used to walk the clause list in Python
(:meth:`~repro.cnf.formula.CNF.evaluate_batch`'s clause-by-clause,
literal-by-literal loop).  This module compiles a formula once into a flat
*evaluation plan* — the CNF analogue of the engine's levelized programs
(:mod:`repro.engine.program`):

* ``literal_columns`` / ``literal_negated`` — every literal occurrence of
  every non-empty clause, flattened into one index array and one sign array,
  so a single fancy-index gather ``assignments.T[columns] ^ negated``
  produces all literal values of the whole formula at once;
* ``reduce_offsets`` — clause start boundaries into the flat arrays, in the
  spirit of ``np.logical_or.reduceat``.  ``reduceat`` itself pays per-segment
  overhead on thousands of tiny clauses, so the clauses are stored sorted by
  width and each ``width_groups`` bucket reduces as a fused
  ``(clauses, width, batch)`` slice-OR instead — same flat layout, no
  per-clause Python or per-segment ufunc cost.  The boolean reductions run
  over the transposed ``(variables, batch)`` matrix so every gathered row is
  contiguous;
* a bit-packed variant that packs the batch axis 8 rows per byte
  (``np.packbits``) and reduces the flat layout with
  ``np.bitwise_or.reduceat`` / ``np.bitwise_and.reduce``, mirroring the
  engine's packed execution mode.

Empty clauses cannot ride either reduction (a zero-length segment is not an
identity reduction), so they are counted separately: one empty clause makes
every assignment unsatisfying.

Plans are memoised per :class:`~repro.cnf.formula.CNF` via
:meth:`~repro.cnf.formula.CNF.evaluation_plan` and invalidated whenever the
formula mutates (``add_clause`` or a ``num_variables`` change), mirroring the
engine's compile-once design.  The clause-loop implementation survives as the
``"reference"`` backend; :func:`default_backend` (overridable with
:func:`set_default_backend` or the ``REPRO_CNF_BACKEND`` environment
variable) selects which implementation :meth:`CNF.evaluate_batch` uses.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Tuple

import numpy as np

if TYPE_CHECKING:  # avoid a runtime import cycle with repro.cnf.formula
    from repro.cnf.formula import CNF

#: Accepted values for the evaluation-backend knob.
BACKENDS = ("compiled", "packed", "reference")

#: Environment variable consulted for the process-wide default backend.
BACKEND_ENV_VAR = "REPRO_CNF_BACKEND"

_default_backend: Optional[str] = None


def default_backend() -> str:
    """The process-wide evaluation backend (env override, else ``"compiled"``)."""
    if _default_backend is not None:
        return _default_backend
    return _validate_backend(os.environ.get(BACKEND_ENV_VAR, "compiled"))


def set_default_backend(name: Optional[str]) -> None:
    """Set the process-wide backend; ``None`` restores the environment default."""
    global _default_backend
    _default_backend = None if name is None else _validate_backend(name)


def resolve_backend(name: Optional[str]) -> str:
    """Resolve a per-call backend argument (``None`` means the default)."""
    return default_backend() if name is None else _validate_backend(name)


def _validate_backend(name: str) -> str:
    if name not in BACKENDS:
        raise ValueError(f"backend must be one of {BACKENDS}, got {name!r}")
    return name


@dataclass(frozen=True)
class CNFEvalPlan:
    """A compiled, formula-specific batch-evaluation plan (immutable)."""

    #: Declared variable width the plan was compiled for.
    num_variables: int
    #: Total clause count, including empty clauses.
    num_clauses: int
    #: Flat assignment-column index of every literal, clauses sorted by width.
    literal_columns: np.ndarray
    #: Sign of each flat literal (``True`` for a negated literal).
    literal_negated: np.ndarray
    #: Start offset of each (width-sorted) non-empty clause in the flat arrays.
    reduce_offsets: np.ndarray
    #: Original clause index of each width-sorted non-empty clause.
    nonempty_index: np.ndarray
    #: ``(clause_start, clause_end, width)`` spans over the width-sorted
    #: clauses; each bucket reduces as one fused ``(clauses, width, batch)`` OR.
    width_groups: Tuple[Tuple[int, int, int], ...]
    #: Number of empty clauses (each one falsifies every assignment).
    num_empty: int

    @property
    def num_literals(self) -> int:
        """Total literal occurrences across the non-empty clauses."""
        return int(self.literal_columns.shape[0])

    # -- fused evaluation -------------------------------------------------------------
    def _gather_literal_values(self, assignments: np.ndarray) -> np.ndarray:
        """``(literals, batch)`` literal values over the transposed matrix."""
        transposed = np.ascontiguousarray(assignments.T)
        values = transposed[self.literal_columns]
        values ^= self.literal_negated[:, None]
        return values

    def _group_blocks(self, values: np.ndarray, batch: int):
        """Yield each width bucket as a ``(clauses, width, batch)`` view."""
        for clause_start, clause_end, width in self.width_groups:
            flat_start = int(self.reduce_offsets[clause_start])
            count = clause_end - clause_start
            block = values[flat_start : flat_start + count * width]
            yield clause_start, clause_end, block.reshape(count, width, batch)

    @staticmethod
    def _or_over_width(block: np.ndarray) -> np.ndarray:
        """OR a ``(clauses, width, batch)`` block down to ``(clauses, batch)``."""
        satisfied = block[:, 0]
        for column in range(1, block.shape[1]):
            satisfied = satisfied | block[:, column]
        return satisfied

    def evaluate(self, assignments: np.ndarray) -> np.ndarray:
        """Per-row satisfaction of the whole formula (boolean kernel)."""
        batch = assignments.shape[0]
        if self.num_empty:
            return np.zeros(batch, dtype=bool)
        if self.reduce_offsets.size == 0:
            return np.ones(batch, dtype=bool)
        values = self._gather_literal_values(assignments)
        satisfied = np.ones(batch, dtype=bool)
        for _, _, block in self._group_blocks(values, batch):
            satisfied &= self._or_over_width(block).all(axis=0)
        return satisfied

    def evaluate_packed(self, assignments: np.ndarray) -> np.ndarray:
        """Per-row satisfaction via the bit-packed kernel (8 rows per byte).

        The batch axis is packed with ``np.packbits``, the flat clause
        boundaries then drive one ``np.bitwise_or.reduceat`` over ``uint8``
        words; results are bitwise-identical to :meth:`evaluate`.
        """
        batch = assignments.shape[0]
        if self.num_empty:
            return np.zeros(batch, dtype=bool)
        if self.reduce_offsets.size == 0:
            return np.ones(batch, dtype=bool)
        packed_columns = np.packbits(np.ascontiguousarray(assignments.T), axis=1)
        literal_words = packed_columns[self.literal_columns]
        literal_words[self.literal_negated] ^= np.uint8(0xFF)
        clause_words = np.bitwise_or.reduceat(literal_words, self.reduce_offsets, axis=0)
        formula_words = np.bitwise_and.reduce(clause_words, axis=0)
        return np.unpackbits(formula_words, count=batch).astype(bool)

    def clause_satisfaction(self, assignments: np.ndarray) -> np.ndarray:
        """Full ``(batch, num_clauses)`` satisfaction matrix, empty clauses False."""
        batch = assignments.shape[0]
        result = np.zeros((batch, self.num_clauses), dtype=bool)
        if self.reduce_offsets.size:
            values = self._gather_literal_values(assignments)
            for clause_start, clause_end, block in self._group_blocks(values, batch):
                columns = self.nonempty_index[clause_start:clause_end]
                result[:, columns] = self._or_over_width(block).T
        return result

    def unsatisfied_counts(self, assignments: np.ndarray) -> np.ndarray:
        """Per-row count of falsified clauses."""
        batch = assignments.shape[0]
        counts = np.full(batch, self.num_empty, dtype=np.int64)
        if self.reduce_offsets.size:
            values = self._gather_literal_values(assignments)
            for _, _, block in self._group_blocks(values, batch):
                counts += (~self._or_over_width(block)).sum(axis=0)
        return counts


def compile_evaluation_plan(formula: "CNF") -> CNFEvalPlan:
    """Flatten ``formula`` into a :class:`CNFEvalPlan` (one pass over the clauses)."""
    indexed = [(index, clause) for index, clause in enumerate(formula.clauses)]
    nonempty = [(index, clause) for index, clause in indexed if len(clause)]
    num_empty = len(indexed) - len(nonempty)
    nonempty.sort(key=lambda pair: len(pair[1]))  # stable: insertion order per width
    columns = []
    negated = []
    offsets = []
    original_index = []
    groups = []
    position = 0
    for sorted_position, (index, clause) in enumerate(nonempty):
        width = len(clause)
        if groups and groups[-1][2] == width:
            groups[-1][1] = sorted_position + 1
        else:
            groups.append([sorted_position, sorted_position + 1, width])
        offsets.append(position)
        original_index.append(index)
        for literal in clause:
            columns.append(abs(literal) - 1)
            negated.append(literal < 0)
            position += 1
    return CNFEvalPlan(
        num_variables=formula.num_variables,
        num_clauses=formula.num_clauses,
        literal_columns=np.asarray(columns, dtype=np.intp),
        literal_negated=np.asarray(negated, dtype=bool),
        reduce_offsets=np.asarray(offsets, dtype=np.intp),
        nonempty_index=np.asarray(original_index, dtype=np.intp),
        width_groups=tuple((start, stop, width) for start, stop, width in groups),
        num_empty=num_empty,
    )
