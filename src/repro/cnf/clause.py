"""Clauses and literal helpers.

Literals follow the DIMACS convention: a positive integer ``v`` denotes the
variable ``v`` and ``-v`` denotes its negation.  Variable indices start at 1.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Tuple


def literal_variable(literal: int) -> int:
    """Return the (positive) variable index of a literal."""
    if literal == 0:
        raise ValueError("0 is not a valid literal")
    return abs(literal)


def literal_is_positive(literal: int) -> bool:
    """Whether the literal is the positive phase of its variable."""
    if literal == 0:
        raise ValueError("0 is not a valid literal")
    return literal > 0


def negate_literal(literal: int) -> int:
    """Return the complementary literal."""
    if literal == 0:
        raise ValueError("0 is not a valid literal")
    return -literal


class Clause:
    """An immutable disjunction of literals.

    Duplicate literals are removed at construction; a clause containing both a
    literal and its negation is tautological (see :attr:`is_tautology`) and
    always satisfied.
    """

    __slots__ = ("_literals",)

    def __init__(self, literals: Iterable[int]) -> None:
        seen = []
        seen_set = set()
        for literal in literals:
            literal = int(literal)
            if literal == 0:
                raise ValueError("0 is not a valid literal (it terminates DIMACS lines)")
            if literal not in seen_set:
                seen_set.add(literal)
                seen.append(literal)
        object.__setattr__(self, "_literals", tuple(seen))

    def __setattr__(self, *args) -> None:
        raise AttributeError("Clause is immutable")

    def __reduce__(self):
        # The default slots-based protocol would call __setattr__ and hit the
        # immutability guard; rebuild through __init__ instead (idempotent:
        # the stored literals are already deduplicated, order preserved).
        return (Clause, (self._literals,))

    @property
    def literals(self) -> Tuple[int, ...]:
        """The literals of the clause, in first-seen order."""
        return self._literals

    @property
    def variables(self) -> Tuple[int, ...]:
        """The distinct variable indices referenced by the clause."""
        return tuple(sorted({abs(lit) for lit in self._literals}))

    @property
    def is_empty(self) -> bool:
        """An empty clause is unsatisfiable."""
        return not self._literals

    @property
    def is_unit(self) -> bool:
        """Whether the clause contains exactly one literal."""
        return len(self._literals) == 1

    @property
    def is_tautology(self) -> bool:
        """Whether the clause contains a literal and its negation."""
        literal_set = set(self._literals)
        return any(-lit in literal_set for lit in literal_set)

    def contains(self, literal: int) -> bool:
        """Whether ``literal`` occurs in the clause."""
        return literal in self._literals

    def evaluate(self, assignment: Dict[int, bool]) -> bool:
        """Evaluate under a complete assignment ``{variable: bool}``."""
        for literal in self._literals:
            value = assignment[abs(literal)]
            if value == (literal > 0):
                return True
        return False

    def evaluate_partial(self, assignment: Dict[int, bool]) -> str:
        """Evaluate under a partial assignment.

        Returns ``"sat"`` if some literal is satisfied, ``"unsat"`` if every
        literal is falsified, and ``"undetermined"`` otherwise.
        """
        undetermined = False
        for literal in self._literals:
            variable = abs(literal)
            if variable not in assignment:
                undetermined = True
                continue
            if assignment[variable] == (literal > 0):
                return "sat"
        return "undetermined" if undetermined else "unsat"

    def without_literal(self, literal: int) -> "Clause":
        """Return a copy with every occurrence of ``literal`` removed."""
        return Clause(lit for lit in self._literals if lit != literal)

    def remap(self, mapping: Dict[int, int]) -> "Clause":
        """Rename variables according to ``mapping`` (old index -> new index)."""
        remapped = []
        for literal in self._literals:
            variable = abs(literal)
            new_variable = mapping.get(variable, variable)
            remapped.append(new_variable if literal > 0 else -new_variable)
        return Clause(remapped)

    def __len__(self) -> int:
        return len(self._literals)

    def __iter__(self) -> Iterator[int]:
        return iter(self._literals)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Clause):
            return NotImplemented
        return frozenset(self._literals) == frozenset(other._literals)

    def __hash__(self) -> int:
        return hash(frozenset(self._literals))

    def __repr__(self) -> str:
        body = " ".join(str(lit) for lit in self._literals)
        return f"Clause({body})"
