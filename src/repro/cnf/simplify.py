"""CNF preprocessing: unit propagation and pure-literal elimination.

These are the standard presolving steps every CNF-level sampler/solver in
:mod:`repro.baselines` applies before search; they are also useful as a
sanity pass before the transformation algorithm, since unit clauses directly
pin primary-output values (the ``x10 = 1`` constraint of Fig. 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.cnf.clause import Clause
from repro.cnf.formula import CNF


@dataclass
class SimplifyResult:
    """Outcome of a presolve pass.

    ``formula`` is the residual formula over the original variable numbering,
    ``forced`` records the variables fixed by the pass, and ``conflict`` is
    true when the pass proved the formula unsatisfiable.
    """

    formula: CNF
    forced: Dict[int, bool] = field(default_factory=dict)
    conflict: bool = False


def unit_propagate(formula: CNF) -> SimplifyResult:
    """Exhaustively propagate unit clauses.

    Returns the residual formula with satisfied clauses removed and falsified
    literals deleted from the remaining clauses.
    """
    forced: Dict[int, bool] = {}
    clauses: List[Tuple[int, ...]] = [clause.literals for clause in formula.clauses]

    changed = True
    while changed:
        changed = False
        units: List[int] = []
        for literals in clauses:
            if len(literals) == 1:
                units.append(literals[0])
        for unit in units:
            variable, value = abs(unit), unit > 0
            if variable in forced and forced[variable] != value:
                return SimplifyResult(CNF(num_variables=formula.num_variables), forced, True)
            if variable not in forced:
                forced[variable] = value
                changed = True
        if not changed:
            break
        reduced: List[Tuple[int, ...]] = []
        for literals in clauses:
            satisfied = False
            remaining: List[int] = []
            for literal in literals:
                variable = abs(literal)
                if variable in forced:
                    if forced[variable] == (literal > 0):
                        satisfied = True
                        break
                else:
                    remaining.append(literal)
            if satisfied:
                continue
            if not remaining:
                return SimplifyResult(CNF(num_variables=formula.num_variables), forced, True)
            reduced.append(tuple(remaining))
        clauses = reduced

    residual = CNF(num_variables=formula.num_variables, name=formula.name)
    for literals in clauses:
        residual.add_clause(literals)
    return SimplifyResult(residual, forced, False)


def pure_literal_eliminate(formula: CNF) -> SimplifyResult:
    """Fix every variable that appears in only one phase to that phase."""
    positive = set()
    negative = set()
    for clause in formula.clauses:
        for literal in clause:
            (positive if literal > 0 else negative).add(abs(literal))
    pure: Dict[int, bool] = {}
    for variable in positive - negative:
        pure[variable] = True
    for variable in negative - positive:
        pure[variable] = False

    residual = CNF(num_variables=formula.num_variables, name=formula.name)
    for clause in formula.clauses:
        if any(
            abs(literal) in pure and pure[abs(literal)] == (literal > 0)
            for literal in clause
        ):
            continue
        residual.add_clause(clause)
    return SimplifyResult(residual, pure, False)


def simplify_formula(formula: CNF, max_rounds: int = 10) -> SimplifyResult:
    """Alternate unit propagation and pure-literal elimination to a fixed point."""
    forced: Dict[int, bool] = {}
    current = formula
    for _ in range(max_rounds):
        before = current.num_clauses
        up = unit_propagate(current)
        forced.update(up.forced)
        if up.conflict:
            return SimplifyResult(up.formula, forced, True)
        ple = pure_literal_eliminate(up.formula)
        forced.update(ple.forced)
        current = ple.formula
        if current.num_clauses == before and not up.forced and not ple.forced:
            break
    return SimplifyResult(current, forced, False)


def remove_tautologies(formula: CNF) -> CNF:
    """Return a copy of ``formula`` with tautological clauses dropped."""
    cleaned = CNF(num_variables=formula.num_variables, name=formula.name, comments=list(formula.comments))
    for clause in formula.clauses:
        if not clause.is_tautology:
            cleaned.add_clause(clause)
    return cleaned


def deduplicate_clauses(formula: CNF) -> CNF:
    """Return a copy of ``formula`` with duplicate clauses removed (order kept)."""
    seen = set()
    cleaned = CNF(num_variables=formula.num_variables, name=formula.name, comments=list(formula.comments))
    for clause in formula.clauses:
        key = frozenset(clause.literals)
        if key in seen:
            continue
        seen.add(key)
        cleaned.add_clause(clause)
    return cleaned


def restrict(formula: CNF, partial: Dict[int, bool]) -> Optional[CNF]:
    """Restrict the formula under a partial assignment.

    Returns the residual formula, or ``None`` when the restriction falsifies a
    clause outright.
    """
    residual = CNF(num_variables=formula.num_variables, name=formula.name)
    for clause in formula.clauses:
        remaining: List[int] = []
        satisfied = False
        for literal in clause:
            variable = abs(literal)
            if variable in partial:
                if partial[variable] == (literal > 0):
                    satisfied = True
                    break
            else:
                remaining.append(literal)
        if satisfied:
            continue
        if not remaining:
            return None
        residual.add_clause(remaining)
    return residual
