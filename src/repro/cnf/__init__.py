"""CNF substrate: literals, clauses, formulas, DIMACS I/O and preprocessing.

All samplers in this library (the paper's gradient-based sampler and the
CNF-level baselines) consume :class:`~repro.cnf.formula.CNF` objects, and the
validity of every sampled solution is always checked against the *original*
CNF — never against the transformed circuit — exactly as the paper does.
"""

from repro.cnf.clause import Clause, literal_variable, literal_is_positive, negate_literal
from repro.cnf.delta import ClauseDelta
from repro.cnf.formula import CNF
from repro.cnf.kernel import (
    CNFEvalPlan,
    compile_evaluation_plan,
    default_backend,
    extend_evaluation_plan,
    set_default_backend,
)
from repro.cnf.assignment import Assignment
from repro.cnf.dimacs import parse_dimacs, parse_dimacs_file, write_dimacs, write_dimacs_file
from repro.cnf.simplify import unit_propagate, pure_literal_eliminate, simplify_formula
from repro.cnf.generators import random_ksat, random_horn, planted_ksat

__all__ = [
    "Clause",
    "ClauseDelta",
    "CNF",
    "CNFEvalPlan",
    "compile_evaluation_plan",
    "default_backend",
    "extend_evaluation_plan",
    "set_default_backend",
    "Assignment",
    "literal_variable",
    "literal_is_positive",
    "negate_literal",
    "parse_dimacs",
    "parse_dimacs_file",
    "write_dimacs",
    "write_dimacs_file",
    "unit_propagate",
    "pure_literal_eliminate",
    "simplify_formula",
    "random_ksat",
    "random_horn",
    "planted_ksat",
]
