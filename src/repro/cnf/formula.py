"""The CNF formula container used throughout the library."""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.cnf.clause import Clause
from repro.cnf.kernel import (
    CNFEvalPlan,
    compile_evaluation_plan,
    extend_evaluation_plan,
    register_plan_owner,
    resolve_backend,
    resolve_native_kernels,
)
from repro.xp import backend_for, to_numpy


class CNF:
    """A conjunction of clauses over variables ``1..num_variables``.

    The container is mutable only through :meth:`add_clause` /
    :meth:`retract_clause` (both of which invalidate the memoised evaluation
    plan); everything else returns new objects.  ``num_variables`` may exceed
    the largest referenced variable (DIMACS headers frequently over-declare),
    but never undercounts.
    """

    def __init__(
        self,
        clauses: Optional[Iterable[Sequence[int]]] = None,
        num_variables: int = 0,
        comments: Optional[List[str]] = None,
        name: str = "",
    ) -> None:
        self._clauses: List[Clause] = []
        self._num_variables = int(num_variables)
        self._plan: Optional[CNFEvalPlan] = None
        self.comments: List[str] = list(comments or [])
        self.name = name
        for clause in clauses or []:
            self.add_clause(clause)

    # -- construction --------------------------------------------------------------
    def add_clause(self, clause: Sequence[int]) -> Clause:
        """Append a clause (sequence of literals or :class:`Clause`) and return it."""
        if not isinstance(clause, Clause):
            clause = Clause(clause)
        self._clauses.append(clause)
        self._plan = None
        for literal in clause:
            self._num_variables = max(self._num_variables, abs(literal))
        return clause

    def add_clauses(self, clauses: Iterable[Sequence[int]]) -> None:
        """Append several clauses."""
        for clause in clauses:
            self.add_clause(clause)

    def retract_clause(self, clause: Sequence[int]) -> Clause:
        """Remove (and return) the first clause equal to ``clause``.

        Clause equality ignores literal order, so ``[2, -1]`` retracts a
        clause added as ``[-1, 2]``.  ``num_variables`` never shrinks (it is a
        declaration, not a census — consistent with DIMACS over-declaration).
        Raises :class:`ValueError` when no clause matches.
        """
        if not isinstance(clause, Clause):
            clause = Clause(clause)
        try:
            index = self._clauses.index(clause)
        except ValueError:
            raise ValueError(
                f"cannot retract {clause!r}: no matching clause in the formula"
            ) from None
        removed = self._clauses.pop(index)
        self._plan = None
        return removed

    def with_delta(self, delta) -> "CNF":
        """A copy of this formula with a :class:`~repro.cnf.delta.ClauseDelta`
        applied (retractions first, then ``add`` clauses, then ``assume``
        units).

        An empty (or ``None``) delta returns ``self`` unchanged — same object,
        so the default :class:`~repro.core.task.SamplingTask` costs nothing
        and stays bitwise-identical.  When this formula has a memoised
        evaluation plan and the delta is append-only, the copy's plan is
        *patched* from the parent plan (:func:`extend_evaluation_plan`)
        instead of scheduling a recompile.
        """
        if delta is None or delta.is_empty:
            return self
        mutated_clauses, _ = delta.apply(self._clauses)
        mutated = CNF(
            num_variables=self._num_variables,
            comments=list(self.comments),
            name=self.name,
        )
        for clause in mutated_clauses:
            mutated.add_clause(clause)
        if self._plan is not None and delta.is_append_only:
            mutated._plan = extend_evaluation_plan(self._plan, mutated)
            register_plan_owner(mutated)
        return mutated

    def copy(self) -> "CNF":
        """Return a deep copy."""
        duplicate = CNF(num_variables=self._num_variables, comments=list(self.comments), name=self.name)
        duplicate._clauses = list(self._clauses)
        duplicate._plan = self._plan  # immutable plan, same clauses: safe to share
        if duplicate._plan is not None:
            register_plan_owner(duplicate)
        return duplicate

    # -- basic accessors -------------------------------------------------------------
    @property
    def clauses(self) -> Tuple[Clause, ...]:
        """The clauses, in insertion order."""
        return tuple(self._clauses)

    @property
    def num_variables(self) -> int:
        """Number of declared variables (at least the largest referenced index)."""
        return self._num_variables

    @num_variables.setter
    def num_variables(self, value: int) -> None:
        largest = max((max(abs(l) for l in c) for c in self._clauses if len(c)), default=0)
        if value < largest:
            raise ValueError(
                f"num_variables={value} is smaller than the largest referenced variable {largest}"
            )
        self._num_variables = int(value)
        self._plan = None

    @property
    def num_clauses(self) -> int:
        """Number of clauses."""
        return len(self._clauses)

    def variables(self) -> List[int]:
        """Sorted list of variables actually referenced by some clause."""
        seen = set()
        for clause in self._clauses:
            seen.update(abs(lit) for lit in clause)
        return sorted(seen)

    def literal_count(self) -> int:
        """Total number of literal occurrences (the CNF 'size')."""
        return sum(len(clause) for clause in self._clauses)

    def two_input_operation_count(self) -> int:
        """Number of 2-input gate equivalents to evaluate the CNF directly.

        Each clause of width ``w`` needs ``w - 1`` two-input ORs plus the
        inverters for negated literals; the conjunction of ``m`` clauses needs
        ``m - 1`` two-input ANDs.  This is the "operations in the CNF" numerator
        of the Fig. 4 (middle) ops-reduction metric.
        """
        total = 0
        for clause in self._clauses:
            width = len(clause)
            total += max(width - 1, 0)
            total += sum(1 for literal in clause if literal < 0)
        total += max(self.num_clauses - 1, 0)
        return total

    # -- evaluation --------------------------------------------------------------------
    def evaluation_plan(self) -> CNFEvalPlan:
        """The memoised compiled evaluation plan (rebuilt after any mutation)."""
        if self._plan is None:
            self._plan = compile_evaluation_plan(self)
            register_plan_owner(self)
        return self._plan

    def clear_evaluation_plan(self) -> None:
        """Drop the memoised plan (and its per-backend device uploads)."""
        self._plan = None

    def install_evaluation_plan(self, plan: CNFEvalPlan) -> None:
        """Adopt a pre-compiled plan as this formula's memo.

        Used by :mod:`repro.store` when a deserialised plan arrives alongside
        the formula it was compiled from; the plan must match this formula's
        declared shape (plans are content-addressed, so a shape mismatch
        means the caller mixed signatures).
        """
        if (
            plan.num_variables != self._num_variables
            or plan.num_clauses != self.num_clauses
        ):
            raise ValueError(
                f"plan shape ({plan.num_variables} vars, {plan.num_clauses} clauses) "
                f"does not match formula ({self._num_variables} vars, "
                f"{self.num_clauses} clauses)"
            )
        self._plan = plan
        register_plan_owner(self)

    def __getstate__(self):
        # The memoised plan is serialised separately (repro.store keeps it as
        # its own entry); a pickled formula travels without it so plan bytes
        # are never embedded twice.
        state = dict(self.__dict__)
        state["_plan"] = None
        return state

    def _check_assignment_matrix(self, assignments):
        """Validate and coerce a ``(batch, num_variables)`` boolean matrix.

        Shared by every batch-evaluation entry point: the matrix must be 2-D
        and exactly ``num_variables`` wide — a wider matrix almost always
        means the caller's column convention is off by one, so it is rejected
        rather than silently truncated.

        Returns ``(matrix, array_backend)``.  Evaluation follows the
        *input's* residency (:func:`repro.xp.backend_for`): host inputs stay
        host-side and get NumPy results regardless of which array backend is
        active — so metrics, baselines and other un-migrated host consumers
        are unaffected by ``REPRO_ARRAY_BACKEND`` — while device-resident
        inputs are evaluated on the active backend without a host round-trip.
        """
        xpb = backend_for(assignments)
        matrix = xpb.asarray(assignments, dtype=xpb.bool_dtype)
        if matrix.ndim != 2:
            raise ValueError(
                f"expected a 2-D assignment matrix, got shape {tuple(matrix.shape)}"
            )
        if matrix.shape[1] != self._num_variables:
            raise ValueError(
                f"assignment matrix has {matrix.shape[1]} columns, "
                f"but the formula has {self._num_variables} variables"
            )
        return matrix, xpb

    def evaluate(self, assignment: Dict[int, bool]) -> bool:
        """Evaluate the formula under a complete assignment ``{variable: bool}``."""
        return all(clause.evaluate(assignment) for clause in self._clauses)

    def evaluate_batch(
        self, assignments: np.ndarray, backend: Optional[str] = None
    ) -> np.ndarray:
        """Vectorised evaluation of a ``(batch, num_variables)`` boolean matrix.

        Column ``j`` of ``assignments`` holds the value of variable ``j + 1``.
        Returns a boolean vector of length ``batch`` that is ``True`` where all
        clauses are satisfied.  ``backend`` selects the implementation
        (``"compiled"``, ``"packed"``, the compiled-C/Numba ``"native"`` or
        the clause-loop ``"reference"``); ``None`` uses
        :func:`repro.cnf.kernel.default_backend`.  All backends are
        bitwise-identical.  Like ``"reference"``, the ``"native"`` kernel runs
        host-side and returns a NumPy result.
        """
        matrix, xpb = self._check_assignment_matrix(assignments)
        backend = resolve_backend(backend)
        if backend == "reference":
            # The clause loop is a host-side reference implementation.
            return self._evaluate_batch_reference(np.asarray(to_numpy(matrix)))
        plan = self.evaluation_plan()
        if backend == "native":
            kernels = resolve_native_kernels()
            return kernels.cnf_evaluate(plan, np.asarray(to_numpy(matrix)))
        if backend == "packed":
            return plan.evaluate_packed(matrix, xpb)
        return plan.evaluate(matrix, xpb)

    def unsatisfied_clause_counts(
        self, assignments: np.ndarray, backend: Optional[str] = None
    ) -> np.ndarray:
        """Per-row count of clauses falsified by each assignment in a batch.

        Accepts the same ``(batch, num_variables)`` matrices and ``backend``
        values as :meth:`evaluate_batch` (the ``"packed"`` kernel has no
        per-clause counting form, so it falls back to ``"compiled"``).
        """
        matrix, xpb = self._check_assignment_matrix(assignments)
        backend = resolve_backend(backend)
        if backend == "reference":
            return self._unsatisfied_clause_counts_reference(
                np.asarray(to_numpy(matrix))
            )
        if backend == "native":
            kernels = resolve_native_kernels()
            return kernels.cnf_unsatisfied_counts(
                self.evaluation_plan(), np.asarray(to_numpy(matrix))
            )
        return self.evaluation_plan().unsatisfied_counts(matrix, xpb)

    def _evaluate_batch_reference(self, assignments: np.ndarray) -> np.ndarray:
        """The original clause-by-clause loop, kept as the equivalence reference."""
        satisfied = np.ones(assignments.shape[0], dtype=bool)
        for clause in self._clauses:
            clause_value = np.zeros(assignments.shape[0], dtype=bool)
            for literal in clause:
                column = assignments[:, abs(literal) - 1]
                clause_value |= column if literal > 0 else ~column
            satisfied &= clause_value
            if not satisfied.any():
                break
        return satisfied

    def _unsatisfied_clause_counts_reference(self, assignments: np.ndarray) -> np.ndarray:
        """Clause-loop reference implementation of :meth:`unsatisfied_clause_counts`."""
        counts = np.zeros(assignments.shape[0], dtype=np.int64)
        for clause in self._clauses:
            clause_value = np.zeros(assignments.shape[0], dtype=bool)
            for literal in clause:
                column = assignments[:, abs(literal) - 1]
                clause_value |= column if literal > 0 else ~column
            counts += ~clause_value
        return counts

    # -- protocol -----------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._clauses)

    def __iter__(self) -> Iterator[Clause]:
        return iter(self._clauses)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CNF):
            return NotImplemented
        return (
            self._num_variables == other._num_variables
            and list(self._clauses) == list(other._clauses)
        )

    def __repr__(self) -> str:
        label = f" name={self.name!r}" if self.name else ""
        return f"CNF(vars={self._num_variables}, clauses={self.num_clauses}{label})"
