"""DIMACS CNF reader and writer.

The reader is tolerant of the common irregularities found in public benchmark
suites: comment lines anywhere, clauses spanning multiple physical lines,
missing or under-counted ``p cnf`` headers, and ``%`` / ``0`` trailer lines
produced by some generators.  Comments are preserved because the paper's
Fig. 1 example annotates each clause group with the gate it encodes.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import List, Union

from repro.cnf.formula import CNF


class DimacsError(ValueError):
    """Raised when a DIMACS document is malformed beyond recovery."""


def parse_dimacs(text: str, name: str = "") -> CNF:
    """Parse DIMACS CNF text into a :class:`~repro.cnf.formula.CNF`.

    Stray ``0`` tokens with no pending literals (trailer lines emitted by some
    generators) are ignored rather than being interpreted as empty clauses.
    """
    declared_vars = 0
    declared_clauses = -1
    comments: List[str] = []
    clauses: List[List[int]] = []
    pending: List[int] = []

    for line_number, raw_line in enumerate(io.StringIO(text), start=1):
        line = raw_line.strip()
        if not line:
            continue
        if line.startswith("c"):
            comments.append(line[1:].strip())
            continue
        if line.startswith("%"):
            break
        if line.startswith("p"):
            parts = line.split()
            if len(parts) < 4 or parts[1] != "cnf":
                raise DimacsError(f"line {line_number}: malformed header {line!r}")
            try:
                declared_vars = int(parts[2])
                declared_clauses = int(parts[3])
            except ValueError as exc:
                raise DimacsError(f"line {line_number}: non-integer header fields") from exc
            continue
        for token in line.split():
            try:
                literal = int(token)
            except ValueError as exc:
                raise DimacsError(
                    f"line {line_number}: expected integer literal, got {token!r}"
                ) from exc
            if literal == 0:
                if pending:
                    clauses.append(pending)
                    pending = []
            else:
                pending.append(literal)
    if pending:
        clauses.append(pending)

    formula = CNF(num_variables=declared_vars, comments=comments, name=name)
    for clause in clauses:
        formula.add_clause(clause)
    if declared_clauses >= 0 and formula.num_clauses != declared_clauses:
        # Header mismatches are common in the wild; record rather than fail.
        formula.comments.append(
            f"header declared {declared_clauses} clauses but {formula.num_clauses} were read"
        )
    return formula


def parse_dimacs_file(path: Union[str, Path]) -> CNF:
    """Parse a DIMACS CNF file."""
    path = Path(path)
    return parse_dimacs(path.read_text(), name=path.stem)


def write_dimacs(formula: CNF, include_comments: bool = True) -> str:
    """Serialise a formula to DIMACS CNF text."""
    lines: List[str] = []
    if include_comments:
        for comment in formula.comments:
            lines.append(f"c {comment}")
    lines.append(f"p cnf {formula.num_variables} {formula.num_clauses}")
    for clause in formula.clauses:
        body = " ".join(str(literal) for literal in clause)
        lines.append(f"{body} 0".strip())
    return "\n".join(lines) + "\n"


def write_dimacs_file(
    formula: CNF, path: Union[str, Path], include_comments: bool = True
) -> Path:
    """Write a formula to a DIMACS CNF file and return the path."""
    path = Path(path)
    path.write_text(write_dimacs(formula, include_comments=include_comments))
    return path
