"""Assignments of truth values to CNF variables."""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Mapping, Optional, Tuple

import numpy as np


class Assignment:
    """A (possibly partial) mapping from variable indices to boolean values."""

    def __init__(self, values: Optional[Mapping[int, bool]] = None) -> None:
        self._values: Dict[int, bool] = {}
        if values:
            for variable, value in values.items():
                self.set(variable, value)

    # -- construction ---------------------------------------------------------------
    @classmethod
    def from_vector(cls, vector: Iterable[bool], start_variable: int = 1) -> "Assignment":
        """Build a complete assignment from a 0/1 vector (variable ``start_variable`` first)."""
        assignment = cls()
        for offset, value in enumerate(vector):
            assignment.set(start_variable + offset, bool(value))
        return assignment

    @classmethod
    def from_literals(cls, literals: Iterable[int]) -> "Assignment":
        """Build an assignment from signed literals (``v`` -> True, ``-v`` -> False)."""
        assignment = cls()
        for literal in literals:
            if literal == 0:
                raise ValueError("0 is not a valid literal")
            assignment.set(abs(literal), literal > 0)
        return assignment

    # -- mutation --------------------------------------------------------------------
    def set(self, variable: int, value: bool) -> None:
        """Assign ``value`` to ``variable`` (index must be positive)."""
        if variable <= 0:
            raise ValueError(f"variable index must be positive, got {variable}")
        self._values[variable] = bool(value)

    def unset(self, variable: int) -> None:
        """Remove ``variable`` from the assignment if present."""
        self._values.pop(variable, None)

    # -- queries ------------------------------------------------------------------------
    def get(self, variable: int, default: Optional[bool] = None) -> Optional[bool]:
        """Return the value of ``variable`` or ``default`` when unassigned."""
        return self._values.get(variable, default)

    def __getitem__(self, variable: int) -> bool:
        return self._values[variable]

    def __contains__(self, variable: int) -> bool:
        return variable in self._values

    def __len__(self) -> int:
        return len(self._values)

    def __iter__(self) -> Iterator[int]:
        return iter(self._values)

    def items(self) -> Iterable[Tuple[int, bool]]:
        """Iterate over ``(variable, value)`` pairs."""
        return self._values.items()

    def satisfies_literal(self, literal: int) -> Optional[bool]:
        """Whether the assignment satisfies ``literal`` (``None`` if unassigned)."""
        value = self._values.get(abs(literal))
        if value is None:
            return None
        return value == (literal > 0)

    def is_complete(self, num_variables: int) -> bool:
        """Whether every variable in ``1..num_variables`` is assigned."""
        return all(v in self._values for v in range(1, num_variables + 1))

    # -- conversion -------------------------------------------------------------------------
    def to_dict(self) -> Dict[int, bool]:
        """Return a plain ``{variable: bool}`` dictionary."""
        return dict(self._values)

    def to_vector(self, num_variables: int, default: bool = False) -> np.ndarray:
        """Return a boolean vector of length ``num_variables`` (variable 1 first)."""
        vector = np.full(num_variables, default, dtype=bool)
        for variable, value in self._values.items():
            if variable <= num_variables:
                vector[variable - 1] = value
        return vector

    def to_literals(self) -> Tuple[int, ...]:
        """Return the assignment as a tuple of signed literals, sorted by variable."""
        return tuple(
            variable if value else -variable
            for variable, value in sorted(self._values.items())
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Assignment):
            return NotImplemented
        return self._values == other._values

    def __repr__(self) -> str:
        return f"Assignment({len(self._values)} vars)"
