"""Clause deltas: declarative add / retract / assume edits of a CNF.

Incremental SAT workflows (and the serving tier's ``incremental`` job type)
describe a formula as *another formula plus a small edit* instead of a whole
new clause list.  :class:`ClauseDelta` is that edit, pinned down precisely so
every consumer — :meth:`CNF.with_delta <repro.cnf.formula.CNF.with_delta>`,
:func:`repro.core.transform.retransform`, the task signature — agrees on the
resulting clause sequence:

1. every ``retract`` clause removes the *first* clause equal to it
   (:class:`~repro.cnf.clause.Clause` equality ignores literal order);
2. the ``add`` clauses are appended, in order;
3. each ``assume`` literal is appended as a unit clause, in order.

Assumptions are just sugar for unit-clause adds — the form incremental SAT
interfaces (IPASIR's ``assume``) use to pin variables for one solve; retract
the unit to release the assumption.  Deltas are immutable and hashable, so
they can ride inside frozen task specs and coalescing keys.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Sequence, Tuple, Union

from repro.cnf.clause import Clause

ClauseLike = Union[Clause, Sequence[int]]


def _coerce_clauses(clauses: Iterable[ClauseLike]) -> Tuple[Clause, ...]:
    return tuple(
        clause if isinstance(clause, Clause) else Clause(clause) for clause in clauses
    )


@dataclass(frozen=True)
class ClauseDelta:
    """An immutable edit of a clause list (see the module docstring for order)."""

    #: Clauses appended to the formula.
    add: Tuple[Clause, ...] = ()
    #: Clauses removed from the formula (first content-equal match each).
    retract: Tuple[Clause, ...] = ()
    #: Literals pinned true for this task; each becomes an appended unit clause.
    assume: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "add", _coerce_clauses(self.add))
        object.__setattr__(self, "retract", _coerce_clauses(self.retract))
        assume = tuple(int(literal) for literal in self.assume)
        if any(literal == 0 for literal in assume):
            raise ValueError("0 is not a valid assumption literal")
        object.__setattr__(self, "assume", assume)

    @property
    def is_empty(self) -> bool:
        """Whether the delta changes nothing."""
        return not (self.add or self.retract or self.assume)

    @property
    def is_append_only(self) -> bool:
        """Whether the delta only appends clauses (no retraction).

        Append-only deltas preserve every existing clause position, which is
        what lets the evaluation-plan patch and the transform replay reuse
        the full parent prefix.
        """
        return not self.retract

    def appended_clauses(self) -> Tuple[Clause, ...]:
        """The clauses this delta appends: ``add`` then the ``assume`` units."""
        return self.add + tuple(Clause([literal]) for literal in self.assume)

    def apply(self, clauses: Sequence[Clause]) -> Tuple[List[Clause], int]:
        """Apply the delta to a clause sequence.

        Returns ``(mutated clause list, change position)`` where the change
        position is the smallest index at which the mutated list can differ
        from the input (``len(clauses)`` for a pure append).  Raises
        :class:`ValueError` when a ``retract`` clause has no match.
        """
        mutated = list(clauses)
        change_position = len(mutated)
        for clause in self.retract:
            try:
                index = mutated.index(clause)
            except ValueError:
                raise ValueError(
                    f"cannot retract {clause!r}: no matching clause in the formula"
                ) from None
            del mutated[index]
            change_position = min(change_position, index)
        mutated.extend(self.appended_clauses())
        return mutated, change_position

    def canonical(self) -> Tuple:
        """Hashable canonical form used by signatures and coalescing keys.

        Literal order inside ``add``/``retract`` clauses is preserved (clause
        order matters to Algorithm 1, and the literal sequence is part of the
        formula signature's identity too).
        """
        return (
            tuple(clause.literals for clause in self.add),
            tuple(clause.literals for clause in self.retract),
            self.assume,
        )

    def to_dict(self) -> dict:
        """JSON/pickle-safe form (inverse of :meth:`from_dict`)."""
        return {
            "add": [list(clause.literals) for clause in self.add],
            "retract": [list(clause.literals) for clause in self.retract],
            "assume": list(self.assume),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ClauseDelta":
        """Rebuild a delta from :meth:`to_dict` output (or manifest fields)."""
        unknown = set(data) - {"add", "retract", "assume"}
        if unknown:
            raise ValueError(f"unknown delta fields {sorted(unknown)}")
        return cls(
            add=tuple(Clause(clause) for clause in data.get("add", ())),
            retract=tuple(Clause(clause) for clause in data.get("retract", ())),
            assume=tuple(int(literal) for literal in data.get("assume", ())),
        )

    def __bool__(self) -> bool:
        return not self.is_empty
