"""Best-effort CuPy backend (real CUDA GPU execution).

CuPy mirrors the NumPy API closely enough that this backend is mostly a
re-binding of :mod:`cupy` functions.  The ops CuPy's ufuncs do not implement
(``reduceat``-style segmented reductions, axis-aware bit packing) fall back
to the generic host round-trips of :class:`~repro.xp.backend.ArrayBackend`
or a cumsum-based device formulation — correct, just not the final word on
speed.  Construction raises :class:`~repro.xp.backend.BackendUnavailableError`
when ``import cupy`` fails, and the registry (plus the test suite) skips the
backend in that case, so shipping this file costs nothing on CPU-only hosts.
"""

from __future__ import annotations

import numpy as np

from repro.xp.backend import ArrayBackend, BackendUnavailableError


class CupyBackend(ArrayBackend):
    """CUDA execution via CuPy; NumPy-equivalent results to ~1e-10."""

    name = "cupy"
    is_numpy = False
    supports_packed = True

    def __init__(self, float_dtype=None) -> None:
        try:
            import cupy
        except Exception as error:  # pragma: no cover - exercised only with CUDA
            raise BackendUnavailableError(
                f"CuPy backend unavailable: {error}"
            ) from error
        super().__init__(float_dtype)
        self.cupy = cupy
        self.from_numpy = cupy.asarray
        self.asarray = cupy.asarray
        self.empty = cupy.empty
        self.zeros = cupy.zeros
        self.ones = cupy.ones
        self.zeros_like = cupy.zeros_like
        self.ones_like = cupy.ones_like
        self.add = cupy.add
        self.subtract = cupy.subtract
        self.multiply = cupy.multiply
        self.exp = cupy.exp
        self.sqrt = cupy.sqrt
        self.logical_and = cupy.logical_and
        self.logical_or = cupy.logical_or
        self.logical_not = cupy.logical_not
        self.bitwise_and = cupy.bitwise_and
        self.bitwise_or = cupy.bitwise_or
        self.bitwise_xor = cupy.bitwise_xor
        self.sum = cupy.sum
        self.all = cupy.all
        self.any = cupy.any
        self.broadcast_to = cupy.broadcast_to
        self.expand_dims = cupy.expand_dims
        self.stack = cupy.stack
        self.ascontiguousarray = cupy.ascontiguousarray

    # pragma: no cover - the bodies below run only on CUDA hosts
    def asnumpy(self, array):
        return self.cupy.asnumpy(array)

    def full(self, shape, value, dtype=None):
        return self.cupy.full(shape, value, dtype=dtype)

    def one_minus(self, a, out=None):
        return self.cupy.subtract(1.0, a, out=out)

    def packbits(self, a, axis=None):
        try:
            return self.cupy.packbits(a, axis=axis)
        except TypeError:  # older CuPy: packbits flattens, no axis support
            return super().packbits(a, axis=axis)

    def unpackbits(self, a, count=None):
        try:
            return self.cupy.unpackbits(a, count=count)
        except TypeError:
            return super().unpackbits(a, count=count)
