"""Backend registry: named factories, spec parsing, environment default.

A *spec* is ``"<name>"`` or ``"<name>:<float-dtype>"`` — ``"numpy"``,
``"numpy:float32"``, ``"cupy"``, ``"torch:float32"``.  The dtype suffix
selects the backend's float policy (``float64`` is the bitwise reference,
``float32`` the reduced-precision throughput mode).

Resolution precedence across the library is **environment < config < CLI**:

* ``REPRO_ARRAY_BACKEND`` sets the process-wide default consulted by
  :func:`repro.xp.active_backend` when nothing was selected explicitly;
* ``SamplerConfig(array_backend=...)`` (or ``Device(array_backend=...)``)
  overrides the environment for one sampler;
* the CLI flag ``--array-backend`` writes the config field, so it wins.

Third-party backends plug in with :func:`register_backend` — the factory
receives the requested float dtype (or ``None``) and must return an
:class:`~repro.xp.backend.ArrayBackend`; raise
:class:`~repro.xp.backend.BackendUnavailableError` when the runtime is
missing so :func:`available_backends` can skip it.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, List, Optional, Tuple

from repro.xp.backend import ArrayBackend, BackendUnavailableError, NumpyBackend

#: Environment variable holding the process-wide default backend spec.
BACKEND_ENV_VAR = "REPRO_ARRAY_BACKEND"

#: Float-dtype policies a spec suffix may name.
FLOAT_DTYPES = ("float64", "float32")

BackendFactory = Callable[[Optional[str]], ArrayBackend]

_FACTORIES: Dict[str, BackendFactory] = {}
_INSTANCES: Dict[str, ArrayBackend] = {}


def register_backend(name: str, factory: BackendFactory) -> None:
    """Register (or replace) a backend factory under ``name``."""
    if not name or ":" in name:
        raise ValueError(f"backend name must be non-empty and colon-free, got {name!r}")
    _FACTORIES[name] = factory
    # Drop any memoised instances of a replaced factory.
    for spec in [s for s in _INSTANCES if s.split(":", 1)[0] == name]:
        del _INSTANCES[spec]


def registered_backends() -> List[str]:
    """Names of all registered factories (including unavailable ones)."""
    return sorted(_FACTORIES)


def parse_spec(spec: str) -> Tuple[str, Optional[str]]:
    """Split and validate a backend spec into ``(name, float_dtype_or_None)``."""
    if not isinstance(spec, str) or not spec:
        raise ValueError(f"backend spec must be a non-empty string, got {spec!r}")
    name, separator, dtype = spec.partition(":")
    if separator and not dtype:
        raise ValueError(f"backend spec {spec!r} has an empty dtype suffix")
    dtype = dtype or None
    if name not in _FACTORIES:
        raise ValueError(
            f"unknown array backend {name!r}; registered: {registered_backends()}"
        )
    if dtype is not None and dtype not in FLOAT_DTYPES:
        raise ValueError(
            f"unknown float dtype {dtype!r} in spec {spec!r}; choose from {FLOAT_DTYPES}"
        )
    return name, dtype


def validate_spec(spec: str) -> str:
    """Check a spec's syntax and registration without instantiating; returns it."""
    parse_spec(spec)
    return spec


def default_spec() -> str:
    """The process default: ``REPRO_ARRAY_BACKEND`` or ``"numpy"``."""
    return os.environ.get(BACKEND_ENV_VAR, "numpy")


def get_backend(spec: Optional[str] = None) -> ArrayBackend:
    """Resolve a spec to a (memoised) backend instance.

    ``None`` resolves the environment default.  Raises ``ValueError`` for
    malformed or unregistered specs and
    :class:`~repro.xp.backend.BackendUnavailableError` when the named
    runtime cannot be imported.
    """
    spec = spec if spec is not None else default_spec()
    instance = _INSTANCES.get(spec)
    if instance is None:
        name, dtype = parse_spec(spec)
        instance = _FACTORIES[name](dtype)
        _INSTANCES[spec] = instance
    return instance


def backend_available(name: str) -> bool:
    """Whether the named backend instantiates on this host."""
    try:
        get_backend(name)
    except (BackendUnavailableError, ValueError):
        return False
    return True


def available_backends() -> List[str]:
    """Registered backend names that instantiate on this host.

    The equivalence test suite parametrises over this list, so optional
    runtimes (CuPy, Torch) are covered exactly where they exist and skipped
    everywhere else.
    """
    return [name for name in registered_backends() if backend_available(name)]


def clear_instances() -> None:
    """Drop memoised backend instances (tests re-registering factories)."""
    _INSTANCES.clear()


def _make_numpy(dtype: Optional[str]) -> ArrayBackend:
    return NumpyBackend(float_dtype=dtype)


def _make_cupy(dtype: Optional[str]) -> ArrayBackend:
    from repro.xp.cupy_backend import CupyBackend

    return CupyBackend(float_dtype=dtype)


def _make_torch(dtype: Optional[str]) -> ArrayBackend:
    from repro.xp.torch_backend import TorchBackend

    return TorchBackend(float_dtype=dtype)


register_backend("numpy", _make_numpy)
register_backend("cupy", _make_cupy)
register_backend("torch", _make_torch)
