"""The array-backend protocol and its NumPy reference implementation.

An :class:`ArrayBackend` is the execution substrate of every hot path in the
library: the autodiff tape (:mod:`repro.tensor`), the compiled levelized
engine (:mod:`repro.engine`), the CNF evaluation kernel
(:mod:`repro.cnf.kernel`) and the samplers all express their array work
against this interface instead of importing ``numpy`` directly.  Swapping the
backend therefore swaps the device the *whole* learn-sample loop runs on —
the property the paper's GPU throughput numbers rely on.

Design rules:

* **NumPy is the reference.**  :class:`NumpyBackend` binds the real NumPy
  functions as instance attributes, so routing through the backend costs one
  attribute lookup per fused statement and the results are bitwise-identical
  to direct ``numpy`` calls.  The equivalence test suite pins every other
  backend against it.
* **Best-effort accelerators.**  GPU/tensor-runtime backends (CuPy, Torch)
  subclass this interface and may fall back to a host round-trip for ops the
  runtime lacks (``reduceat``, bit packing); :attr:`supports_packed` tells
  callers when the packed kernels would be emulated rather than native.
* **Dtype policy lives here.**  :attr:`float_dtype` fixes the precision of
  the probabilistic relaxation (``float64`` reproduces the reference bitwise;
  ``float32`` is the GPU throughput mode, validated to ~1e-5 by the policy
  tests).
* **One seeded stream per backend.**  :meth:`rng` returns a
  :class:`BackendRNG` drawing from a host-side NumPy generator and uploading
  via :meth:`from_numpy`, so a fixed seed produces the *same* candidate
  stream on every backend and sampler restarts are reproducible per-backend.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence, Tuple

import numpy as np

from repro.utils.rng import SeedLike, new_rng


class BackendUnavailableError(ImportError):
    """Raised when an optional backend's runtime cannot be imported."""


class BackendRNG:
    """Seeded random stream yielding arrays on a backend's device.

    Draws come from one host-side :class:`numpy.random.Generator` and are
    uploaded through the backend's :meth:`~ArrayBackend.from_numpy`, so every
    backend consumes an identical stream for a given seed: sampled solutions
    can match across devices, and re-seeding reproduces a run exactly.
    Backends may override :meth:`ArrayBackend.rng` with a device-native
    generator when stream parity does not matter.
    """

    __slots__ = ("_backend", "host")

    def __init__(self, backend: "ArrayBackend", seed: SeedLike = None) -> None:
        self._backend = backend
        #: The underlying host generator (shared stream; consume with care).
        self.host = new_rng(seed)

    def normal(self, loc: float = 0.0, scale: float = 1.0, size=None):
        """Gaussian draw of the given shape, uploaded to the backend."""
        return self._backend.from_numpy(np.asarray(self.host.normal(loc, scale, size)))

    def random(self, size=None):
        """Uniform [0, 1) draw of the given shape, uploaded to the backend."""
        return self._backend.from_numpy(np.asarray(self.host.random(size)))

    def integers(self, low: int, high: Optional[int] = None, size=None):
        """Integer draw of the given shape, uploaded to the backend."""
        return self._backend.from_numpy(np.asarray(self.host.integers(low, high, size)))


class ArrayBackend:
    """Abstract array namespace: creation, elementwise ops, reductions, RNG.

    Concrete backends either bind native functions as attributes (NumPy,
    CuPy) or override the methods (Torch).  The generic method bodies below
    implement the exotic ops (segmented reductions, bit packing) via a host
    round-trip so a minimal subclass is already correct, just not fast.
    """

    #: Registry name of the backend ("numpy", "cupy", "torch").
    name: str = "abstract"
    #: True only for the NumPy reference backend (enables zero-copy fast paths).
    is_numpy: bool = False
    #: Whether the uint8/uint64 bit-packed kernels run natively on the device.
    supports_packed: bool = True

    def __init__(self, float_dtype=None) -> None:
        self.float_dtype = np.dtype(float_dtype or np.float64)
        self.bool_dtype = np.bool_
        self.uint8_dtype = np.uint8
        self.uint64_dtype = np.uint64
        self.int64_dtype = np.int64
        #: All-ones constants for the packed execution modes.
        self.packed_ones_u8 = np.uint8(0xFF)
        self.packed_ones_u64 = np.uint64(0xFFFFFFFFFFFFFFFF)

    # -- identity ----------------------------------------------------------------------
    @property
    def cache_key(self) -> str:
        """Stable key for per-backend memos (name plus dtype policy)."""
        return f"{self.name}:{np.dtype(self.float_dtype).name}"

    def __repr__(self) -> str:
        return f"{type(self).__name__}(float_dtype={np.dtype(self.float_dtype).name})"

    # -- host boundary ------------------------------------------------------------------
    def asnumpy(self, array) -> np.ndarray:
        """Download an array to a host NumPy array (identity on NumPy)."""
        raise NotImplementedError

    def from_numpy(self, array: np.ndarray):
        """Upload a host NumPy array to the backend's device (identity on NumPy)."""
        raise NotImplementedError

    # -- creation -----------------------------------------------------------------------
    def asarray(self, array, dtype=None):
        raise NotImplementedError

    def empty(self, shape, dtype=None):
        raise NotImplementedError

    def zeros(self, shape, dtype=None):
        raise NotImplementedError

    def ones(self, shape, dtype=None):
        raise NotImplementedError

    def full(self, shape, value, dtype=None):
        raise NotImplementedError

    def zeros_like(self, array):
        raise NotImplementedError

    def ones_like(self, array):
        raise NotImplementedError

    def copy(self, array):
        """A materialised copy (``clone`` on Torch)."""
        return array.copy()

    def astype(self, array, dtype):
        return array.astype(dtype)

    # -- elementwise (out= follows NumPy ufunc semantics where supported) ---------------
    def add(self, a, b, out=None):
        raise NotImplementedError

    def subtract(self, a, b, out=None):
        raise NotImplementedError

    def multiply(self, a, b, out=None):
        raise NotImplementedError

    def one_minus(self, a, out=None):
        """``1 - a``: the probabilistic NOT, fused into one statement."""
        raise NotImplementedError

    def exp(self, a):
        raise NotImplementedError

    def sqrt(self, a):
        raise NotImplementedError

    def logical_and(self, a, b, out=None):
        raise NotImplementedError

    def logical_or(self, a, b, out=None):
        raise NotImplementedError

    def logical_not(self, a, out=None):
        raise NotImplementedError

    def bitwise_and(self, a, b, out=None):
        raise NotImplementedError

    def bitwise_or(self, a, b, out=None):
        raise NotImplementedError

    def bitwise_xor(self, a, b, out=None):
        raise NotImplementedError

    # -- reductions / structure ---------------------------------------------------------
    def sum(self, a, axis=None, keepdims=False):
        raise NotImplementedError

    def all(self, a, axis=None):
        raise NotImplementedError

    def any(self, a, axis=None):
        raise NotImplementedError

    def broadcast_to(self, a, shape):
        raise NotImplementedError

    def expand_dims(self, a, axis):
        raise NotImplementedError

    def stack(self, arrays: Sequence, axis: int = 0):
        raise NotImplementedError

    def reshape(self, a, shape):
        return a.reshape(shape)

    def ascontiguousarray(self, a):
        raise NotImplementedError

    # -- segmented reductions (the add.reduceat-style scatter primitives) ---------------
    def add_reduceat(self, a, offsets, axis: int = 0):
        """Segment sums over ``axis``: segment ``i`` spans
        ``[offsets[i], offsets[i + 1])`` (last segment runs to the end).

        Generic implementation via inclusive cumulative sums, assuming the
        *strictly* increasing offsets every compiled plan produces
        (``np.add.reduceat``'s restart-on-decreasing corner is *not*
        reproduced; its empty-segment quirk — an empty segment yields
        ``a[offsets[i]]`` — is).  Summation order differs from the ufunc's
        pairwise reduction, so floating-point results may drift at the last
        few ulps on long segments — inside the ~1e-10 equivalence budget.
        NumPy overrides this with the exact ``np.add.reduceat``.
        """
        if axis != 0:
            raise NotImplementedError("generic add_reduceat supports axis=0 only")
        offsets = np.asarray(
            offsets if isinstance(offsets, np.ndarray) else self.asnumpy(offsets)
        )
        a = self.asarray(a)
        running = a.cumsum(axis=0)
        ends = np.r_[offsets[1:], a.shape[0]] - 1
        totals = running[ends]  # fancy index: already a copy
        totals[1:] = totals[1:] - running[ends[:-1]]
        if offsets[0] > 0:  # first segment must exclude rows before offsets[0]
            totals[0] = totals[0] - running[offsets[0] - 1]
        lengths = np.r_[offsets[1:], a.shape[0]] - offsets
        empty = np.flatnonzero(lengths <= 0)
        if empty.size:  # reduceat quirk: an empty segment yields a[offsets[i]]
            totals[empty] = a[offsets[empty]]
        return totals

    def bitwise_or_reduceat(self, a, offsets, axis: int = 0):
        """Segmented bitwise OR; generic implementation round-trips the host."""
        host = np.bitwise_or.reduceat(self.asnumpy(a), np.asarray(offsets), axis=axis)
        return self.from_numpy(host)

    def bitwise_and_reduce(self, a, axis: int = 0):
        """Bitwise AND over one axis; generic implementation round-trips the host."""
        return self.from_numpy(np.bitwise_and.reduce(self.asnumpy(a), axis=axis))

    # -- bit packing --------------------------------------------------------------------
    def packbits(self, a, axis=None):
        """``np.packbits`` semantics; generic implementation round-trips the host."""
        return self.from_numpy(np.packbits(self.asnumpy(a), axis=axis))

    def unpackbits(self, a, count=None):
        """``np.unpackbits`` on a 1-D word vector; generic host round-trip."""
        return self.from_numpy(np.unpackbits(self.asnumpy(a), count=count))

    # -- rng ----------------------------------------------------------------------------
    def rng(self, seed: SeedLike = None) -> BackendRNG:
        """A seeded random stream producing arrays on this backend."""
        return BackendRNG(self, seed)


class NumpyBackend(ArrayBackend):
    """The host reference backend: direct NumPy, bitwise-identical to the seed.

    Every hot-path function is bound as an instance attribute pointing at the
    real NumPy callable, so ``backend.multiply(a, b, out=out)`` *is*
    ``np.multiply(a, b, out=out)`` — the abstraction adds one attribute
    lookup and nothing else.  ``float_dtype`` defaults to ``float64`` (the
    bitwise reference); construct with ``float32`` for the reduced-precision
    throughput policy.
    """

    name = "numpy"
    is_numpy = True
    supports_packed = True

    def __init__(self, float_dtype=None) -> None:
        super().__init__(float_dtype)
        # Host boundary: identity views, never copies.
        self.asnumpy = np.asarray
        self.from_numpy = np.asarray
        # Creation.
        self.asarray = np.asarray
        self.empty = np.empty
        self.zeros = np.zeros
        self.ones = np.ones
        self.zeros_like = np.zeros_like
        self.ones_like = np.ones_like
        # Elementwise ufuncs (out= supported natively).
        self.add = np.add
        self.subtract = np.subtract
        self.multiply = np.multiply
        self.exp = np.exp
        self.sqrt = np.sqrt
        self.logical_and = np.logical_and
        self.logical_or = np.logical_or
        self.logical_not = np.logical_not
        self.bitwise_and = np.bitwise_and
        self.bitwise_or = np.bitwise_or
        self.bitwise_xor = np.bitwise_xor
        # Reductions / structure.
        self.sum = np.sum
        self.all = np.all
        self.any = np.any
        self.broadcast_to = np.broadcast_to
        self.expand_dims = np.expand_dims
        self.stack = np.stack
        self.ascontiguousarray = np.ascontiguousarray
        # Segmented reductions: the exact ufunc methods.
        self.add_reduceat = np.add.reduceat
        self.bitwise_or_reduceat = np.bitwise_or.reduceat
        self.bitwise_and_reduce = np.bitwise_and.reduce
        self.packbits = np.packbits
        self.unpackbits = np.unpackbits

    def full(self, shape, value, dtype=None):
        return np.full(shape, value, dtype=dtype)

    def one_minus(self, a, out=None):
        return np.subtract(1.0, a, out=out)
