"""Best-effort Torch backend (the paper's actual tensor runtime).

Torch's array API diverges from NumPy (``dim`` vs ``axis``, ``clone`` vs
``copy``, no unsigned 64-bit dtype), so unlike :class:`CupyBackend` this is
a method-by-method adapter rather than a re-binding.  The packed (uint64 /
``packbits``) execution modes run natively on a **bit-view policy**: packed
words live in ``int64`` tensors carrying the same 64 bit lanes (``uint64``
host arrays are reinterpreted with ``.view(int64)`` at the boundary, the
all-ones constant is ``-1``), which is sound because every packed kernel is
pure bitwise logic — no ordering or arithmetic ever touches the words.
Downloaded packed results therefore come back as ``int64``; view them as
``uint64`` to compare bit patterns against the NumPy reference.
Construction raises :class:`~repro.xp.backend.BackendUnavailableError` when
``import torch`` fails; the registry and the test suite skip the backend in
that case.
"""

from __future__ import annotations

import numpy as np

from repro.xp.backend import ArrayBackend, BackendUnavailableError

# pragma: no cover - this module's bodies run only where torch is installed


class TorchBackend(ArrayBackend):
    """Torch execution (CUDA when available, else CPU); equivalent to ~1e-10."""

    name = "torch"
    is_numpy = False
    supports_packed = True

    def __init__(self, float_dtype=None, device: str = None) -> None:
        try:
            import torch
        except Exception as error:
            raise BackendUnavailableError(
                f"Torch backend unavailable: {error}"
            ) from error
        super().__init__(float_dtype)
        self.torch = torch
        self.device = device or ("cuda" if torch.cuda.is_available() else "cpu")
        self._float = (
            torch.float32 if np.dtype(self.float_dtype) == np.float32 else torch.float64
        )
        self._dtype_map = {
            np.dtype(np.float32): torch.float32,
            np.dtype(np.float64): torch.float64,
            np.dtype(np.bool_): torch.bool,
            np.dtype(np.uint8): torch.uint8,
            np.dtype(np.int64): torch.int64,
            np.dtype(np.uint64): torch.int64,  # bit-view policy (see module docstring)
        }
        # Torch's native dtype objects double as this backend's dtype policy.
        self.bool_dtype = torch.bool
        self.uint8_dtype = torch.uint8
        self.uint64_dtype = torch.int64  # uint64 words as int64 bit views
        self.int64_dtype = torch.int64
        self.packed_ones_u8 = 0xFF
        self.packed_ones_u64 = -1  # int64 all-ones bit pattern
        #: MSB-first bit positions/weights shared by the packbits family.
        self._bit_shifts = torch.arange(7, -1, -1, dtype=torch.uint8, device=self.device)
        self._bit_weights = (
            torch.tensor([128, 64, 32, 16, 8, 4, 2, 1], dtype=torch.uint8)
            .to(self.device)
        )
        # Device copies of segment-id vectors, keyed by the (tiny, per-plan)
        # offsets bytes — rebuilding + re-uploading them on every gradient
        # scatter would put a host-to-device transfer in the hot loop.
        self._segment_id_cache: dict = {}

    def _torch_dtype(self, dtype):
        if dtype is None:
            return None
        if isinstance(dtype, self.torch.dtype):
            return dtype
        return self._dtype_map.get(np.dtype(dtype), None)

    # -- host boundary ------------------------------------------------------------------
    def asnumpy(self, array):
        if isinstance(array, self.torch.Tensor):
            return array.detach().cpu().numpy()
        return np.asarray(array)

    def from_numpy(self, array):
        array = np.asarray(array)
        if array.dtype == np.uint64:  # bit-view policy: uint64 words ride as int64
            array = array.view(np.int64)
        return self.torch.as_tensor(array, device=self.device)

    # -- creation -----------------------------------------------------------------------
    def asarray(self, array, dtype=None):
        if isinstance(array, np.ndarray) and array.dtype == np.uint64:
            array = array.view(np.int64)
        return self.torch.as_tensor(
            array, dtype=self._torch_dtype(dtype), device=self.device
        )

    def empty(self, shape, dtype=None):
        return self.torch.empty(
            shape, dtype=self._torch_dtype(dtype) or self._float, device=self.device
        )

    def zeros(self, shape, dtype=None):
        return self.torch.zeros(
            shape, dtype=self._torch_dtype(dtype) or self._float, device=self.device
        )

    def ones(self, shape, dtype=None):
        return self.torch.ones(
            shape, dtype=self._torch_dtype(dtype) or self._float, device=self.device
        )

    def full(self, shape, value, dtype=None):
        if not isinstance(shape, tuple):
            shape = (int(shape),)
        return self.torch.full(
            shape, value, dtype=self._torch_dtype(dtype), device=self.device
        )

    def zeros_like(self, array):
        return self.torch.zeros_like(array)

    def ones_like(self, array):
        return self.torch.ones_like(array)

    def copy(self, array):
        return array.clone()

    def astype(self, array, dtype):
        return array.to(self._torch_dtype(dtype))

    # -- elementwise --------------------------------------------------------------------
    def add(self, a, b, out=None):
        return self.torch.add(a, b, out=out)

    def subtract(self, a, b, out=None):
        return self.torch.sub(a, b, out=out)

    def multiply(self, a, b, out=None):
        return self.torch.mul(a, b, out=out)

    def one_minus(self, a, out=None):
        result = 1.0 - a if a.dtype.is_floating_point else ~a
        if out is None:
            return result
        out.copy_(result)
        return out

    def exp(self, a):
        return self.torch.exp(a)

    def sqrt(self, a):
        return self.torch.sqrt(a)

    def logical_and(self, a, b, out=None):
        return self.torch.logical_and(a, b, out=out)

    def logical_or(self, a, b, out=None):
        return self.torch.logical_or(a, b, out=out)

    def logical_not(self, a, out=None):
        return self.torch.logical_not(a, out=out)

    def bitwise_and(self, a, b, out=None):
        return self.torch.bitwise_and(a, b, out=out)

    def bitwise_or(self, a, b, out=None):
        return self.torch.bitwise_or(a, b, out=out)

    def bitwise_xor(self, a, b, out=None):
        return self.torch.bitwise_xor(a, b, out=out)

    # -- reductions / structure ---------------------------------------------------------
    def sum(self, a, axis=None, keepdims=False):
        if axis is None:
            return self.torch.sum(a)
        return self.torch.sum(a, dim=axis, keepdim=keepdims)

    def all(self, a, axis=None):
        if axis is None:
            return self.torch.all(a)
        return self.torch.all(a, dim=axis)

    def any(self, a, axis=None):
        if axis is None:
            return self.torch.any(a)
        return self.torch.any(a, dim=axis)

    def broadcast_to(self, a, shape):
        return self.torch.broadcast_to(a, shape)

    def expand_dims(self, a, axis):
        return self.torch.unsqueeze(a, axis)

    def stack(self, arrays, axis=0):
        return self.torch.stack(list(arrays), dim=axis)

    def reshape(self, a, shape):
        return self.torch.reshape(a, shape)

    def ascontiguousarray(self, a):
        return a.contiguous()

    def add_reduceat(self, a, offsets, axis=0):
        """Segment sums via ``index_add_`` (native on the device).

        Same contract as the base class: monotonically increasing offsets,
        rows before ``offsets[0]`` belong to no segment.
        """
        if axis != 0:
            raise NotImplementedError("TorchBackend add_reduceat supports axis=0 only")
        offsets = np.asarray(offsets)
        key = (offsets.tobytes(), int(a.shape[0]))
        cached = self._segment_id_cache.get(key)
        if cached is None:
            start = int(offsets[0])
            lengths = np.r_[offsets[1:], a.shape[0]] - offsets
            segment_ids = self.torch.as_tensor(
                np.repeat(np.arange(len(offsets)), lengths), device=self.device
            )
            cached = (start, segment_ids, np.flatnonzero(lengths <= 0))
            self._segment_id_cache[key] = cached
        start, segment_ids, empty = cached
        source = a[start:] if start else a
        out = self.torch.zeros(
            (len(offsets),) + tuple(a.shape[1:]), dtype=a.dtype, device=self.device
        )
        out.index_add_(0, segment_ids, source)
        if empty.size:  # reduceat quirk: an empty segment yields a[offsets[i]]
            out[empty] = a[offsets[empty]]
        return out

    # -- bit packing (native: the uint8 word layer of the packed kernels) ---------------
    def _unpack_last_axis(self, words):
        """``uint8`` words ``(..., W)`` -> MSB-first bits ``(..., W * 8)``."""
        bits = (words.unsqueeze(-1) >> self._bit_shifts) & 1
        return bits.reshape(*words.shape[:-1], words.shape[-1] * 8)

    def _pack_last_axis(self, bits):
        """0/1 values ``(..., N)`` -> MSB-first ``uint8`` words ``(..., ceil(N/8))``."""
        length = bits.shape[-1]
        padded = -length % 8
        bits = bits.to(self.torch.uint8)
        if padded:
            bits = self.torch.nn.functional.pad(bits, (0, padded))
        grouped = bits.reshape(*bits.shape[:-1], bits.shape[-1] // 8, 8)
        return (grouped * self._bit_weights).sum(dim=-1).to(self.torch.uint8)

    def packbits(self, a, axis=None):
        if axis is None:
            return self._pack_last_axis(a.reshape(-1))
        if axis != -1 and axis != a.dim() - 1:
            raise NotImplementedError("TorchBackend packbits packs the last axis only")
        return self._pack_last_axis(a)

    def unpackbits(self, a, count=None):
        bits = self._unpack_last_axis(a.reshape(-1))
        return bits if count is None else bits[:count]

    def bitwise_or_reduceat(self, a, offsets, axis: int = 0):
        """Segmented OR of ``uint8`` words: unpack to bits, segment-sum, repack.

        A summed bit is set iff any word in the segment had it set, so
        thresholding the :meth:`add_reduceat` result at zero *is* the OR —
        and the reduceat empty-segment quirk (yield ``a[offsets[i]]``) comes
        along for free because a lone 0/1 row thresholds to itself.
        """
        if axis != 0:
            raise NotImplementedError("TorchBackend bitwise_or_reduceat supports axis=0 only")
        bits = self._unpack_last_axis(a).to(self.torch.int32)
        summed = self.add_reduceat(bits, offsets, axis=0)
        return self._pack_last_axis(summed > 0)

    def bitwise_and_reduce(self, a, axis: int = 0):
        """AND along one axis by pairwise halving (log2 rounds of fused ANDs)."""
        if axis != 0:
            raise NotImplementedError("TorchBackend bitwise_and_reduce supports axis=0 only")
        if a.shape[0] == 0:  # ufunc identity: all-ones words
            return ~self.torch.zeros(a.shape[1:], dtype=a.dtype, device=self.device)
        while a.shape[0] > 1:
            half = a.shape[0] // 2
            folded = self.torch.bitwise_and(a[:half], a[half : 2 * half])
            if a.shape[0] % 2:
                folded = self.torch.cat([folded, a[2 * half :]])
            a = folded
        return a[0]
