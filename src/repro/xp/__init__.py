"""``repro.xp`` — the pluggable array-backend layer.

One device abstraction spans the whole pipeline: the autodiff tape
(:mod:`repro.tensor`), the compiled levelized engine (:mod:`repro.engine`),
the CNF evaluation kernel (:mod:`repro.cnf.kernel`) and the samplers all
route their array work through the *active* :class:`ArrayBackend` instead of
importing NumPy directly.  :class:`NumpyBackend` is the default and the
bitwise reference; CuPy and Torch backends ride along best-effort and are
auto-skipped where the runtime is missing.

Selection (precedence: environment < config < CLI):

>>> import repro.xp as xp
>>> xp.active_backend().name                       # env default: "numpy"
'numpy'
>>> with xp.use_backend("numpy:float32"):          # scoped override
...     ...
>>> # per-sampler: SamplerConfig(array_backend="cupy") / CLI --array-backend

``clear_caches()`` drops every memoised compiled artifact (engine programs,
CNF evaluation plans and their per-backend device copies) — the explicit
invalidation hook that previously existed only implicitly via mutation.
"""

from __future__ import annotations

import contextlib
import threading
from typing import Iterator, Optional, Union

import numpy as np

from repro.xp.backend import (
    ArrayBackend,
    BackendRNG,
    BackendUnavailableError,
    NumpyBackend,
)
from repro.xp.registry import (
    BACKEND_ENV_VAR,
    available_backends,
    backend_available,
    default_spec,
    get_backend,
    parse_spec,
    register_backend,
    registered_backends,
    validate_spec,
)

__all__ = [
    "ArrayBackend",
    "BackendRNG",
    "BackendUnavailableError",
    "NumpyBackend",
    "BACKEND_ENV_VAR",
    "available_backends",
    "backend_available",
    "default_spec",
    "get_backend",
    "parse_spec",
    "register_backend",
    "registered_backends",
    "validate_spec",
    "active_backend",
    "set_active_backend",
    "use_backend",
    "backend_for",
    "to_numpy",
    "clear_caches",
]

#: Per-thread explicitly-activated backend; unset falls through to the env
#: default.  Thread-local so concurrent samplers with different array
#: backends cannot corrupt each other's resolution mid-round.
_ACTIVE = threading.local()


def active_backend() -> ArrayBackend:
    """The backend hot paths resolve when no explicit backend is passed.

    Returns the backend installed *in this thread* by
    :func:`set_active_backend` / :func:`use_backend`, else the
    ``REPRO_ARRAY_BACKEND`` environment default, else NumPy.
    """
    backend = getattr(_ACTIVE, "backend", None)
    if backend is not None:
        return backend
    return get_backend(None)


def set_active_backend(backend: Union[ArrayBackend, str, None]) -> None:
    """Install the calling thread's active backend.

    Accepts a backend instance, a spec string, or ``None`` to restore the
    environment-driven default.
    """
    if backend is None or isinstance(backend, ArrayBackend):
        _ACTIVE.backend = backend
    else:
        _ACTIVE.backend = get_backend(backend)


@contextlib.contextmanager
def use_backend(backend: Union[ArrayBackend, str]) -> Iterator[ArrayBackend]:
    """Scoped, per-thread :func:`set_active_backend` (samplers wrap their
    hot loops in it)."""
    previous = getattr(_ACTIVE, "backend", None)
    set_active_backend(backend)
    try:
        yield active_backend()
    finally:
        _ACTIVE.backend = previous


def backend_for(array) -> ArrayBackend:
    """The backend evaluation of ``array`` should run on (residency rule).

    Host inputs — NumPy arrays, lists, tuples — resolve the NumPy reference
    backend even when a device backend is active, so un-migrated host-side
    consumers are unaffected by ``REPRO_ARRAY_BACKEND``; device-resident
    arrays resolve the active backend and stay on their device.  Every
    public evaluation entry point that accepts caller arrays
    (``CNF.evaluate_batch``, direct ``CNFEvalPlan`` calls, ``simulate``,
    ``complete_assignments``) defaults through this one rule.
    """
    backend = active_backend()
    if backend.is_numpy or isinstance(array, (np.ndarray, list, tuple)):
        return get_backend("numpy")
    return backend


def to_numpy(array) -> np.ndarray:
    """Bring any backend's array to the host (the one blessed boundary crossing).

    Duck-typed rather than routed through the active backend so host-side
    consumers (solution dedup, reports) accept arrays from *any* backend
    regardless of what is currently active: NumPy arrays pass through as
    views, CuPy downloads via ``.get()``, Torch via ``.cpu().numpy()``.
    """
    if isinstance(array, np.ndarray):
        return array
    get = getattr(array, "get", None)  # CuPy
    if callable(get):
        return np.asarray(get())
    cpu = getattr(array, "cpu", None)  # Torch
    if callable(cpu):
        detach = getattr(array, "detach", lambda: array)
        return detach().cpu().numpy()
    return np.asarray(array)


def clear_caches() -> None:
    """Drop every memoised compiled artifact in the process.

    Clears the per-circuit compiled-program memos of the engine, the
    per-formula CNF evaluation plans (including their per-backend device
    copies) and the per-artifact native-kernel layouts
    (:func:`repro.native.clear_caches`).  Until now these caches could only
    be invalidated by mutating the owning circuit/formula; this is the
    explicit hook for long-lived processes that swap backends or want to
    release memory.
    """
    from repro import native
    from repro.cnf import kernel as cnf_kernel
    from repro.core.transform import clear_transform_caches
    from repro.engine import compiler as engine_compiler

    engine_compiler.clear_program_caches()
    cnf_kernel.clear_plan_caches()
    clear_transform_caches()
    native.clear_caches()
