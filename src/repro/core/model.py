"""The probabilistic (differentiable) circuit model.

Mirrors the PyTorch module the paper's parser emits (Fig. 1(c)): the recovered
multi-level, multi-output Boolean function maps input probabilities ``P`` in
``[0, 1]^{b x n}`` to output probabilities ``Y = F(P)`` (Eq. 7) while staying
differentiable end to end, with every gate relaxed per Table I.

Only the *constrained cone* — the gates in the transitive fanin of a
constrained output — is evaluated: the unconstrained paths need no learning
(their inputs can be drawn at random) and excluding them is part of the
operation-count reduction the paper credits for its speedups.

The model is a thin façade over two backends:

* ``"engine"`` (default) — the cone is compiled once by
  :mod:`repro.engine.compiler` into a levelized index-based program and
  executed with fused NumPy ops and a hand-written backward pass.  A forward
  call records a *single* autodiff tape node whose backward delegates to the
  compiled reverse pass, so gradient-based callers see the usual
  :class:`~repro.tensor.tensor.Tensor` interface at a fraction of the cost.
* ``"interpreter"`` — the legacy reference: the cone is walked gate by gate
  in topological order, allocating one tape node per gate.  Kept for
  equivalence testing and as executable documentation of Table I.

Both backends are bitwise-identical (the compiler mirrors the interpreter's
exact operation chains); select one via ``SamplerConfig(backend=...)`` or the
``backend`` constructor argument.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.circuit.gates import GateType
from repro.circuit.netlist import Circuit
from repro.core.transform import TransformResult
from repro.engine.compiler import compiled_program_for
from repro.engine.executor import backward as engine_backward
from repro.engine.executor import forward as engine_forward
from repro.engine.program import CompiledProgram
from repro.tensor.tensor import Tensor, _make, full_like_batch, stack_columns, take_column
from repro.tensor.functional import (
    prob_and,
    prob_nand,
    prob_nor,
    prob_not,
    prob_or,
    prob_xnor,
    prob_xor,
)

_GATE_FUNCTIONS = {
    GateType.AND: prob_and,
    GateType.NAND: prob_nand,
    GateType.OR: prob_or,
    GateType.NOR: prob_nor,
    GateType.XOR: prob_xor,
    GateType.XNOR: prob_xnor,
}

#: Recognised evaluation backends.
BACKENDS = ("engine", "interpreter")


class ProbabilisticCircuitModel:
    """Differentiable relaxation of a circuit restricted to its constrained cone."""

    def __init__(
        self,
        circuit: Circuit,
        output_nets: Sequence[str],
        input_order: Optional[Sequence[str]] = None,
        backend: str = "engine",
    ) -> None:
        if not output_nets:
            raise ValueError("the model needs at least one constrained output net")
        if backend not in BACKENDS:
            raise ValueError(f"backend must be one of {BACKENDS}, got {backend!r}")
        self.circuit = circuit
        self.backend = backend
        self.output_nets: List[str] = list(output_nets)
        cone = circuit.transitive_fanin(self.output_nets)
        self._schedule: List[str] = [
            name for name in circuit.topological_order() if name in cone
        ]
        cone_inputs = [
            name
            for name in circuit.inputs
            if name in cone
        ]
        if input_order is None:
            self.input_order: List[str] = cone_inputs
        else:
            self.input_order = list(input_order)
            missing = set(cone_inputs) - set(self.input_order)
            if missing:
                raise ValueError(
                    f"input_order is missing constrained inputs: {sorted(missing)}"
                )
        self._input_column: Dict[str, int] = {
            name: i for i, name in enumerate(self.input_order)
        }

    # -- shape information ----------------------------------------------------------
    @property
    def num_inputs(self) -> int:
        """Number of input probability columns the model expects."""
        return len(self.input_order)

    @property
    def num_outputs(self) -> int:
        """Number of constrained outputs."""
        return len(self.output_nets)

    @property
    def program(self) -> CompiledProgram:
        """The compiled levelized program for this cone.

        Resolved through the circuit-level memo on every access (an O(1)
        dict hit) rather than cached on the model, so netlist mutations can
        never leave the engine executing a stale program.
        """
        return compiled_program_for(self.circuit, self.output_nets, self.input_order)

    def num_operations(self) -> int:
        """Number of probabilistic gate evaluations per forward pass (cone only)."""
        count = 0
        for name in self._schedule:
            gate = self.circuit.gate(name)
            if gate.gate_type.is_source or gate.gate_type == GateType.BUF:
                continue
            count += max(len(gate.fanins) - 1, 1)
        return count

    # -- forward pass ------------------------------------------------------------------
    def forward(self, probabilities: Tensor) -> Tensor:
        """Compute output probabilities ``Y = F(P)`` for a batch of inputs.

        ``probabilities`` has shape ``(batch, num_inputs)`` with columns
        ordered like :attr:`input_order`.
        """
        if probabilities.ndim != 2 or probabilities.shape[1] != self.num_inputs:
            raise ValueError(
                f"expected probabilities of shape (batch, {self.num_inputs}), "
                f"got {probabilities.shape}"
            )
        if self.backend == "engine":
            return self._forward_engine(probabilities)
        return self._forward_interpreter(probabilities)

    __call__ = forward

    def _forward_engine(self, probabilities: Tensor) -> Tensor:
        """Compiled forward: one tape node wrapping the program's reverse pass."""
        program = self.program
        outputs, cache = engine_forward(program, probabilities.data)

        def backward(grad: np.ndarray) -> None:
            if probabilities.requires_grad:
                probabilities._accumulate_grad(engine_backward(program, cache, grad))

        return _make(outputs, (probabilities,), backward, "compiled_circuit")

    def _forward_interpreter(self, probabilities: Tensor) -> Tensor:
        """Legacy reference: walk the cone gate by gate on the autodiff tape."""
        batch_size = probabilities.shape[0]
        values: Dict[str, Tensor] = {}
        for name in self._schedule:
            gate = self.circuit.gate(name)
            if gate.gate_type == GateType.INPUT:
                values[name] = take_column(probabilities, self._input_column[name])
            elif gate.gate_type == GateType.CONST0:
                values[name] = full_like_batch(batch_size, 0.0)
            elif gate.gate_type == GateType.CONST1:
                values[name] = full_like_batch(batch_size, 1.0)
            elif gate.gate_type == GateType.BUF:
                values[name] = values[gate.fanins[0]]
            elif gate.gate_type == GateType.NOT:
                values[name] = prob_not(values[gate.fanins[0]])
            else:
                fanin_values = [values[f] for f in gate.fanins]
                values[name] = _GATE_FUNCTIONS[gate.gate_type](fanin_values)
        return stack_columns([values[name] for name in self.output_nets])

    # -- construction helpers ----------------------------------------------------------
    @classmethod
    def from_transform(
        cls, result: TransformResult, backend: str = "engine"
    ) -> "ProbabilisticCircuitModel":
        """Build the model for the constrained paths of a transformation result.

        The model's input order is exactly ``result.constrained_inputs()``;
        raises ``ValueError`` when the instance has no constraints (nothing to
        learn — every random assignment already satisfies the formula).
        """
        constraint_nets = result.constraint_nets()
        if not constraint_nets:
            raise ValueError(
                "transformation produced no constrained outputs; sampling needs no model"
            )
        return cls(
            result.circuit,
            output_nets=constraint_nets,
            input_order=result.constrained_inputs(),
            backend=backend,
        )

    def describe(self) -> Dict[str, int]:
        """Size summary used in reports and memory estimation."""
        info = {
            "inputs": self.num_inputs,
            "outputs": self.num_outputs,
            "scheduled_nets": len(self._schedule),
            "operations": self.num_operations(),
        }
        if self.backend == "engine":
            program = self.program
            info["compiled_ops"] = program.num_ops
            info["compiled_levels"] = program.num_levels
        return info
