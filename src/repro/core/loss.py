"""Loss construction for the multi-output regression formulation.

Eq. 8 of the paper: ``L = sum_{b,m} ||Y - T||^2`` where ``Y`` are the
probabilistic outputs of the constrained nets and ``T`` the target matrix.
In this sampler every constrained output is an auxiliary constraint net that
must evaluate to 1, so ``T`` is the all-ones matrix; the helpers below also
support explicit 0/1 targets for users who constrain outputs to other values
(e.g. CRV scenarios pinning specific response bits).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.tensor.tensor import Tensor
from repro.tensor.functional import l2_loss


def target_matrix(
    batch_size: int,
    output_names: Sequence[str],
    targets: Optional[Dict[str, bool]] = None,
) -> np.ndarray:
    """Build the ``(batch, num_outputs)`` target matrix ``T``.

    ``targets`` maps output names to required values; outputs not mentioned
    default to 1 (the "constraint must hold" convention).
    """
    values = np.ones((batch_size, len(output_names)), dtype=np.float64)
    if targets:
        for column, name in enumerate(output_names):
            if name in targets and not targets[name]:
                values[:, column] = 0.0
    return values


def regression_loss(outputs: Tensor, targets: np.ndarray) -> Tensor:
    """The Eq. 8 loss between probabilistic outputs and 0/1 targets."""
    if outputs.shape != targets.shape:
        raise ValueError(
            f"output shape {outputs.shape} does not match target shape {targets.shape}"
        )
    return l2_loss(outputs, Tensor(targets))


def per_sample_residual(outputs: np.ndarray, targets: np.ndarray) -> np.ndarray:
    """Per-sample squared residual, used for monitoring convergence curves."""
    difference = np.asarray(outputs, dtype=np.float64) - np.asarray(targets, dtype=np.float64)
    if difference.ndim == 1:
        return difference**2
    return (difference**2).sum(axis=1)
