"""CNF signatures of primary logic gates (Eqs. 1--4 of the paper).

The Tseitin transformation encodes each gate of the original circuit as a
fixed clause pattern — its *CNF signature*.  This module provides

* :func:`gate_signature_clauses` — emit the signature for a gate (used by the
  instance generators and tests), and
* :func:`match_gate_signature` — the pattern-matching fast path of the
  transformation: recognise a signature group and return the gate it encodes
  without running the generic extraction + complement check, and
* :func:`formula_signature` — a whole-*formula* signature: a stable content
  hash two equal CNF objects share, used by :mod:`repro.serve` to key
  artifact caches and coalesce requests for the same instance.

The paper stresses that pattern matching alone is insufficient ("it is
impractical to store all possible Boolean patterns"); the generic extraction
in :mod:`repro.core.extraction` covers the rest, but matching the common
signatures first keeps the transformation fast on gate-encoded CNFs.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

from repro.cnf.clause import Clause
from repro.circuit.gates import GateType

if TYPE_CHECKING:  # avoid a runtime import cycle with repro.cnf.formula
    from repro.cnf.formula import CNF


@dataclass(frozen=True)
class GateMatch:
    """A recognised gate: ``output`` is a DIMACS variable, fanins are signed literals."""

    gate_type: GateType
    output: int
    fanin_literals: Tuple[int, ...]


def formula_signature(formula: "CNF") -> str:
    """Stable content hash of a CNF formula (hex digest).

    Two formulas compare equal under :meth:`CNF.__eq__` — same
    ``num_variables`` and the same clause sequence, literal order included —
    exactly when their signatures match.  Clause *order* is deliberately
    significant: Algorithm 1 scans clauses in order, so reordered formulas
    can recover different circuits and must not share compiled artifacts.

    The digest is independent of the process, the formula's ``name`` and its
    comments, so it is a safe cross-process cache key — the property
    :mod:`repro.serve` relies on to coalesce requests and to route jobs to
    workers that already hold the compiled artifact.
    """
    digest = hashlib.sha256()
    digest.update(f"p {formula.num_variables}\n".encode())
    for clause in formula.clauses:
        digest.update(" ".join(str(literal) for literal in clause.literals).encode())
        digest.update(b"\n")
    return digest.hexdigest()


def task_signature(formula: "CNF", task=None) -> str:
    """Stable content hash of a (formula, task) pair (hex digest).

    Extends :func:`formula_signature` to workload specs
    (:class:`~repro.core.task.SamplingTask`): the default task hashes to
    *exactly* the formula signature, so every pre-task cache key, affinity
    route and coalescing decision is unchanged; any non-default aspect
    (projection, weights, clause delta) mixes the task's canonical form into
    the digest.  Note the delta is hashed as an *edit*, not applied — callers
    that want content-addressed artifacts for the post-delta formula hash the
    effective formula with :func:`formula_signature` instead (that is what
    :mod:`repro.serve` keys its artifact cache on, so two deltas reaching the
    same formula share one artifact).
    """
    base = formula_signature(formula)
    if task is None or task.is_default:
        return base
    digest = hashlib.sha256()
    digest.update(b"task\n")
    digest.update(base.encode())
    digest.update(repr(task.canonical()).encode())
    return digest.hexdigest()


def gate_signature_clauses(
    gate_type: GateType, output: int, fanin_literals: Sequence[int]
) -> List[List[int]]:
    """Return the CNF signature clauses of ``output = gate(fanins)``.

    ``fanin_literals`` are signed literals, so an inverted input is expressed
    by passing a negative literal.  XOR/XNOR support exactly two fanins (wider
    parities are chained by the caller).
    """
    fanins = list(fanin_literals)
    if gate_type == GateType.NOT:
        (a,) = fanins
        return [[output, a], [-output, -a]]
    if gate_type == GateType.BUF:
        (a,) = fanins
        return [[output, -a], [-output, a]]
    if gate_type == GateType.AND:
        return [[output] + [-lit for lit in fanins]] + [[-output, lit] for lit in fanins]
    if gate_type == GateType.NAND:
        return [[-output] + [-lit for lit in fanins]] + [[output, lit] for lit in fanins]
    if gate_type == GateType.OR:
        return [[-output] + list(fanins)] + [[output, -lit] for lit in fanins]
    if gate_type == GateType.NOR:
        return [[output] + list(fanins)] + [[-output, -lit] for lit in fanins]
    if gate_type in (GateType.XOR, GateType.XNOR):
        if len(fanins) != 2:
            raise ValueError("XOR/XNOR signatures support exactly 2 fanins")
        a, b = fanins
        out = output if gate_type == GateType.XOR else -output
        return [[-out, a, b], [-out, -a, -b], [out, a, -b], [out, -a, b]]
    raise ValueError(f"no CNF signature for gate type {gate_type}")


def match_gate_signature(
    candidate_output: int,
    clauses: Sequence[Clause],
    literal_sets: Optional[Sequence[frozenset]] = None,
) -> Optional[GateMatch]:
    """Recognise whether ``clauses`` form a gate signature with the given output.

    Returns a :class:`GateMatch` when the clause group is exactly the
    signature of a NOT/BUF, AND/NAND, OR/NOR, XOR/XNOR gate whose output is
    ``candidate_output``; returns ``None`` otherwise.  The match is exact —
    no missing or extra clauses are tolerated — so a successful match lets
    the transformation adopt the definition without a complement check.

    The matcher dispatches on the group's *shape* (clause count and widths)
    before comparing literal sets, and operates on plain integer-literal
    frozensets.  Callers that already maintain per-clause literal sets (the
    transformation's occurrence index) pass them via ``literal_sets`` to skip
    rebuilding them per call.
    """
    count = len(clauses)
    if count == 0:
        return None
    if literal_sets is None:
        groups = [frozenset(clause.literals) for clause in clauses]
    else:
        groups = list(literal_sets)
    # Shape dispatch: an inverter/buffer signature is two binary clauses, an
    # n-fanin AND/OR signature is one n+1-wide clause plus n binary clauses,
    # a 2-fanin XOR/XNOR signature is four ternary clauses.  The AND/OR shape
    # is tried before XOR for groups of four, matching the historical order.
    if count == 2:
        return _match_inverter(candidate_output, groups)
    if count >= 3:
        result = _match_and_or(candidate_output, groups, count)
        if result is None and count == 4:
            result = _match_xor(candidate_output, groups)
        return result
    return None


def _match_inverter(output: int, groups: List[frozenset]) -> Optional[GateMatch]:
    first, second = groups
    if len(first) != 2 or len(second) != 2:
        return None
    variables = {abs(lit) for lit in first} | {abs(lit) for lit in second}
    variables.discard(abs(output))
    if len(variables) != 1:
        return None
    other = variables.pop()
    group_set = {first, second}
    # NOT: (f | a) & (~f | ~a);   BUF: (f | ~a) & (~f | a)
    if group_set == {frozenset({output, other}), frozenset({-output, -other})}:
        return GateMatch(GateType.NOT, abs(output), (other,))
    if group_set == {frozenset({output, -other}), frozenset({-output, other})}:
        return GateMatch(GateType.BUF, abs(output), (other,))
    return None


def _match_and_or(
    output: int, groups: List[frozenset], count: int
) -> Optional[GateMatch]:
    wide_clause = None
    binary: List[frozenset] = []
    for group in groups:
        size = len(group)
        if size == count:
            if wide_clause is not None:
                return None
            wide_clause = group
        elif size == 2:
            binary.append(group)
    if wide_clause is None or len(binary) != count - 1:
        return None
    # OR:  (~f | x1 | ... | xn) plus (f | ~xi) for each i.
    if -output in wide_clause:
        fanins = tuple(sorted(wide_clause - {-output}, key=abs))
        expected = {frozenset({output, -lit}) for lit in fanins}
        if set(binary) == expected and len(fanins) == len(binary):
            return GateMatch(GateType.OR, abs(output), fanins)
    # AND: (f | ~x1 | ... | ~xn) plus (~f | xi) for each i.
    if output in wide_clause:
        fanins = tuple(sorted((-lit for lit in wide_clause - {output}), key=abs))
        expected = {frozenset({-output, lit}) for lit in fanins}
        if set(binary) == expected and len(fanins) == len(binary):
            return GateMatch(GateType.AND, abs(output), fanins)
    return None


def _match_xor(output: int, groups: List[frozenset]) -> Optional[GateMatch]:
    variables = set()
    for group in groups:
        if len(group) != 3:
            return None
        variables.update(abs(lit) for lit in group)
    variables.discard(abs(output))
    if len(variables) != 2:
        return None
    a, b = sorted(variables)
    out = abs(output)
    group_set = set(groups)
    # XOR: (~f|a|b) (~f|~a|~b) (f|a|~b) (f|~a|b); XNOR negates f throughout.
    if group_set == {
        frozenset({-out, a, b}),
        frozenset({-out, -a, -b}),
        frozenset({out, a, -b}),
        frozenset({out, -a, b}),
    }:
        return GateMatch(GateType.XOR, out, (a, b))
    if group_set == {
        frozenset({out, a, b}),
        frozenset({out, -a, -b}),
        frozenset({-out, a, -b}),
        frozenset({-out, -a, b}),
    }:
        return GateMatch(GateType.XNOR, out, (a, b))
    return None
