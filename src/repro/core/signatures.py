"""CNF signatures of primary logic gates (Eqs. 1--4 of the paper).

The Tseitin transformation encodes each gate of the original circuit as a
fixed clause pattern — its *CNF signature*.  This module provides

* :func:`gate_signature_clauses` — emit the signature for a gate (used by the
  instance generators and tests), and
* :func:`match_gate_signature` — the pattern-matching fast path of the
  transformation: recognise a signature group and return the gate it encodes
  without running the generic extraction + complement check, and
* :func:`formula_signature` — a whole-*formula* signature: a stable content
  hash two equal CNF objects share, used by :mod:`repro.serve` to key
  artifact caches and coalesce requests for the same instance.

The paper stresses that pattern matching alone is insufficient ("it is
impractical to store all possible Boolean patterns"); the generic extraction
in :mod:`repro.core.extraction` covers the rest, but matching the common
signatures first keeps the transformation fast on gate-encoded CNFs.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

from repro.cnf.clause import Clause
from repro.circuit.gates import GateType

if TYPE_CHECKING:  # avoid a runtime import cycle with repro.cnf.formula
    from repro.cnf.formula import CNF


@dataclass(frozen=True)
class GateMatch:
    """A recognised gate: ``output`` is a DIMACS variable, fanins are signed literals."""

    gate_type: GateType
    output: int
    fanin_literals: Tuple[int, ...]


def formula_signature(formula: "CNF") -> str:
    """Stable content hash of a CNF formula (hex digest).

    Two formulas compare equal under :meth:`CNF.__eq__` — same
    ``num_variables`` and the same clause sequence, literal order included —
    exactly when their signatures match.  Clause *order* is deliberately
    significant: Algorithm 1 scans clauses in order, so reordered formulas
    can recover different circuits and must not share compiled artifacts.

    The digest is independent of the process, the formula's ``name`` and its
    comments, so it is a safe cross-process cache key — the property
    :mod:`repro.serve` relies on to coalesce requests and to route jobs to
    workers that already hold the compiled artifact.
    """
    digest = hashlib.sha256()
    digest.update(f"p {formula.num_variables}\n".encode())
    for clause in formula.clauses:
        digest.update(" ".join(str(literal) for literal in clause.literals).encode())
        digest.update(b"\n")
    return digest.hexdigest()


def gate_signature_clauses(
    gate_type: GateType, output: int, fanin_literals: Sequence[int]
) -> List[List[int]]:
    """Return the CNF signature clauses of ``output = gate(fanins)``.

    ``fanin_literals`` are signed literals, so an inverted input is expressed
    by passing a negative literal.  XOR/XNOR support exactly two fanins (wider
    parities are chained by the caller).
    """
    fanins = list(fanin_literals)
    if gate_type == GateType.NOT:
        (a,) = fanins
        return [[output, a], [-output, -a]]
    if gate_type == GateType.BUF:
        (a,) = fanins
        return [[output, -a], [-output, a]]
    if gate_type == GateType.AND:
        return [[output] + [-lit for lit in fanins]] + [[-output, lit] for lit in fanins]
    if gate_type == GateType.NAND:
        return [[-output] + [-lit for lit in fanins]] + [[output, lit] for lit in fanins]
    if gate_type == GateType.OR:
        return [[-output] + list(fanins)] + [[output, -lit] for lit in fanins]
    if gate_type == GateType.NOR:
        return [[output] + list(fanins)] + [[-output, -lit] for lit in fanins]
    if gate_type in (GateType.XOR, GateType.XNOR):
        if len(fanins) != 2:
            raise ValueError("XOR/XNOR signatures support exactly 2 fanins")
        a, b = fanins
        out = output if gate_type == GateType.XOR else -output
        return [[-out, a, b], [-out, -a, -b], [out, a, -b], [out, -a, b]]
    raise ValueError(f"no CNF signature for gate type {gate_type}")


def match_gate_signature(
    candidate_output: int, clauses: Sequence[Clause]
) -> Optional[GateMatch]:
    """Recognise whether ``clauses`` form a gate signature with the given output.

    Returns a :class:`GateMatch` when the clause group is exactly the
    signature of a NOT/BUF, AND/NAND, OR/NOR, XOR/XNOR gate whose output is
    ``candidate_output``; returns ``None`` otherwise.  The match is exact —
    no missing or extra clauses are tolerated — so a successful match lets
    the transformation adopt the definition without a complement check.
    """
    if not clauses:
        return None
    for matcher in (_match_inverter, _match_and_or, _match_xor):
        result = matcher(candidate_output, clauses)
        if result is not None:
            return result
    return None


def _clause_sets(clauses: Sequence[Clause]) -> List[frozenset]:
    return [frozenset(clause.literals) for clause in clauses]


def _match_inverter(output: int, clauses: Sequence[Clause]) -> Optional[GateMatch]:
    if len(clauses) != 2:
        return None
    groups = _clause_sets(clauses)
    if any(len(group) != 2 for group in groups):
        return None
    variables = set()
    for group in groups:
        variables.update(abs(lit) for lit in group)
    variables.discard(abs(output))
    if len(variables) != 1:
        return None
    other = variables.pop()
    # NOT: (f | a) & (~f | ~a);   BUF: (f | ~a) & (~f | a)
    not_signature = [frozenset({output, other}), frozenset({-output, -other})]
    buf_signature = [frozenset({output, -other}), frozenset({-output, other})]
    if sorted(groups, key=sorted) == sorted(not_signature, key=sorted):
        return GateMatch(GateType.NOT, abs(output), (other,))
    if sorted(groups, key=sorted) == sorted(buf_signature, key=sorted):
        return GateMatch(GateType.BUF, abs(output), (other,))
    return None


def _match_and_or(output: int, clauses: Sequence[Clause]) -> Optional[GateMatch]:
    if len(clauses) < 3:
        return None
    groups = _clause_sets(clauses)
    wide = [group for group in groups if len(group) == len(clauses)]
    binary = [group for group in groups if len(group) == 2]
    if len(wide) != 1 or len(binary) != len(clauses) - 1:
        return None
    wide_clause = wide[0]
    # OR:  (~f | x1 | ... | xn) plus (f | ~xi) for each i.
    if -output in wide_clause:
        fanins = tuple(sorted(wide_clause - {-output}, key=abs))
        expected = {frozenset({output, -lit}) for lit in fanins}
        if set(binary) == expected and len(fanins) == len(binary):
            return GateMatch(GateType.OR, abs(output), fanins)
    # AND: (f | ~x1 | ... | ~xn) plus (~f | xi) for each i.
    if output in wide_clause:
        fanins = tuple(sorted((-lit for lit in wide_clause - {output}), key=abs))
        expected = {frozenset({-output, lit}) for lit in fanins}
        if set(binary) == expected and len(fanins) == len(binary):
            return GateMatch(GateType.AND, abs(output), fanins)
    return None


def _match_xor(output: int, clauses: Sequence[Clause]) -> Optional[GateMatch]:
    if len(clauses) != 4:
        return None
    groups = _clause_sets(clauses)
    if any(len(group) != 3 for group in groups):
        return None
    variables = set()
    for group in groups:
        variables.update(abs(lit) for lit in group)
    variables.discard(abs(output))
    if len(variables) != 2:
        return None
    a, b = sorted(variables)
    for gate_type in (GateType.XOR, GateType.XNOR):
        expected = {
            frozenset(clause)
            for clause in gate_signature_clauses(gate_type, abs(output), (a, b))
        }
        if set(groups) == expected:
            return GateMatch(gate_type, abs(output), (a, b))
    return None
