"""Unique-solution bookkeeping.

Throughput in Table II is defined as *unique, valid* solutions per second, so
the sampler needs a cheap way to deduplicate millions of candidate
assignments.  :class:`SolutionSet` keys each full assignment by its packed
byte representation and keeps insertion order, so the first ``k`` solutions
can be exported deterministically.

The set is deliberately **host-side**: its keys are Python ``bytes`` in a
``set``, so :meth:`add_batch` is the sampler's one blessed host-boundary
crossing per round — candidate batches arrive from whatever array backend
produced them (:func:`repro.xp.to_numpy` downloads device arrays; NumPy
arrays pass through as views) and everything after the crossing is NumPy.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.xp import to_numpy


class SolutionSet:
    """An ordered set of unique boolean assignment vectors.

    With ``project`` (a sequence of 0-based column indices), uniqueness is
    keyed on the *projected* column subset while full-width rows are stored:
    the first full assignment seen for each projected pattern is its witness.
    This is the dedup semantics of projected sampling — ``len(solution_set)``
    counts distinct projected patterns.  ``project=None`` (default) keys on
    the full row, exactly as before.
    """

    def __init__(
        self, num_variables: int, project: Optional[Sequence[int]] = None
    ) -> None:
        if num_variables < 0:
            raise ValueError(f"num_variables must be non-negative, got {num_variables}")
        self.num_variables = num_variables
        self.project: Optional[Tuple[int, ...]] = None
        if project is not None:
            columns = tuple(sorted({int(column) for column in project}))
            if columns and not 0 <= columns[0] <= columns[-1] < num_variables:
                raise ValueError(
                    f"projection columns must lie in [0, {num_variables}), "
                    f"got {columns}"
                )
            # An empty projection means "no projection", not "project onto
            # zero columns" (which would collapse everything to one key).
            self.project = columns or None
        self._keys: set = set()
        self._rows: List[np.ndarray] = []

    def _key_columns(self, matrix: np.ndarray) -> np.ndarray:
        """The column subset uniqueness is keyed on."""
        if self.project is None:
            return matrix
        return matrix[..., list(self.project)]

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[np.ndarray]:
        return iter(self._rows)

    def add(self, assignment) -> bool:
        """Add one assignment; returns ``True`` when it was new."""
        row = np.asarray(to_numpy(assignment), dtype=bool)
        if row.shape != (self.num_variables,):
            raise ValueError(
                f"expected assignment of shape ({self.num_variables},), got {row.shape}"
            )
        key = np.packbits(self._key_columns(row)).tobytes()
        if key in self._keys:
            return False
        self._keys.add(key)
        self._rows.append(row.copy())
        return True

    def add_batch(self, assignments, mask=None) -> int:
        """Add every (optionally masked) row of a ``(batch, num_variables)`` matrix.

        This is where a sampling round crosses the host boundary (exactly
        once): ``assignments`` and ``mask`` may live on any array backend and
        are downloaded here.  In-batch duplicates are removed with one
        packed-row ``np.unique`` (first occurrence wins, so insertion order
        matches row order); only the batch-unique survivors are checked
        against the already-stored keys.  Returns the number of rows that
        were new.
        """
        assignments = np.asarray(to_numpy(assignments), dtype=bool)
        if assignments.ndim != 2 or assignments.shape[1] != self.num_variables:
            raise ValueError(
                f"expected (batch, {self.num_variables}) matrix, got {assignments.shape}"
            )
        if mask is not None:
            mask = np.asarray(to_numpy(mask), dtype=bool)
            if mask.shape != (assignments.shape[0],):
                raise ValueError("mask length must equal the batch size")
            assignments = assignments[mask]
        if assignments.shape[0] == 0:
            return 0
        packed = np.packbits(self._key_columns(assignments), axis=1)
        if packed.shape[1]:
            # One np.unique over the packed rows viewed as opaque fixed-width
            # blobs — much faster than the axis=0 form, which re-sorts
            # column-wise — keeping the *first* occurrence of each duplicate.
            rows_as_blobs = np.ascontiguousarray(packed).view(
                np.dtype((np.void, packed.shape[1]))
            )
            _, first_occurrence = np.unique(rows_as_blobs.ravel(), return_index=True)
        else:  # zero-width rows are all identical
            first_occurrence = np.zeros(1, dtype=np.intp)
        added = 0
        for row_index in np.sort(first_occurrence):
            key = packed[row_index].tobytes()
            if key in self._keys:
                continue
            self._keys.add(key)
            self._rows.append(assignments[row_index].copy())
            added += 1
        return added

    def contains(self, assignment) -> bool:
        """Whether the assignment (its projected pattern, when projected) is
        already present."""
        row = np.asarray(to_numpy(assignment), dtype=bool)
        return np.packbits(self._key_columns(row)).tobytes() in self._keys

    def to_matrix(self, limit: Optional[int] = None) -> np.ndarray:
        """Return the unique solutions as a ``(count, num_variables)`` matrix."""
        rows = self._rows if limit is None else self._rows[:limit]
        if not rows:
            return np.zeros((0, self.num_variables), dtype=bool)
        return np.stack(rows, axis=0)

    def matrix_since(self, start: int) -> np.ndarray:
        """The solutions stored at positions ``start..`` as a boolean matrix.

        Because insertion order is preserved, ``matrix_since(len_before)``
        after an :meth:`add_batch` is exactly the batch's new unique rows —
        the increment a streaming consumer (``repro.serve``'s round events)
        wants without re-exporting the whole set.
        """
        if start < 0:
            raise ValueError(f"start must be non-negative, got {start}")
        rows = self._rows[start:]
        if not rows:
            return np.zeros((0, self.num_variables), dtype=bool)
        return np.stack(rows, axis=0)

    def to_literal_lists(self, limit: Optional[int] = None) -> List[List[int]]:
        """Export solutions as signed DIMACS literal lists (variable order 1..n)."""
        matrix = self.to_matrix(limit)
        result: List[List[int]] = []
        for row in matrix:
            result.append(
                [index + 1 if value else -(index + 1) for index, value in enumerate(row)]
            )
        return result
