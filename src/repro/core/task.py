"""First-class workload specs: the :class:`SamplingTask`.

Every layer of the library used to hard-code one workload — "sample N unique
solutions of one whole DIMACS formula".  A :class:`SamplingTask` makes the
workload an explicit contract instead, combining three orthogonal, composable
aspects on top of a base formula:

* **projection** — uniqueness is counted over a declared variable subset
  (testbench-style workloads: many full assignments share one projected
  pattern, and only distinct patterns matter);
* **weights** — per-variable target probabilities bias the sampler's
  initialization: a weight ``p`` on variable ``v`` shifts the sigmoid
  parameters of constrained inputs by ``logit(p)`` and draws unconstrained /
  free variables as Bernoulli(``p``) instead of fair coins;
* **delta** — an incremental clause edit
  (:class:`~repro.cnf.delta.ClauseDelta`: add / retract / assume) applied to
  the base formula before transforming, the substrate for incremental serve
  jobs via :func:`~repro.core.transform.retransform`.

The *default* task (no projection, no weights, empty delta) is the identity:
``apply_to`` returns the base formula object itself, the task signature
equals the plain formula signature, and the sampler's arithmetic is bitwise
what it was before tasks existed (pinned by ``tests/workloads``).

Tasks are frozen and hashable so they can ride inside the serving tier's
coalescing keys and be carried across process boundaries via
:meth:`to_dict` / :meth:`from_dict`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Optional, Tuple, Union

from repro.cnf.delta import ClauseDelta
from repro.cnf.formula import CNF

WeightsLike = Union[Mapping[int, float], Iterable[Tuple[int, float]], None]


def _normalize_project(project) -> Tuple[int, ...]:
    variables = sorted({int(variable) for variable in project or ()})
    if variables and variables[0] < 1:
        raise ValueError(
            f"projection variables are 1-based DIMACS indices, got {variables[0]}"
        )
    return tuple(variables)


def _normalize_weights(weights: WeightsLike) -> Tuple[Tuple[int, float], ...]:
    if weights is None:
        return ()
    items = weights.items() if isinstance(weights, Mapping) else weights
    normalized: Dict[int, float] = {}
    for variable, probability in items:
        variable = int(variable)
        probability = float(probability)
        if variable < 1:
            raise ValueError(
                f"weight variables are 1-based DIMACS indices, got {variable}"
            )
        if not 0.0 < probability < 1.0:
            raise ValueError(
                f"weight for variable {variable} must lie strictly in (0, 1), "
                f"got {probability}"
            )
        if variable in normalized and normalized[variable] != probability:
            raise ValueError(f"conflicting weights for variable {variable}")
        normalized[variable] = probability
    return tuple(sorted(normalized.items()))


@dataclass(frozen=True)
class SamplingTask:
    """A workload spec: projection + per-variable weights + clause delta.

    ``project`` holds 1-based DIMACS variable indices (deduplicated,
    sorted); ``weights`` maps 1-based variables to target probabilities in
    the open interval (0, 1); ``delta`` is the clause edit applied to the
    base formula.  All three default to "absent", making the default task the
    identity workload.
    """

    project: Tuple[int, ...] = ()
    weights: Tuple[Tuple[int, float], ...] = ()
    delta: ClauseDelta = ClauseDelta()

    def __post_init__(self) -> None:
        object.__setattr__(self, "project", _normalize_project(self.project))
        object.__setattr__(self, "weights", _normalize_weights(self.weights))
        if self.delta is None:
            object.__setattr__(self, "delta", ClauseDelta())

    # -- classification ------------------------------------------------------------
    @property
    def is_default(self) -> bool:
        """Whether this is the identity workload (today's implicit behaviour)."""
        return not (self.project or self.weights or not self.delta.is_empty)

    @property
    def is_projected(self) -> bool:
        return bool(self.project)

    @property
    def is_weighted(self) -> bool:
        return bool(self.weights)

    @property
    def is_incremental(self) -> bool:
        return not self.delta.is_empty

    def kind(self) -> str:
        """Human-readable task kind: ``"default"`` or a ``+``-joined list of
        the present aspects, e.g. ``"projected+incremental"``."""
        parts = []
        if self.is_projected:
            parts.append("projected")
        if self.is_weighted:
            parts.append("weighted")
        if self.is_incremental:
            parts.append("incremental")
        return "+".join(parts) if parts else "default"

    # -- application ---------------------------------------------------------------
    def apply_to(self, formula: CNF) -> CNF:
        """The effective formula this task samples: the base formula with
        ``delta`` applied.  Returns ``formula`` itself (same object) when the
        delta is empty."""
        return formula.with_delta(self.delta)

    def projection_columns(self, num_variables: int) -> Tuple[int, ...]:
        """0-based assignment-matrix columns of the projection variables.

        Validates the projection against the *effective* formula's variable
        count (projection may reference variables the delta introduced).
        Empty when the task is unprojected.
        """
        if self.project and self.project[-1] > num_variables:
            raise ValueError(
                f"projection variable {self.project[-1]} exceeds the formula's "
                f"{num_variables} variables"
            )
        return tuple(variable - 1 for variable in self.project)

    def weight_map(self, num_variables: Optional[int] = None) -> Dict[int, float]:
        """The weights as ``{1-based variable: probability}``, optionally
        validated against a variable count."""
        if (
            num_variables is not None
            and self.weights
            and self.weights[-1][0] > num_variables
        ):
            raise ValueError(
                f"weighted variable {self.weights[-1][0]} exceeds the formula's "
                f"{num_variables} variables"
            )
        return dict(self.weights)

    def weight_logits(self, num_variables: Optional[int] = None) -> Dict[int, float]:
        """The weights as ``{1-based variable: logit(probability)}`` — the
        additive bias on the sampler's soft-input initialization."""
        return {
            variable: math.log(probability / (1.0 - probability))
            for variable, probability in self.weight_map(num_variables).items()
        }

    # -- identity ------------------------------------------------------------------
    def canonical(self) -> Tuple:
        """Hashable canonical form used by signatures and coalescing keys."""
        return (self.project, self.weights, self.delta.canonical())

    def to_dict(self) -> dict:
        """JSON/pickle-safe form (inverse of :meth:`from_dict`); used to ship
        tasks to spawned serve workers."""
        return {
            "project": list(self.project),
            "weights": [[variable, probability] for variable, probability in self.weights],
            "delta": self.delta.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Optional[dict]) -> "SamplingTask":
        """Rebuild a task from :meth:`to_dict` output (``None`` → default task)."""
        if data is None:
            return cls()
        unknown = set(data) - {"project", "weights", "delta"}
        if unknown:
            raise ValueError(f"unknown task fields {sorted(unknown)}")
        return cls(
            project=tuple(data.get("project", ())),
            weights=tuple(
                (int(variable), float(probability))
                for variable, probability in data.get("weights", ())
            ),
            delta=ClauseDelta.from_dict(data.get("delta", {})),
        )

    @classmethod
    def build(
        cls,
        project: Iterable[int] = (),
        weights: WeightsLike = None,
        add: Iterable = (),
        retract: Iterable = (),
        assume: Iterable[int] = (),
    ) -> "SamplingTask":
        """Convenience constructor from loose inputs (lists, dicts)."""
        return cls(
            project=tuple(project),
            weights=_normalize_weights(weights),
            delta=ClauseDelta(
                add=tuple(add), retract=tuple(retract), assume=tuple(assume)
            ),
        )


#: The identity workload, shared so callers can compare against it cheaply.
DEFAULT_TASK = SamplingTask()
