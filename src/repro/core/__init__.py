"""Core contribution of the paper: CNF-to-circuit transformation + GD sampling.

The two halves are:

* :mod:`repro.core.transform` — Algorithm 1: streaming recovery of a
  multi-level, multi-output Boolean function from a CNF, with
  primary-input / intermediate / primary-output classification and
  constrained/unconstrained path analysis;
* :mod:`repro.core.sampler` — the probabilistic relaxation of the recovered
  circuit (Table I), the sigmoid input embedding (Eq. 6), the L2 loss
  (Eq. 8) and the batched gradient-descent sampling loop (Eq. 10), together
  with unique-solution bookkeeping and validation against the original CNF.
"""

from repro.core.config import SamplerConfig
from repro.core.extraction import (
    clause_to_expr,
    expression_for_literal,
    find_boolean_expression,
)
from repro.core.signatures import (
    formula_signature,
    gate_signature_clauses,
    match_gate_signature,
    task_signature,
)
from repro.core.task import DEFAULT_TASK, SamplingTask
from repro.core.transform import (
    TransformReplay,
    TransformResult,
    retransform,
    transform_cnf,
)
from repro.core.model import ProbabilisticCircuitModel
from repro.core.sampler import GradientSATSampler, SampleResult
from repro.core.solutions import SolutionSet
from repro.core.pipeline import sample_cnf, PipelineResult
from repro.core.circuit_sampler import CircuitSampler, CircuitSampleResult, sample_circuit

__all__ = [
    "SamplerConfig",
    "clause_to_expr",
    "expression_for_literal",
    "find_boolean_expression",
    "match_gate_signature",
    "gate_signature_clauses",
    "formula_signature",
    "task_signature",
    "DEFAULT_TASK",
    "SamplingTask",
    "TransformReplay",
    "TransformResult",
    "retransform",
    "transform_cnf",
    "ProbabilisticCircuitModel",
    "GradientSATSampler",
    "SampleResult",
    "SolutionSet",
    "sample_cnf",
    "PipelineResult",
    "CircuitSampler",
    "CircuitSampleResult",
    "sample_circuit",
]
