"""Direct circuit sampling (no CNF round-trip).

Section IV-C of the paper suggests that "SAT applications in high-level
logical formats could be directly transformed into a multi-level,
multi-output Boolean function" — i.e. when the constraints are already a
circuit (Verilog, ``.bench``, a :class:`~repro.circuit.netlist.Circuit` built
with the builder API), the CNF encode/recover round-trip can be skipped
entirely.  :class:`CircuitSampler` does exactly that: it applies the same
probabilistic relaxation and batched gradient-descent loop straight to the
circuit, with per-output 0/1 targets (the constrained-random-verification
use case of pinning response bits).

Solutions are reported over the circuit's primary inputs and validated by
bit-exact circuit simulation, so there is no CNF anywhere in the loop.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.circuit.netlist import Circuit
from repro.circuit.simulate import simulate
from repro.core.config import SamplerConfig
from repro.core.loss import regression_loss, target_matrix
from repro.core.model import ProbabilisticCircuitModel
from repro.core.solutions import SolutionSet
from repro.engine.train import learn_batch as engine_learn_batch
from repro.tensor.optim import make_optimizer
from repro.tensor.tensor import Tensor
from repro.tensor.functional import sigmoid
from repro.native import use_kernel
from repro.xp import use_backend


@dataclass
class CircuitSampleResult:
    """Outcome of a direct circuit-sampling run (inputs-space solutions)."""

    solutions: SolutionSet
    input_order: List[str]
    num_generated: int
    num_valid: int
    elapsed_seconds: float
    rounds: int
    loss_history: List[float] = field(default_factory=list)
    timed_out: bool = False
    #: True when a ``should_stop`` callback halted the run early (see
    #: :attr:`repro.core.sampler.SampleResult.stopped_early`).
    stopped_early: bool = False

    @property
    def num_unique(self) -> int:
        """Number of unique valid input vectors found."""
        return len(self.solutions)

    @property
    def throughput(self) -> float:
        """Unique valid input vectors per second."""
        if self.elapsed_seconds <= 0.0:
            return float("inf") if self.num_unique else 0.0
        return self.num_unique / self.elapsed_seconds

    @property
    def validity_rate(self) -> float:
        """Fraction of generated candidates that met every output target."""
        if self.num_generated == 0:
            return 0.0
        return self.num_valid / self.num_generated

    def input_matrix(self, limit: Optional[int] = None) -> np.ndarray:
        """Unique input vectors as a boolean matrix ordered like ``input_order``."""
        return self.solutions.to_matrix(limit)

    def as_assignments(self, limit: Optional[int] = None) -> List[Dict[str, bool]]:
        """Unique input vectors as ``{input name: value}`` dictionaries."""
        matrix = self.input_matrix(limit)
        return [dict(zip(self.input_order, row.tolist())) for row in matrix]


class CircuitSampler:
    """Gradient-descent sampling of input vectors satisfying circuit output targets."""

    def __init__(
        self,
        circuit: Circuit,
        output_targets: Optional[Dict[str, bool]] = None,
        config: Optional[SamplerConfig] = None,
    ) -> None:
        if not circuit.outputs and not output_targets:
            raise ValueError("the circuit has no outputs and no output_targets were given")
        self.circuit = circuit
        self.config = config or SamplerConfig()
        if output_targets is None:
            output_targets = {name: True for name in circuit.outputs}
        for net in output_targets:
            if not circuit.has_net(net):
                raise ValueError(f"output target references unknown net {net!r}")
        self.output_targets: Dict[str, bool] = dict(output_targets)
        self._xp = self.config.resolve_array_backend()
        self._rng = self._xp.rng(self.config.seed)

        self.model = ProbabilisticCircuitModel(
            circuit, output_nets=list(self.output_targets), backend=self.config.backend
        )
        self._constrained_inputs = list(self.model.input_order)
        constrained = set(self._constrained_inputs)
        self._unconstrained_inputs = [
            name for name in circuit.inputs if name not in constrained
        ]
        self.input_order: List[str] = list(circuit.inputs)

    # -- public API ------------------------------------------------------------------
    def reset_rng(self) -> None:
        """Restart the random stream from the configured seed (see
        :meth:`GradientSATSampler.reset_rng <repro.core.sampler.GradientSATSampler.reset_rng>`)."""
        self._rng = self._xp.rng(self.config.seed)

    def sample(
        self,
        num_solutions: int = 1000,
        *,
        should_stop: Optional[Callable[[], bool]] = None,
    ) -> CircuitSampleResult:
        """Generate at least ``num_solutions`` unique valid input vectors (best effort).

        ``should_stop`` is polled at the same points as the timeout deadline
        (between rounds, device chunks and GD iterations); a truthy return
        halts the run cooperatively with ``stopped_early`` set on the result.
        """
        with use_backend(self._xp), use_kernel(self.config.kernel):
            return self._sample(num_solutions, should_stop)

    def _sample(
        self,
        num_solutions: int,
        should_stop: Optional[Callable[[], bool]] = None,
    ) -> CircuitSampleResult:
        if num_solutions <= 0:
            raise ValueError(f"num_solutions must be positive, got {num_solutions}")
        start = time.perf_counter()
        deadline = (
            None
            if self.config.timeout_seconds is None
            else start + self.config.timeout_seconds
        )
        solutions = SolutionSet(len(self.input_order))
        loss_history: List[float] = []
        num_generated = 0
        num_valid = 0
        rounds = 0
        stalled = 0
        timed_out = False
        stopped_early = False

        while rounds < self.config.max_rounds and len(solutions) < num_solutions:
            if deadline is not None and time.perf_counter() >= deadline:
                timed_out = True
                break
            if should_stop is not None and should_stop():
                stopped_early = True
                break
            if (
                self.config.stall_rounds is not None
                and stalled >= self.config.stall_rounds
            ):
                break
            rounds += 1
            inputs, losses, round_halted = self._one_round(
                self.config.batch_size, deadline, should_stop
            )
            loss_history.extend(losses)
            valid = self._validate(inputs)
            num_generated += inputs.shape[0]
            num_valid += int(valid.sum())
            added = solutions.add_batch(inputs, valid)
            stalled = stalled + 1 if added == 0 else 0
            if round_halted:
                if should_stop is not None and should_stop():
                    stopped_early = True
                else:
                    timed_out = True
                break

        return CircuitSampleResult(
            solutions=solutions,
            input_order=self.input_order,
            num_generated=num_generated,
            num_valid=num_valid,
            elapsed_seconds=time.perf_counter() - start,
            rounds=rounds,
            loss_history=loss_history,
            timed_out=timed_out,
            stopped_early=stopped_early,
        )

    # -- internals --------------------------------------------------------------------
    def _one_round(
        self,
        batch_size: int,
        deadline: Optional[float] = None,
        should_stop: Optional[Callable[[], bool]] = None,
    ) -> Tuple[np.ndarray, List[float], bool]:
        """Learn one batch of constrained inputs and assemble full input vectors.

        The ``deadline`` (absolute ``time.perf_counter`` instant) and the
        ``should_stop`` hook are checked between device chunks and GD
        iterations; when either fires the batch is truncated to the rows
        actually learned and the halted flag is set.
        """
        losses: List[float] = []
        targets = target_matrix(batch_size, self.model.output_nets, self.output_targets)
        if self.config.backend == "engine":
            # Fused compiled training loop; chunking happens at the program level.
            constrained_bits, losses, halted = engine_learn_batch(
                self.model.program,
                batch_size,
                targets,
                self.config,
                lambda chunk: self._rng.normal(
                    0.0, self.config.init_scale, size=(chunk, self.model.num_inputs)
                ),
                deadline,
                should_stop,
            )
            return self._assemble_inputs(constrained_bits), losses, halted
        constrained_bits = self._xp.zeros(
            (batch_size, len(self._constrained_inputs)), dtype=self._xp.bool_dtype
        )
        completed = 0
        halted = False
        for start, stop in self.config.device.chunks(batch_size):
            if deadline is not None and time.perf_counter() >= deadline:
                halted = True
                break
            if should_stop is not None and should_stop():
                halted = True
                break
            chunk = stop - start
            soft = Tensor(
                self._rng.normal(0.0, self.config.init_scale, size=(chunk, self.model.num_inputs)),
                requires_grad=True,
            )
            optimizer = make_optimizer(
                [soft], self.config.optimizer, self.config.learning_rate
            )
            for _ in range(self.config.iterations):
                if deadline is not None and time.perf_counter() >= deadline:
                    halted = True
                    break
                if should_stop is not None and should_stop():
                    halted = True
                    break
                optimizer.zero_grad()
                outputs = self.model.forward(sigmoid(soft))
                loss = regression_loss(outputs, targets[start:stop])
                loss.backward()
                optimizer.step()
                if start == 0:
                    losses.append(loss.item())
            constrained_bits[start:stop] = soft.data > 0.0
            completed = stop
            if halted:
                break
        return self._assemble_inputs(constrained_bits[:completed]), losses, halted

    def _assemble_inputs(self, constrained_bits):
        """Scatter learned bits and random unconstrained bits into input vectors."""
        batch_size = constrained_bits.shape[0]
        inputs = self._xp.zeros(
            (batch_size, len(self.input_order)), dtype=self._xp.bool_dtype
        )
        column_of = {name: i for i, name in enumerate(self.input_order)}
        for source, name in enumerate(self._constrained_inputs):
            inputs[:, column_of[name]] = constrained_bits[:, source]
        if self._unconstrained_inputs:
            random_bits = self._rng.random(
                (batch_size, len(self._unconstrained_inputs))
            ) < 0.5
            for source, name in enumerate(self._unconstrained_inputs):
                inputs[:, column_of[name]] = random_bits[:, source]
        return inputs

    def _validate(self, inputs):
        """Check each input vector against every output target by simulation."""
        values = simulate(
            self.circuit, inputs, input_order=self.input_order,
            nets=list(self.output_targets),
        )
        valid = self._xp.ones(inputs.shape[0], dtype=self._xp.bool_dtype)
        for net, target in self.output_targets.items():
            valid &= values[net] == target
        return valid


def sample_circuit(
    circuit: Circuit,
    output_targets: Optional[Dict[str, bool]] = None,
    num_solutions: int = 1000,
    config: Optional[SamplerConfig] = None,
) -> CircuitSampleResult:
    """One-call direct circuit sampling (see :class:`CircuitSampler`)."""
    sampler = CircuitSampler(circuit, output_targets=output_targets, config=config)
    return sampler.sample(num_solutions=num_solutions)
