"""End-to-end pipeline: DIMACS text/CNF -> transformation -> GD sampling.

This is the one-call entry point most users want (and what the examples use):

>>> from repro import sample_cnf
>>> result = sample_cnf(formula, num_solutions=100)
>>> result.sample.num_unique >= 1
True
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, Optional, Union

from repro.cnf.dimacs import parse_dimacs, parse_dimacs_file
from repro.cnf.formula import CNF
from repro.core.config import SamplerConfig
from repro.core.sampler import GradientSATSampler, SampleResult
from repro.core.task import SamplingTask
from repro.core.transform import TransformResult, transform_cnf
from repro import obs


@dataclass
class PipelineResult:
    """Everything produced by one end-to-end sampling run."""

    formula: CNF
    transform: TransformResult
    sample: SampleResult
    transform_seconds: float
    sample_seconds: float

    @property
    def total_seconds(self) -> float:
        """Transformation plus sampling wall-clock time."""
        return self.transform_seconds + self.sample_seconds

    @property
    def throughput(self) -> float:
        """Unique solutions per second of *sampling* time (the Table II metric)."""
        return self.sample.throughput

    def summary(self) -> Dict[str, object]:
        """Flat summary row combining transformation and sampling statistics."""
        row: Dict[str, object] = {
            "instance": self.formula.name,
            "variables": self.formula.num_variables,
            "clauses": self.formula.num_clauses,
        }
        row.update(self.transform.summary())
        row.update(self.sample.summary())
        row["transform_seconds"] = self.transform_seconds
        row["sample_seconds"] = self.sample_seconds
        return row


def load_formula(source: Union[CNF, str, Path]) -> CNF:
    """Accept a CNF object, DIMACS text, or a path to a DIMACS file."""
    if isinstance(source, CNF):
        return source
    if isinstance(source, Path):
        return parse_dimacs_file(source)
    if isinstance(source, str):
        if "\n" in source or source.lstrip().startswith(("p ", "c ", "p\t")):
            return parse_dimacs(source)
        path = Path(source)
        if path.exists():
            return parse_dimacs_file(path)
        return parse_dimacs(source)
    raise TypeError(f"cannot interpret {type(source).__name__} as a CNF")


def sample_cnf(
    source: Union[CNF, str, Path],
    num_solutions: int = 1000,
    config: Optional[SamplerConfig] = None,
    transform: Optional[TransformResult] = None,
    should_stop: Optional[Callable[[], bool]] = None,
    on_round: Optional[Callable] = None,
    task: Optional[SamplingTask] = None,
    **transform_options,
) -> PipelineResult:
    """Run the full pipeline on a CNF instance.

    Parameters
    ----------
    source:
        A :class:`~repro.cnf.formula.CNF`, DIMACS text, or path to a ``.cnf`` file.
    num_solutions:
        Minimum number of unique valid solutions to aim for.
    config:
        Sampler hyper-parameters; defaults to :class:`SamplerConfig` defaults.
    transform:
        A pre-computed transformation (skips re-running Algorithm 1).  When a
        ``task`` carries a clause delta, the transform must correspond to the
        *effective* (post-delta) formula.
    should_stop:
        Cooperative-cancellation hook forwarded to
        :meth:`GradientSATSampler.sample`; polled at the timeout-deadline
        check points.
    on_round:
        Per-round progress callback forwarded to the sampler (receives the
        :class:`~repro.core.sampler.RoundRecord` and the round's new unique
        solutions).
    task:
        An optional :class:`~repro.core.task.SamplingTask` workload spec.  Its
        clause delta is applied to the formula *before* transforming, its
        projection drives solution dedup and its weights bias initialization.
        ``None`` (the default task) reproduces the pre-task pipeline bitwise.
    transform_options:
        Keyword arguments forwarded to :func:`repro.core.transform.transform_cnf`
        when the transformation is not supplied.

    When the config names a persistent artifact store
    (``config.store_dir``, or the ``REPRO_STORE_DIR`` environment variable
    when that field is ``None`` — see :mod:`repro.store`), the transform
    stage first consults the store for the formula's signature and persists
    after a cold build, so repeated runs over the same formula skip
    Algorithm 1 entirely.  The store path is bypassed when a pre-computed
    ``transform`` is supplied or non-default ``transform_options`` are given
    (store entries are keyed by formula content alone, so option variants
    must not share them).
    """
    with obs.trace_scope(config.telemetry if config is not None else None):
        with obs.span("pipeline.sample_cnf") as pspan:
            formula = load_formula(source)
            if task is not None:
                formula = task.apply_to(formula)
            transform_start = time.perf_counter()
            if transform is None:
                store_spec = config.store_dir if config is not None else None
                if not transform_options:
                    from repro.store import open_store

                    store = open_store(store_spec)
                else:
                    store = None
                if store is not None:
                    from repro.core.signatures import formula_signature
                    from repro.serve.cache import build_artifact
                    from repro.store import fetch_or_build_artifact

                    signature = formula_signature(formula)
                    artifact, _source = fetch_or_build_artifact(
                        store, signature, lambda: build_artifact(formula, signature)
                    )
                    # Sample on the artifact's formula object so its memoised
                    # evaluation plan (store-loaded or freshly compiled) is shared.
                    formula = artifact.formula
                    transform = artifact.transform
                else:
                    transform = transform_cnf(formula, **transform_options)
            transform_seconds = time.perf_counter() - transform_start

            sampler = GradientSATSampler(
                formula, transform=transform, config=config, task=task
            )
            sample_start = time.perf_counter()
            sample = sampler.sample(
                num_solutions=num_solutions, should_stop=should_stop,
                on_round=on_round,
            )
            sample_seconds = time.perf_counter() - sample_start
            pspan.set("instance", formula.name)
            pspan.set("unique_solutions", sample.num_unique)
        # End a file-backed trace with a metrics line so `repro-sat obs`
        # can tabulate the run's counters (no-op without an open sink).
        obs.write_metrics_to_trace()
    return PipelineResult(
        formula=formula,
        transform=transform,
        sample=sample,
        transform_seconds=transform_seconds,
        sample_seconds=sample_seconds,
    )
