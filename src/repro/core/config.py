"""Configuration of the gradient-descent sampler.

Defaults follow Section IV of the paper: plain gradient descent with learning
rate 10, 5 iterations, and a batch size chosen per instance (the paper sweeps
100 to 1,000,000; the default here is sized for CPU-hosted NumPy execution).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.gpu.device import Device, DeviceKind
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class SamplerConfig:
    """Hyper-parameters of :class:`repro.core.sampler.GradientSATSampler`."""

    #: Number of candidate solutions learned in parallel per round (paper: 100..1e6).
    batch_size: int = 2048
    #: Gradient-descent iterations per round (paper: 5).
    iterations: int = 5
    #: Learning rate of Eq. 10 (paper: 10).
    learning_rate: float = 10.0
    #: Optimizer: "sgd" (the paper's choice) or "adam" (ablation only).
    optimizer: str = "sgd"
    #: Standard deviation of the Gaussian initialisation of the soft inputs V.
    init_scale: float = 1.0
    #: Random seed for initialisation and unconstrained-input sampling.
    seed: Optional[int] = 0
    #: Execution device (vectorised "gpu-sim" or per-sample "cpu" loop).
    device: Device = field(default_factory=lambda: Device(DeviceKind.GPU_SIM))
    #: Evaluation backend: "engine" (compiled levelized programs, the default)
    #: or "interpreter" (the legacy per-gate autodiff reference).  The two are
    #: bitwise-identical; the engine is the fast path.
    backend: str = "engine"
    #: Maximum number of sampling rounds when a target solution count is requested.
    max_rounds: int = 64
    #: Stop early after this many consecutive rounds that add no new unique solution
    #: (the solution space is likely exhausted).  None disables the check.
    stall_rounds: Optional[int] = 4
    #: Wall-clock budget in seconds (None = unlimited); checked between rounds
    #: and, inside a GD round, between device chunks and iterations, so a
    #: long round overshoots the budget by at most one iteration (model-less
    #: instances sample a round as one vectorised step, their overshoot is
    #: that single step).
    timeout_seconds: Optional[float] = None
    #: Array-backend spec ("numpy", "numpy:float32", "cupy", "torch", ...)
    #: the sampler's hot loops run on.  ``None`` falls back to the device's
    #: backend, then to the process default (``REPRO_ARRAY_BACKEND`` env or
    #: NumPy) — precedence: environment < config < CLI (the CLI writes this
    #: field, so it wins).
    array_backend: Optional[str] = None
    #: Native kernel mode ("auto", "native", "python"/"off", "cext", "numba")
    #: scoping :mod:`repro.native` for this sampler's runs.  ``None`` leaves
    #: the process default (``REPRO_NATIVE`` env or "auto") in place —
    #: precedence: environment < config < CLI (the CLI writes this field).
    kernel: Optional[str] = None
    #: Persistent artifact-store directory (:mod:`repro.store`) consulted by
    #: :func:`repro.core.pipeline.sample_cnf` before running the CNF->circuit
    #: transform, and populated after a cold build.  ``None`` defers to the
    #: ``REPRO_STORE_DIR`` environment variable (off when unset); ``"off"``
    #: is explicitly off — precedence: environment < config < CLI (the CLI
    #: writes this field, so ``--store-dir`` wins).  The library default is
    #: *off*: enable it for workloads that resample the same formulas across
    #: processes or runs.
    store_dir: Optional[str] = None
    #: Telemetry spec (:mod:`repro.obs`): ``"off"`` forces tracing off,
    #: ``"mem"``/``"on"`` enable the in-memory span ring, any other string is
    #: a JSONL trace-file path.  ``None`` defers to the ``REPRO_TRACE``
    #: environment variable (off when unset) — precedence: environment <
    #: config < CLI (the CLI writes this field, so ``--trace`` wins).
    #: Metrics counters are always live regardless of this spec.
    telemetry: Optional[str] = None

    def __post_init__(self) -> None:
        check_positive("batch_size", self.batch_size)
        check_positive("iterations", self.iterations)
        check_positive("learning_rate", self.learning_rate)
        check_positive("max_rounds", self.max_rounds)
        check_positive("init_scale", self.init_scale)
        if self.optimizer not in ("sgd", "adam"):
            raise ValueError(f"optimizer must be 'sgd' or 'adam', got {self.optimizer!r}")
        if self.backend not in ("engine", "interpreter"):
            raise ValueError(
                f"backend must be 'engine' or 'interpreter', got {self.backend!r}"
            )
        if self.timeout_seconds is not None and self.timeout_seconds <= 0:
            raise ValueError("timeout_seconds must be positive or None")
        if self.stall_rounds is not None and self.stall_rounds <= 0:
            raise ValueError("stall_rounds must be positive or None")
        if self.array_backend is not None:
            from repro.xp import validate_spec

            # Syntax/registration check only; availability (e.g. CuPy import)
            # is verified at resolution time with a precise error.
            validate_spec(self.array_backend)
        if self.kernel is not None:
            from repro.native import resolve_mode

            # Vocabulary check only; tier availability is resolved at run
            # time (explicit tiers then fail with a precise error).
            resolve_mode(self.kernel)

    def resolve_array_backend(self):
        """The :class:`~repro.xp.backend.ArrayBackend` this config selects.

        Precedence (weakest first): ``REPRO_ARRAY_BACKEND`` environment
        default, ``device.array_backend``, ``array_backend`` (which the CLI
        flag ``--array-backend`` writes, so the CLI wins).
        """
        from repro.xp import get_backend

        if self.array_backend:
            return get_backend(self.array_backend)
        return self.device.backend()  # device spec, else the active default

    def with_(self, **overrides) -> "SamplerConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **overrides)

    @classmethod
    def paper_defaults(cls, batch_size: int = 2048, **overrides) -> "SamplerConfig":
        """The hyper-parameters reported in the paper (lr=10, 5 iterations, SGD)."""
        return cls(
            batch_size=batch_size,
            iterations=5,
            learning_rate=10.0,
            optimizer="sgd",
            **overrides,
        )
