"""The gradient-descent SAT sampler (Section III of the paper).

The sampler learns a batch of candidate solutions in parallel:

1. the trainable matrix ``V`` in ``R^{b x n}`` holds one soft assignment per
   batch element over the constrained primary inputs;
2. the sigmoid embedding ``P = sigma(V)`` (Eq. 6) maps it to probabilities;
3. the probabilistic circuit model computes output probabilities
   ``Y = F(P)`` (Eq. 7);
4. the L2 loss against the all-ones target (Eq. 8) is minimised by plain
   gradient descent (Eq. 10) for a handful of iterations;
5. the learned soft inputs are thresholded to hard bits, the unconstrained
   primary inputs and free variables are drawn uniformly at random, the
   intermediate variables are computed by simulating the recovered circuit,
   and the resulting full assignments are validated against the *original*
   CNF; unique valid assignments are retained.

Each batch element is learned independently, so the whole loop vectorises
across the batch — the property the paper exploits for GPU acceleration and
that the ``gpu-sim`` device reproduces with full-batch NumPy execution.

With the default ``backend="engine"`` the GD loop calls the compiled
levelized engine (:mod:`repro.engine`) directly — fused forward, hand-written
backward, no per-gate tape; ``backend="interpreter"`` keeps the legacy
per-gate autodiff path for reference.  Both produce bitwise-identical
solutions under a fixed seed.

Orthogonally, ``SamplerConfig(array_backend=...)`` (or the
``REPRO_ARRAY_BACKEND`` environment variable, or the CLI flag) selects the
*array backend* the whole round executes on: learning, assembly, circuit
simulation and CNF validation all stay on that backend's device, and the
batch crosses to the host exactly once per round, inside
:meth:`SolutionSet.add_batch`.  Candidate streams are reproducible
per-backend: the seeded RNG handle is threaded through the backend
(:meth:`~repro.xp.backend.ArrayBackend.rng`), and :meth:`reset_rng` restarts
it so a re-run reproduces a sampling run exactly.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.cnf.formula import CNF
from repro.core.config import SamplerConfig
from repro.core.loss import regression_loss, target_matrix
from repro.core.model import ProbabilisticCircuitModel
from repro.core.solutions import SolutionSet
from repro.core.extraction import VAR_PREFIX
from repro.core.task import DEFAULT_TASK, SamplingTask
from repro.core.transform import TransformResult, transform_cnf
from repro.engine.train import learn_batch as engine_learn_batch
from repro.tensor.optim import make_optimizer
from repro.tensor.tensor import Tensor
from repro.tensor.functional import sigmoid
from repro.native import use_kernel
from repro.xp import use_backend
from repro import obs

_SAMPLER_ROUNDS = obs.counter(
    "repro_sampler_rounds_total",
    "Completed gradient-descent sampling rounds.",
)
_SAMPLER_SOLUTIONS = obs.counter(
    "repro_sampler_solutions_total",
    "Candidate assignments by outcome across sampling rounds.",
    labels=("outcome",),
)
_ROUND_SECONDS = obs.histogram(
    "repro_sampler_round_seconds",
    "Wall-clock seconds per sampling round.",
)


@dataclass
class RoundRecord:
    """Statistics of one sampling round (one batch of candidates)."""

    round_index: int
    num_candidates: int
    num_valid: int
    num_new_unique: int
    loss_history: List[float] = field(default_factory=list)
    seconds: float = 0.0


@dataclass
class SampleResult:
    """Outcome of a sampling run."""

    solutions: SolutionSet
    num_requested: int
    num_generated: int
    num_valid: int
    rounds: List[RoundRecord]
    elapsed_seconds: float
    timed_out: bool = False
    #: True when a ``should_stop`` callback halted the run before the target,
    #: round limit, stall limit or timeout did (cooperative cancellation —
    #: how the portfolio scheduler retires losing runs).
    stopped_early: bool = False
    #: The workload kind this run sampled (``SamplingTask.kind()``):
    #: ``"default"`` or a ``+``-joined combination of ``projected`` /
    #: ``weighted`` / ``incremental``.
    task_kind: str = "default"

    @property
    def num_unique(self) -> int:
        """Number of unique valid solutions found.

        Under a projected task the solution set deduplicates on the projected
        columns, so this already counts distinct projected patterns.
        """
        return len(self.solutions)

    @property
    def projected_unique(self) -> int:
        """Distinct projected patterns found (equals :attr:`num_unique` when
        the task is unprojected — the projection is then the identity)."""
        return len(self.solutions)

    @property
    def throughput(self) -> float:
        """Unique valid solutions per second (the Table II metric)."""
        if self.elapsed_seconds <= 0.0:
            return float("inf") if self.num_unique else 0.0
        return self.num_unique / self.elapsed_seconds

    @property
    def validity_rate(self) -> float:
        """Fraction of generated candidates that satisfied the original CNF."""
        if self.num_generated == 0:
            return 0.0
        return self.num_valid / self.num_generated

    def solution_matrix(self, limit: Optional[int] = None) -> np.ndarray:
        """Unique solutions as a boolean matrix over the original variables."""
        return self.solutions.to_matrix(limit)

    def summary(self) -> Dict[str, object]:
        """Compact dictionary used by the evaluation reports."""
        return {
            "unique_solutions": self.num_unique,
            "generated": self.num_generated,
            "valid": self.num_valid,
            "validity_rate": self.validity_rate,
            "seconds": self.elapsed_seconds,
            "throughput": self.throughput,
            "rounds": len(self.rounds),
            "timed_out": self.timed_out,
            "stopped_early": self.stopped_early,
            "task": self.task_kind,
            "projected_unique": self.projected_unique,
        }


class GradientSATSampler:
    """Batched gradient-descent sampler over a transformed CNF instance."""

    def __init__(
        self,
        formula: CNF,
        transform: Optional[TransformResult] = None,
        config: Optional[SamplerConfig] = None,
        task: Optional[SamplingTask] = None,
    ) -> None:
        self.formula = formula
        self.config = config or SamplerConfig()
        self.transform = transform if transform is not None else transform_cnf(formula)
        self._xp = self.config.resolve_array_backend()
        self._rng = self._xp.rng(self.config.seed)
        self._constrained_inputs = self.transform.constrained_inputs()
        self._unconstrained_inputs = self.transform.unconstrained_inputs()
        # The task shapes *how* this sampler counts and draws, not *what* it
        # samples: ``formula`` (and ``transform``) must already be the
        # effective post-delta formula — the pipeline / serving tier applies
        # ``task.delta`` before constructing the sampler.  Here the task
        # contributes the projection columns for dedup and the per-variable
        # weight vectors for initialization.
        self.task = task if task is not None else DEFAULT_TASK
        self._projection = (
            self.task.projection_columns(formula.num_variables) or None
        )
        self._init_weight_vectors()
        if self.transform.constraints:
            self.model: Optional[ProbabilisticCircuitModel] = (
                ProbabilisticCircuitModel.from_transform(
                    self.transform, backend=self.config.backend
                )
            )
        else:
            self.model = None

    # -- public API ---------------------------------------------------------------------
    def reset_rng(self) -> None:
        """Restart the sampler's random stream from the configured seed.

        After a reset, the next :meth:`sample` call reproduces a fresh
        sampler's run exactly (per backend — the stream is threaded through
        the array backend's seeded RNG handle).
        """
        self._rng = self._xp.rng(self.config.seed)

    def sample(
        self,
        num_solutions: int = 1000,
        *,
        should_stop: Optional[Callable[[], bool]] = None,
        on_round: Optional[Callable[[RoundRecord, np.ndarray], None]] = None,
    ) -> SampleResult:
        """Generate at least ``num_solutions`` unique valid solutions (best effort).

        Sampling stops when the target count is reached, the configured round
        limit is exhausted, the wall-clock timeout expires, or ``should_stop``
        returns true.  The stop callback is polled at exactly the deadline
        check points — between rounds, between device chunks and between GD
        iterations — so cancellation latency is bounded by one iteration and
        the partial round learned so far is still validated and kept
        (``stopped_early`` is set on the result).  ``on_round`` is invoked
        after every round's dedup with the :class:`RoundRecord` and the
        round's *new unique* solutions as a boolean matrix — the streaming
        hook ``repro.serve`` uses to forward incremental results.  The whole
        run executes on the configured array backend.
        """
        with obs.trace_scope(self.config.telemetry):
            with use_backend(self._xp), use_kernel(self.config.kernel):
                with obs.span("sampler.sample") as sspan:
                    result = self._sample(num_solutions, should_stop, on_round)
                    sspan.set("rounds", len(result.rounds))
                    sspan.set("unique_solutions", result.num_unique)
                    return result

    def _sample(
        self,
        num_solutions: int,
        should_stop: Optional[Callable[[], bool]] = None,
        on_round: Optional[Callable[[RoundRecord, np.ndarray], None]] = None,
    ) -> SampleResult:
        if num_solutions <= 0:
            raise ValueError(f"num_solutions must be positive, got {num_solutions}")
        start = time.perf_counter()
        deadline = (
            None
            if self.config.timeout_seconds is None
            else start + self.config.timeout_seconds
        )
        solutions = SolutionSet(self.formula.num_variables, project=self._projection)
        rounds: List[RoundRecord] = []
        num_generated = 0
        num_valid = 0
        timed_out = False
        stopped_early = False
        stalled_rounds = 0

        for round_index in range(self.config.max_rounds):
            if len(solutions) >= num_solutions:
                break
            if deadline is not None and time.perf_counter() >= deadline:
                timed_out = True
                break
            if should_stop is not None and should_stop():
                stopped_early = True
                break
            if (
                self.config.stall_rounds is not None
                and stalled_rounds >= self.config.stall_rounds
            ):
                # Several consecutive rounds added nothing: the reachable
                # solution space is very likely exhausted for this batch size.
                break
            round_start = time.perf_counter()
            rspan = obs.span("sampler.round")
            try:
                assignments, valid_mask, loss_history, round_halted = self._run_round(
                    self.config.batch_size, deadline, should_stop
                )
                stored_before = len(solutions)
                new_unique = solutions.add_batch(assignments, valid_mask)
                num_generated += assignments.shape[0]
                # One reduction per round: under device backends each .sum()
                # is a blocking device-to-host synchronisation point.
                round_valid = int(valid_mask.sum())
            except BaseException as exc:
                rspan.set("error", type(exc).__name__)
                rspan.finish()
                raise
            num_valid += round_valid
            stalled_rounds = stalled_rounds + 1 if new_unique == 0 else 0
            record = RoundRecord(
                round_index=round_index,
                num_candidates=assignments.shape[0],
                num_valid=round_valid,
                num_new_unique=new_unique,
                loss_history=loss_history,
                seconds=time.perf_counter() - round_start,
            )
            rounds.append(record)
            rspan.set("round", round_index)
            rspan.set("valid", round_valid)
            rspan.set("new_unique", new_unique)
            rspan.finish()
            _SAMPLER_ROUNDS.inc()
            _ROUND_SECONDS.observe(record.seconds)
            _SAMPLER_SOLUTIONS.inc(record.num_candidates, "generated")
            _SAMPLER_SOLUTIONS.inc(round_valid, "valid")
            _SAMPLER_SOLUTIONS.inc(new_unique, "new_unique")
            if on_round is not None:
                on_round(record, solutions.matrix_since(stored_before))
            if round_halted:
                # The deadline expired (or the stop hook fired) inside the
                # round's GD loop; the partial candidates above are kept, but
                # no new round starts.  The hook is re-polled to attribute
                # the halt: a live stop request is cancellation, anything
                # else was the deadline.
                if should_stop is not None and should_stop():
                    stopped_early = True
                else:
                    timed_out = True
                break
        elapsed = time.perf_counter() - start
        return SampleResult(
            solutions=solutions,
            num_requested=num_solutions,
            num_generated=num_generated,
            num_valid=num_valid,
            rounds=rounds,
            elapsed_seconds=elapsed,
            timed_out=timed_out,
            stopped_early=stopped_early,
            task_kind=self.task.kind(),
        )

    def learning_curve(
        self, max_iterations: int = 10, batch_size: Optional[int] = None
    ) -> List[int]:
        """Unique valid solutions after each GD iteration (Fig. 3, left).

        Runs a single batch and revalidates the hard assignments after every
        iteration, returning the cumulative unique-solution count per
        iteration (index 0 is the random initialisation before any update).
        """
        with use_backend(self._xp), use_kernel(self.config.kernel):
            return self._learning_curve(max_iterations, batch_size)

    def _learning_curve(
        self, max_iterations: int, batch_size: Optional[int]
    ) -> List[int]:
        batch = batch_size or self.config.batch_size
        solutions = SolutionSet(self.formula.num_variables, project=self._projection)
        curve: List[int] = []

        if self.model is None:
            # No constrained paths: every iteration adds fresh random samples.
            for _ in range(max_iterations + 1):
                assignments, valid_mask, _ = self._random_round(batch)
                solutions.add_batch(assignments, valid_mask)
                curve.append(len(solutions))
            return curve

        soft_inputs, optimizer, targets = self._init_parameters(batch)
        for iteration in range(max_iterations + 1):
            if iteration > 0:
                optimizer.zero_grad()
                outputs = self.model.forward(sigmoid(soft_inputs))
                loss = regression_loss(outputs, targets)
                loss.backward()
                optimizer.step()
            hard_inputs = soft_inputs.data > 0.0
            assignments, valid_mask = self._assemble(hard_inputs)
            solutions.add_batch(assignments, valid_mask)
            curve.append(len(solutions))
        return curve

    # -- internals ------------------------------------------------------------------------
    def _init_weight_vectors(self) -> None:
        """Precompute the per-variable weight vectors on the sampler's backend.

        A weight ``p`` on variable ``v`` biases the sampler's *initialization*
        (never the loss): constrained inputs start their Gaussian ``V`` draw
        shifted by ``logit(p)`` so ``sigma(V)`` is centred on ``p``, while
        unconstrained inputs and free variables are drawn Bernoulli(``p``)
        instead of fair coins.  All three vectors are ``None`` for unweighted
        tasks, keeping the arithmetic (and the RNG stream) bitwise identical
        to the pre-task sampler.
        """
        self._constrained_bias = None
        self._unconstrained_probs = None
        self._free_probs = None
        if not self.task.is_weighted:
            return
        logits = self.task.weight_logits(self.formula.num_variables)
        probs = self.task.weight_map()

        def variable_of(name: str) -> int:
            return int(name[len(VAR_PREFIX):])

        bias = [logits.get(variable_of(name), 0.0) for name in self._constrained_inputs]
        if any(bias):
            self._constrained_bias = self._xp.asarray(
                np.asarray(bias, dtype=np.float64)[np.newaxis, :],
                dtype=self._xp.float_dtype,
            )
        unconstrained = [
            probs.get(variable_of(name), 0.5) for name in self._unconstrained_inputs
        ]
        if any(probability != 0.5 for probability in unconstrained):
            self._unconstrained_probs = self._xp.asarray(
                np.asarray(unconstrained, dtype=np.float64),
                dtype=self._xp.float_dtype,
            )
        free = [
            probs.get(variable_of(name), 0.5)
            for name in self.transform.free_variables
        ]
        if any(probability != 0.5 for probability in free):
            self._free_probs = self._xp.asarray(
                np.asarray(free, dtype=np.float64), dtype=self._xp.float_dtype
            )

    def _draw_initial_soft_inputs(self, batch_size: int):
        """Draw the Gaussian initialisation of ``V`` for one chunk (Eq. 6 input)."""
        assert self.model is not None
        draw = self._rng.normal(
            0.0, self.config.init_scale, size=(batch_size, self.model.num_inputs)
        )
        if self._constrained_bias is not None:
            draw = draw + self._constrained_bias
        return draw

    def _init_parameters(self, batch_size: int) -> Tuple[Tensor, object, np.ndarray]:
        """Initialise the trainable soft inputs, the optimizer and the target matrix."""
        assert self.model is not None
        soft_inputs = Tensor(self._draw_initial_soft_inputs(batch_size), requires_grad=True)
        optimizer = make_optimizer(
            [soft_inputs], self.config.optimizer, self.config.learning_rate
        )
        targets = target_matrix(batch_size, self.model.output_nets)
        return soft_inputs, optimizer, targets

    def _learn_chunk(
        self,
        chunk_size: int,
        deadline: Optional[float] = None,
        should_stop: Optional[Callable[[], bool]] = None,
    ) -> Tuple[np.ndarray, List[float], bool]:
        """Learn one chunk of constrained-input assignments; returns hard bits.

        Mirrors :func:`repro.engine.train.learn_chunk`: when ``deadline``
        passes (or ``should_stop`` fires) mid-chunk the remaining GD
        iterations are skipped and the partially-trained bits are returned
        with the halted flag set.
        """
        assert self.model is not None
        soft_inputs, optimizer, targets = self._init_parameters(chunk_size)
        loss_history: List[float] = []
        halted = False
        for _ in range(self.config.iterations):
            if deadline is not None and time.perf_counter() >= deadline:
                halted = True
                break
            if should_stop is not None and should_stop():
                halted = True
                break
            optimizer.zero_grad()
            outputs = self.model.forward(sigmoid(soft_inputs))
            loss = regression_loss(outputs, targets)
            loss.backward()
            optimizer.step()
            loss_history.append(loss.item())
        return soft_inputs.data > 0.0, loss_history, halted

    def _learn_constrained_inputs(
        self,
        batch_size: int,
        deadline: Optional[float] = None,
        should_stop: Optional[Callable[[], bool]] = None,
    ) -> Tuple[np.ndarray, List[float], bool]:
        """Learn constrained inputs for a full batch, honouring the device's chunking.

        The engine backend hands the whole batch to the compiled program's
        training loop (chunking happens at the program level); the interpreter
        backend keeps the legacy Python-sliced chunk loop.  Both check the
        ``deadline`` and the ``should_stop`` hook between chunks and between
        GD iterations, truncating the batch to the rows actually learned when
        either fires.
        """
        assert self.model is not None
        if self.config.backend == "engine":
            targets = target_matrix(batch_size, self.model.output_nets)
            return engine_learn_batch(
                self.model.program,
                batch_size,
                targets,
                self.config,
                self._draw_initial_soft_inputs,
                deadline,
                should_stop,
            )
        hard = self._xp.zeros(
            (batch_size, self.model.num_inputs), dtype=self._xp.bool_dtype
        )
        loss_history: List[float] = []
        completed = 0
        halted = False
        for start, stop in self.config.device.chunks(batch_size):
            if deadline is not None and time.perf_counter() >= deadline:
                halted = True
                break
            if should_stop is not None and should_stop():
                halted = True
                break
            chunk_hard, chunk_losses, chunk_halted = self._learn_chunk(
                stop - start, deadline, should_stop
            )
            hard[start:stop] = chunk_hard
            completed = stop
            if not loss_history:
                loss_history = chunk_losses
            if chunk_halted:
                halted = True
                break
        return hard[:completed], loss_history, halted

    def _assemble(self, constrained_bits) -> Tuple[object, object]:
        """Build full CNF assignments from constrained-input bits and validate them.

        Assembly, circuit simulation and CNF validation all run on the active
        array backend; the returned matrices stay device-resident until the
        dedup step downloads them.
        """
        xpb = self._xp
        batch_size = constrained_bits.shape[0]
        input_matrix = xpb.zeros(
            (batch_size, len(self.transform.primary_inputs)), dtype=xpb.bool_dtype
        )
        column_of = {name: i for i, name in enumerate(self.transform.primary_inputs)}
        for source_column, name in enumerate(self._constrained_inputs):
            input_matrix[:, column_of[name]] = constrained_bits[:, source_column]
        if self._unconstrained_inputs:
            # Weighted tasks compare the same uniform draws against per-column
            # target probabilities instead of 0.5 — identical RNG consumption,
            # so unweighted tasks keep their exact candidate bit-stream.
            draws = self._rng.random((batch_size, len(self._unconstrained_inputs)))
            if self._unconstrained_probs is not None:
                random_bits = draws < self._unconstrained_probs
            else:
                random_bits = draws < 0.5
            for source_column, name in enumerate(self._unconstrained_inputs):
                input_matrix[:, column_of[name]] = random_bits[:, source_column]
        free_values = None
        if self.transform.free_variables:
            free_draws = self._rng.random(
                (batch_size, len(self.transform.free_variables))
            )
            if self._free_probs is not None:
                free_values = free_draws < self._free_probs
            else:
                free_values = free_draws < 0.5
        assignments = self.transform.complete_assignments(input_matrix, free_values)
        valid_mask = self.formula.evaluate_batch(assignments)
        return assignments, valid_mask

    def _run_round(
        self,
        batch_size: int,
        deadline: Optional[float] = None,
        should_stop: Optional[Callable[[], bool]] = None,
    ) -> Tuple[np.ndarray, np.ndarray, List[float], bool]:
        """One sampling round: learn (if needed), assemble and validate a batch."""
        if self.model is None:
            assignments, valid_mask, loss_history = self._random_round(batch_size)
            halted = (
                deadline is not None and time.perf_counter() >= deadline
            ) or (should_stop is not None and should_stop())
            return assignments, valid_mask, loss_history, halted
        constrained_bits, loss_history, halted = self._learn_constrained_inputs(
            batch_size, deadline, should_stop
        )
        assignments, valid_mask = self._assemble(constrained_bits)
        return assignments, valid_mask, loss_history, halted

    def _random_round(self, batch_size: int) -> Tuple[object, object, List[float]]:
        """Round for instances without constrained paths: pure random assignment."""
        constrained_bits = self._xp.zeros((batch_size, 0), dtype=self._xp.bool_dtype)
        assignments, valid_mask = self._assemble(constrained_bits)
        return assignments, valid_mask, []
