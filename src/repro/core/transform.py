"""Algorithm 1: transforming a CNF into a multi-level, multi-output function.

The transformation streams over the clause list, maintaining a buffer ``SC``
of not-yet-consumed clauses.  After each clause is appended it tries to
identify a variable ``v`` such that the buffered group is exactly equivalent
to a definition ``v <-> f(other variables)``:

1. a *signature fast path* first checks whether the group is the CNF
   signature of a primary gate (Eqs. 1--4, :mod:`repro.core.signatures`);
2. otherwise the *generic extraction* derives the expression for ``v`` from
   the clauses containing ``~v`` and the expression for ``~v`` from the
   clauses containing ``v`` and accepts when the two are complements
   (:mod:`repro.core.extraction`), exactly as the ``x5`` walk-through in
   Section III-A.

Accepted definitions turn ``v`` into an *intermediate variable*; variables
feeding the definition that are not themselves defined become *primary
inputs* and can never be re-defined later (the circuit must stay acyclic).
A definition that simplifies to a constant marks ``v`` as a *primary output*
pinned to that constant (the paper's Fig. 1 ``x10 = 1`` case arises this way
when the unit clause is adjacent; when it is not, the constraint falls out of
the under-specified path below).

Groups that cannot be interpreted as a definition — the paper's
*under-specified* sub-clauses — are flushed verbatim: their conjunction
becomes an auxiliary output constrained to 1.  Flushing happens when the
buffered group shares no variable with the next clause, when the buffer
exceeds ``max_group_size``, or at the end of the clause stream.  This keeps
the transformation *exactly equivalence-preserving over the original
variables*: every original clause is represented either inside a definition
or inside a constrained auxiliary output.

Two implementations of the clause-stream loop coexist:

* the **fast path** (default) keeps a literal-occurrence index over the
  buffer, so each appended clause only re-examines the candidate variables
  whose sub-group actually changed; failed ``(variable, sub-group)`` attempts
  are cached and never retried until the sub-group changes.  Both the
  candidate order and every accept/flush decision are a pure function of the
  buffer contents, so the fast path is decision-for-decision identical to
* the **reference path** (``use_fast_path=False``), the original
  rescan-everything loop, kept as the oracle for the equivalence test-suite
  and the cold-start benchmark baseline.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from functools import cached_property
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.boolalg.expr import And, Const, Expr, Not, Or, Var, Xor
from repro.boolalg.simplify import simplify
from repro.circuit.builder import circuit_from_expressions
from repro.circuit.netlist import Circuit
from repro.circuit.optimize import optimize_circuit
from repro.circuit.simulate import simulate
from repro.circuit.stats import two_input_gate_equivalents
from repro.cnf.clause import Clause
from repro.cnf.formula import CNF
from repro.core.extraction import (
    VAR_PREFIX,
    find_boolean_expression,
    group_to_constraint_expr,
    literal_to_expr,
    variable_name,
)
from repro.core.signatures import GateMatch, match_gate_signature
from repro.circuit.gates import Gate, GateType
from repro import obs

_perf = time.perf_counter

#: Registered form of :attr:`TransformStats.stage_seconds` — every stage
#: bucket also accumulates here, process-wide, so ``repro-sat obs`` and the
#: Prometheus export see transform time without threading stats objects.
_STAGE_SECONDS = obs.counter(
    "repro_transform_stage_seconds_total",
    "Wall-clock seconds spent per CNF->circuit transform stage.",
    labels=("stage",),
)
_TRANSFORM_RUNS = obs.counter(
    "repro_transform_runs_total",
    "Completed CNF->circuit transforms by mode.",
    labels=("mode",),
)


@dataclass
class TransformStats:
    """Bookkeeping counters recorded while transforming a CNF."""

    seconds: float = 0.0
    num_clauses: int = 0
    num_definitions: int = 0
    signature_matches: int = 0
    generic_matches: int = 0
    fallback_groups: int = 0
    constant_definitions: int = 0
    cnf_operations: int = 0
    circuit_operations: int = 0
    #: Wall-clock seconds per transform stage.  ``stream`` covers the whole
    #: clause-stream loop and *contains* ``signature`` (gate-signature
    #: matching), ``extraction`` (generic extraction + complement checks),
    #: ``simplify`` (expression simplification before adoption) and ``flush``
    #: (under-specified group fallback); ``free_vars``, ``circuit_build`` and
    #: ``optimize`` follow the loop.
    #:
    #: .. deprecated::
    #:    This per-result dict remains for back compatibility; the canonical
    #:    process-wide record is the registered counter
    #:    ``repro_transform_stage_seconds_total{stage=...}`` in
    #:    :mod:`repro.obs` — both are fed by :meth:`add_stage`.
    stage_seconds: Dict[str, float] = field(default_factory=dict)

    def add_stage(self, stage: str, seconds: float) -> None:
        """Accumulate wall-clock time into a named stage bucket.

        Dual-writes the per-result :attr:`stage_seconds` dict (back compat)
        and the process-wide ``repro_transform_stage_seconds_total`` counter.
        """
        self.stage_seconds[stage] = self.stage_seconds.get(stage, 0.0) + seconds
        _STAGE_SECONDS.inc(seconds, stage)

    @property
    def operations_reduction(self) -> float:
        """CNF ops / circuit ops in 2-input gate equivalents (Fig. 4 middle)."""
        if self.circuit_operations == 0:
            return float("inf")
        return self.cnf_operations / self.circuit_operations


#: One fast-stream checkpoint: ``(clause position, definitions, inputs,
#: constraints, signature matches, generic matches, fallback groups, constant
#: definitions, lookahead-free)``.  Recorded only at *empty-buffer*
#: boundaries, where the stream's entire forward-reaching state is the record
#: lists plus the duplicate-clause filter — the occurrence index, versions
#: and failure memo are all empty or unreachable (``failed_version`` can
#: never spuriously match a fresh version: any consume bumps versions after a
#: failure), so a replay from the checkpoint with fresh dictionaries is
#: decision-identical.  The final flag is ``False`` when the buffer was
#: emptied by the disjoint-lookahead flush at the previous position — that
#: flush *examined this position's clause*, so such a checkpoint is invalid
#: when the clause at exactly this position changed.
_Checkpoint = Tuple[int, int, int, int, int, int, int, int, bool]


@dataclass
class TransformReplay:
    """Everything :func:`retransform` needs to resume a previous transform.

    Carries the exact clause sequence the transform consumed, the fast
    stream's empty-buffer checkpoints, and the option set — incremental
    re-transforms must replay under identical options or the decision
    sequence (and therefore the records) would diverge from the oracle.
    """

    clauses: Tuple[Clause, ...]
    checkpoints: Tuple[_Checkpoint, ...]
    simplify_expressions: bool
    use_signature_fast_path: bool
    optimize: bool
    max_group_size: int
    max_candidate_vars: int


@dataclass
class TransformResult:
    """The recovered multi-level, multi-output Boolean function.

    Attributes
    ----------
    definitions:
        Ordered ``(variable name, expression)`` pairs; each expression only
        references primary inputs or earlier definitions.
    primary_inputs:
        Names of the primary-input variables (original CNF variables that are
        never defined by an expression).
    intermediate_variables:
        Names of the defined (non-constant) variables.
    primary_outputs:
        Variables whose definition collapsed to a constant, mapped to that
        constant (the paper's primary-output classification).
    constraints:
        ``(auxiliary output name, expression)`` pairs; every expression must
        evaluate to 1 in a satisfying assignment.  These are the heads of the
        paper's *constrained paths*.
    circuit:
        The lowered :class:`~repro.circuit.netlist.Circuit`; its primary
        outputs are the constraint nets.
    free_variables:
        Original variables that occur in no clause at all (any value works).
    """

    source_name: str
    num_variables: int
    definitions: List[Tuple[str, Expr]]
    primary_inputs: List[str]
    intermediate_variables: List[str]
    primary_outputs: Dict[str, bool]
    constraints: List[Tuple[str, Expr]]
    circuit: Circuit
    free_variables: List[str] = field(default_factory=list)
    stats: TransformStats = field(default_factory=TransformStats)
    #: Replay record consumed by :func:`retransform` (clause sequence, fast
    #: stream checkpoints, option set).  Not part of the result's value.
    replay: Optional[TransformReplay] = field(default=None, repr=False, compare=False)

    # -- path analysis -------------------------------------------------------------
    def constraint_nets(self) -> List[str]:
        """Names of the constrained output nets in the circuit."""
        return [name for name, _ in self.constraints]

    def constrained_inputs(self) -> List[str]:
        """Primary inputs on constrained paths (those the GD sampler must learn)."""
        if not self.constraints:
            return []
        cone = self.circuit.transitive_fanin(self.constraint_nets())
        return [name for name in self.primary_inputs if name in cone]

    def unconstrained_inputs(self) -> List[str]:
        """Primary inputs only on unconstrained paths (any random value works)."""
        constrained = set(self.constrained_inputs())
        return [name for name in self.primary_inputs if name not in constrained]

    # -- reconstruction of full CNF assignments ------------------------------------------
    def input_variable_indices(self) -> Dict[str, int]:
        """Map primary-input net names to their original DIMACS indices."""
        return {name: int(name[len(VAR_PREFIX):]) for name in self.primary_inputs}

    def defined_variable_indices(self) -> Dict[str, int]:
        """Map defined net names (intermediate + constant) to DIMACS indices."""
        result = {}
        for name, _ in self.definitions:
            result[name] = int(name[len(VAR_PREFIX):])
        return result

    @cached_property
    def _completion_layout(self) -> Tuple[List[int], List[str], List[int], List[int]]:
        """Precomputed 0-based column indices for :meth:`complete_assignments`.

        Returns ``(input columns, defined net names, defined columns, free
        columns)``.  Plain ``int`` lists index correctly into every array
        backend (NumPy, CuPy and Torch all accept list fancy-indexing).
        """
        input_columns = [
            int(name[len(VAR_PREFIX):]) - 1 for name in self.primary_inputs
        ]
        defined_names = [name for name, _ in self.definitions]
        defined_columns = [
            int(name[len(VAR_PREFIX):]) - 1 for name in defined_names
        ]
        free_columns = [
            int(name[len(VAR_PREFIX):]) - 1 for name in self.free_variables
        ]
        return input_columns, defined_names, defined_columns, free_columns

    def complete_assignments(
        self,
        input_matrix: np.ndarray,
        free_values: Optional[np.ndarray] = None,
        use_fast_path: bool = True,
    ) -> np.ndarray:
        """Expand primary-input assignments to full original-variable assignments.

        ``input_matrix`` is ``(batch, len(primary_inputs))`` boolean, ordered
        like :attr:`primary_inputs`.  Defined variables are computed by
        simulating the recovered circuit; free variables receive
        ``free_values`` (``(batch, len(free_variables))``) or 0.  Returns a
        ``(batch, num_variables)`` boolean matrix, column ``j`` holding
        variable ``j + 1``.  Follows the *input's* residency
        (:func:`repro.xp.backend_for`): host matrices yield host results;
        device-resident batches stay on the device.

        The default implementation scatters each variable group (inputs,
        defined, free) with one precomputed fancy-indexed assignment;
        ``use_fast_path=False`` runs the original per-column loop (the
        equivalence suite asserts both produce bitwise-identical matrices).
        """
        from repro.xp import backend_for

        xpb = backend_for(input_matrix)
        input_matrix = xpb.asarray(input_matrix, dtype=xpb.bool_dtype)
        batch = input_matrix.shape[0]
        if input_matrix.shape[1] != len(self.primary_inputs):
            raise ValueError(
                f"expected {len(self.primary_inputs)} input columns, "
                f"got {input_matrix.shape[1]}"
            )
        full = xpb.zeros((batch, self.num_variables), dtype=xpb.bool_dtype)
        if use_fast_path:
            return self._complete_fast(xpb, full, input_matrix, free_values)
        return self._complete_reference(xpb, full, input_matrix, free_values)

    def _complete_fast(self, xpb, full, input_matrix, free_values):
        input_columns, defined_names, defined_columns, free_columns = (
            self._completion_layout
        )
        batch = input_matrix.shape[0]
        if input_columns:
            full[:, input_columns] = input_matrix
        if defined_names:
            values = simulate(
                self.circuit,
                input_matrix,
                input_order=self.primary_inputs,
                nets=defined_names,
            )
            stacked = xpb.stack([values[name] for name in defined_names], axis=1)
            full[:, defined_columns] = stacked
        if free_columns:
            if free_values is None:
                free_values = xpb.zeros(
                    (batch, len(free_columns)), dtype=xpb.bool_dtype
                )
            free_values = xpb.asarray(free_values, dtype=xpb.bool_dtype)
            full[:, free_columns] = free_values
        return full

    def _complete_reference(self, xpb, full, input_matrix, free_values):
        """The original per-column scatter loop, kept as the test oracle."""
        batch = input_matrix.shape[0]
        for column, name in enumerate(self.primary_inputs):
            index = int(name[len(VAR_PREFIX):])
            full[:, index - 1] = input_matrix[:, column]

        defined_names = [name for name, _ in self.definitions]
        if defined_names:
            values = simulate(
                self.circuit,
                input_matrix,
                input_order=self.primary_inputs,
                nets=defined_names,
            )
            for name in defined_names:
                index = int(name[len(VAR_PREFIX):])
                full[:, index - 1] = values[name]

        if self.free_variables:
            if free_values is None:
                free_values = xpb.zeros(
                    (batch, len(self.free_variables)), dtype=xpb.bool_dtype
                )
            free_values = xpb.asarray(free_values, dtype=xpb.bool_dtype)
            for column, name in enumerate(self.free_variables):
                index = int(name[len(VAR_PREFIX):])
                full[:, index - 1] = free_values[:, column]
        return full

    def summary(self) -> Dict[str, object]:
        """Compact description used by the evaluation reports."""
        return {
            "instance": self.source_name,
            "primary_inputs": len(self.primary_inputs),
            "primary_outputs": len(self.primary_outputs) + len(self.constraints),
            "intermediate_variables": len(self.intermediate_variables),
            "constraints": len(self.constraints),
            "circuit_gates": self.circuit.num_gates,
            "ops_reduction": self.stats.operations_reduction,
            "transform_seconds": self.stats.seconds,
        }


def _expr_from_gate_match(match: GateMatch) -> Expr:
    """Build the defining expression encoded by a recognised gate signature."""
    fanin_exprs = [literal_to_expr(lit) for lit in match.fanin_literals]
    gate_type = match.gate_type
    if gate_type == GateType.NOT:
        return Not(fanin_exprs[0])
    if gate_type == GateType.BUF:
        return fanin_exprs[0]
    if gate_type == GateType.AND:
        return And(*fanin_exprs)
    if gate_type == GateType.NAND:
        return Not(And(*fanin_exprs))
    if gate_type == GateType.OR:
        return Or(*fanin_exprs)
    if gate_type == GateType.NOR:
        return Not(Or(*fanin_exprs))
    if gate_type == GateType.XOR:
        return Xor(*fanin_exprs)
    if gate_type == GateType.XNOR:
        return Not(Xor(*fanin_exprs))
    raise ValueError(f"unsupported gate match {gate_type}")


class _TransformState:
    """Classification state shared by the fast and reference stream loops.

    Holds the growing definition/input/output/constraint records and performs
    the accept/flush bookkeeping in exactly the order the original algorithm
    did (the order in which primary inputs are discovered is observable in
    :attr:`TransformResult.primary_inputs`).
    """

    def __init__(
        self,
        num_names: int,
        stats: TransformStats,
        simplify_expressions: bool,
        max_candidate_vars: int,
        use_fast_path: bool,
    ) -> None:
        self.stats = stats
        #: Plain-float accumulators for the per-attempt stages; flushed into
        #: ``stats.stage_seconds`` once per transform (a dict update per
        #: attempt showed up in profiles at ~10k calls per instance).
        self.signature_seconds = 0.0
        self.extraction_seconds = 0.0
        self.simplify_seconds = 0.0
        self.simplify_expressions = simplify_expressions
        self.max_candidate_vars = max_candidate_vars
        self.use_fast_path = use_fast_path
        #: ``names[v]`` is the expression-domain name of DIMACS variable v.
        self.names: List[str] = [""] + [
            variable_name(index) for index in range(1, num_names + 1)
        ]
        self.definitions: List[Tuple[str, Expr]] = []
        self.defined: Set[str] = set()
        self.defined_vars: Set[int] = set()
        self.primary_inputs: List[str] = []
        self.primary_input_set: Set[str] = set()
        self.input_vars: Set[int] = set()
        self.primary_outputs: Dict[str, bool] = {}
        self.constraints: List[Tuple[str, Expr]] = []

    def name_of(self, variable: int) -> str:
        names = self.names
        if variable < len(names):
            return names[variable]
        return variable_name(variable)

    def mark_input(self, name: str) -> None:
        if name not in self.primary_input_set and name not in self.defined:
            self.primary_input_set.add(name)
            self.primary_inputs.append(name)
            self.input_vars.add(int(name[len(VAR_PREFIX):]))

    def mark_input_var(self, variable: int) -> None:
        if variable in self.input_vars or variable in self.defined_vars:
            return
        name = self.name_of(variable)
        self.primary_input_set.add(name)
        self.primary_inputs.append(name)
        self.input_vars.add(variable)

    def accept_definition(self, variable: int, expr: Expr) -> None:
        name = self.name_of(variable)
        if self.simplify_expressions:
            start = _perf()
            expr = simplify(expr, use_fast_path=self.use_fast_path)
            self.simplify_seconds += _perf() - start
        for support_name in sorted(expr.support()):
            self.mark_input(support_name)
        self.definitions.append((name, expr))
        self.defined.add(name)
        self.defined_vars.add(variable)
        if isinstance(expr, Const):
            self.primary_outputs[name] = expr.value
            self.stats.constant_definitions += 1

    def flush_group(self, buffer: Sequence[Clause]) -> None:
        if not buffer:
            return
        start = _perf()
        expr = group_to_constraint_expr(buffer)
        if self.simplify_expressions:
            # The simplify gate tracks the generic extraction's complement
            # budget (``max_candidate_vars``) instead of a hardcoded width.
            if len(expr.support()) <= self.max_candidate_vars:
                simplify_start = _perf()
                expr = simplify(expr, use_fast_path=self.use_fast_path)
                self.simplify_seconds += _perf() - simplify_start
        for support_name in sorted(expr.support()):
            self.mark_input(support_name)
        # Variables simplified away from the constraint expression still need a
        # value during completion; classify them as primary inputs as well.
        for clause in buffer:
            for literal in clause:
                self.mark_input_var(abs(literal))
        constraint_name = f"__constraint_{len(self.constraints)}"
        self.constraints.append((constraint_name, expr))
        self.stats.fallback_groups += 1
        self.stats.add_stage("flush", _perf() - start)


def _try_definition(
    state: _TransformState,
    variable: int,
    subgroup: Sequence[Clause],
    literal_sets: Optional[Sequence[frozenset]],
    use_signature_fast_path: bool,
    max_candidate_vars: int,
) -> Optional[Expr]:
    """Signature match then generic extraction for one candidate variable."""
    stats = state.stats
    if use_signature_fast_path:
        start = _perf()
        match = match_gate_signature(variable, subgroup, literal_sets=literal_sets)
        state.signature_seconds += _perf() - start
        if match is not None and not any(
            abs(literal) == variable for literal in match.fanin_literals
        ):
            stats.signature_matches += 1
            return _expr_from_gate_match(match)
    start = _perf()
    expr = find_boolean_expression(
        variable,
        subgroup,
        max_vars=max_candidate_vars,
        use_fast_path=state.use_fast_path,
        # Both stream loops build sub-groups that mention the candidate by
        # construction; only the fast path skips the redundant re-scan (the
        # reference path stays cost-faithful to the seed implementation).
        assume_all_mention=state.use_fast_path,
    )
    state.extraction_seconds += _perf() - start
    if expr is not None:
        stats.generic_matches += 1
    return expr


def _stream_fast(
    clauses: Sequence[Clause],
    state: _TransformState,
    use_signature_fast_path: bool,
    max_group_size: int,
    max_candidate_vars: int,
    checkpoints: Optional[List[_Checkpoint]] = None,
    position_offset: int = 0,
    seen_clause_keys: Optional[Set[frozenset]] = None,
    resume_lookahead_flush: bool = False,
) -> None:
    """Literal-occurrence-indexed clause-stream loop (the tentpole fast path).

    Buffer clauses live in integer *slots* (monotonically increasing ids, so
    ascending slot order is buffer order).  ``occurrences[v]`` holds the live
    slots mentioning variable ``v`` — a candidate's sub-group is read straight
    from the index instead of rescanning the buffer.  ``versions[v]`` counts
    how often ``occurrences[v]`` changed and ``failed_version[v]`` remembers
    the version of the last unsuccessful attempt; since both the signature
    match and the generic extraction are pure functions of ``(v, sub-group)``,
    a candidate whose sub-group did not change since its last failure is
    skipped with two dictionary lookups.

    When ``checkpoints`` is a list, a :data:`_Checkpoint` is appended at every
    empty-buffer boundary (including one at end-of-stream when the final flush
    had nothing buffered); :func:`retransform` resumes suffix replays from
    them, passing ``position_offset`` (the replay's absolute start position)
    and the prefix's ``seen_clause_keys`` (the duplicate filter is the one
    piece of forward-reaching state that survives flushes).
    """
    slots: Dict[int, Clause] = {}
    slot_literals: Dict[int, Tuple[int, ...]] = {}
    slot_vars: Dict[int, Tuple[int, ...]] = {}
    slot_sets: Dict[int, frozenset] = {}
    occurrences: Dict[int, Set[int]] = {}
    versions: Dict[int, int] = {}
    order: List[int] = []
    failed_version: Dict[int, int] = {}
    if seen_clause_keys is None:
        seen_clause_keys = set()
    next_slot = 0
    stats = state.stats

    def record_checkpoint(position: int, lookahead_free: bool) -> None:
        checkpoints.append(
            (
                position_offset + position,
                len(state.definitions),
                len(state.primary_inputs),
                len(state.constraints),
                stats.signature_matches,
                stats.generic_matches,
                stats.fallback_groups,
                stats.constant_definitions,
                lookahead_free,
            )
        )

    defined_vars = state.defined_vars
    input_vars = state.input_vars

    def try_accept() -> bool:
        seen_vars: Set[int] = set()
        for slot in order:
            for variable in slot_vars[slot]:
                if variable in seen_vars:
                    continue
                seen_vars.add(variable)
                if variable in defined_vars or variable in input_vars:
                    continue
                if failed_version.get(variable) == versions[variable]:
                    continue
                subgroup_key = sorted(occurrences[variable])
                subgroup = [slots[sid] for sid in subgroup_key]
                expr = _try_definition(
                    state,
                    variable,
                    subgroup,
                    [slot_sets[sid] for sid in subgroup_key],
                    use_signature_fast_path,
                    max_candidate_vars,
                )
                if expr is None:
                    failed_version[variable] = versions[variable]
                    continue
                state.accept_definition(variable, expr)
                # Algorithm 1 (lines 17-21): every other variable of the consumed
                # group that is not already defined becomes a primary input, even
                # if simplification dropped it from the adopted expression —
                # otherwise it would never receive a value during completion.
                for clause in subgroup:
                    for other_literal in clause:
                        other = abs(other_literal)
                        if other != variable:
                            state.mark_input_var(other)
                consume(subgroup_key)
                return True
        return False

    def consume(subgroup_key: List[int]) -> None:
        for sid in subgroup_key:
            variables = slot_vars.pop(sid)
            del slot_literals[sid]
            del slots[sid]
            del slot_sets[sid]
            for variable in variables:
                remaining = occurrences[variable]
                remaining.discard(sid)
                versions[variable] += 1
                if not remaining:
                    del occurrences[variable]
        order[:] = [sid for sid in order if sid in slots]

    def flush() -> None:
        if not order:
            return
        state.flush_group([slots[sid] for sid in order])
        slots.clear()
        slot_literals.clear()
        slot_vars.clear()
        slot_sets.clear()
        occurrences.clear()
        order.clear()
        failed_version.clear()

    total = len(clauses)
    # Resumed replays seed the flag so the checkpoint they re-record at their
    # first position carries the same lookahead provenance the original did.
    lookahead_flush = resume_lookahead_flush
    for position, clause in enumerate(clauses):
        if checkpoints is not None and not order:
            record_checkpoint(position, not lookahead_flush)
        lookahead_flush = False
        literals = clause.literals
        literal_set = frozenset(literals)
        if any(-literal in literal_set for literal in literal_set):
            continue  # tautology
        if literal_set in seen_clause_keys:
            # Duplicate clauses are redundant in a conjunction; dropping them
            # keeps them from lingering in the group buffer.
            continue
        seen_clause_keys.add(literal_set)
        slot = next_slot
        next_slot += 1
        slots[slot] = clause
        slot_literals[slot] = literals
        # Non-tautological deduped clauses mention each variable exactly once,
        # so the literal order doubles as the distinct-variable order.
        variables = tuple(
            literal if literal > 0 else -literal for literal in literals
        )
        slot_vars[slot] = variables
        slot_sets[slot] = literal_set
        order.append(slot)
        for variable in variables:
            occurrence_set = occurrences.get(variable)
            if occurrence_set is None:
                occurrences[variable] = {slot}
                versions[variable] = versions.get(variable, 0) + 1
            else:
                occurrence_set.add(slot)
                versions[variable] += 1
        while try_accept():
            # Keep accepting: consuming one sub-group may unblock another
            # candidate that was waiting on the same buffer.
            pass
        if not order:
            continue
        if len(order) >= max_group_size:
            flush()
            continue
        if position + 1 < total:
            next_clause = clauses[position + 1]
            if all(abs(literal) not in occurrences for literal in next_clause):
                flush()
                lookahead_flush = True
    if checkpoints is not None and not order:
        # End-of-stream checkpoint, recorded only when nothing was buffered: a
        # trailing under-specified group's flush depends on the stream ending
        # here, which an append-only delta would change.  The disjoint
        # lookahead cannot fire at the final position, so the flag is only
        # ever False here for an empty resumed stream carrying its seed.
        record_checkpoint(total, not lookahead_flush)
    flush()


def _stream_reference(
    clauses: Sequence[Clause],
    state: _TransformState,
    use_signature_fast_path: bool,
    max_group_size: int,
    max_candidate_vars: int,
) -> None:
    """The original rescan-everything loop, kept as the equivalence oracle."""
    buffer: List[Clause] = []

    def try_accept() -> bool:
        candidate_order: List[int] = []
        seen: Set[int] = set()
        for clause in buffer:
            for literal in clause:
                variable = abs(literal)
                if variable not in seen:
                    seen.add(variable)
                    candidate_order.append(variable)
        for variable in candidate_order:
            if variable in state.defined_vars or variable in state.input_vars:
                continue
            subgroup = [
                clause
                for clause in buffer
                if clause.contains(variable) or clause.contains(-variable)
            ]
            expr = _try_definition(
                state, variable, subgroup, None, use_signature_fast_path,
                max_candidate_vars,
            )
            if expr is not None:
                state.accept_definition(variable, expr)
                name = state.name_of(variable)
                for clause in subgroup:
                    for literal in clause:
                        other = state.name_of(abs(literal))
                        if other != name:
                            state.mark_input(other)
                consumed = {id(clause) for clause in subgroup}
                buffer[:] = [clause for clause in buffer if id(clause) not in consumed]
                return True
        return False

    seen_clauses: Set[frozenset] = set()
    for position, clause in enumerate(clauses):
        if clause.is_tautology:
            continue
        clause_key = frozenset(clause.literals)
        if clause_key in seen_clauses:
            continue
        seen_clauses.add(clause_key)
        buffer.append(clause)
        while try_accept():
            pass
        if not buffer:
            continue
        if len(buffer) >= max_group_size:
            state.flush_group(buffer)
            buffer.clear()
            continue
        next_clause = clauses[position + 1] if position + 1 < len(clauses) else None
        if next_clause is not None:
            buffer_variables = {abs(lit) for cl in buffer for lit in cl}
            next_variables = {abs(lit) for lit in next_clause}
            if buffer_variables.isdisjoint(next_variables):
                state.flush_group(buffer)
                buffer.clear()
    state.flush_group(buffer)
    buffer.clear()


def clear_transform_caches() -> None:
    """Drop every process-level memo the transform relies on.

    Clears the boolalg truth-table/minimization memos and the extraction
    layer's literal/remainder memos.  Long-lived services streaming many
    distinct formulas call this to bound memory; the cold-start benchmark
    calls it before each timed pass so both contenders start genuinely cold.
    """
    import repro.boolalg as boolalg
    from repro.core import extraction

    boolalg.clear_caches()
    extraction._clause_remainder.cache_clear()
    extraction.literal_to_expr.cache_clear()
    extraction.variable_name.cache_clear()


def _free_variables_fast(
    clauses: Sequence[Clause], num_variables: int, names: List[str]
) -> List[str]:
    """Vectorised free-variable scan: one flat pass over every literal."""
    total_literals = sum(len(clause.literals) for clause in clauses)
    if total_literals:
        flat = np.fromiter(
            (
                literal if literal > 0 else -literal
                for clause in clauses
                for literal in clause.literals
            ),
            dtype=np.int64,
            count=total_literals,
        )
        mentioned = np.zeros(max(num_variables, int(flat.max())) + 1, dtype=bool)
        mentioned[flat] = True
    else:
        mentioned = np.zeros(num_variables + 1, dtype=bool)
    unmentioned = np.flatnonzero(~mentioned[1 : num_variables + 1]) + 1
    return [names[index] for index in unmentioned]


def transform_cnf(
    formula: CNF,
    simplify_expressions: bool = True,
    use_signature_fast_path: bool = True,
    optimize: bool = True,
    max_group_size: int = 64,
    max_candidate_vars: int = 12,
    use_fast_path: bool = True,
) -> TransformResult:
    """Run the transformation algorithm on ``formula``.

    Traced as a ``transform.cnf`` span when telemetry is enabled; stage
    timings always accumulate into ``repro_transform_stage_seconds_total``.

    Parameters
    ----------
    simplify_expressions:
        Simplify each accepted expression before adoption (the paper always
        does; the ablation benchmark turns it off to measure its effect).
    use_signature_fast_path:
        Try gate-signature pattern matching before the generic extraction.
    optimize:
        Run structural optimization (constant propagation, strashing,
        dangling-gate sweep) on the lowered circuit.
    max_group_size:
        Force-flush the clause buffer past this many clauses.
    max_candidate_vars:
        Skip complement checks whose support exceeds this width; the same
        width gates simplification of flushed under-specified groups.
    use_fast_path:
        Use the literal-occurrence-indexed stream loop and the vectorised
        bookkeeping (default).  ``False`` selects the original
        rescan-everything reference implementation; the output is identical
        (the equivalence suite asserts it field by field), just slower.
    """
    with obs.span("transform.cnf") as tspan:
        result = _transform_cnf_impl(
            formula,
            simplify_expressions=simplify_expressions,
            use_signature_fast_path=use_signature_fast_path,
            optimize=optimize,
            max_group_size=max_group_size,
            max_candidate_vars=max_candidate_vars,
            use_fast_path=use_fast_path,
        )
        tspan.set("clauses", result.stats.num_clauses)
        tspan.set("definitions", result.stats.num_definitions)
    _TRANSFORM_RUNS.inc(1.0, "cold")
    return result


def _transform_cnf_impl(
    formula: CNF,
    simplify_expressions: bool,
    use_signature_fast_path: bool,
    optimize: bool,
    max_group_size: int,
    max_candidate_vars: int,
    use_fast_path: bool,
) -> TransformResult:
    start = _perf()
    from repro import native as native_kernels

    compile_before = native_kernels.compile_seconds()
    clauses = list(formula.clauses)
    stats = TransformStats(num_clauses=len(clauses))
    stats.cnf_operations = formula.two_input_operation_count()

    state = _TransformState(
        num_names=formula.num_variables,
        stats=stats,
        simplify_expressions=simplify_expressions,
        max_candidate_vars=max_candidate_vars,
        use_fast_path=use_fast_path,
    )

    checkpoints: List[_Checkpoint] = []
    stream_start = _perf()
    if use_fast_path:
        _stream_fast(
            clauses,
            state,
            use_signature_fast_path,
            max_group_size,
            max_candidate_vars,
            checkpoints=checkpoints,
        )
    else:
        _stream_reference(
            clauses, state, use_signature_fast_path, max_group_size,
            max_candidate_vars,
        )
    stats.add_stage("stream", _perf() - stream_start)
    if state.signature_seconds:
        stats.add_stage("signature", state.signature_seconds)
    if state.extraction_seconds:
        stats.add_stage("extraction", state.extraction_seconds)
    if state.simplify_seconds:
        stats.add_stage("simplify", state.simplify_seconds)

    # Original variables never mentioned by any clause are free.
    free_start = _perf()
    if use_fast_path:
        free_variables = _free_variables_fast(
            clauses, formula.num_variables, state.names
        )
    else:
        mentioned: Set[int] = set()
        for clause in clauses:
            mentioned.update(abs(lit) for lit in clause)
        free_variables = [
            variable_name(index)
            for index in range(1, formula.num_variables + 1)
            if index not in mentioned
        ]
    stats.add_stage("free_vars", _perf() - free_start)

    definitions = state.definitions
    constraints = state.constraints
    primary_inputs = state.primary_inputs
    primary_outputs = state.primary_outputs

    build_start = _perf()
    all_definitions = definitions + constraints
    circuit = circuit_from_expressions(
        all_definitions,
        outputs=[name for name, _ in constraints],
        inputs=primary_inputs,
        name=formula.name or "recovered",
    )
    stats.add_stage("circuit_build", _perf() - build_start)
    if optimize and constraints:
        optimize_start = _perf()
        # Keep the defined nets alive during optimization by temporarily
        # marking them as outputs, so complete_assignments can still read them.
        preserved = circuit.copy()
        for name, _ in definitions:
            preserved.set_output(name)
        preserved = optimize_circuit(preserved)
        circuit = preserved
        stats.add_stage("optimize", _perf() - optimize_start)

    stats.circuit_operations = two_input_gate_equivalents(circuit)
    stats.num_definitions = len(definitions)
    compile_delta = native_kernels.compile_seconds() - compile_before
    if compile_delta > 0.0:
        # One-time native kernel build cost incurred during this transform;
        # recorded as its own stage so cold numbers can be read warm.
        stats.add_stage("native_compile", compile_delta)
    stats.seconds = _perf() - start

    intermediate_variables = [
        name for name, _ in definitions if name not in primary_outputs
    ]
    replay = TransformReplay(
        clauses=tuple(clauses),
        # The reference path records no checkpoints; a retransform from such a
        # result simply replays the whole stream on the fast path (or reruns
        # the reference oracle when asked to).
        checkpoints=tuple(checkpoints),
        simplify_expressions=simplify_expressions,
        use_signature_fast_path=use_signature_fast_path,
        optimize=optimize,
        max_group_size=max_group_size,
        max_candidate_vars=max_candidate_vars,
    )
    return TransformResult(
        source_name=formula.name,
        num_variables=formula.num_variables,
        definitions=definitions,
        primary_inputs=primary_inputs,
        intermediate_variables=intermediate_variables,
        primary_outputs=primary_outputs,
        constraints=constraints,
        circuit=circuit,
        free_variables=free_variables,
        stats=stats,
        replay=replay,
    )


class _GraftUnsafe(Exception):
    """Raised when the incremental circuit graft would collide with a copied
    net name; the caller falls back to a full (still fast-path) rebuild."""


def _graft_circuit(
    prev_circuit: Circuit,
    state: _TransformState,
    num_kept_definitions: int,
    num_kept_constraints: int,
    mark_definition_outputs: bool,
    name: str,
) -> Circuit:
    """Build the incremental circuit: copy kept cones, lower new records.

    The kept prefix records' nets all survive in ``prev_circuit`` by name
    (optimization marks every definition and constraint net as an output, and
    the rebuild passes preserve output names), and their transitive-fanin
    cones reference only prefix-known inputs — structural hashing merges
    gates with *identical* fanins only, so a cone's leaf inputs never change.
    Copying those cones verbatim skips the global re-optimization that
    dominates a cold transform; new records are lowered on top with fresh
    internal names.  Raises :class:`_GraftUnsafe` in the rare case a new
    record's net name already exists in the copied region (possible when
    strashing chose a suffix record's buffer as a shared representative).
    """
    kept_nets = [net for net, _ in state.definitions[:num_kept_definitions]]
    kept_nets += [net for net, _ in state.constraints[:num_kept_constraints]]
    new_records = (
        state.definitions[num_kept_definitions:]
        + state.constraints[num_kept_constraints:]
    )
    circuit = Circuit(name)
    for input_name in state.primary_inputs:
        circuit._define_unchecked(Gate(input_name, GateType.INPUT), is_input=True)
    if kept_nets:
        cone = prev_circuit.transitive_fanin(kept_nets)
        gates = prev_circuit._gates
        for net in prev_circuit.topological_order():
            if net not in cone:
                continue
            gate = gates[net]
            if gate.gate_type == GateType.INPUT:
                continue  # cone leaves are prefix inputs, pre-declared above
            circuit._define_unchecked(gate)

    counter = 0

    def fresh(prefix: str = "n") -> str:
        nonlocal counter
        while True:
            counter += 1
            candidate = f"{prefix}{counter}"
            if not circuit.has_net(candidate):
                return candidate

    unchecked = Gate.unchecked

    def lower_gate(gate_type: GateType, fanins: Tuple[str, ...]) -> str:
        gate_name = fresh()
        circuit._define(unchecked(gate_name, gate_type, fanins))
        return gate_name

    def lower(expr: Expr) -> str:
        if isinstance(expr, Const):
            return circuit.add_constant(fresh("const"), expr.value)
        if isinstance(expr, Var):
            if not circuit.has_net(expr.name):
                raise _GraftUnsafe(expr.name)
            return expr.name
        if isinstance(expr, Not):
            return lower_gate(GateType.NOT, (lower(expr.operand),))
        if isinstance(expr, And):
            return lower_gate(GateType.AND, tuple(lower(op) for op in expr.operands))
        if isinstance(expr, Or):
            return lower_gate(GateType.OR, tuple(lower(op) for op in expr.operands))
        if isinstance(expr, Xor):
            return lower_gate(GateType.XOR, tuple(lower(op) for op in expr.operands))
        raise TypeError(f"unsupported expression node {type(expr).__name__}")

    for net, expr in new_records:
        if circuit.has_net(net):
            raise _GraftUnsafe(net)
        driver = lower(expr)
        circuit._define(unchecked(net, GateType.BUF, (driver,)))

    for net, _ in state.constraints:
        circuit.set_output(net)
    if mark_definition_outputs:
        # Mirror transform_cnf's optimize path, which keeps defined nets
        # readable by marking them as outputs.
        for net, _ in state.definitions:
            circuit.set_output(net)
    return circuit


def _mutated_formula(
    clauses: Sequence[Clause], num_variables: int, name: str
) -> CNF:
    formula = CNF(num_variables=num_variables, name=name)
    for clause in clauses:
        formula.add_clause(clause)
    return formula


def retransform(
    prev: TransformResult,
    delta,
    use_fast_path: bool = True,
) -> TransformResult:
    """Traced front end of :func:`_retransform_impl` (span
    ``transform.retransform``; counts under ``mode="incremental"``)."""
    with obs.span("transform.retransform") as tspan:
        result = _retransform_impl(prev, delta, use_fast_path=use_fast_path)
        tspan.set("clauses", result.stats.num_clauses)
    if result is not prev:
        _TRANSFORM_RUNS.inc(1.0, "incremental")
    return result


def _retransform_impl(
    prev: TransformResult,
    delta,
    use_fast_path: bool = True,
) -> TransformResult:
    """Transform the delta-mutated formula incrementally, reusing ``prev``.

    ``delta`` is a :class:`~repro.cnf.delta.ClauseDelta` applied to the exact
    clause sequence ``prev`` consumed (recorded on ``prev.replay``).  The fast
    path restores the stream state from the latest valid empty-buffer
    checkpoint at or before the first changed clause position, replays only
    the suffix, and grafts the new records onto the previously optimized
    circuit (:func:`_graft_circuit`) — on instances where the change touches
    a late suffix this is an order of magnitude cheaper than a cold
    :func:`transform_cnf`.

    The contract, pinned by ``tests/incremental``: every *record* of the
    result (definitions, primary inputs, intermediate variables, primary
    outputs, constraints, free variables) is identical to a fresh transform
    of the mutated formula, and ``complete_assignments`` is bitwise
    identical; the grafted *circuit* is functionally equivalent but not
    re-optimized globally, so its gate structure may differ from a cold
    build's.  ``use_fast_path=False`` performs the full reference rebuild
    (the oracle), identical to
    ``transform_cnf(mutated, use_fast_path=False)`` under ``prev``'s
    transform options.

    An empty delta returns ``prev`` itself.  Transform options are inherited
    from ``prev`` — replaying under different options would change the
    decision sequence.
    """
    replay = prev.replay
    if replay is None:
        raise ValueError(
            "prev carries no replay record; it must come from transform_cnf "
            "or retransform"
        )
    if delta.is_empty:
        return prev
    mutated, change_position = delta.apply(replay.clauses)
    num_variables = prev.num_variables
    for clause in delta.appended_clauses():
        for literal in clause:
            variable = -literal if literal < 0 else literal
            if variable > num_variables:
                num_variables = variable
    options = dict(
        simplify_expressions=replay.simplify_expressions,
        use_signature_fast_path=replay.use_signature_fast_path,
        optimize=replay.optimize,
        max_group_size=replay.max_group_size,
        max_candidate_vars=replay.max_candidate_vars,
    )
    name = prev.source_name
    if not use_fast_path:
        return transform_cnf(
            _mutated_formula(mutated, num_variables, name),
            use_fast_path=False,
            **options,
        )

    checkpoint: Optional[_Checkpoint] = None
    for candidate in replay.checkpoints:
        if candidate[0] > change_position:
            break
        if candidate[0] == change_position and not candidate[8]:
            # Reached via the disjoint-lookahead flush, which examined the
            # clause at exactly the change position — invalid to resume from.
            continue
        checkpoint = candidate
    if checkpoint is None or checkpoint[0] == 0:
        # No reusable prefix (or a reference-path prev without checkpoints):
        # a full fast transform also rebuilds the optimized circuit.
        return transform_cnf(
            _mutated_formula(mutated, num_variables, name),
            use_fast_path=True,
            **options,
        )

    start = _perf()
    from repro import native as native_kernels

    compile_before = native_kernels.compile_seconds()
    (
        position,
        num_definitions,
        num_inputs,
        num_constraints,
        signature_matches,
        generic_matches,
        fallback_groups,
        constant_definitions,
        lookahead_free,
    ) = checkpoint

    stats = TransformStats(num_clauses=len(mutated))
    cnf_operations = 0
    for clause in mutated:
        width = len(clause)
        cnf_operations += max(width - 1, 0)
        cnf_operations += sum(1 for literal in clause if literal < 0)
    cnf_operations += max(len(mutated) - 1, 0)
    stats.cnf_operations = cnf_operations
    stats.signature_matches = signature_matches
    stats.generic_matches = generic_matches
    stats.fallback_groups = fallback_groups
    stats.constant_definitions = constant_definitions

    state = _TransformState(
        num_names=num_variables,
        stats=stats,
        simplify_expressions=replay.simplify_expressions,
        max_candidate_vars=replay.max_candidate_vars,
        use_fast_path=True,
    )
    state.definitions = list(prev.definitions[:num_definitions])
    state.defined = {net for net, _ in state.definitions}
    state.defined_vars = {
        int(net[len(VAR_PREFIX):]) for net in state.defined
    }
    state.primary_inputs = list(prev.primary_inputs[:num_inputs])
    state.primary_input_set = set(state.primary_inputs)
    state.input_vars = {
        int(net[len(VAR_PREFIX):]) for net in state.primary_inputs
    }
    state.primary_outputs = {
        net: expr.value
        for net, expr in state.definitions
        if isinstance(expr, Const)
    }
    state.constraints = list(prev.constraints[:num_constraints])

    # The duplicate-clause filter is the only buffer-independent stream state;
    # rebuild it from the (unchanged) prefix.
    seen_clause_keys: Set[frozenset] = set()
    for clause in mutated[:position]:
        literal_set = frozenset(clause.literals)
        if not any(-literal in literal_set for literal in literal_set):
            seen_clause_keys.add(literal_set)

    checkpoints = [c for c in replay.checkpoints if c[0] < position]
    stream_start = _perf()
    _stream_fast(
        mutated[position:],
        state,
        replay.use_signature_fast_path,
        replay.max_group_size,
        replay.max_candidate_vars,
        checkpoints=checkpoints,
        position_offset=position,
        seen_clause_keys=seen_clause_keys,
        resume_lookahead_flush=not lookahead_free,
    )
    stats.add_stage("stream", _perf() - stream_start)
    if state.signature_seconds:
        stats.add_stage("signature", state.signature_seconds)
    if state.extraction_seconds:
        stats.add_stage("extraction", state.extraction_seconds)
    if state.simplify_seconds:
        stats.add_stage("simplify", state.simplify_seconds)

    free_start = _perf()
    free_variables = _free_variables_fast(mutated, num_variables, state.names)
    stats.add_stage("free_vars", _perf() - free_start)

    graft_start = _perf()
    try:
        circuit = _graft_circuit(
            prev.circuit,
            state,
            num_definitions,
            num_constraints,
            mark_definition_outputs=replay.optimize and bool(state.constraints),
            name=name or "recovered",
        )
    except _GraftUnsafe:
        return transform_cnf(
            _mutated_formula(mutated, num_variables, name),
            use_fast_path=True,
            **options,
        )
    stats.add_stage("circuit_graft", _perf() - graft_start)

    stats.circuit_operations = two_input_gate_equivalents(circuit)
    stats.num_definitions = len(state.definitions)
    compile_delta = native_kernels.compile_seconds() - compile_before
    if compile_delta > 0.0:
        stats.add_stage("native_compile", compile_delta)
    stats.seconds = _perf() - start

    intermediate_variables = [
        net for net, _ in state.definitions if net not in state.primary_outputs
    ]
    new_replay = TransformReplay(
        clauses=tuple(mutated),
        checkpoints=tuple(checkpoints),
        simplify_expressions=replay.simplify_expressions,
        use_signature_fast_path=replay.use_signature_fast_path,
        optimize=replay.optimize,
        max_group_size=replay.max_group_size,
        max_candidate_vars=replay.max_candidate_vars,
    )
    return TransformResult(
        source_name=name,
        num_variables=num_variables,
        definitions=state.definitions,
        primary_inputs=state.primary_inputs,
        intermediate_variables=intermediate_variables,
        primary_outputs=state.primary_outputs,
        constraints=state.constraints,
        circuit=circuit,
        free_variables=free_variables,
        stats=stats,
        replay=new_replay,
    )
